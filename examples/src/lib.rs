//! Shared helpers for the tapesim example binaries.

#![forbid(unsafe_code)]

use tapesim::prelude::*;

/// Prints a one-line summary of a metrics report.
pub fn summarize(label: &str, r: &MetricsReport) {
    println!(
        "{label:<34} {:>8.1} KB/s  {:>7.1} req/h  delay mean {:>6.0}s  p95 {:>6.0}s  switches {:>5}{}",
        r.throughput_kb_per_s,
        r.requests_per_min * 60.0,
        r.mean_delay_s,
        r.p95_delay_s,
        r.tape_switches,
        if r.saturated { "  [SATURATED]" } else { "" },
    );
}
