//! Telecom call-detail-record archive: terabytes of CDRs on tape, mined
//! by a fixed pool of analytics workers (closed queuing).
//!
//! The example walks the two capacity-planning questions the paper's
//! Section 4.1-4.2 answers: what I/O transfer size should the archive
//! use, and which scheduling algorithm should drive the jukebox?
//!
//! Run with: `cargo run --release -p tapesim-examples --bin telco_cdr`

use tapesim::prelude::*;
use tapesim::Scale;
use tapesim_examples::summarize;

fn main() {
    // Recent months are queried constantly (hot); old history rarely.
    let base = ExperimentConfig {
        ph_percent: 10.0,
        rh_percent: 40.0,
        process: ArrivalProcess::Closed { queue_length: 60 },
        scale: Scale::Default,
        ..ExperimentConfig::paper_baseline()
    };

    println!("CDR archive: 10 tapes x 7 GB, 60 concurrent analytics readers\n");

    // Question 1: transfer size. Small blocks starve the workers.
    println!("-- choosing the I/O transfer size --");
    let mut t = Table::new(["block size", "throughput KB/s", "effective vs streaming"]);
    let streaming_kb = 1024.0 / 1.77; // EXB-8505XL streaming rate
    for mb in [1u32, 4, 8, 16, 32, 64] {
        let cfg = ExperimentConfig {
            block: BlockSize::from_mb(mb),
            ..base.clone()
        };
        let r = run_experiment(&cfg).expect("feasible").report;
        t.push([
            format!("{mb} MB"),
            fnum(r.throughput_kb_per_s, 1),
            format!("{:.0}%", r.throughput_kb_per_s / streaming_kb * 100.0),
        ]);
    }
    println!("{}", t.to_aligned());
    println!("(the paper recommends at least 16 MB: >30% of the streaming rate)\n");

    // Question 2: the scheduling algorithm, at the chosen 16 MB size.
    println!("-- choosing the scheduling algorithm --");
    for alg in [
        AlgorithmId::Fifo,
        AlgorithmId::Static(TapeSelectPolicy::MaxBandwidth),
        AlgorithmId::Dynamic(TapeSelectPolicy::RoundRobin),
        AlgorithmId::Dynamic(TapeSelectPolicy::MaxRequests),
        AlgorithmId::Dynamic(TapeSelectPolicy::MaxBandwidth),
        AlgorithmId::paper_recommended(),
    ] {
        let cfg = ExperimentConfig {
            algorithm: alg,
            ..base.clone()
        };
        let r = run_experiment(&cfg).expect("feasible").report;
        summarize(&alg.name(), &r);
    }
    println!("\n(dynamic max-bandwidth and the envelope algorithm lead, as in Figure 4)");
}
