//! Capacity planner: given a workload skew, decide how many replicas of
//! hot data to store — trading storage expansion against throughput and
//! latency, the Section 4.8 cost-performance analysis as a tool.
//!
//! Run with:
//! `cargo run --release -p tapesim-examples --bin capacity_planner [RH]`
//! where `RH` is the percent of requests hitting hot data (default 60).

use tapesim::prelude::*;
use tapesim::Scale;

fn main() {
    let rh: f64 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(60.0);
    assert!((0.0..=100.0).contains(&rh), "RH must be in 0..=100");
    let ph = 10.0;
    let base_queue = 60;

    println!("Capacity planner: PH-{ph} skew, RH-{rh}, base queue {base_queue}\n");
    println!("Per-jukebox performance (replicated farms spread the same total");
    println!("workload over E times more jukeboxes, so queue = {base_queue}/E):\n");

    let mut t = Table::new([
        "NR",
        "E",
        "queue",
        "KB/s",
        "delay s",
        "perf ratio",
        "verdict",
    ]);
    let mut baseline: Option<MetricsReport> = None;
    let mut best: Option<(u32, f64)> = None;
    for nr in [0u32, 1, 2, 4, 6, 9] {
        let e = expansion_factor(nr, ph);
        let queue = tapesim::layout::scaled_queue_length(base_queue, e);
        let cfg = ExperimentConfig {
            layout: LayoutKind::Vertical,
            replicas: nr,
            sp: 1.0,
            rh_percent: rh,
            algorithm: AlgorithmId::paper_recommended(),
            process: ArrivalProcess::Closed {
                queue_length: queue,
            },
            scale: Scale::Default,
            ..ExperimentConfig::paper_baseline()
        };
        let r = run_experiment(&cfg).expect("feasible").report;
        let base = baseline.get_or_insert_with(|| r.clone());
        let ratio = r.throughput_kb_per_s / base.throughput_kb_per_s;
        let verdict = if nr == 0 {
            "baseline"
        } else if ratio > 1.02 {
            "pays for itself"
        } else if ratio > 0.99 {
            "about break-even"
        } else {
            "costs more than it gains"
        };
        if best.is_none_or(|(_, b)| ratio > b) {
            best = Some((nr, ratio));
        }
        t.push([
            nr.to_string(),
            fnum(e, 2),
            queue.to_string(),
            fnum(r.throughput_kb_per_s, 1),
            fnum(r.mean_delay_s, 0),
            fnum(ratio, 3),
            verdict.to_string(),
        ]);
    }
    println!("{}", t.to_aligned());

    let (nr, ratio) = best.expect("grid is non-empty");
    if nr == 0 || ratio <= 1.0 {
        println!(
            "recommendation: at RH-{rh}, buying extra capacity for replicas does not\n\
             pay for itself — but if the jukebox has existing SPARE capacity, fill it\n\
             with replicas at the tape ends anyway: that improves performance for free."
        );
    } else {
        println!(
            "recommendation: NR-{nr} replicas — {:.1}% better throughput per dollar\n\
             than the non-replicated layout, hot data and replicas at the tape ends.",
            (ratio - 1.0) * 100.0
        );
    }
}
