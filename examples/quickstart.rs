//! Quickstart: build a tape jukebox, run the paper's baseline workload,
//! and compare the trivial FIFO scheduler with the paper's recommended
//! max-bandwidth envelope algorithm.
//!
//! Run with: `cargo run --release -p tapesim-examples --bin quickstart`

use tapesim::prelude::*;
use tapesim::Scale;
use tapesim_examples::summarize;

fn main() {
    // A jukebox modeled on the paper's testbed: an Exabyte EXB-210
    // library (10 tapes x 7 GB) with an EXB-8505XL helical-scan drive,
    // 16 MB logical blocks.
    println!("Jukebox: 10 tapes x 7 GB, Exabyte EXB-8505XL drive, 16 MB blocks");
    println!("Workload: closed queue of 60 readers; 10% of data hot, 40% of requests hot\n");

    // 1. The paper's moderate-skew baseline, no replication.
    let baseline = ExperimentConfig {
        scale: Scale::Default,
        ..ExperimentConfig::paper_baseline()
    };

    // 2. Same workload under FIFO — the "why scheduling matters" baseline.
    let fifo = ExperimentConfig {
        algorithm: AlgorithmId::Fifo,
        ..baseline.clone()
    };

    // 3. The paper's full recipe: vertical hot tape, replicas of hot data
    //    at the ends of the other tapes, max-bandwidth envelope schedule.
    let replicated = ExperimentConfig {
        scale: Scale::Default,
        ..ExperimentConfig::paper_full_replication()
    };

    let r_fifo = run_experiment(&fifo).expect("fifo config is feasible");
    let r_base = run_experiment(&baseline).expect("baseline config is feasible");
    let r_repl = run_experiment(&replicated).expect("replicated config is feasible");

    summarize("FIFO, no replication", &r_fifo.report);
    summarize("dynamic max-bandwidth, no repl.", &r_base.report);
    summarize("envelope max-bw, full replication", &r_repl.report);

    println!(
        "\nscheduling alone: {:.1}x the FIFO throughput",
        r_base.report.throughput_kb_per_s / r_fifo.report.throughput_kb_per_s
    );
    println!(
        "replication + envelope on top: {:+.1}% throughput, {:+.1}% mean delay",
        (r_repl.report.throughput_kb_per_s / r_base.report.throughput_kb_per_s - 1.0) * 100.0,
        (r_repl.report.mean_delay_s / r_base.report.mean_delay_s - 1.0) * 100.0,
    );
    println!(
        "storage cost of the replicas: expansion factor E = {:.2}",
        r_repl.expansion
    );
}
