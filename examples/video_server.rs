//! Video-on-demand archive: a tape jukebox holding a deep library of
//! video segments, with sporadic viewer requests (open queuing).
//!
//! A small set of popular titles receives most of the traffic — a classic
//! hot/cold skew. The example asks the paper's practical question: the
//! jukebox is 75% full, so should we fill the spare capacity with
//! replicas of the popular segments ("replication for free", Section
//! 4.8), and what does it do to viewer startup latency?
//!
//! Run with: `cargo run --release -p tapesim-examples --bin video_server`

use tapesim::prelude::*;
use tapesim_examples::summarize;

fn main() {
    let geometry = JukeboxGeometry::PAPER_DEFAULT;
    let block = BlockSize::PAPER_DEFAULT; // 16 MB video segments
    let timing = TimingModel::paper_default();
    // 10% of titles are popular and draw 70% of the requests.
    let ph = 10.0;
    let rh = 70.0;
    // Viewers arrive sporadically: one request every ~75 s on average.
    let arrivals = ArrivalProcess::OpenPoisson {
        mean_interarrival: Micros::from_secs(75),
    };
    let sim = SimConfig::default();

    println!("Video archive: 10 tapes x 7 GB, 75% full, 16 MB segments");
    println!("Popularity skew: {ph}% of titles get {rh}% of requests");
    println!("Viewers: Poisson arrivals, one request per 75 s on average\n");

    let mut results = Vec::new();
    for (label, spare_use) in [
        ("spare capacity left empty", SpareUse::LeaveEmpty),
        ("spare filled with replicas", SpareUse::FillWithReplicas),
    ] {
        let placed = build_spare_layout(
            geometry,
            block,
            SpareConfig {
                ph_percent: ph,
                fill_fraction: 0.75,
                spare_use,
            },
        )
        .expect("75% fill is feasible");
        let spec = RunSpec {
            catalog: &placed.catalog,
            timing: &timing,
            algorithm: AlgorithmId::paper_recommended(),
            process: arrivals,
            rh_percent: rh,
            cluster_run_p: 0.0,
            drives: 1,
            config: sim,
            faults: tapesim::model::FaultConfig::NONE,
        };
        let (report, _) = tapesim::sim::run_seeds(&spec, &tapesim::sim::default_seeds(3))
            .expect("video-server config is valid");
        println!(
            "{label}: {} segments stored, {} copies on tape (E = {:.2})",
            placed.catalog.num_blocks(),
            placed.catalog.total_copies(),
            placed.expansion
        );
        summarize("  viewer experience", &report);
        results.push(report);
    }

    let (empty, filled) = (&results[0], &results[1]);
    println!(
        "\nfilling the spare capacity changes mean startup latency by {:+.1}% \
         and p95 by {:+.1}% — at zero additional hardware cost",
        (filled.mean_delay_s / empty.mean_delay_s - 1.0) * 100.0,
        (filled.p95_delay_s / empty.p95_delay_s - 1.0) * 100.0,
    );
    println!(
        "(the benefit depends on the fill level: below ~60% full, packing the\n\
         library onto fewer tapes wins instead — fewer switches beat replicas)"
    );
}
