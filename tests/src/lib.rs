//! Integration test crate; see `tests/` for the tests themselves.

#![forbid(unsafe_code)]
