//! Integration test crate; see `tests/` for the tests themselves.
