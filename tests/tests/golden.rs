//! Golden-trace snapshot tests.
//!
//! Each scenario runs a small, fully deterministic simulation, serializes
//! its event trace to JSON Lines, and compares it structurally against a
//! checked-in snapshot under `tests/golden/`. A divergence fails with a
//! field-level diff around the first differing event.
//!
//! To regenerate the snapshots after an intentional engine change:
//!
//! ```sh
//! UPDATE_GOLDEN=1 cargo test -p integration-tests --test golden
//! ```

use std::path::{Path, PathBuf};

use tapesim::layout::{build_placement, PlacementConfig};
use tapesim::model::{BlockSize, FaultConfig, JukeboxGeometry, Micros, TimingModel};
use tapesim::sched::{make_scheduler, AlgorithmId, EnvelopePolicy};
use tapesim::sim::trace::jsonl::{self, Comparison};
use tapesim::sim::{check_trace, run_simulation_traced, MemorySink, SimConfig, TraceRecord};
use tapesim::workload::{ArrivalProcess, BlockSampler, RequestFactory};

fn golden_path(name: &str) -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("golden")
        .join(name)
}

/// Runs one deterministic scenario and returns its trace.
fn run_scenario(
    tapes: u16,
    algorithm: AlgorithmId,
    queue_length: u32,
    horizon_s: u64,
    seed: u64,
) -> Vec<TraceRecord> {
    let placed = build_placement(
        JukeboxGeometry::new(tapes, 64),
        BlockSize::from_mb(1),
        PlacementConfig::paper_baseline(),
    )
    .unwrap();
    let timing = TimingModel::paper_default();
    let cfg = SimConfig {
        duration: Micros::from_secs(horizon_s),
        warmup: Micros::ZERO,
        max_pending: 5_000,
    };
    let sampler = BlockSampler::from_catalog(&placed.catalog, 40.0);
    let mut factory = RequestFactory::new(sampler, ArrivalProcess::Closed { queue_length }, seed);
    let mut sched = make_scheduler(algorithm);
    let mut sink = MemorySink::new();
    run_simulation_traced(
        &placed.catalog,
        &timing,
        sched.as_mut(),
        &mut factory,
        &cfg,
        &FaultConfig::NONE,
        0,
        &mut sink,
    )
    .unwrap();
    sink.into_events()
}

fn assert_matches_golden(name: &str, trace: &[TraceRecord]) {
    // Whatever we snapshot must itself be physically valid…
    check_trace(trace).unwrap_or_else(|v| panic!("{name}: trace violates invariants: {}", v[0]));
    // …and survive a JSONL round-trip losslessly.
    let text = jsonl::to_jsonl_string(trace);
    let reparsed = jsonl::parse_records(&text).expect("round-trip parse failed");
    assert_eq!(reparsed, trace, "{name}: JSONL round-trip not lossless");

    let path = golden_path(name);
    if std::env::var_os("UPDATE_GOLDEN").is_some() {
        std::fs::create_dir_all(path.parent().unwrap()).unwrap();
        std::fs::write(&path, text).unwrap();
        eprintln!("regenerated {}", path.display());
        return;
    }
    let expected = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!(
            "cannot read golden snapshot {}: {e}\n(regenerate with UPDATE_GOLDEN=1 \
             cargo test -p integration-tests --test golden)",
            path.display()
        )
    });
    match jsonl::compare(&expected, trace, 3) {
        Comparison::Match => {}
        Comparison::Mismatch(report) => {
            panic!("{name}: trace diverged from golden snapshot\n{report}")
        }
    }
}

#[test]
fn one_tape_fifo_trace_is_stable() {
    let trace = run_scenario(1, AlgorithmId::Fifo, 4, 600, 11);
    assert!(
        trace.len() > 20,
        "scenario too small to be meaningful: {} events",
        trace.len()
    );
    assert_matches_golden("one_tape_fifo.jsonl", &trace);
}

#[test]
fn two_tapes_envelope_trace_is_stable() {
    let trace = run_scenario(
        2,
        AlgorithmId::Envelope(EnvelopePolicy::MaxBandwidth),
        6,
        900,
        23,
    );
    assert!(
        trace.len() > 20,
        "scenario too small to be meaningful: {} events",
        trace.len()
    );
    assert_matches_golden("two_tapes_envelope.jsonl", &trace);
}

#[test]
fn golden_mismatch_reports_are_readable() {
    // Corrupt one field of the actual trace and confirm the comparison
    // pinpoints it rather than dumping both traces wholesale.
    let trace = run_scenario(1, AlgorithmId::Fifo, 4, 600, 11);
    let golden = jsonl::to_jsonl_string(&trace);
    let mut tampered = trace.clone();
    let mid = tampered.len() / 2;
    tampered[mid].at += Micros::from_micros(1);
    match jsonl::compare(&golden, &tampered, 2) {
        Comparison::Match => panic!("tampered trace compared equal"),
        Comparison::Mismatch(report) => {
            assert!(
                report.contains("t_us"),
                "report does not name the field:\n{report}"
            );
            assert!(
                report.contains('>'),
                "report has no divergence marker:\n{report}"
            );
        }
    }
}
