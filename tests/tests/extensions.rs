//! Integration tests for the beyond-the-paper extensions, driven through
//! the public `tapesim` API.

use tapesim::prelude::*;
use tapesim::sim::{run_with_writeback, FlushPolicy, WriteBackConfig};
use tapesim::workload::{generate_trace, ZipfSampler};
use tapesim::Scale;

fn quick(cfg: ExperimentConfig) -> MetricsReport {
    run_experiment(&ExperimentConfig {
        scale: Scale::Quick,
        ..cfg
    })
    .expect("feasible")
    .report
}

#[test]
fn multi_drive_through_experiment_config() {
    let one = quick(ExperimentConfig {
        process: ArrivalProcess::Closed { queue_length: 120 },
        ..ExperimentConfig::paper_baseline()
    });
    let three = quick(ExperimentConfig {
        drives: 3,
        process: ArrivalProcess::Closed { queue_length: 120 },
        ..ExperimentConfig::paper_baseline()
    });
    assert!(
        three.throughput_kb_per_s > 2.0 * one.throughput_kb_per_s,
        "3 drives {:.1} vs 1 drive {:.1}",
        three.throughput_kb_per_s,
        one.throughput_kb_per_s
    );
    assert!(three.mean_delay_s < one.mean_delay_s);
}

#[test]
fn clustering_through_experiment_config() {
    let independent = quick(ExperimentConfig::paper_baseline());
    let clustered = quick(ExperimentConfig {
        cluster_run_p: 0.95,
        ..ExperimentConfig::paper_baseline()
    });
    // Long sequential runs turn locates into streaming reads.
    assert!(
        clustered.throughput_kb_per_s > independent.throughput_kb_per_s,
        "clustered {:.1} vs independent {:.1}",
        clustered.throughput_kb_per_s,
        independent.throughput_kb_per_s
    );
}

#[test]
fn zipf_stream_served_end_to_end() {
    let placed = ExperimentConfig::paper_baseline()
        .build_catalog()
        .expect("feasible");
    let timing = TimingModel::paper_default();
    let sampler = ZipfSampler::new(placed.catalog.num_blocks(), 1.0);
    let mut factory =
        RequestFactory::new_zipf(sampler, ArrivalProcess::Closed { queue_length: 60 }, 3);
    let mut sched = make_scheduler(AlgorithmId::paper_recommended());
    let r = run_simulation(
        &placed.catalog,
        &timing,
        sched.as_mut(),
        &mut factory,
        &SimConfig::quick(),
    )
    .expect("zipf run is valid");
    assert!(r.completed > 100);
    assert!(!r.saturated);
}

#[test]
fn trace_replay_is_bit_identical() {
    let placed = ExperimentConfig::paper_baseline()
        .build_catalog()
        .expect("feasible");
    let timing = TimingModel::paper_default();
    let sampler = BlockSampler::from_catalog(&placed.catalog, 40.0);
    let trace = generate_trace(&sampler, 5_000, 11);
    let run = || {
        let mut factory = RequestFactory::from_trace(
            trace.clone(),
            ArrivalProcess::Closed { queue_length: 40 },
            0,
        );
        let mut sched = make_scheduler(AlgorithmId::Dynamic(TapeSelectPolicy::MaxRequests));
        run_simulation(
            &placed.catalog,
            &timing,
            sched.as_mut(),
            &mut factory,
            &SimConfig::quick(),
        )
        .expect("trace replay is valid")
    };
    assert_eq!(run(), run());
}

#[test]
fn writeback_policies_trade_freshness_for_latency() {
    let placed = ExperimentConfig::paper_baseline()
        .build_catalog()
        .expect("feasible");
    let timing = TimingModel::paper_default();
    let run = |policy| {
        let sampler = BlockSampler::from_catalog(&placed.catalog, 40.0);
        let mut factory = RequestFactory::new(
            sampler,
            ArrivalProcess::OpenPoisson {
                mean_interarrival: Micros::from_secs(300),
            },
            7,
        );
        let mut sched = make_scheduler(AlgorithmId::paper_recommended());
        run_with_writeback(
            &placed.catalog,
            &timing,
            sched.as_mut(),
            &mut factory,
            &SimConfig::quick(),
            &WriteBackConfig {
                write_mean_interarrival: Micros::from_secs(200),
                flush_batch: 8,
                piggyback_min: 4,
                policy,
            },
            42,
        )
        .expect("write-back run is valid")
    };
    let idle = run(FlushPolicy::IdleOnly);
    let piggy = run(FlushPolicy::Piggyback);
    assert!(idle.deltas_flushed > 50);
    assert!(piggy.deltas_flushed > 50);
    assert!(
        piggy.mean_delta_age_s < idle.mean_delta_age_s,
        "piggyback {:.0}s vs idle {:.0}s",
        piggy.mean_delta_age_s,
        idle.mean_delta_age_s
    );
}

#[test]
fn experiment_result_reports_confidence_intervals() {
    let res = run_experiment(&ExperimentConfig::paper_baseline()).expect("feasible");
    // Default scale runs 3 seeds, so a CI exists and is modest relative
    // to the mean (the simulator is long-run stable).
    assert_eq!(res.per_seed.len(), 3);
    assert!(res.throughput_ci95 > 0.0);
    assert!(
        res.throughput_ci95 < 0.1 * res.report.throughput_kb_per_s,
        "CI {:.2} too wide for mean {:.1}",
        res.throughput_ci95,
        res.report.throughput_kb_per_s
    );
    assert!(res.delay_ci95 >= 0.0);
}

#[test]
fn faulty_experiments_are_reproducible_from_one_seed() {
    // The entire run — workload, fault schedule, repairs, failovers — is
    // a pure function of the top-level seed: every stochastic component
    // draws from its own substream of it. Two identical specs must agree
    // bit for bit, across both engines.
    use tapesim::model::Micros;
    use tapesim::sim::{run_seeds, RunSpec};

    let g = JukeboxGeometry::PAPER_DEFAULT;
    let placed = tapesim::layout::build_placement(
        g,
        BlockSize::PAPER_DEFAULT,
        tapesim::layout::PlacementConfig::paper_full_replication(g),
    )
    .expect("feasible");
    let timing = TimingModel::paper_default();
    let faults = FaultConfig {
        media_error_per_read: 0.02,
        media_retries: 1,
        load_failure_p: 0.01,
        load_retries: 2,
        tape_mtbf: Some(Micros::from_secs(200_000)),
        tape_mttr: Some(Micros::from_secs(15_000)),
        drive_mtbf: Some(Micros::from_secs(300_000)),
        drive_mttr: Micros::from_secs(5_000),
        copy_heal_mttr: None,
    };
    for drives in [1u16, 2] {
        let spec = RunSpec {
            catalog: &placed.catalog,
            timing: &timing,
            algorithm: AlgorithmId::paper_recommended(),
            process: ArrivalProcess::Closed { queue_length: 60 },
            rh_percent: 40.0,
            cluster_run_p: 0.0,
            drives,
            config: SimConfig::quick(),
            faults,
        };
        let seeds = [3u64, 17];
        let (mean_a, per_a) = run_seeds(&spec, &seeds).expect("faulty spec is valid");
        let (mean_b, per_b) = run_seeds(&spec, &seeds).expect("faulty spec is valid");
        assert_eq!(
            per_a, per_b,
            "per-seed reports diverged with {drives} drives"
        );
        assert_eq!(mean_a, mean_b);
        // The fault model actually did something in these runs.
        assert!(
            mean_a.degraded_frac > 0.0 || mean_a.media_errors > 0,
            "fault config was inert with {drives} drives"
        );
        // Different seeds still produce different runs.
        assert_ne!(per_a[0], per_a[1], "seeds collapsed with {drives} drives");
    }
}
