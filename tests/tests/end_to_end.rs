//! End-to-end integration tests: full simulations through the public
//! `tapesim` API, checking determinism and the paper's qualitative
//! orderings at short horizons.

use tapesim::prelude::*;
use tapesim::Scale;

fn quick(cfg: ExperimentConfig) -> MetricsReport {
    run_experiment(&ExperimentConfig {
        scale: Scale::Quick,
        ..cfg
    })
    .expect("config is feasible")
    .report
}

#[test]
fn experiment_is_deterministic_end_to_end() {
    let cfg = ExperimentConfig::paper_baseline();
    let a = quick(cfg.clone());
    let b = quick(cfg);
    assert_eq!(a, b);
}

#[test]
fn every_algorithm_completes_requests() {
    for alg in AlgorithmId::all() {
        let r = quick(ExperimentConfig {
            algorithm: alg,
            process: ArrivalProcess::Closed { queue_length: 40 },
            ..ExperimentConfig::paper_baseline()
        });
        assert!(
            r.completed > 20,
            "{} completed only {}",
            alg.name(),
            r.completed
        );
        assert!(r.throughput_kb_per_s > 0.0, "{}", alg.name());
        assert!(r.mean_delay_s > 0.0, "{}", alg.name());
    }
}

#[test]
fn every_algorithm_works_with_full_replication() {
    for alg in AlgorithmId::all() {
        let r = quick(ExperimentConfig {
            algorithm: alg,
            process: ArrivalProcess::Closed { queue_length: 40 },
            ..ExperimentConfig::paper_full_replication()
        });
        assert!(
            r.completed > 20,
            "{} completed only {}",
            alg.name(),
            r.completed
        );
    }
}

#[test]
fn fifo_is_the_worst_reasonable_algorithm() {
    let fifo = quick(ExperimentConfig {
        algorithm: AlgorithmId::Fifo,
        ..ExperimentConfig::paper_baseline()
    });
    for alg in [
        AlgorithmId::Static(TapeSelectPolicy::MaxRequests),
        AlgorithmId::Dynamic(TapeSelectPolicy::MaxBandwidth),
        AlgorithmId::paper_recommended(),
    ] {
        let r = quick(ExperimentConfig {
            algorithm: alg,
            ..ExperimentConfig::paper_baseline()
        });
        assert!(
            r.throughput_kb_per_s > fifo.throughput_kb_per_s * 1.5,
            "{} ({:.1}) should dominate FIFO ({:.1})",
            alg.name(),
            r.throughput_kb_per_s,
            fifo.throughput_kb_per_s
        );
    }
}

#[test]
fn dynamic_beats_static_at_heavy_load() {
    // Figure 4: at heavy workloads the dynamic algorithms are
    // significantly better than their static counterparts.
    let heavy = ArrivalProcess::Closed { queue_length: 140 };
    let stat = quick(ExperimentConfig {
        algorithm: AlgorithmId::Static(TapeSelectPolicy::MaxBandwidth),
        process: heavy,
        ..ExperimentConfig::paper_baseline()
    });
    let dynamic = quick(ExperimentConfig {
        algorithm: AlgorithmId::Dynamic(TapeSelectPolicy::MaxBandwidth),
        process: heavy,
        ..ExperimentConfig::paper_baseline()
    });
    assert!(
        dynamic.throughput_kb_per_s > stat.throughput_kb_per_s,
        "dynamic {:.1} vs static {:.1}",
        dynamic.throughput_kb_per_s,
        stat.throughput_kb_per_s
    );
}

#[test]
fn full_replication_improves_throughput_and_delay() {
    // Figure 6's headline at moderate skew.
    let norepl = quick(ExperimentConfig {
        layout: LayoutKind::Vertical,
        sp: 1.0,
        ..ExperimentConfig::paper_baseline()
    });
    let repl = quick(ExperimentConfig::paper_full_replication());
    assert!(
        repl.throughput_kb_per_s > norepl.throughput_kb_per_s * 1.05,
        "replication {:.1} vs none {:.1}",
        repl.throughput_kb_per_s,
        norepl.throughput_kb_per_s
    );
    assert!(repl.mean_delay_s < norepl.mean_delay_s);
    assert!(repl.tape_switches < norepl.tape_switches);
}

#[test]
fn transfer_size_throughput_collapses_below_16mb() {
    // Figure 3: halving the block from 16 MB to 8 MB costs close to 2x.
    let at = |mb: u32| {
        quick(ExperimentConfig {
            block: BlockSize::from_mb(mb),
            process: ArrivalProcess::Closed { queue_length: 100 },
            ..ExperimentConfig::paper_baseline()
        })
        .throughput_kb_per_s
    };
    let t16 = at(16);
    let t8 = at(8);
    let t1 = at(1);
    assert!(t16 / t8 > 1.5, "16MB {t16:.1} vs 8MB {t8:.1}");
    assert!(t16 / t1 > 6.0, "16MB {t16:.1} vs 1MB {t1:.1}");
}

#[test]
fn hot_at_beginning_beats_end_without_replication() {
    // Figure 5.
    let sp0 = quick(ExperimentConfig {
        sp: 0.0,
        ..ExperimentConfig::paper_baseline()
    });
    let sp1 = quick(ExperimentConfig {
        sp: 1.0,
        ..ExperimentConfig::paper_baseline()
    });
    assert!(
        sp0.throughput_kb_per_s > sp1.throughput_kb_per_s,
        "SP-0 {:.1} vs SP-1 {:.1}",
        sp0.throughput_kb_per_s,
        sp1.throughput_kb_per_s
    );
}

#[test]
fn open_queue_throughput_tracks_arrival_rate_when_underloaded() {
    // In an underloaded open system, throughput equals the offered load,
    // regardless of the scheduler.
    let r = quick(ExperimentConfig {
        ..ExperimentConfig::paper_baseline().with_open(500)
    });
    assert!(!r.saturated);
    // Offered: one 16 MB request per 500 s = 32.8 KB/s.
    let offered = 16.0 * 1024.0 / 500.0;
    assert!(
        (r.throughput_kb_per_s - offered).abs() / offered < 0.25,
        "throughput {:.1} vs offered {:.1}",
        r.throughput_kb_per_s,
        offered
    );
}

#[test]
fn five_tape_jukebox_reproduces_replication_benefit() {
    // Section 4.8's sensitivity check: a 5-tape jukebox behaves alike.
    let g = JukeboxGeometry::FIVE_TAPE;
    let norepl = quick(ExperimentConfig {
        geometry: g,
        layout: LayoutKind::Vertical,
        sp: 1.0,
        ..ExperimentConfig::paper_baseline()
    });
    let repl = quick(ExperimentConfig {
        geometry: g,
        layout: LayoutKind::Vertical,
        replicas: 4,
        sp: 1.0,
        ..ExperimentConfig::paper_baseline()
    });
    assert!(
        repl.throughput_kb_per_s > norepl.throughput_kb_per_s,
        "5-tape replication {:.1} vs none {:.1}",
        repl.throughput_kb_per_s,
        norepl.throughput_kb_per_s
    );
}

#[test]
fn faster_drive_improves_absolute_numbers_but_not_rankings() {
    // Section 2.1: changing the drive model improves performance without
    // altering the algorithmic conclusions.
    let mk = |timing: TimingModel, alg: AlgorithmId| {
        quick(ExperimentConfig {
            timing,
            algorithm: alg,
            ..ExperimentConfig::paper_baseline()
        })
    };
    let dyn_bw = AlgorithmId::Dynamic(TapeSelectPolicy::MaxBandwidth);
    let slow_fifo = mk(TimingModel::paper_default(), AlgorithmId::Fifo);
    let slow_dyn = mk(TimingModel::paper_default(), dyn_bw);
    let fast_fifo = mk(TimingModel::hypothetical_fast(), AlgorithmId::Fifo);
    let fast_dyn = mk(TimingModel::hypothetical_fast(), dyn_bw);
    // Absolute numbers improve across the board...
    assert!(fast_fifo.throughput_kb_per_s > slow_fifo.throughput_kb_per_s);
    assert!(fast_dyn.throughput_kb_per_s > slow_dyn.throughput_kb_per_s);
    // ...and the ranking is preserved.
    assert!(fast_dyn.throughput_kb_per_s > fast_fifo.throughput_kb_per_s);
    assert!(slow_dyn.throughput_kb_per_s > slow_fifo.throughput_kb_per_s);
}
