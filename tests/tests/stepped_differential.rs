//! Stepped ≡ batch differential suite.
//!
//! The batch entry points (`run_simulation*`, `run_multi_drive*`,
//! `run_with_writeback*`) are thin drivers over the poll-driven stepped
//! cores (`SteppedEngine`, `SteppedMultiDrive`, `SteppedWriteBack`):
//! construct, step to completion, finish. These tests prove the two
//! surfaces are indistinguishable — **byte-identical JSONL traces** and
//! exactly equal metrics reports — across schedulers, drive counts, and
//! fault presets. Any divergence between a step boundary and the old
//! monolithic loop (a reordered trace record, a clock off by a
//! microsecond, a metric counted on the wrong side of a step) shows up
//! as a byte diff here.

use tapesim::layout::{build_placement, PlacementConfig};
use tapesim::model::{BlockSize, FaultConfig, JukeboxGeometry, Micros, TimingModel};
use tapesim::sched::{make_scheduler, AlgorithmId, EnvelopePolicy, TapeSelectPolicy};
use tapesim::sim::{
    run_multi_drive_traced, run_simulation_traced, run_with_writeback_traced, CheckpointOpts,
    FlushPolicy, JsonlSink, MetricsReport, SimConfig, StepOutcome, SteppedEngine,
    SteppedMultiDrive, SteppedWriteBack, WriteBackConfig,
};
use tapesim::workload::{ArrivalProcess, BlockSampler, RequestFactory};

const SEED: u64 = 0x1CDE_1999;
const FAULT_SEED: u64 = 11;

/// A light-but-complete fault preset: every fault class is active,
/// including transient copy losses that heal mid-run.
fn light_faults() -> FaultConfig {
    FaultConfig {
        media_error_per_read: 0.05,
        media_retries: 0,
        load_failure_p: 0.02,
        load_retries: 1,
        tape_mtbf: Some(Micros::from_secs(200_000)),
        tape_mttr: Some(Micros::from_secs(15_000)),
        drive_mtbf: Some(Micros::from_secs(250_000)),
        drive_mttr: Micros::from_secs(4_000),
        copy_heal_mttr: Some(Micros::from_secs(8_000)),
    }
}

fn factory_for(catalog: &tapesim::layout::Catalog, process: ArrivalProcess) -> RequestFactory {
    RequestFactory::new(BlockSampler::from_catalog(catalog, 40.0), process, SEED)
}

/// Batch single-drive run: report plus raw JSONL trace bytes.
fn batch_single(
    catalog: &tapesim::layout::Catalog,
    timing: &TimingModel,
    algorithm: AlgorithmId,
    faults: &FaultConfig,
    process: ArrivalProcess,
) -> (MetricsReport, Vec<u8>) {
    let mut factory = factory_for(catalog, process);
    let mut sched = make_scheduler(algorithm);
    let mut sink = JsonlSink::new(Vec::new());
    let report = run_simulation_traced(
        catalog,
        timing,
        sched.as_mut(),
        &mut factory,
        &SimConfig::quick(),
        faults,
        FAULT_SEED,
        &mut sink,
    )
    .unwrap();
    (report, sink.finish().unwrap())
}

/// The same run through the stepped core, one `step()` at a time.
fn stepped_single(
    catalog: &tapesim::layout::Catalog,
    timing: &TimingModel,
    algorithm: AlgorithmId,
    faults: &FaultConfig,
    process: ArrivalProcess,
) -> (MetricsReport, Vec<u8>, u64) {
    let mut factory = factory_for(catalog, process);
    let mut sched = make_scheduler(algorithm);
    let mut sink = JsonlSink::new(Vec::new());
    let cfg = SimConfig::quick();
    let mut steps = 0u64;
    let report = {
        let mut engine = SteppedEngine::new(
            catalog,
            timing,
            sched.as_mut(),
            &mut factory,
            &cfg,
            faults,
            FAULT_SEED,
            &mut sink,
            &CheckpointOpts::none(),
        )
        .unwrap();
        while engine.step().unwrap() == StepOutcome::Running {
            steps += 1;
            // Mid-run inspection must be free: the engine exposes its
            // state without perturbing the schedule.
            let _ = (engine.now(), engine.pending_len(), engine.mounted());
        }
        engine.finish()
    };
    (report, sink.finish().unwrap(), steps)
}

fn batch_multi(
    catalog: &tapesim::layout::Catalog,
    timing: &TimingModel,
    algorithm: AlgorithmId,
    drives: u16,
    faults: &FaultConfig,
    process: ArrivalProcess,
) -> (MetricsReport, Vec<u8>) {
    let mut factory = factory_for(catalog, process);
    let mut sched = make_scheduler(algorithm);
    let mut sink = JsonlSink::new(Vec::new());
    let report = run_multi_drive_traced(
        catalog,
        timing,
        sched.as_mut(),
        &mut factory,
        &SimConfig::quick(),
        drives,
        faults,
        FAULT_SEED,
        &mut sink,
    )
    .unwrap();
    (report, sink.finish().unwrap())
}

fn stepped_multi(
    catalog: &tapesim::layout::Catalog,
    timing: &TimingModel,
    algorithm: AlgorithmId,
    drives: u16,
    faults: &FaultConfig,
    process: ArrivalProcess,
) -> (MetricsReport, Vec<u8>, u64) {
    let mut factory = factory_for(catalog, process);
    let mut sched = make_scheduler(algorithm);
    let mut sink = JsonlSink::new(Vec::new());
    let cfg = SimConfig::quick();
    let mut steps = 0u64;
    let report = {
        let mut engine = SteppedMultiDrive::new(
            catalog,
            timing,
            sched.as_mut(),
            &mut factory,
            &cfg,
            drives,
            faults,
            FAULT_SEED,
            &mut sink,
            &CheckpointOpts::none(),
        )
        .unwrap();
        while engine.step().unwrap() == StepOutcome::Running {
            steps += 1;
            let _ = (engine.now(), engine.waiting(), engine.drives_online());
        }
        engine.finish()
    };
    (report, sink.finish().unwrap(), steps)
}

/// Schedulers × {1, 4} drives × {no faults, all fault classes}: the
/// stepped cores and the batch drivers must produce byte-identical
/// JSONL traces and exactly equal reports.
#[test]
fn stepped_equals_batch_across_schedulers_drives_and_faults() {
    let placed = build_placement(
        JukeboxGeometry::PAPER_DEFAULT,
        BlockSize::PAPER_DEFAULT,
        PlacementConfig::paper_baseline(),
    )
    .unwrap();
    let timing = TimingModel::paper_default();
    let process = ArrivalProcess::Closed { queue_length: 40 };
    let algorithms = [
        AlgorithmId::Fifo,
        AlgorithmId::Dynamic(TapeSelectPolicy::MaxBandwidth),
        AlgorithmId::Envelope(EnvelopePolicy::MaxBandwidth),
    ];
    for algorithm in algorithms {
        for faults in [FaultConfig::NONE, light_faults()] {
            let tag = format!(
                "{algorithm:?} faults={}",
                if faults.is_inert() { "none" } else { "light" }
            );

            // 1 drive: SteppedEngine vs the single-drive batch driver.
            let (b_report, b_trace) =
                batch_single(&placed.catalog, &timing, algorithm, &faults, process);
            let (s_report, s_trace, steps) =
                stepped_single(&placed.catalog, &timing, algorithm, &faults, process);
            assert!(b_report.completed > 0, "{tag}: single run did no work");
            assert!(steps > 1, "{tag}: single run was not actually stepped");
            assert_eq!(s_report, b_report, "{tag}: single-drive reports diverge");
            assert_eq!(s_trace, b_trace, "{tag}: single-drive JSONL traces diverge");

            // 4 drives: SteppedMultiDrive vs the multi-drive batch driver.
            let (b_report, b_trace) =
                batch_multi(&placed.catalog, &timing, algorithm, 4, &faults, process);
            let (s_report, s_trace, steps) =
                stepped_multi(&placed.catalog, &timing, algorithm, 4, &faults, process);
            assert!(b_report.completed > 0, "{tag}: multi run did no work");
            assert!(steps > 1, "{tag}: multi run was not actually stepped");
            assert_eq!(s_report, b_report, "{tag}: 4-drive reports diverge");
            assert_eq!(s_trace, b_trace, "{tag}: 4-drive JSONL traces diverge");
        }
    }
}

/// Open-queuing arrivals exercise the idle/wake path (the trickiest part
/// of the step boundary: an idle step must advance exactly to the next
/// event instant, not split or merge idle records).
#[test]
fn stepped_equals_batch_under_open_arrivals() {
    let placed = build_placement(
        JukeboxGeometry::PAPER_DEFAULT,
        BlockSize::PAPER_DEFAULT,
        PlacementConfig {
            replicas: 1,
            ..PlacementConfig::paper_baseline()
        },
    )
    .unwrap();
    let timing = TimingModel::paper_default();
    let process = ArrivalProcess::OpenPoisson {
        mean_interarrival: Micros::from_secs(300),
    };
    let algorithm = AlgorithmId::paper_recommended();
    for (drives, faults) in [(1u16, FaultConfig::NONE), (4, light_faults())] {
        let (b_report, b_trace) = batch_multi(
            &placed.catalog,
            &timing,
            algorithm,
            drives,
            &faults,
            process,
        );
        let (s_report, s_trace, _) = stepped_multi(
            &placed.catalog,
            &timing,
            algorithm,
            drives,
            &faults,
            process,
        );
        assert!(b_report.completed > 0, "{drives} drives: no completions");
        assert_eq!(s_report, b_report, "{drives} drives: open reports diverge");
        assert_eq!(s_trace, b_trace, "{drives} drives: open traces diverge");
    }
    // And the single-drive engine's own idle path.
    let (b_report, b_trace) = batch_single(
        &placed.catalog,
        &timing,
        algorithm,
        &FaultConfig::NONE,
        process,
    );
    let (s_report, s_trace, _) = stepped_single(
        &placed.catalog,
        &timing,
        algorithm,
        &FaultConfig::NONE,
        process,
    );
    assert_eq!(s_report, b_report, "single open reports diverge");
    assert_eq!(s_trace, b_trace, "single open traces diverge");
}

/// The write-back engine's stepped core against its batch driver,
/// including destage (`DeltaFlush`) trace records.
#[test]
fn stepped_writeback_trace_is_byte_identical() {
    let placed = build_placement(
        JukeboxGeometry::PAPER_DEFAULT,
        BlockSize::PAPER_DEFAULT,
        PlacementConfig::paper_baseline(),
    )
    .unwrap();
    let timing = TimingModel::paper_default();
    let process = ArrivalProcess::OpenPoisson {
        mean_interarrival: Micros::from_secs(300),
    };
    let wb = WriteBackConfig {
        write_mean_interarrival: Micros::from_secs(150),
        flush_batch: 5,
        piggyback_min: 2,
        policy: FlushPolicy::Piggyback,
    };
    let batch = {
        let mut factory = factory_for(&placed.catalog, process);
        let mut sched = make_scheduler(AlgorithmId::paper_recommended());
        let mut sink = JsonlSink::new(Vec::new());
        let report = run_with_writeback_traced(
            &placed.catalog,
            &timing,
            sched.as_mut(),
            &mut factory,
            &SimConfig::quick(),
            &wb,
            99,
            &mut sink,
        )
        .unwrap();
        (report, sink.finish().unwrap())
    };
    let stepped = {
        let mut factory = factory_for(&placed.catalog, process);
        let mut sched = make_scheduler(AlgorithmId::paper_recommended());
        let mut sink = JsonlSink::new(Vec::new());
        let report = {
            let mut engine = SteppedWriteBack::new(
                &placed.catalog,
                &timing,
                sched.as_mut(),
                &mut factory,
                &SimConfig::quick(),
                &wb,
                99,
                &mut sink,
                &CheckpointOpts::none(),
            )
            .unwrap();
            while engine.step().unwrap() == StepOutcome::Running {
                let _ = (engine.now(), engine.buffered_deltas());
            }
            engine.finish()
        };
        (report, sink.finish().unwrap())
    };
    assert!(
        batch.0.deltas_flushed > 0,
        "write-back run destaged nothing"
    );
    assert_eq!(stepped.0, batch.0, "write-back reports diverge");
    assert_eq!(stepped.1, batch.1, "write-back JSONL traces diverge");
}
