//! Stepped ≡ batch differential suite.
//!
//! The batch entry points (`run_simulation*`, `run_multi_drive*`,
//! `run_with_writeback*`) are thin drivers over the poll-driven stepped
//! cores (`SteppedEngine`, `SteppedMultiDrive`, `SteppedWriteBack`):
//! construct, step to completion, finish. These tests prove the two
//! surfaces are indistinguishable — **byte-identical JSONL traces** and
//! exactly equal metrics reports — across schedulers, drive counts, and
//! fault presets. Any divergence between a step boundary and the old
//! monolithic loop (a reordered trace record, a clock off by a
//! microsecond, a metric counted on the wrong side of a step) shows up
//! as a byte diff here.

use tapesim::layout::{
    build_fleet_placement, build_placement, BlockId, LayoutKind, PlacementConfig, PlacementScheme,
    ReplicaScope,
};
use tapesim::model::{
    BlockSize, FaultConfig, InterLibraryModel, JukeboxGeometry, Micros, RobotModel, SimTime,
    TimingModel, Topology,
};
use tapesim::sched::{make_scheduler, AlgorithmId, EnvelopePolicy, TapeSelectPolicy};
use tapesim::sim::{
    run_multi_drive_parallel_traced, run_multi_drive_traced, run_simulation_traced,
    run_with_writeback_traced, AdmissionPolicy, CheckpointOpts, FlushPolicy, JsonlSink,
    JukeboxService, MetricsReport, ServiceConfig, ServiceStats, SimConfig, StepOutcome,
    SteppedEngine, SteppedMultiDrive, SteppedWriteBack, TicketState, WriteBackConfig,
};
use tapesim::workload::{ArrivalProcess, BlockSampler, RequestFactory};

/// Worker counts exercised by the thread-invariance suite: serial,
/// minimal parallelism, and more workers than the configs have drives.
/// CI overrides the list per job leg via `TAPESIM_TEST_WORKERS` (a
/// comma-separated list) so the required gate runs the suite at two
/// distinct thread-count settings.
fn worker_counts() -> Vec<usize> {
    match std::env::var("TAPESIM_TEST_WORKERS") {
        Ok(raw) => raw
            .split(',')
            .map(|t| {
                t.trim()
                    .parse()
                    .expect("TAPESIM_TEST_WORKERS must be a comma-separated list of counts")
            })
            .collect(),
        Err(_) => vec![1, 2, 8],
    }
}

const SEED: u64 = 0x1CDE_1999;
const FAULT_SEED: u64 = 11;

/// A light-but-complete fault preset: every fault class is active,
/// including transient copy losses that heal mid-run.
fn light_faults() -> FaultConfig {
    FaultConfig {
        media_error_per_read: 0.05,
        media_retries: 0,
        load_failure_p: 0.02,
        load_retries: 1,
        tape_mtbf: Some(Micros::from_secs(200_000)),
        tape_mttr: Some(Micros::from_secs(15_000)),
        drive_mtbf: Some(Micros::from_secs(250_000)),
        drive_mttr: Micros::from_secs(4_000),
        copy_heal_mttr: Some(Micros::from_secs(8_000)),
    }
}

fn factory_for(catalog: &tapesim::layout::Catalog, process: ArrivalProcess) -> RequestFactory {
    RequestFactory::new(BlockSampler::from_catalog(catalog, 40.0), process, SEED)
}

/// Batch single-drive run: report plus raw JSONL trace bytes.
fn batch_single(
    catalog: &tapesim::layout::Catalog,
    timing: &TimingModel,
    algorithm: AlgorithmId,
    faults: &FaultConfig,
    process: ArrivalProcess,
) -> (MetricsReport, Vec<u8>) {
    let mut factory = factory_for(catalog, process);
    let mut sched = make_scheduler(algorithm);
    let mut sink = JsonlSink::new(Vec::new());
    let report = run_simulation_traced(
        catalog,
        timing,
        sched.as_mut(),
        &mut factory,
        &SimConfig::quick(),
        faults,
        FAULT_SEED,
        &mut sink,
    )
    .unwrap();
    (report, sink.finish().unwrap())
}

/// The same run through the stepped core, one `step()` at a time.
fn stepped_single(
    catalog: &tapesim::layout::Catalog,
    timing: &TimingModel,
    algorithm: AlgorithmId,
    faults: &FaultConfig,
    process: ArrivalProcess,
) -> (MetricsReport, Vec<u8>, u64) {
    let mut factory = factory_for(catalog, process);
    let mut sched = make_scheduler(algorithm);
    let mut sink = JsonlSink::new(Vec::new());
    let cfg = SimConfig::quick();
    let mut steps = 0u64;
    let report = {
        let mut engine = SteppedEngine::new(
            catalog,
            timing,
            sched.as_mut(),
            &mut factory,
            &cfg,
            faults,
            FAULT_SEED,
            &mut sink,
            &CheckpointOpts::none(),
        )
        .unwrap();
        while engine.step().unwrap() == StepOutcome::Running {
            steps += 1;
            // Mid-run inspection must be free: the engine exposes its
            // state without perturbing the schedule.
            let _ = (engine.now(), engine.pending_len(), engine.mounted());
        }
        engine.finish()
    };
    (report, sink.finish().unwrap(), steps)
}

fn batch_multi(
    catalog: &tapesim::layout::Catalog,
    timing: &TimingModel,
    algorithm: AlgorithmId,
    drives: u16,
    faults: &FaultConfig,
    process: ArrivalProcess,
) -> (MetricsReport, Vec<u8>) {
    let mut factory = factory_for(catalog, process);
    let mut sched = make_scheduler(algorithm);
    let mut sink = JsonlSink::new(Vec::new());
    let report = run_multi_drive_traced(
        catalog,
        timing,
        sched.as_mut(),
        &mut factory,
        &SimConfig::quick(),
        drives,
        faults,
        FAULT_SEED,
        &mut sink,
    )
    .unwrap();
    (report, sink.finish().unwrap())
}

fn stepped_multi(
    catalog: &tapesim::layout::Catalog,
    timing: &TimingModel,
    algorithm: AlgorithmId,
    drives: u16,
    faults: &FaultConfig,
    process: ArrivalProcess,
) -> (MetricsReport, Vec<u8>, u64) {
    let mut factory = factory_for(catalog, process);
    let mut sched = make_scheduler(algorithm);
    let mut sink = JsonlSink::new(Vec::new());
    let cfg = SimConfig::quick();
    let mut steps = 0u64;
    let report = {
        let mut engine = SteppedMultiDrive::new(
            catalog,
            timing,
            sched.as_mut(),
            &mut factory,
            &cfg,
            drives,
            faults,
            FAULT_SEED,
            &mut sink,
            &CheckpointOpts::none(),
        )
        .unwrap();
        while engine.step().unwrap() == StepOutcome::Running {
            steps += 1;
            let _ = (engine.now(), engine.waiting(), engine.drives_online());
        }
        engine.finish()
    };
    (report, sink.finish().unwrap(), steps)
}

/// Schedulers × {1, 4} drives × {no faults, all fault classes}: the
/// stepped cores and the batch drivers must produce byte-identical
/// JSONL traces and exactly equal reports.
#[test]
fn stepped_equals_batch_across_schedulers_drives_and_faults() {
    let placed = build_placement(
        JukeboxGeometry::PAPER_DEFAULT,
        BlockSize::PAPER_DEFAULT,
        PlacementConfig::paper_baseline(),
    )
    .unwrap();
    let timing = TimingModel::paper_default();
    let process = ArrivalProcess::Closed { queue_length: 40 };
    let algorithms = [
        AlgorithmId::Fifo,
        AlgorithmId::Dynamic(TapeSelectPolicy::MaxBandwidth),
        AlgorithmId::Envelope(EnvelopePolicy::MaxBandwidth),
    ];
    for algorithm in algorithms {
        for faults in [FaultConfig::NONE, light_faults()] {
            let tag = format!(
                "{algorithm:?} faults={}",
                if faults.is_inert() { "none" } else { "light" }
            );

            // 1 drive: SteppedEngine vs the single-drive batch driver.
            let (b_report, b_trace) =
                batch_single(&placed.catalog, &timing, algorithm, &faults, process);
            let (s_report, s_trace, steps) =
                stepped_single(&placed.catalog, &timing, algorithm, &faults, process);
            assert!(b_report.completed > 0, "{tag}: single run did no work");
            assert!(steps > 1, "{tag}: single run was not actually stepped");
            assert_eq!(s_report, b_report, "{tag}: single-drive reports diverge");
            assert_eq!(s_trace, b_trace, "{tag}: single-drive JSONL traces diverge");

            // 4 drives: SteppedMultiDrive vs the multi-drive batch driver.
            let (b_report, b_trace) =
                batch_multi(&placed.catalog, &timing, algorithm, 4, &faults, process);
            let (s_report, s_trace, steps) =
                stepped_multi(&placed.catalog, &timing, algorithm, 4, &faults, process);
            assert!(b_report.completed > 0, "{tag}: multi run did no work");
            assert!(steps > 1, "{tag}: multi run was not actually stepped");
            assert_eq!(s_report, b_report, "{tag}: 4-drive reports diverge");
            assert_eq!(s_trace, b_trace, "{tag}: 4-drive JSONL traces diverge");
        }
    }
}

/// Open-queuing arrivals exercise the idle/wake path (the trickiest part
/// of the step boundary: an idle step must advance exactly to the next
/// event instant, not split or merge idle records).
#[test]
fn stepped_equals_batch_under_open_arrivals() {
    let placed = build_placement(
        JukeboxGeometry::PAPER_DEFAULT,
        BlockSize::PAPER_DEFAULT,
        PlacementConfig {
            scheme: PlacementScheme::Replication { nr: 1 },
            ..PlacementConfig::paper_baseline()
        },
    )
    .unwrap();
    let timing = TimingModel::paper_default();
    let process = ArrivalProcess::OpenPoisson {
        mean_interarrival: Micros::from_secs(300),
    };
    let algorithm = AlgorithmId::paper_recommended();
    for (drives, faults) in [(1u16, FaultConfig::NONE), (4, light_faults())] {
        let (b_report, b_trace) = batch_multi(
            &placed.catalog,
            &timing,
            algorithm,
            drives,
            &faults,
            process,
        );
        let (s_report, s_trace, _) = stepped_multi(
            &placed.catalog,
            &timing,
            algorithm,
            drives,
            &faults,
            process,
        );
        assert!(b_report.completed > 0, "{drives} drives: no completions");
        assert_eq!(s_report, b_report, "{drives} drives: open reports diverge");
        assert_eq!(s_trace, b_trace, "{drives} drives: open traces diverge");
    }
    // And the single-drive engine's own idle path.
    let (b_report, b_trace) = batch_single(
        &placed.catalog,
        &timing,
        algorithm,
        &FaultConfig::NONE,
        process,
    );
    let (s_report, s_trace, _) = stepped_single(
        &placed.catalog,
        &timing,
        algorithm,
        &FaultConfig::NONE,
        process,
    );
    assert_eq!(s_report, b_report, "single open reports diverge");
    assert_eq!(s_trace, b_trace, "single open traces diverge");
}

/// The write-back engine's stepped core against its batch driver,
/// including destage (`DeltaFlush`) trace records.
#[test]
fn stepped_writeback_trace_is_byte_identical() {
    let placed = build_placement(
        JukeboxGeometry::PAPER_DEFAULT,
        BlockSize::PAPER_DEFAULT,
        PlacementConfig::paper_baseline(),
    )
    .unwrap();
    let timing = TimingModel::paper_default();
    let process = ArrivalProcess::OpenPoisson {
        mean_interarrival: Micros::from_secs(300),
    };
    let wb = WriteBackConfig {
        write_mean_interarrival: Micros::from_secs(150),
        flush_batch: 5,
        piggyback_min: 2,
        policy: FlushPolicy::Piggyback,
    };
    let batch = {
        let mut factory = factory_for(&placed.catalog, process);
        let mut sched = make_scheduler(AlgorithmId::paper_recommended());
        let mut sink = JsonlSink::new(Vec::new());
        let report = run_with_writeback_traced(
            &placed.catalog,
            &timing,
            sched.as_mut(),
            &mut factory,
            &SimConfig::quick(),
            &wb,
            99,
            &mut sink,
        )
        .unwrap();
        (report, sink.finish().unwrap())
    };
    let stepped = {
        let mut factory = factory_for(&placed.catalog, process);
        let mut sched = make_scheduler(AlgorithmId::paper_recommended());
        let mut sink = JsonlSink::new(Vec::new());
        let report = {
            let mut engine = SteppedWriteBack::new(
                &placed.catalog,
                &timing,
                sched.as_mut(),
                &mut factory,
                &SimConfig::quick(),
                &wb,
                99,
                &mut sink,
                &CheckpointOpts::none(),
            )
            .unwrap();
            while engine.step().unwrap() == StepOutcome::Running {
                let _ = (engine.now(), engine.buffered_deltas());
            }
            engine.finish()
        };
        (report, sink.finish().unwrap())
    };
    assert!(
        batch.0.deltas_flushed > 0,
        "write-back run destaged nothing"
    );
    assert_eq!(stepped.0, batch.0, "write-back reports diverge");
    assert_eq!(stepped.1, batch.1, "write-back JSONL traces diverge");
}

/// A multi-drive run at `workers` threads: report + raw JSONL bytes.
/// `workers == 0` means the plain serial batch driver.
fn parallel_multi(
    catalog: &tapesim::layout::Catalog,
    timing: &TimingModel,
    algorithm: AlgorithmId,
    drives: u16,
    faults: &FaultConfig,
    process: ArrivalProcess,
    workers: usize,
) -> (MetricsReport, Vec<u8>) {
    let mut factory = factory_for(catalog, process);
    let mut sched = make_scheduler(algorithm);
    let mut sink = JsonlSink::new(Vec::new());
    let cfg = SimConfig::quick();
    let report = if workers == 0 {
        run_multi_drive_traced(
            catalog,
            timing,
            sched.as_mut(),
            &mut factory,
            &cfg,
            drives,
            faults,
            FAULT_SEED,
            &mut sink,
        )
        .unwrap()
    } else {
        run_multi_drive_parallel_traced(
            catalog,
            timing,
            sched.as_mut(),
            &mut factory,
            &cfg,
            drives,
            faults,
            FAULT_SEED,
            workers,
            &mut sink,
        )
        .unwrap()
    };
    (report, sink.finish().unwrap())
}

/// Generated workloads (closed and open) across schedulers × fault
/// presets: the worker count must never change a byte. Fault presets and
/// closed regeneration force the conservative serial fallback — the
/// invariance must hold whether or not windows fire.
#[test]
fn worker_count_is_invisible_for_generated_workloads() {
    let placed = build_placement(
        JukeboxGeometry::PAPER_DEFAULT,
        BlockSize::PAPER_DEFAULT,
        PlacementConfig {
            scheme: PlacementScheme::Replication { nr: 1 },
            ..PlacementConfig::paper_baseline()
        },
    )
    .unwrap();
    let timing = TimingModel::paper_default();
    let processes = [
        ArrivalProcess::Closed { queue_length: 40 },
        ArrivalProcess::OpenPoisson {
            mean_interarrival: Micros::from_secs(300),
        },
    ];
    let algorithms = [
        AlgorithmId::Fifo,
        AlgorithmId::Envelope(EnvelopePolicy::MaxBandwidth),
    ];
    for process in processes {
        for algorithm in algorithms {
            for faults in [FaultConfig::NONE, light_faults()] {
                let tag = format!(
                    "{algorithm:?} {process:?} faults={}",
                    if faults.is_inert() { "none" } else { "light" }
                );
                let (ref_report, ref_trace) =
                    parallel_multi(&placed.catalog, &timing, algorithm, 4, &faults, process, 0);
                assert!(ref_report.completed > 0, "{tag}: reference did no work");
                for workers in worker_counts() {
                    let (report, trace) = parallel_multi(
                        &placed.catalog,
                        &timing,
                        algorithm,
                        4,
                        &faults,
                        process,
                        workers,
                    );
                    assert_eq!(
                        report, ref_report,
                        "{tag}: report diverges at {workers} workers"
                    );
                    assert_eq!(
                        trace, ref_trace,
                        "{tag}: trace diverges at {workers} workers"
                    );
                }
            }
        }
    }
}

/// Fleet topologies through the parallel stepper: robot arbitration is
/// keyed on arm clocks, never on event-discovery order, so the worker
/// count must stay invisible — byte-identical traces and exactly equal
/// reports for a two-library fleet with cross-library replicas, with and
/// without faults.
#[test]
fn worker_count_is_invisible_for_fleet_topologies() {
    let topology = Topology::uniform(
        2,
        2,
        1,
        10,
        RobotModel::exb210(),
        InterLibraryModel::DEFAULT,
    )
    .unwrap();
    let placed = build_fleet_placement(
        JukeboxGeometry::new(20, 7 * 1024),
        BlockSize::PAPER_DEFAULT,
        PlacementConfig {
            layout: LayoutKind::Horizontal,
            ph_percent: 10.0,
            scheme: PlacementScheme::Replication { nr: 1 },
            sp: 0.0,
        },
        &topology,
        ReplicaScope::CrossLibrary,
    )
    .unwrap();
    let timing = TimingModel::paper_default();
    let cfg = SimConfig::quick();
    let process = ArrivalProcess::Closed { queue_length: 40 };
    let run = |workers: usize, faults: &FaultConfig| -> (MetricsReport, Vec<u8>) {
        let mut factory = factory_for(&placed.catalog, process);
        let mut sched = make_scheduler(AlgorithmId::paper_recommended());
        let mut sink = JsonlSink::new(Vec::new());
        let report = {
            let mut engine = SteppedMultiDrive::new_with_topology(
                &placed.catalog,
                &timing,
                topology.clone(),
                sched.as_mut(),
                &mut factory,
                &cfg,
                faults,
                FAULT_SEED,
                &mut sink,
                &CheckpointOpts::none(),
            )
            .unwrap();
            engine.set_parallel(workers);
            while engine.step().unwrap() == StepOutcome::Running {}
            engine.finish()
        };
        (report, sink.finish().unwrap())
    };
    for faults in [FaultConfig::NONE, light_faults()] {
        let tag = if faults.is_inert() { "none" } else { "light" };
        let (ref_report, ref_trace) = run(1, &faults);
        assert!(ref_report.completed > 0, "faults={tag}: fleet did no work");
        for workers in worker_counts() {
            let (report, trace) = run(workers, &faults);
            assert_eq!(
                report, ref_report,
                "faults={tag}: fleet report diverges at {workers} workers"
            );
            assert_eq!(
                trace, ref_trace,
                "faults={tag}: fleet trace diverges at {workers} workers"
            );
        }
    }
}

/// An external-arrival burst storm: the submissions are all pre-minted,
/// so drives run long independent sweeps and the parallel windows
/// genuinely fire. Byte-identical traces, exactly equal reports, and
/// identical completion-event streams at every worker count.
#[test]
fn worker_count_is_invisible_for_external_bursts() {
    let placed = build_placement(
        JukeboxGeometry::PAPER_DEFAULT,
        BlockSize::PAPER_DEFAULT,
        PlacementConfig::paper_baseline(),
    )
    .unwrap();
    let timing = TimingModel::paper_default();
    let cfg = SimConfig::quick();
    let blocks = placed.catalog.num_blocks();
    let run = |workers: usize| -> (MetricsReport, Vec<u8>, Vec<tapesim::sim::EngineEvent>, u64) {
        let mut factory = factory_for(&placed.catalog, ArrivalProcess::Closed { queue_length: 1 });
        let mut sched = make_scheduler(AlgorithmId::paper_recommended());
        let mut sink = JsonlSink::new(Vec::new());
        let (report, events, windows) = {
            let mut engine = SteppedMultiDrive::new_external(
                &placed.catalog,
                &timing,
                sched.as_mut(),
                &mut factory,
                &cfg,
                4,
                &FaultConfig::NONE,
                FAULT_SEED,
                &mut sink,
            )
            .unwrap();
            engine.set_parallel(workers);
            // Three bursts of 120 submissions each, spread over distinct
            // microseconds, with service intervals in between.
            let mut x = SEED;
            let mut events = Vec::new();
            for burst in 0u64..3 {
                let t0 = SimTime::ZERO + Micros::from_secs(burst * 20_000);
                for i in 0u64..120 {
                    x = x
                        .wrapping_mul(6364136223846793005)
                        .wrapping_add(1442695040888963407);
                    let block = BlockId(((x >> 33) % u64::from(blocks)) as u32);
                    engine
                        .submit_at(block, t0 + Micros::from_micros(i * 97 + 1))
                        .unwrap();
                }
                engine.step_until(t0 + Micros::from_secs(18_000)).unwrap();
                events.extend(engine.drain_events());
            }
            engine.step_until(engine.horizon()).unwrap();
            events.extend(engine.drain_events());
            let windows = engine.windows_stepped();
            (engine.finish(), events, windows)
        };
        (report, sink.finish().unwrap(), events, windows)
    };
    let (ref_report, ref_trace, ref_events, _) = run(1);
    assert!(ref_report.completed > 100, "burst run did little work");
    for workers in [2usize, 8] {
        let (report, trace, events, windows) = run(workers);
        assert!(
            windows > 0,
            "{workers} workers: parallel windows never fired"
        );
        assert_eq!(report, ref_report, "report diverges at {workers} workers");
        assert_eq!(trace, ref_trace, "trace diverges at {workers} workers");
        assert_eq!(events, ref_events, "events diverge at {workers} workers");
    }
}

/// Service-mode (`JukeboxService`) configs — deadlines, retries, bounded
/// admission, a mid-run drive outage — at every worker count: identical
/// metrics, service stats, per-ticket outcomes, and JSONL trace bytes.
#[test]
fn worker_count_is_invisible_for_service_mode() {
    let placed = build_placement(
        JukeboxGeometry::PAPER_DEFAULT,
        BlockSize::PAPER_DEFAULT,
        PlacementConfig {
            scheme: PlacementScheme::Replication { nr: 1 },
            ..PlacementConfig::paper_baseline()
        },
    )
    .unwrap();
    let timing = TimingModel::paper_default();
    let cfg = SimConfig::quick();
    let blocks = placed.catalog.num_blocks();
    let service_cfg = ServiceConfig {
        queue_capacity: 200,
        admission: AdmissionPolicy::ShedOldest,
        deadline: Some(Micros::from_secs(30_000)),
        max_retries: 2,
        backoff_base: Micros::from_secs(500),
        backoff_cap: Micros::from_secs(4_000),
    };
    let run = |workers: usize| -> (MetricsReport, ServiceStats, Vec<TicketState>, Vec<u8>) {
        let mut factory = factory_for(&placed.catalog, ArrivalProcess::Closed { queue_length: 1 });
        let mut sched = make_scheduler(AlgorithmId::Envelope(EnvelopePolicy::MaxBandwidth));
        let mut sink = JsonlSink::new(Vec::new());
        let out = {
            let engine = SteppedMultiDrive::new_external(
                &placed.catalog,
                &timing,
                sched.as_mut(),
                &mut factory,
                &cfg,
                3,
                &FaultConfig::NONE,
                FAULT_SEED,
                &mut sink,
            )
            .unwrap();
            let mut service = JukeboxService::new(engine, service_cfg).unwrap();
            service.set_parallel(workers);
            let mut x = SEED ^ 0x5DEECE66D;
            for burst in 0u64..4 {
                let t0 = SimTime::ZERO + Micros::from_secs(burst * 15_000);
                for i in 0u64..80 {
                    x = x
                        .wrapping_mul(6364136223846793005)
                        .wrapping_add(1442695040888963407);
                    let block = BlockId(((x >> 33) % u64::from(blocks)) as u32);
                    // Overload rejections are part of the scenario.
                    let _ = service.submit(block, t0 + Micros::from_micros(i * 131 + 1));
                }
                if burst == 1 {
                    service.set_drive_offline(2, true).unwrap();
                }
                if burst == 2 {
                    service.set_drive_offline(2, false).unwrap();
                }
            }
            let (report, stats, tickets) = service.drain_with_tickets().unwrap();
            (report, stats, tickets)
        };
        (out.0, out.1, out.2, sink.finish().unwrap())
    };
    let (ref_report, ref_stats, ref_tickets, ref_trace) = run(1);
    assert!(ref_stats.completed > 0, "service run completed nothing");
    for workers in [2usize, 8] {
        let (report, stats, tickets, trace) = run(workers);
        assert_eq!(report, ref_report, "report diverges at {workers} workers");
        assert_eq!(stats, ref_stats, "stats diverge at {workers} workers");
        assert_eq!(tickets, ref_tickets, "tickets diverge at {workers} workers");
        assert_eq!(trace, ref_trace, "trace diverges at {workers} workers");
    }
}
