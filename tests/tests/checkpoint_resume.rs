//! Checkpoint/restore equivalence and robustness tests.
//!
//! The contract under test: a run checkpointed at any boundary and
//! resumed from that checkpoint produces a byte-identical trace suffix
//! and an exactly equal final report compared to the uninterrupted run —
//! across schedulers, drive counts, fault configurations, and all three
//! engines. Malformed checkpoints (truncated, corrupted, wrong schema
//! version, wrong configuration) must surface as typed [`SimError`]s,
//! never panics.

use std::path::{Path, PathBuf};

use proptest::prelude::*;

use tapesim::layout::{build_placement, PlacedCatalog, PlacementConfig};
use tapesim::model::{BlockSize, FaultConfig, JukeboxGeometry, Micros, TimingModel};
use tapesim::sched::{make_scheduler, AlgorithmId};
use tapesim::sim::checkpoint::{self, CheckpointOpts};
use tapesim::sim::trace::jsonl;
use tapesim::sim::{
    run_multi_drive_checkpointed, run_simulation_checkpointed, run_with_writeback_checkpointed,
    FlushPolicy, MemorySink, MetricsReport, SimConfig, SimError, TraceRecord, WriteBackConfig,
    WriteBackReport,
};
use tapesim::workload::{ArrivalProcess, BlockSampler, RequestFactory};

/// One simulation scenario, constructible any number of times with
/// identical state (fresh factory + scheduler per run).
#[derive(Debug, Clone, Copy)]
struct Scenario {
    algorithm: AlgorithmId,
    drives: u16,
    fault_pick: usize,
    open: bool,
    seed: u64,
}

fn faults_for(pick: usize) -> FaultConfig {
    match pick % 3 {
        0 => FaultConfig::NONE,
        1 => FaultConfig {
            media_error_per_read: 0.05,
            media_retries: 1,
            load_failure_p: 0.05,
            load_retries: 1,
            ..FaultConfig::NONE
        },
        _ => FaultConfig {
            tape_mtbf: Some(Micros::from_secs(40_000)),
            tape_mttr: Some(Micros::from_secs(5_000)),
            ..FaultConfig::NONE
        },
    }
}

fn catalog() -> PlacedCatalog {
    build_placement(
        JukeboxGeometry::FIVE_TAPE,
        BlockSize::PAPER_DEFAULT,
        PlacementConfig::paper_baseline(),
    )
    .unwrap()
}

fn tmp_path(tag: &str) -> PathBuf {
    std::env::temp_dir().join(format!("tapesim-ckpt-{}-{tag}.ckpt", std::process::id()))
}

/// Runs the scenario with the given checkpoint options and returns its
/// full trace and report.
fn run(sc: &Scenario, opts: &CheckpointOpts) -> (Vec<TraceRecord>, MetricsReport) {
    let placed = catalog();
    let timing = TimingModel::paper_default();
    let cfg = SimConfig::quick();
    let process = if sc.open {
        ArrivalProcess::OpenPoisson {
            mean_interarrival: Micros::from_secs(240),
        }
    } else {
        ArrivalProcess::Closed { queue_length: 25 }
    };
    let sampler = BlockSampler::from_catalog(&placed.catalog, 40.0);
    let mut factory = RequestFactory::new(sampler, process, sc.seed);
    let mut sched = make_scheduler(sc.algorithm);
    let mut sink = MemorySink::new();
    let faults = faults_for(sc.fault_pick);
    let report = if sc.drives <= 1 {
        run_simulation_checkpointed(
            &placed.catalog,
            &timing,
            sched.as_mut(),
            &mut factory,
            &cfg,
            &faults,
            sc.seed ^ 0xFA17,
            &mut sink,
            opts,
        )
        .unwrap()
    } else {
        run_multi_drive_checkpointed(
            &placed.catalog,
            &timing,
            sched.as_mut(),
            &mut factory,
            &cfg,
            sc.drives,
            &faults,
            sc.seed ^ 0xFA17,
            &mut sink,
            opts,
        )
        .unwrap()
    };
    (sink.into_events(), report)
}

/// The resume contract, verified end to end for one scenario:
/// 1. checkpoint writing does not perturb the run;
/// 2. the resumed run's final report equals the uninterrupted one exactly;
/// 3. the resumed run's trace is byte-identical (as JSONL) to the
///    uninterrupted trace from the checkpoint's sequence number on.
fn assert_resume_equivalence(sc: &Scenario, tag: &str) {
    let every = Micros::from_secs(30_000);
    let path = tmp_path(tag);
    let _ = std::fs::remove_file(&path);

    let (full_trace, full_report) = run(sc, &CheckpointOpts::none());
    let (ckpt_trace, ckpt_report) = run(sc, &CheckpointOpts::checkpoint_every(every, &path));
    assert_eq!(
        ckpt_trace, full_trace,
        "{sc:?}: enabling checkpointing changed the trace"
    );
    assert_eq!(
        ckpt_report, full_report,
        "{sc:?}: enabling checkpointing changed the report"
    );

    let ckpt = checkpoint::load(&path).expect("periodic checkpoint file must parse");
    assert!(ckpt.now_us > 0, "{sc:?}: checkpoint taken at t=0");
    let (resumed_trace, resumed_report) = run(sc, &CheckpointOpts::resume_from(&path));
    assert_eq!(
        resumed_report, full_report,
        "{sc:?}: resumed report differs from the uninterrupted run"
    );
    let suffix: Vec<TraceRecord> = full_trace
        .iter()
        .filter(|r| r.seq >= ckpt.trace_seq)
        .cloned()
        .collect();
    assert_eq!(
        jsonl::to_jsonl_string(&resumed_trace),
        jsonl::to_jsonl_string(&suffix),
        "{sc:?}: resumed trace is not byte-identical to the uninterrupted suffix"
    );
    assert!(
        !resumed_trace.is_empty(),
        "{sc:?}: resume produced no events (checkpoint too late to be meaningful)"
    );
    let _ = std::fs::remove_file(&path);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Bit-identical resume across schedulers × {1,4} drives × fault
    /// presets × open/closed workloads.
    #[test]
    fn resume_is_bit_identical(
        alg_pick in 0usize..1000,
        seed in 0u64..10_000,
        multi in 0usize..2,
        fault_pick in 0usize..3,
        open in 0usize..2,
    ) {
        let algorithms = AlgorithmId::all();
        let sc = Scenario {
            algorithm: algorithms[alg_pick % algorithms.len()],
            drives: if multi == 1 { 4 } else { 1 },
            fault_pick,
            open: open == 1,
            seed,
        };
        let tag = format!("prop-{alg_pick}-{seed}-{multi}-{fault_pick}-{open}");
        assert_resume_equivalence(&sc, &tag);
    }
}

/// Runs the write-back scenario with the given checkpoint options.
fn run_writeback(
    policy: FlushPolicy,
    seed: u64,
    opts: &CheckpointOpts,
) -> (Vec<TraceRecord>, WriteBackReport) {
    let placed = catalog();
    let timing = TimingModel::paper_default();
    let sampler = BlockSampler::from_catalog(&placed.catalog, 40.0);
    let mut factory = RequestFactory::new(
        sampler,
        ArrivalProcess::OpenPoisson {
            mean_interarrival: Micros::from_secs(300),
        },
        seed,
    );
    let mut sched = make_scheduler(AlgorithmId::paper_recommended());
    let mut sink = MemorySink::new();
    let report = run_with_writeback_checkpointed(
        &placed.catalog,
        &timing,
        sched.as_mut(),
        &mut factory,
        &SimConfig::quick(),
        &WriteBackConfig {
            write_mean_interarrival: Micros::from_secs(200),
            flush_batch: 5,
            piggyback_min: 2,
            policy,
        },
        seed ^ 0xDE17A,
        &mut sink,
        opts,
    )
    .unwrap();
    (sink.into_events(), report)
}

#[test]
fn writeback_resume_is_bit_identical() {
    for (i, policy) in [FlushPolicy::IdleOnly, FlushPolicy::Piggyback]
        .into_iter()
        .enumerate()
    {
        let seed = 4242 + i as u64;
        let every = Micros::from_secs(30_000);
        let path = tmp_path(&format!("wb-{i}"));
        let _ = std::fs::remove_file(&path);

        let (full_trace, full_report) = run_writeback(policy, seed, &CheckpointOpts::none());
        let (ckpt_trace, ckpt_report) = run_writeback(
            policy,
            seed,
            &CheckpointOpts::checkpoint_every(every, &path),
        );
        assert_eq!(
            ckpt_trace, full_trace,
            "{policy:?}: checkpointing changed the trace"
        );
        assert_eq!(
            ckpt_report, full_report,
            "{policy:?}: checkpointing changed the report"
        );

        let ckpt = checkpoint::load(&path).expect("write-back checkpoint must parse");
        let (resumed_trace, resumed_report) =
            run_writeback(policy, seed, &CheckpointOpts::resume_from(&path));
        assert_eq!(
            resumed_report, full_report,
            "{policy:?}: resumed write-back report differs"
        );
        let suffix: Vec<TraceRecord> = full_trace
            .iter()
            .filter(|r| r.seq >= ckpt.trace_seq)
            .cloned()
            .collect();
        assert_eq!(
            jsonl::to_jsonl_string(&resumed_trace),
            jsonl::to_jsonl_string(&suffix),
            "{policy:?}: resumed write-back trace is not byte-identical"
        );
        let _ = std::fs::remove_file(&path);
    }
}

/// A resumed run can keep writing checkpoints, and resuming from one of
/// *those* still matches the uninterrupted run (resume-of-a-resume).
#[test]
fn resume_of_a_resume_still_matches() {
    let sc = Scenario {
        algorithm: AlgorithmId::paper_recommended(),
        drives: 1,
        fault_pick: 2,
        open: false,
        seed: 77,
    };
    let first = tmp_path("chain-1");
    let second = tmp_path("chain-2");
    let _ = std::fs::remove_file(&first);
    let _ = std::fs::remove_file(&second);

    let (full_trace, full_report) = run(&sc, &CheckpointOpts::none());
    // Interrupted run writes its checkpoint…
    run(
        &sc,
        &CheckpointOpts::checkpoint_every(Micros::from_secs(25_000), &first),
    );
    // …the resumed run checkpoints on a different cadence…
    run(
        &sc,
        &CheckpointOpts::resume_from(&first)
            .and_checkpoint_every(Micros::from_secs(40_000), &second),
    );
    // …and resuming from the later checkpoint still lands on the same run.
    let ckpt = checkpoint::load(&second).expect("chained checkpoint must parse");
    assert!(ckpt.now_us > 0, "chained checkpoint taken at t=0");
    let (resumed_trace, resumed_report) = run(&sc, &CheckpointOpts::resume_from(&second));
    assert_eq!(resumed_report, full_report);
    let suffix: Vec<TraceRecord> = full_trace
        .iter()
        .filter(|r| r.seq >= ckpt.trace_seq)
        .cloned()
        .collect();
    assert_eq!(
        jsonl::to_jsonl_string(&resumed_trace),
        jsonl::to_jsonl_string(&suffix)
    );
    let _ = std::fs::remove_file(&first);
    let _ = std::fs::remove_file(&second);
}

// ---------------------------------------------------------------------
// Robustness: malformed checkpoints are typed errors, never panics.
// ---------------------------------------------------------------------

/// Produces a valid single-drive checkpoint file and its scenario.
fn valid_checkpoint(tag: &str) -> (Scenario, PathBuf) {
    let sc = Scenario {
        algorithm: AlgorithmId::Fifo,
        drives: 1,
        fault_pick: 0,
        open: false,
        seed: 11,
    };
    let path = tmp_path(tag);
    let _ = std::fs::remove_file(&path);
    run(
        &sc,
        &CheckpointOpts::checkpoint_every(Micros::from_secs(30_000), &path),
    );
    assert!(
        path.exists(),
        "expected a periodic checkpoint to be written"
    );
    (sc, path)
}

/// Attempts to resume `sc` from `path` and returns the error.
fn resume_error(sc: &Scenario, path: &Path) -> SimError {
    let placed = catalog();
    let timing = TimingModel::paper_default();
    let sampler = BlockSampler::from_catalog(&placed.catalog, 40.0);
    let mut factory = RequestFactory::new(
        sampler,
        ArrivalProcess::Closed { queue_length: 25 },
        sc.seed,
    );
    let mut sched = make_scheduler(sc.algorithm);
    let mut sink = MemorySink::new();
    run_simulation_checkpointed(
        &placed.catalog,
        &timing,
        sched.as_mut(),
        &mut factory,
        &SimConfig::quick(),
        &faults_for(sc.fault_pick),
        sc.seed ^ 0xFA17,
        &mut sink,
        &CheckpointOpts::resume_from(path),
    )
    .expect_err("resume from a bad checkpoint must fail")
}

#[test]
fn truncated_checkpoint_is_a_typed_error() {
    let (sc, path) = valid_checkpoint("trunc");
    let text = std::fs::read_to_string(&path).unwrap();
    let truncated: String = text
        .lines()
        .take(text.lines().count() - 2)
        .map(|l| format!("{l}\n"))
        .collect();
    std::fs::write(&path, truncated).unwrap();
    assert!(
        matches!(resume_error(&sc, &path), SimError::CheckpointCorrupt(_)),
        "truncated checkpoint must be CheckpointCorrupt"
    );
    let _ = std::fs::remove_file(&path);
}

#[test]
fn checkpoint_truncated_mid_record_is_a_typed_error() {
    // The crash window the fsync'd temp-file + atomic-rename protocol
    // closes is a checkpoint cut *inside* a record — not merely missing
    // whole lines. Simulate exactly that tear: chop the file mid-line and
    // require a typed CheckpointCorrupt, not a panic or a silent
    // misparse.
    let (sc, path) = valid_checkpoint("trunc-mid");
    let bytes = std::fs::read(&path).unwrap();
    // Cut in the middle of the last non-empty line: half the final
    // record survives, with no trailing newline.
    let last_line_start = bytes[..bytes.len() - 1]
        .iter()
        .rposition(|&b| b == b'\n')
        .expect("checkpoint has multiple lines")
        + 1;
    let cut = last_line_start + (bytes.len() - last_line_start) / 2;
    assert!(
        cut > last_line_start,
        "mid-record cut must keep a partial record"
    );
    std::fs::write(&path, &bytes[..cut]).unwrap();
    assert!(
        matches!(resume_error(&sc, &path), SimError::CheckpointCorrupt(_)),
        "mid-record truncation must be CheckpointCorrupt"
    );
    let _ = std::fs::remove_file(&path);
}

#[test]
fn corrupted_checkpoint_is_a_typed_error() {
    let (sc, path) = valid_checkpoint("corrupt");
    let text = std::fs::read_to_string(&path).unwrap();
    // Smash the factory line's integer into garbage.
    let corrupted = text.replacen("\"makes\":", "\"makes\":!!", 1);
    assert_ne!(corrupted, text, "expected a factory line to corrupt");
    std::fs::write(&path, corrupted).unwrap();
    assert!(
        matches!(resume_error(&sc, &path), SimError::CheckpointCorrupt(_)),
        "corrupted checkpoint must be CheckpointCorrupt"
    );
    let _ = std::fs::remove_file(&path);
}

#[test]
fn version_mismatch_is_a_typed_error() {
    let (sc, path) = valid_checkpoint("version");
    let text = std::fs::read_to_string(&path).unwrap();
    let bumped = text.replacen(
        &format!("\"version\":{}", checkpoint::SCHEMA_VERSION),
        "\"version\":999",
        1,
    );
    assert_ne!(bumped, text);
    std::fs::write(&path, bumped).unwrap();
    match resume_error(&sc, &path) {
        SimError::CheckpointVersion { found, expected } => {
            assert_eq!(found, 999);
            assert_eq!(expected, checkpoint::SCHEMA_VERSION);
        }
        other => panic!("expected CheckpointVersion, got {other:?}"),
    }
    let _ = std::fs::remove_file(&path);
}

#[test]
fn zero_checkpoint_interval_is_a_typed_error() {
    // Regression: a zero periodic interval has no next-checkpoint
    // instant; all three engines must refuse it up front instead of
    // spinning in the schedule computation.
    let placed = catalog();
    let timing = TimingModel::paper_default();
    let cfg = SimConfig::quick();
    let bad = CheckpointOpts::checkpoint_every(Micros::ZERO, tmp_path("zero"));
    let process = ArrivalProcess::Closed { queue_length: 25 };

    let sampler = BlockSampler::from_catalog(&placed.catalog, 40.0);
    let mut factory = RequestFactory::new(sampler, process, 7);
    let mut sched = make_scheduler(AlgorithmId::Fifo);
    let mut sink = MemorySink::new();
    let err = run_simulation_checkpointed(
        &placed.catalog,
        &timing,
        sched.as_mut(),
        &mut factory,
        &cfg,
        &FaultConfig::NONE,
        7,
        &mut sink,
        &bad,
    );
    assert!(
        matches!(err, Err(SimError::InvalidConfig(_))),
        "single-drive engine must refuse a zero interval"
    );

    let sampler = BlockSampler::from_catalog(&placed.catalog, 40.0);
    let mut factory = RequestFactory::new(sampler, process, 7);
    let mut sched = make_scheduler(AlgorithmId::Fifo);
    let mut sink = MemorySink::new();
    let err = run_multi_drive_checkpointed(
        &placed.catalog,
        &timing,
        sched.as_mut(),
        &mut factory,
        &cfg,
        4,
        &FaultConfig::NONE,
        7,
        &mut sink,
        &bad,
    );
    assert!(
        matches!(err, Err(SimError::InvalidConfig(_))),
        "multi-drive engine must refuse a zero interval"
    );

    let sampler = BlockSampler::from_catalog(&placed.catalog, 40.0);
    let mut factory = RequestFactory::new(
        sampler,
        ArrivalProcess::OpenPoisson {
            mean_interarrival: Micros::from_secs(300),
        },
        7,
    );
    let mut sched = make_scheduler(AlgorithmId::paper_recommended());
    let mut sink = MemorySink::new();
    let err = run_with_writeback_checkpointed(
        &placed.catalog,
        &timing,
        sched.as_mut(),
        &mut factory,
        &cfg,
        &WriteBackConfig {
            write_mean_interarrival: Micros::from_secs(200),
            flush_batch: 5,
            piggyback_min: 2,
            policy: FlushPolicy::Piggyback,
        },
        7,
        &mut sink,
        &bad,
    );
    assert!(
        matches!(err, Err(SimError::InvalidConfig(_))),
        "write-back engine must refuse a zero interval"
    );
}

#[test]
fn resume_into_different_config_is_refused() {
    let (sc, path) = valid_checkpoint("config");
    // Different scheduler.
    let other_sched = Scenario {
        algorithm: AlgorithmId::paper_recommended(),
        ..sc
    };
    assert!(
        matches!(
            resume_error(&other_sched, &path),
            SimError::CheckpointConfigMismatch { .. }
        ),
        "different scheduler must be CheckpointConfigMismatch"
    );
    // Different workload seed: same config fingerprint, caught by the
    // factory stream fingerprint instead.
    let other_seed = Scenario { seed: 12, ..sc };
    assert!(
        matches!(
            resume_error(&other_seed, &path),
            SimError::CheckpointConfigMismatch { .. }
        ),
        "different seed must be CheckpointConfigMismatch"
    );
    // Different engine (same checkpoint into the multi-drive runner).
    let placed = catalog();
    let timing = TimingModel::paper_default();
    let sampler = BlockSampler::from_catalog(&placed.catalog, 40.0);
    let mut factory = RequestFactory::new(
        sampler,
        ArrivalProcess::Closed { queue_length: 25 },
        sc.seed,
    );
    let mut sched = make_scheduler(sc.algorithm);
    let mut sink = MemorySink::new();
    let err = run_multi_drive_checkpointed(
        &placed.catalog,
        &timing,
        sched.as_mut(),
        &mut factory,
        &SimConfig::quick(),
        4,
        &FaultConfig::NONE,
        sc.seed ^ 0xFA17,
        &mut sink,
        &CheckpointOpts::resume_from(&path),
    )
    .expect_err("single-drive checkpoint into multi-drive engine must fail");
    assert!(
        matches!(err, SimError::CheckpointConfigMismatch { .. }),
        "wrong engine must be CheckpointConfigMismatch, got {err:?}"
    );
    let _ = std::fs::remove_file(&path);
}

#[test]
fn missing_checkpoint_file_is_a_typed_error() {
    let sc = Scenario {
        algorithm: AlgorithmId::Fifo,
        drives: 1,
        fault_pick: 0,
        open: false,
        seed: 11,
    };
    assert!(matches!(
        resume_error(&sc, Path::new("/nonexistent/nope.ckpt")),
        SimError::CheckpointIo(_)
    ));
}

// ---------------------------------------------------------------------
// Golden checkpoint: the on-disk format itself is pinned.
// ---------------------------------------------------------------------

#[test]
fn golden_checkpoint_file_is_stable() {
    let sc = Scenario {
        algorithm: AlgorithmId::Fifo,
        drives: 1,
        fault_pick: 0,
        open: false,
        seed: 11,
    };
    let path = tmp_path("golden");
    let _ = std::fs::remove_file(&path);
    let (full_trace, full_report) = run(&sc, &CheckpointOpts::none());
    run(
        &sc,
        &CheckpointOpts::checkpoint_every(Micros::from_secs(30_000), &path),
    );
    let text = std::fs::read_to_string(&path).unwrap();
    let _ = std::fs::remove_file(&path);

    let golden = Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("golden")
        .join("single_fifo.ckpt");
    if std::env::var_os("UPDATE_GOLDEN").is_some() {
        std::fs::write(&golden, &text).unwrap();
        eprintln!("regenerated {}", golden.display());
    } else {
        let expected = std::fs::read_to_string(&golden).unwrap_or_else(|e| {
            panic!(
                "cannot read golden checkpoint {}: {e}\n(regenerate with UPDATE_GOLDEN=1 \
                 cargo test -p integration-tests --test checkpoint_resume)",
                golden.display()
            )
        });
        assert_eq!(
            text, expected,
            "checkpoint file format drifted from the golden snapshot; if intentional, \
             bump checkpoint::SCHEMA_VERSION and regenerate with UPDATE_GOLDEN=1"
        );
    }

    // The golden checkpoint must itself resume into the uninterrupted run.
    let ckpt = checkpoint::from_text(&text).expect("golden checkpoint parses");
    let reparse = checkpoint::to_text(&ckpt);
    assert_eq!(reparse, text, "golden checkpoint does not round-trip");
    let golden_tmp = tmp_path("golden-resume");
    std::fs::write(&golden_tmp, &text).unwrap();
    let (resumed_trace, resumed_report) = run(&sc, &CheckpointOpts::resume_from(&golden_tmp));
    let _ = std::fs::remove_file(&golden_tmp);
    assert_eq!(resumed_report, full_report);
    let suffix: Vec<TraceRecord> = full_trace
        .iter()
        .filter(|r| r.seq >= ckpt.trace_seq)
        .cloned()
        .collect();
    assert_eq!(
        jsonl::to_jsonl_string(&resumed_trace),
        jsonl::to_jsonl_string(&suffix)
    );
}
