//! Property tests over the event-trace layer: every registered scheduler,
//! under randomized workloads and fault configurations, must emit a trace
//! that passes the §2.2 invariant checker, and inert fault injection must
//! leave the trace bit-identical to a fault-free run.

use proptest::prelude::*;

use tapesim::layout::{build_placement, PlacementConfig, PlacementScheme};
use tapesim::model::{BlockSize, FaultConfig, JukeboxGeometry, Micros, TimingModel};
use tapesim::sched::{make_scheduler, AlgorithmId};
use tapesim::sim::{
    check_trace, run_multi_drive_traced, run_simulation_traced, run_with_writeback_traced,
    FlushPolicy, MemorySink, SimConfig, TraceRecord, WriteBackConfig,
};
use tapesim::workload::{ArrivalProcess, BlockSampler, RequestFactory};

/// The fault presets the checker must hold under: none, noisy media and
/// loads, and transient whole-tape failures.
fn fault_preset(idx: usize) -> FaultConfig {
    match idx % 3 {
        0 => FaultConfig::NONE,
        1 => FaultConfig {
            media_error_per_read: 0.05,
            media_retries: 1,
            load_failure_p: 0.05,
            load_retries: 1,
            ..FaultConfig::NONE
        },
        _ => FaultConfig {
            tape_mtbf: Some(Micros::from_secs(40_000)),
            tape_mttr: Some(Micros::from_secs(5_000)),
            ..FaultConfig::NONE
        },
    }
}

/// Runs one traced simulation and returns its trace.
#[allow(clippy::too_many_arguments)]
fn run_traced(
    replicas: u32,
    algorithm: AlgorithmId,
    process: ArrivalProcess,
    drives: u16,
    faults: &FaultConfig,
    seed: u64,
    fault_seed: u64,
) -> Vec<TraceRecord> {
    let placed = build_placement(
        JukeboxGeometry::FIVE_TAPE,
        BlockSize::PAPER_DEFAULT,
        PlacementConfig {
            scheme: PlacementScheme::Replication { nr: replicas },
            ..PlacementConfig::paper_baseline()
        },
    )
    .unwrap();
    let timing = TimingModel::paper_default();
    let cfg = SimConfig::quick();
    let sampler = BlockSampler::from_catalog(&placed.catalog, 40.0);
    let mut factory = RequestFactory::new(sampler, process, seed);
    let mut sched = make_scheduler(algorithm);
    let mut sink = MemorySink::new();
    if drives <= 1 {
        run_simulation_traced(
            &placed.catalog,
            &timing,
            sched.as_mut(),
            &mut factory,
            &cfg,
            faults,
            fault_seed,
            &mut sink,
        )
        .unwrap();
    } else {
        run_multi_drive_traced(
            &placed.catalog,
            &timing,
            sched.as_mut(),
            &mut factory,
            &cfg,
            drives,
            faults,
            fault_seed,
            &mut sink,
        )
        .unwrap();
    }
    sink.into_events()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Every registered scheduler, on closed or open workloads with any
    /// fault preset and drive count, produces a physically valid trace.
    #[test]
    fn all_schedulers_emit_valid_traces(
        alg_pick in 0usize..1000,
        seed in 0u64..10_000,
        drives in 1u16..=3,
        fault_pick in 0usize..3,
        open in 0usize..2,
        replicated in 0usize..2,
    ) {
        let algorithms = AlgorithmId::all();
        let algorithm = algorithms[alg_pick % algorithms.len()];
        let process = if open == 1 {
            ArrivalProcess::OpenPoisson { mean_interarrival: Micros::from_secs(240) }
        } else {
            ArrivalProcess::Closed { queue_length: 30 }
        };
        // Replication only matters with replicas placed; vertical
        // full-replication needs spare capacity, so stay with 1 replica.
        let replicas = replicated as u32;
        let faults = fault_preset(fault_pick);
        let trace = run_traced(replicas, algorithm, process, drives, &faults, seed, seed ^ 0xFA17);
        let stats = match check_trace(&trace) {
            Ok(s) => s,
            Err(v) => {
                return Err(proptest::test_runner::TestCaseError::fail(format!(
                    "{algorithm:?} drives={drives} fault={fault_pick} seed={seed}: \
                     {} violations, first: {}",
                    v.len(),
                    v[0]
                )));
            }
        };
        prop_assert!(stats.events > 0);
        // Conservation closes: every arrival terminates or is outstanding.
        prop_assert_eq!(
            stats.arrivals,
            stats.completions + stats.failures + stats.outstanding
        );
        // Work happened on a fault-free closed run.
        if fault_pick == 0 && open == 0 {
            prop_assert!(stats.completions > 0);
            prop_assert_eq!(stats.failures, 0);
        }
    }

    /// An inert fault configuration consumes no randomness: whatever the
    /// fault seed, the trace is identical to the fault-free one.
    #[test]
    fn inert_faults_leave_the_trace_untouched(
        alg_pick in 0usize..1000,
        seed in 0u64..10_000,
        fault_seed in 0u64..10_000,
        drives in 1u16..=2,
    ) {
        let algorithms = AlgorithmId::all();
        let algorithm = algorithms[alg_pick % algorithms.len()];
        let process = ArrivalProcess::Closed { queue_length: 25 };
        let base = run_traced(0, algorithm, process, drives, &FaultConfig::NONE, seed, 0);
        let other = run_traced(0, algorithm, process, drives, &FaultConfig::NONE, seed, fault_seed);
        prop_assert_eq!(base.len(), other.len());
        prop_assert!(base == other, "inert fault seed changed the trace for {:?}", algorithm);
    }

    /// The write-back engine's traces (reads + delta flushes) satisfy the
    /// same invariants under both destage policies.
    #[test]
    fn writeback_traces_are_valid(
        seed in 0u64..10_000,
        policy_pick in 0usize..2,
        write_gap_s in 100u64..400,
    ) {
        let placed = build_placement(
            JukeboxGeometry::FIVE_TAPE,
            BlockSize::PAPER_DEFAULT,
            PlacementConfig::paper_baseline(),
        )
        .unwrap();
        let timing = TimingModel::paper_default();
        let sampler = BlockSampler::from_catalog(&placed.catalog, 40.0);
        let mut factory = RequestFactory::new(
            sampler,
            ArrivalProcess::OpenPoisson { mean_interarrival: Micros::from_secs(300) },
            seed,
        );
        let mut sched = make_scheduler(AlgorithmId::paper_recommended());
        let mut sink = MemorySink::new();
        run_with_writeback_traced(
            &placed.catalog,
            &timing,
            sched.as_mut(),
            &mut factory,
            &SimConfig::quick(),
            &WriteBackConfig {
                write_mean_interarrival: Micros::from_secs(write_gap_s),
                flush_batch: 5,
                piggyback_min: 2,
                policy: if policy_pick == 0 { FlushPolicy::IdleOnly } else { FlushPolicy::Piggyback },
            },
            seed ^ 0xDE17A,
            &mut sink,
        )
        .unwrap();
        let trace = sink.into_events();
        let stats = match check_trace(&trace) {
            Ok(s) => s,
            Err(v) => {
                return Err(proptest::test_runner::TestCaseError::fail(format!(
                    "write-back policy {policy_pick} seed {seed}: first violation: {}",
                    v[0]
                )));
            }
        };
        prop_assert!(stats.completions > 0);
    }
}
