//! Fleet-topology properties.
//!
//! The multi-library engine generalizes the single-arm jukebox: mounts
//! serialize on their library's robot arms, cross-library reads pay a
//! pass-through penalty, and a legacy topology (one library, one arm)
//! must be indistinguishable from the historical engine — byte-identical
//! JSONL traces, exactly equal reports. These tests pin that contract
//! plus the physical invariants of the arm model: an arm performs one
//! exchange at a time, and every mount is fed by an exchange performed
//! by an arm of the mounting drive's own library.

use tapesim::layout::{
    build_fleet_placement, build_placement, Catalog, LayoutKind, PlacementConfig, PlacementScheme,
    ReplicaScope,
};
use tapesim::model::{
    BlockSize, FaultConfig, InterLibraryModel, JukeboxGeometry, RobotModel, TimingModel, Topology,
};
use tapesim::sched::{make_scheduler, AlgorithmId};
use tapesim::sim::{
    run_fleet_traced, run_multi_drive_traced, JsonlSink, MemorySink, MetricsReport, SimConfig,
    TraceEvent, TraceRecord,
};
use tapesim::workload::{ArrivalProcess, BlockSampler, RequestFactory};

const SEED: u64 = 0x1CDE_1999;

fn factory_for(catalog: &Catalog, queue_length: u32) -> RequestFactory {
    RequestFactory::new(
        BlockSampler::from_catalog(catalog, 40.0),
        ArrivalProcess::Closed { queue_length },
        SEED,
    )
}

/// A two-cabinet fleet (2 libraries × 2 drives × 1 arm) with replicas
/// spread across libraries, so cross-library mounts actually happen.
fn two_library_fixture() -> (tapesim::layout::PlacedCatalog, Topology) {
    let topology = Topology::uniform(
        2,
        2,
        1,
        10,
        RobotModel::exb210(),
        InterLibraryModel::DEFAULT,
    )
    .unwrap();
    let placed = build_fleet_placement(
        JukeboxGeometry::new(20, 7 * 1024),
        BlockSize::PAPER_DEFAULT,
        PlacementConfig {
            layout: LayoutKind::Horizontal,
            ph_percent: 10.0,
            scheme: PlacementScheme::Replication { nr: 1 },
            sp: 0.0,
        },
        &topology,
        ReplicaScope::CrossLibrary,
    )
    .unwrap();
    (placed, topology)
}

fn run_fleet_mem(
    catalog: &Catalog,
    topology: Topology,
    queue_length: u32,
) -> (MetricsReport, Vec<TraceRecord>) {
    let timing = TimingModel::paper_default();
    let mut factory = factory_for(catalog, queue_length);
    let mut sched = make_scheduler(AlgorithmId::paper_recommended());
    let mut sink = MemorySink::new();
    let report = run_fleet_traced(
        catalog,
        &timing,
        topology,
        sched.as_mut(),
        &mut factory,
        &SimConfig::quick(),
        &FaultConfig::NONE,
        0,
        &mut sink,
    )
    .unwrap();
    (report, sink.into_events())
}

/// A 1-library/1-arm topology is the legacy engine: same report, and a
/// byte-identical JSONL trace with no robot events in it.
#[test]
fn single_library_fleet_is_byte_identical_to_legacy_engine() {
    let placed = build_placement(
        JukeboxGeometry::PAPER_DEFAULT,
        BlockSize::PAPER_DEFAULT,
        PlacementConfig {
            scheme: PlacementScheme::Replication { nr: 1 },
            ..PlacementConfig::paper_baseline()
        },
    )
    .unwrap();
    let timing = TimingModel::paper_default();
    let drives = 4u16;

    let (legacy_report, legacy_trace) = {
        let mut factory = factory_for(&placed.catalog, 40);
        let mut sched = make_scheduler(AlgorithmId::paper_recommended());
        let mut sink = JsonlSink::new(Vec::new());
        let report = run_multi_drive_traced(
            &placed.catalog,
            &timing,
            sched.as_mut(),
            &mut factory,
            &SimConfig::quick(),
            drives,
            &FaultConfig::NONE,
            0,
            &mut sink,
        )
        .unwrap();
        (report, sink.finish().unwrap())
    };

    let (fleet_report, fleet_trace) = {
        let topology = Topology::single(drives, placed.catalog.geometry().tapes, timing.robot);
        assert!(topology.is_legacy());
        let mut factory = factory_for(&placed.catalog, 40);
        let mut sched = make_scheduler(AlgorithmId::paper_recommended());
        let mut sink = JsonlSink::new(Vec::new());
        let report = run_fleet_traced(
            &placed.catalog,
            &timing,
            topology,
            sched.as_mut(),
            &mut factory,
            &SimConfig::quick(),
            &FaultConfig::NONE,
            0,
            &mut sink,
        )
        .unwrap();
        (report, sink.finish().unwrap())
    };

    assert!(legacy_report.completed > 0, "legacy run did no work");
    assert_eq!(
        fleet_report, legacy_report,
        "legacy-topology reports diverge"
    );
    assert_eq!(fleet_trace, legacy_trace, "legacy-topology traces diverge");
    let text = String::from_utf8(fleet_trace).unwrap();
    assert!(
        !text.contains("robot_busy") && !text.contains("robot_exchange"),
        "legacy topology must not emit robot events"
    );
}

/// One exchange at a time per arm: every `RobotExchange` occupies its
/// arm for `[at - dur, at]`, and those intervals never overlap for the
/// same global robot index. Checked on a two-library fleet and on a
/// single library with two arms (where `pick_robot` alternates arms).
#[test]
fn robot_exchanges_never_overlap_per_arm() {
    let (placed, topology) = two_library_fixture();
    check_exchange_serialization(&placed.catalog, topology);

    let two_arms =
        Topology::uniform(1, 4, 2, 10, RobotModel::exb210(), InterLibraryModel::NONE).unwrap();
    let placed = build_placement(
        JukeboxGeometry::PAPER_DEFAULT,
        BlockSize::PAPER_DEFAULT,
        PlacementConfig::paper_baseline(),
    )
    .unwrap();
    check_exchange_serialization(&placed.catalog, two_arms);
}

fn check_exchange_serialization(catalog: &Catalog, topology: Topology) {
    let robots = usize::from(topology.total_robots());
    let (report, trace) = run_fleet_mem(catalog, topology, 120);
    assert!(report.completed > 0, "fleet run did no work");

    // Arm-busy intervals in microseconds: `at` is the instant the leg
    // ended, so the arm was held for [at - dur, at].
    let mut busy: Vec<Vec<(u64, u64)>> = vec![Vec::new(); robots];
    for rec in &trace {
        if let TraceEvent::RobotExchange { robot, dur, .. } = rec.event {
            assert!(
                usize::from(robot) < robots,
                "robot index {robot} out of range"
            );
            let end = rec.at.as_micros();
            busy[usize::from(robot)].push((end - dur.as_micros(), end));
        }
    }
    assert!(
        busy.iter().any(|b| !b.is_empty()),
        "fleet run emitted no robot exchanges"
    );
    for (robot, mut intervals) in busy.into_iter().enumerate() {
        intervals.sort_unstable();
        for w in intervals.windows(2) {
            assert!(
                w[1].0 >= w[0].1,
                "robot {robot}: exchange [{}, {}] overlaps [{}, {}]",
                w[1].0,
                w[1].1,
                w[0].0,
                w[0].1
            );
        }
    }
}

/// Mounts are conserved through the arms: every `Mount` on drive `d` is
/// fed by an earlier-or-simultaneous `RobotExchange` of the same tape by
/// an arm of `d`'s library — a tape cannot appear in a drive without its
/// library's robot having handled it.
#[test]
fn every_fleet_mount_is_fed_by_its_librarys_arm() {
    let (placed, topology) = two_library_fixture();
    let (report, trace) = run_fleet_mem(&placed.catalog, topology.clone(), 120);
    assert!(report.tape_switches > 0, "run never switched tapes");

    let mut mounts = 0u64;
    for rec in &trace {
        if let TraceEvent::Mount { tape, .. } = rec.event {
            mounts += 1;
            let lib = topology.library_of_drive(rec.drive);
            let fed = trace.iter().any(|x| match x.event {
                TraceEvent::RobotExchange { robot, tape: t, .. } => {
                    t == tape && x.at <= rec.at && topology.library_of_robot(robot) == lib
                }
                _ => false,
            });
            assert!(
                fed,
                "mount of tape {tape:?} on drive {} (library {lib}) has no feeding exchange",
                rec.drive
            );
        }
    }
    assert!(mounts > 0, "fleet run never mounted a tape");
}
