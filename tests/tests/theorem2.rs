//! Empirical check of Theorem 2's harmonic bound: the cost the greedy
//! envelope extension adds over the post-absorption schedule `S1` is
//! within `Hn * opt - n(Hn-1)(Cs+Cr) + n*Cd` of the brute-force optimal
//! extension, on randomized small instances.

use proptest::prelude::*;

use tapesim::layout::{BlockId, Catalog};
use tapesim::model::{
    BlockSize, JukeboxGeometry, PhysicalAddr, SimTime, SlotIndex, TapeId, TimingModel,
};
use tapesim::prelude::*;
use tapesim::sched::envelope::{compute_upper_envelope, envelope_after_absorb};
use tapesim::sched::optimal::{brute_force_optimal_extension, extension_cost, theorem2_bound_secs};
use tapesim::sched::JukeboxView;
use tapesim::workload::RequestId;

/// Builds a random catalog of `blocks` blocks on 3 tapes x 500 slots
/// (1 MB blocks), each block with 1..=3 copies at random slots.
fn random_catalog(
    placements: &[(u16, u32)],
    copies_per_block: &[usize],
) -> Option<(Catalog, Vec<BlockId>)> {
    let g = JukeboxGeometry::new(3, 500);
    let blocks = copies_per_block.len() as u32;
    let mut builder = Catalog::builder(g, BlockSize::from_mb(1), blocks, 0);
    let mut it = placements.iter();
    let mut ids = Vec::new();
    for (b, &copies) in copies_per_block.iter().enumerate() {
        let id = BlockId(b as u32);
        ids.push(id);
        let mut placed_tapes = Vec::new();
        let mut placed = 0;
        while placed < copies {
            let &(t, s) = it.next()?;
            let tape = TapeId(t % 3);
            if placed_tapes.contains(&tape) {
                continue;
            }
            let addr = PhysicalAddr {
                tape,
                slot: SlotIndex(s % 500),
            };
            if builder.place(id, addr).is_ok() {
                placed_tapes.push(tape);
                placed += 1;
            }
        }
    }
    builder.build().ok().map(|c| (c, ids))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn greedy_extension_within_harmonic_bound(
        placements in proptest::collection::vec((0u16..3, 0u32..500), 40),
        copies in proptest::collection::vec(1usize..=3, 2..=6),
        mounted in proptest::option::of(0u16..3),
    ) {
        let Some((catalog, ids)) = random_catalog(&placements, &copies) else {
            return Ok(());
        };
        let timing = TimingModel::paper_default();
        let view = JukeboxView {
            catalog: &catalog,
            timing: &timing,
            mounted: mounted.map(TapeId),
            head: SlotIndex(0),
            now: SimTime::ZERO,
            unavailable: &[],
            offline: &[],
            fleet: tapesim::sched::FleetView::SINGLE,
        };
        // One request per block.
        let pending: Vec<Request> = ids
            .iter()
            .enumerate()
            .map(|(i, &b)| Request {
                id: RequestId(i as u64),
                block: b,
                arrival: SimTime::ZERO,
            })
            .collect();

        // S1: the envelope and assignment after steps 1-2.
        let (env1, base_assignment) = envelope_after_absorb(&view, &pending);
        let n = base_assignment.iter().filter(|a| a.is_none()).count();
        if n == 0 {
            return Ok(()); // nothing to extend; bound is trivial
        }

        // Greedy: the full envelope computation, costed as an extension
        // of S1 under the same accounting.
        let upper = compute_upper_envelope(&view, &pending);
        let greedy = extension_cost(&view, &env1, &pending, &upper.assigned);

        // Oracle: exhaustive minimum over replica choices.
        let (opt, _) = brute_force_optimal_extension(&view, &env1, &pending, &base_assignment);

        let bound = theorem2_bound_secs(&view, n, opt.as_secs_f64());
        prop_assert!(
            greedy.as_secs_f64() <= bound + 1e-6,
            "greedy {:.3}s exceeds bound {:.3}s (opt {:.3}s, n={n})",
            greedy.as_secs_f64(),
            bound,
            opt.as_secs_f64()
        );
        // And of course the greedy can never beat the true optimum.
        prop_assert!(greedy >= opt);
    }
}

#[test]
fn bound_is_tight_for_single_request() {
    // With n = 1, H1 = 1 and the bound reduces to opt + Cd; the greedy
    // extension must equal the optimum (it picks the max-bandwidth =
    // min-cost single extension).
    let g = JukeboxGeometry::new(3, 500);
    let mut b = Catalog::builder(g, BlockSize::from_mb(1), 2, 0);
    let place = |b: &mut tapesim::layout::CatalogBuilder, blk: u32, t: u16, s: u32| {
        b.place(
            BlockId(blk),
            PhysicalAddr {
                tape: TapeId(t),
                slot: SlotIndex(s),
            },
        )
        .unwrap();
    };
    place(&mut b, 0, 0, 100); // non-replicated anchor on tape 0
    place(&mut b, 1, 0, 120); // replicated block: near the anchor...
    place(&mut b, 1, 1, 5); // ...or on a fresh tape near BOT
    let catalog = b.build().unwrap();
    let timing = TimingModel::paper_default();
    let view = JukeboxView {
        catalog: &catalog,
        timing: &timing,
        mounted: Some(TapeId(0)),
        head: SlotIndex(0),
        now: SimTime::ZERO,
        unavailable: &[],
        offline: &[],
        fleet: tapesim::sched::FleetView::SINGLE,
    };
    let pending: Vec<Request> = (0..2)
        .map(|i| Request {
            id: RequestId(i),
            block: BlockId(i as u32),
            arrival: SimTime::ZERO,
        })
        .collect();
    let (env1, base) = envelope_after_absorb(&view, &pending);
    assert_eq!(env1, vec![101, 0, 0]);
    assert_eq!(base[1], None, "replicated block is unscheduled in S1");
    let upper = compute_upper_envelope(&view, &pending);
    let greedy = extension_cost(&view, &env1, &pending, &upper.assigned);
    let (opt, assign) = brute_force_optimal_extension(&view, &env1, &pending, &base);
    assert_eq!(greedy, opt, "single-request greedy must be optimal");
    // Extending tape 0 from 101 to 120 beats switching to tape 1.
    assert_eq!(assign[1], TapeId(0));
}
