//! Property-based tests over the placement, cost, and scheduling layers.

use proptest::prelude::*;

use tapesim::layout::{build_placement, LayoutKind, PlacementConfig, PlacementScheme};
use tapesim::model::{SimTime, SlotIndex};
use tapesim::prelude::*;
use tapesim::sched::envelope::compute_upper_envelope;
use tapesim::sched::{walk_cost, JukeboxView, PendingList};
use tapesim::workload::RequestId;

fn arb_layout() -> impl Strategy<Value = LayoutKind> {
    prop_oneof![Just(LayoutKind::Horizontal), Just(LayoutKind::Vertical)]
}

fn small_geometry() -> impl Strategy<Value = JukeboxGeometry> {
    (2u16..=10, 20u64..=120).prop_map(|(tapes, cap)| JukeboxGeometry::new(tapes, cap * 16))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Every feasible placement satisfies the catalog invariants: at most
    /// one copy of a block per tape, every block placed, capacity
    /// respected, hot blocks a prefix, and the analytic expansion factor
    /// close to the measured one.
    #[test]
    fn placement_invariants(
        geometry in small_geometry(),
        layout in arb_layout(),
        ph in 0.0f64..=40.0,
        nr_frac in 0.0f64..=1.0,
        sp in 0.0f64..=1.0,
    ) {
        let max_nr = geometry.tapes as u32 - 1;
        let nr = (nr_frac * max_nr as f64).floor() as u32;
        let block = BlockSize::PAPER_DEFAULT;
        let cfg = PlacementConfig { layout, ph_percent: ph, scheme: PlacementScheme::Replication { nr }, sp };
        let Ok(placed) = build_placement(geometry, block, cfg) else {
            // Vertical layouts can be infeasible when hot tapes leave no
            // room for distinct replicas; that is a valid outcome.
            return Ok(());
        };
        let c = &placed.catalog;
        prop_assert!(c.num_blocks() > 0);
        prop_assert!(c.total_copies() <= geometry.total_slots(block));
        for b in 0..c.num_blocks() {
            let replicas = c.replicas(BlockId(b));
            prop_assert!(!replicas.is_empty());
            // Sorted by tape with no duplicates = one copy per tape.
            for w in replicas.windows(2) {
                prop_assert!(w[0].tape < w[1].tape);
            }
            // Cold blocks are never replicated.
            if b >= c.hot_count() {
                prop_assert_eq!(replicas.len(), 1);
            } else if ph > 0.0 {
                prop_assert_eq!(replicas.len() as u32, 1 + nr);
            }
            // Every recorded copy is readable back through the slot map.
            for a in replicas {
                prop_assert_eq!(c.block_at(*a), Some(BlockId(b)));
            }
        }
        // Measured expansion tracks the analytic E (rounding slack only).
        let analytic = tapesim::layout::expansion_factor(nr, ph);
        prop_assert!((c.measured_expansion() - analytic).abs() < 0.05,
            "measured {} vs analytic {}", c.measured_expansion(), analytic);
    }

    /// Walk cost is additive-monotone: visiting a superset of stops (in
    /// the same order) never gets cheaper.
    #[test]
    fn walk_cost_monotone(
        stops in proptest::collection::vec(0u32..448, 1..30),
        head in 0u32..448,
    ) {
        let timing = TimingModel::paper_default();
        let block = BlockSize::PAPER_DEFAULT;
        let full: Vec<SlotIndex> = stops.iter().map(|&s| SlotIndex(s)).collect();
        let partial = &full[..full.len() - 1];
        let c_full = walk_cost(&timing, block, SlotIndex(head), full.iter().copied());
        let c_partial = walk_cost(&timing, block, SlotIndex(head), partial.iter().copied());
        prop_assert!(c_full >= c_partial);
    }

    /// The upper envelope covers every pending request: each request is
    /// assigned a tape that holds a copy of its block strictly inside
    /// that tape's envelope.
    #[test]
    fn envelope_covers_all_requests(
        seed in 0u64..1000,
        n in 1usize..60,
        rh in 0.0f64..=100.0,
    ) {
        let g = JukeboxGeometry::PAPER_DEFAULT;
        let placed = build_placement(
            g,
            BlockSize::PAPER_DEFAULT,
            PlacementConfig::paper_full_replication(g),
        ).unwrap();
        let sampler = BlockSampler::from_catalog(&placed.catalog, rh);
        let mut f = RequestFactory::new(
            sampler,
            ArrivalProcess::Closed { queue_length: n as u32 },
            seed,
        );
        let pending: Vec<Request> = (0..n).map(|_| f.make(SimTime::ZERO)).collect();
        let timing = TimingModel::paper_default();
        let view = JukeboxView {
            catalog: &placed.catalog,
            timing: &timing,
            mounted: None,
            head: SlotIndex(0),
            now: SimTime::ZERO,
            unavailable: &[],
            offline: &[],
            fleet: tapesim::sched::FleetView::SINGLE,
        };
        let upper = compute_upper_envelope(&view, &pending);
        prop_assert_eq!(upper.assigned.len(), pending.len());
        for (r, &tape) in pending.iter().zip(&upper.assigned) {
            let copy = placed.catalog.copy_on_tape(r.block, tape);
            prop_assert!(copy.is_some(), "assigned tape holds no copy");
            let slot = copy.unwrap().slot;
            prop_assert!(
                slot.0 < upper.env[tape.index()],
                "assigned copy at {slot} outside envelope {}",
                upper.env[tape.index()]
            );
        }
        // Counts are consistent with the assignment.
        let mut counts = vec![0u32; g.tapes as usize];
        for &t in &upper.assigned {
            counts[t.index()] += 1;
        }
        prop_assert_eq!(counts, upper.counts);
    }

    /// Every scheduler's major reschedule (a) picks a tape that can serve
    /// all the requests it extracts, (b) removes exactly those requests
    /// from the pending list, and (c) returns stops in valid sweep order.
    #[test]
    fn major_reschedule_contract(
        seed in 0u64..500,
        n in 1usize..50,
        alg_idx in 0usize..14,
    ) {
        let g = JukeboxGeometry::PAPER_DEFAULT;
        let placed = build_placement(
            g,
            BlockSize::PAPER_DEFAULT,
            PlacementConfig::paper_full_replication(g),
        ).unwrap();
        let alg = AlgorithmId::all()[alg_idx];
        let sampler = BlockSampler::from_catalog(&placed.catalog, 40.0);
        let mut f = RequestFactory::new(
            sampler,
            ArrivalProcess::Closed { queue_length: n as u32 },
            seed,
        );
        let mut pending: PendingList = (0..n).map(|_| f.make(SimTime::ZERO)).collect();
        let before = pending.len();
        let timing = TimingModel::paper_default();
        let view = JukeboxView {
            catalog: &placed.catalog,
            timing: &timing,
            mounted: None,
            head: SlotIndex(0),
            now: SimTime::ZERO,
            unavailable: &[],
            offline: &[],
            fleet: tapesim::sched::FleetView::SINGLE,
        };
        let mut sched = make_scheduler(alg);
        let plan = sched.major_reschedule(&view, &mut pending).expect("non-empty pending");
        let served = plan.list.requests();
        prop_assert!(served >= 1);
        prop_assert_eq!(served + pending.len(), before, "requests conserved");
        // All scheduled stops hold the blocks of their requests.
        let mut fwd_slots = Vec::new();
        for stop in plan.list.forward_stops() {
            fwd_slots.push(stop.slot);
            for r in &stop.requests {
                prop_assert_eq!(
                    placed.catalog.copy_on_tape(r.block, plan.tape).map(|a| a.slot),
                    Some(stop.slot)
                );
            }
        }
        // Forward phase strictly ascending (head starts at 0 here).
        for w in fwd_slots.windows(2) {
            prop_assert!(w[0] < w[1]);
        }
    }

    /// The effective hot-request probability degenerates correctly when a
    /// class is empty, for any requested RH.
    #[test]
    fn sampler_rh_degenerates_at_boundaries(rh in 0.0f64..=100.0, hot in 0u32..=500) {
        let s = BlockSampler::new(500, hot, rh);
        prop_assert_eq!(s.total(), 500);
        prop_assert_eq!(s.hot_count(), hot);
        if hot == 0 {
            prop_assert_eq!(s.rh_fraction(), 0.0);
        } else if hot == 500 {
            prop_assert_eq!(s.rh_fraction(), 1.0);
        } else {
            prop_assert!((s.rh_fraction() - rh / 100.0).abs() < 1e-12);
        }
    }
}

#[test]
fn request_ids_are_monotone_across_factory_use() {
    let g = JukeboxGeometry::PAPER_DEFAULT;
    let placed = build_placement(
        g,
        BlockSize::PAPER_DEFAULT,
        PlacementConfig::paper_baseline(),
    )
    .unwrap();
    let sampler = BlockSampler::from_catalog(&placed.catalog, 40.0);
    let mut f = RequestFactory::new(sampler, ArrivalProcess::Closed { queue_length: 5 }, 1);
    let ids: Vec<RequestId> = (0..100).map(|_| f.make(SimTime::ZERO).id).collect();
    for w in ids.windows(2) {
        assert!(w[0] < w[1]);
    }
}

mod extension_properties {
    use super::*;
    use tapesim::model::{
        logical_sweep_order, nearest_neighbor_order, SerpentineGeometry, SerpentineModel,
    };
    use tapesim::sim::SimConfig;
    use tapesim::workload::ZipfSampler;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        /// Serpentine orderings are permutations, and nearest-neighbor
        /// never costs more than the arrival order it starts from.
        #[test]
        fn serpentine_orders_are_sound(
            raw in proptest::collection::hash_set(0u32..400, 1..40),
        ) {
            let m = SerpentineModel {
                geometry: SerpentineGeometry::new(10, 160 * 4),
                ..SerpentineModel::dlt_like()
            };
            let block = BlockSize::PAPER_DEFAULT;
            let slots: Vec<SlotIndex> = raw.iter().map(|&s| SlotIndex(s)).collect();
            let nn = nearest_neighbor_order(&m, block, slots.clone());
            let sweep = logical_sweep_order(slots.clone());
            // Permutations of the input.
            let norm = |mut v: Vec<SlotIndex>| { v.sort_unstable(); v };
            prop_assert_eq!(norm(nn.clone()), norm(slots.clone()));
            prop_assert_eq!(norm(sweep.clone()), norm(slots.clone()));
            // Every order pays at least the pure transfer time.
            let reads_only = m.read_block(block) * slots.len() as u64;
            prop_assert!(m.service_time(&nn, block) >= reads_only);
            prop_assert!(m.service_time(&sweep, block) >= reads_only);
        }

        /// The Zipf CDF is strictly increasing and properly normalized,
        /// and top-mass is monotone in the prefix size.
        #[test]
        fn zipf_mass_is_monotone(total in 2u32..2000, theta in 0.0f64..3.0) {
            let z = ZipfSampler::new(total, theta);
            let mut prev = 0.0;
            for k in 1..=total.min(50) {
                let m = z.mass_of_top(k);
                prop_assert!(m > prev);
                prev = m;
            }
            prop_assert!((z.mass_of_top(total) - 1.0).abs() < 1e-9);
        }

        /// Engine accounting invariants hold for every algorithm on short
        /// runs: each physical read serves at least one request, and the
        /// busy+idle time fractions roughly cover the window.
        #[test]
        fn engine_accounting_invariants(
            alg_idx in 0usize..14,
            seed in 0u64..50,
            queue in 5u32..80,
        ) {
            let g = JukeboxGeometry::PAPER_DEFAULT;
            let placed = build_placement(
                g,
                BlockSize::PAPER_DEFAULT,
                PlacementConfig::paper_full_replication(g),
            ).unwrap();
            let timing = TimingModel::paper_default();
            let sampler = BlockSampler::from_catalog(&placed.catalog, 40.0);
            let mut factory = RequestFactory::new(
                sampler,
                ArrivalProcess::Closed { queue_length: queue },
                seed,
            );
            let alg = AlgorithmId::all()[alg_idx];
            let mut sched = make_scheduler(alg);
            let cfg = SimConfig {
                duration: tapesim::model::Micros::from_secs(30_000),
                warmup: tapesim::model::Micros::from_secs(2_000),
                max_pending: 5_000,
            };
            let r = tapesim::sim::run_simulation(
                &placed.catalog,
                &timing,
                sched.as_mut(),
                &mut factory,
                &cfg,
            )
            .expect("property run is valid");
            prop_assert!(r.completed >= r.physical_reads,
                "{}: {} completed < {} reads", alg.name(), r.completed, r.physical_reads);
            prop_assert!(r.physical_reads > 0, "{}", alg.name());
            let covered = r.locate_frac + r.read_frac + r.switch_frac + r.idle_frac;
            prop_assert!((covered - 1.0).abs() < 0.10,
                "{}: time coverage {covered}", alg.name());
            // A closed queue is never saturated.
            prop_assert!(!r.saturated);
        }
    }
}

mod spare_properties {
    use super::*;
    use tapesim::layout::{build_spare_layout, SpareConfig, SpareUse};

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(48))]

        /// Both spare-capacity schemes store the same logical data, never
        /// exceed capacity, never duplicate a block on one tape, and the
        /// replica-filled variant only ever adds hot copies.
        #[test]
        fn spare_layouts_are_sound(
            ph in 0.0f64..=30.0,
            fill in 0.05f64..=1.0,
            tapes in 2u16..=10,
        ) {
            let geometry = JukeboxGeometry::new(tapes, 7 * 1024);
            let block = BlockSize::PAPER_DEFAULT;
            let mk = |use_| build_spare_layout(
                geometry,
                block,
                SpareConfig { ph_percent: ph, fill_fraction: fill, spare_use: use_ },
            );
            let (Ok(packed), Ok(spread)) = (mk(SpareUse::LeaveEmpty), mk(SpareUse::FillWithReplicas)) else {
                // A single-tape-dominating hot set can make a scheme
                // infeasible; both failing together is acceptable.
                return Ok(());
            };
            // Identical logical contents.
            prop_assert_eq!(packed.catalog.num_blocks(), spread.catalog.num_blocks());
            prop_assert_eq!(packed.catalog.hot_count(), spread.catalog.hot_count());
            // Packed never replicates; spread only adds hot copies.
            prop_assert_eq!(
                packed.catalog.total_copies(),
                u64::from(packed.catalog.num_blocks())
            );
            prop_assert!(spread.catalog.total_copies() >= packed.catalog.total_copies());
            for c in [&packed.catalog, &spread.catalog] {
                prop_assert!(c.total_copies() <= geometry.total_slots(block));
                for b in 0..c.num_blocks() {
                    let replicas = c.replicas(BlockId(b));
                    for w in replicas.windows(2) {
                        prop_assert!(w[0].tape < w[1].tape, "two copies on one tape");
                    }
                    // Cold blocks are never replicated by either scheme.
                    if b >= c.hot_count() {
                        prop_assert_eq!(replicas.len(), 1);
                    }
                }
            }
            // Packed really packs: occupied tapes form a prefix, and all
            // but the last occupied tape are full.
            let slots = geometry.slots_per_tape(block);
            let used: Vec<u32> = geometry
                .tape_ids()
                .map(|t| packed.catalog.occupied_slots(t))
                .collect();
            let occupied = used.iter().filter(|&&u| u > 0).count();
            for (i, &u) in used.iter().enumerate() {
                if i + 1 < occupied {
                    prop_assert_eq!(u, slots, "tape {} not full in packed layout", i);
                }
                if i >= occupied {
                    prop_assert_eq!(u, 0, "hole in packed layout at tape {}", i);
                }
            }
        }
    }
}

mod fault_properties {
    use super::*;
    use tapesim::model::{Micros, TapeId};
    use tapesim::sim::RunSpec;

    /// Every admitted request is eventually served, counted as a
    /// permanent failure, or still unserved at the horizon — nothing is
    /// lost or double-counted, for any algorithm, drive count, and fault
    /// intensity.
    #[test]
    fn admitted_requests_are_conserved_under_faults() {
        let g = JukeboxGeometry::PAPER_DEFAULT;
        let placed = build_placement(
            g,
            BlockSize::PAPER_DEFAULT,
            PlacementConfig::paper_full_replication(g),
        )
        .unwrap();
        let timing = TimingModel::paper_default();
        let faults = FaultConfig {
            media_error_per_read: 0.03,
            media_retries: 1,
            load_failure_p: 0.01,
            load_retries: 1,
            tape_mtbf: Some(Micros::from_secs(150_000)),
            tape_mttr: Some(Micros::from_secs(10_000)),
            drive_mtbf: Some(Micros::from_secs(200_000)),
            drive_mttr: Micros::from_secs(3_000),
            copy_heal_mttr: None,
        };
        for alg in [
            AlgorithmId::Fifo,
            AlgorithmId::Dynamic(TapeSelectPolicy::MaxBandwidth),
            AlgorithmId::paper_recommended(),
        ] {
            for drives in [1u16, 2] {
                let spec = RunSpec {
                    catalog: &placed.catalog,
                    timing: &timing,
                    algorithm: alg,
                    process: ArrivalProcess::Closed { queue_length: 50 },
                    rh_percent: 40.0,
                    cluster_run_p: 0.0,
                    drives,
                    config: SimConfig::quick(),
                    faults,
                };
                let r = tapesim::sim::run_one(&spec, 11).expect("faulty run is valid");
                assert_eq!(
                    r.admitted,
                    r.served + r.failed_requests + r.unserved,
                    "{} with {} drives: {} admitted vs {} served + {} failed + {} unserved",
                    alg.name(),
                    drives,
                    r.admitted,
                    r.served,
                    r.failed_requests,
                    r.unserved
                );
                assert!(r.completed > 0, "{} made no progress", alg.name());
            }
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        /// No scheduling algorithm ever plans a sweep on an offline tape,
        /// whatever subset of the jukebox is down.
        #[test]
        fn no_sweep_plan_targets_an_offline_tape(
            seed in 0u64..200,
            n in 1usize..40,
            alg_idx in 0usize..14,
            mask in 1u16..1023,
        ) {
            let g = JukeboxGeometry::PAPER_DEFAULT;
            let placed = build_placement(
                g,
                BlockSize::PAPER_DEFAULT,
                PlacementConfig::paper_full_replication(g),
            ).unwrap();
            // An arbitrary non-full subset of the 10 tapes is offline.
            let offline: Vec<TapeId> = (0..g.tapes)
                .filter(|t| mask & (1 << t) != 0)
                .map(TapeId)
                .collect();
            let sampler = BlockSampler::from_catalog(&placed.catalog, 40.0);
            let mut f = RequestFactory::new(
                sampler,
                ArrivalProcess::Closed { queue_length: n as u32 },
                seed,
            );
            let mut pending: PendingList = (0..n).map(|_| f.make(SimTime::ZERO)).collect();
            let timing = TimingModel::paper_default();
            let view = JukeboxView {
                catalog: &placed.catalog,
                timing: &timing,
                mounted: None,
                head: SlotIndex(0),
                now: SimTime::ZERO,
                unavailable: &[],
                offline: &offline,
                fleet: tapesim::sched::FleetView::SINGLE,
            };
            let mut sched = make_scheduler(AlgorithmId::all()[alg_idx]);
            if let Some(plan) = sched.major_reschedule(&view, &mut pending) {
                prop_assert!(
                    !offline.contains(&plan.tape),
                    "{} chose offline tape {:?}",
                    AlgorithmId::all()[alg_idx].name(),
                    plan.tape
                );
                prop_assert!(plan.list.requests() >= 1);
            }
        }
    }
}
