//! Smoke tests over every figure driver at quick scale: each must
//! produce the right number of series/points with sane metrics, for both
//! queuing models. These are the same code paths the `tapesim-bench`
//! binaries print, so a green run here means the whole evaluation
//! regenerates.

use tapesim::Scale;
use tapesim::SweepSeries;

fn check_series(name: &str, series: &[SweepSeries], expect_series: usize, expect_points: usize) {
    assert_eq!(series.len(), expect_series, "{name}: series count");
    for s in series {
        assert_eq!(
            s.points.len(),
            expect_points,
            "{name}/{}: point count",
            s.label
        );
        for p in &s.points {
            assert!(
                p.report.completed > 0,
                "{name}/{} at {}: no completions",
                s.label,
                p.param
            );
            assert!(p.report.throughput_kb_per_s > 0.0);
        }
    }
    // Labels are unique.
    let mut labels: Vec<&str> = series.iter().map(|s| s.label.as_str()).collect();
    labels.sort_unstable();
    labels.dedup();
    assert_eq!(labels.len(), expect_series, "{name}: duplicate labels");
}

#[test]
fn fig1_refit_recovers_the_model() {
    let data = tapesim::fig1_locate_model(2130, 7);
    assert_eq!(data.samples.len(), 2130);
    let truth = &data.drive.locate;
    // Within 10% on every coefficient.
    let close = |fit: f64, truth: f64| (fit - truth).abs() / truth < 0.10;
    assert!(close(data.forward.0.intercept, truth.fwd_short.startup_s));
    assert!(close(data.forward.0.slope, truth.fwd_short.per_mb_s));
    assert!(close(data.forward.1.intercept, truth.fwd_long.startup_s));
    assert!(close(data.forward.1.slope, truth.fwd_long.per_mb_s));
    assert!(close(data.reverse.1.slope, truth.rev_long.per_mb_s));
    assert!(data.forward.1.r_squared > 0.95);
}

#[test]
fn validation_table_magnitudes() {
    let v = tapesim::model_validation();
    assert_eq!(v.walks.len(), 10);
    assert!(v.mean_locate_rel_err < 0.02);
    assert!(v.mean_read_rel_err < 0.10);
}

#[test]
fn fig3_shapes() {
    let series = tapesim::fig3_transfer_size(Scale::Quick, false);
    check_series("fig3", &series, 4, 7);
    // Throughput is monotone in block size for every intensity, and the
    // 16 MB point is far above the 1 MB point.
    for s in &series {
        for w in s.points.windows(2) {
            assert!(
                w[1].report.throughput_kb_per_s > w[0].report.throughput_kb_per_s,
                "fig3/{}: throughput not monotone in block size",
                s.label
            );
        }
        let t1 = s.points[0].report.throughput_kb_per_s;
        let t16 = s.points[4].report.throughput_kb_per_s;
        assert!(t16 > 5.0 * t1, "fig3/{}: 16MB {t16} vs 1MB {t1}", s.label);
    }
}

#[test]
fn fig4_shapes() {
    let series = tapesim::fig4_sched_algorithms(Scale::Quick, false);
    check_series("fig4", &series, 11, 4);
    // FIFO throughput is flat in queue length (vertical line).
    let fifo = series.iter().find(|s| s.label == "fifo").unwrap();
    let t0 = fifo.points.first().unwrap().report.throughput_kb_per_s;
    let tn = fifo.points.last().unwrap().report.throughput_kb_per_s;
    assert!((tn - t0).abs() / t0 < 0.02, "fifo not flat: {t0} vs {tn}");
    // ...while its delay keeps growing.
    assert!(
        fifo.points.last().unwrap().report.mean_delay_s
            > 3.0 * fifo.points.first().unwrap().report.mean_delay_s
    );
}

#[test]
fn fig5_and_fig7_shapes() {
    let f5 = tapesim::fig5_placement(Scale::Quick, false);
    check_series("fig5", &f5, 6, 4);
    assert!(f5.iter().any(|s| s.label == "vertical"));

    let f7 = tapesim::fig7_replica_placement(Scale::Quick, false);
    check_series("fig7", &f7, 5, 4);
}

#[test]
fn fig6_replication_is_monotone() {
    let series = tapesim::fig6_replicas(Scale::Quick, false);
    check_series("fig6", &series, 3, 4);
    // At every intensity, NR-9 beats NR-0 on throughput and switches.
    let nr0 = &series[0];
    let nr9 = series.last().unwrap();
    for (a, b) in nr0.points.iter().zip(&nr9.points) {
        assert!(b.report.throughput_kb_per_s > a.report.throughput_kb_per_s);
        assert!(b.report.tape_switches < a.report.tape_switches);
    }
}

#[test]
fn fig8_envelope_beats_dynamic() {
    let series = tapesim::fig8_sched_replication(Scale::Quick, false);
    check_series("fig8", &series, 9, 4);
    let get = |n: &str| {
        series
            .iter()
            .find(|s| s.label == n)
            .unwrap_or_else(|| panic!("missing {n}"))
    };
    // At moderate load (queue 60 = index 1).
    let env = &get("envelope max-bandwidth").points[1].report;
    let dynamic = &get("dynamic max-bandwidth").points[1].report;
    assert!(
        env.throughput_kb_per_s > dynamic.throughput_kb_per_s,
        "envelope {:.1} <= dynamic {:.1}",
        env.throughput_kb_per_s,
        dynamic.throughput_kb_per_s
    );
}

#[test]
fn fig9_skew_helps() {
    let series = tapesim::fig9_skew(Scale::Quick, false);
    check_series("fig9", &series, 8, 4);
    // Non-replicated: RH-80 beats RH-20 at every intensity.
    let lo = series.iter().find(|s| s.label == "RH-20 no-repl").unwrap();
    let hi = series.iter().find(|s| s.label == "RH-80 no-repl").unwrap();
    for (a, b) in lo.points.iter().zip(&hi.points) {
        assert!(b.report.throughput_kb_per_s > a.report.throughput_kb_per_s);
    }
}

#[test]
fn fig10_cost_performance_shapes() {
    let rows = tapesim::fig10a_expansion();
    assert_eq!(rows.len(), 4);
    let curves = tapesim::fig10b_cost_performance(Scale::Quick, 60);
    assert_eq!(curves.len(), 4);
    for c in &curves {
        assert_eq!(c.points.first().unwrap().nr, 0);
        assert!((c.points.first().unwrap().ratio - 1.0).abs() < 1e-9);
        // Queue scales down with expansion.
        let last = c.points.last().unwrap();
        assert!(last.queue < 60);
        assert!(last.ratio > 0.5 && last.ratio < 2.0);
    }
    // Very high skew benefits more from replication than moderate skew.
    let moderate = curves[0].points.last().unwrap().ratio;
    let very_high = curves[3].points.last().unwrap().ratio;
    assert!(
        very_high > moderate,
        "cost-performance: RH-95 {very_high:.3} vs RH-40 {moderate:.3}"
    );
}

#[test]
fn open_variants_run() {
    // One open-queuing sweep per family of figures; underloaded points
    // must not saturate.
    let f4 = tapesim::fig4_sched_algorithms(Scale::Quick, true);
    check_series("fig4-open", &f4, 11, 4);
    let lightest = &f4
        .iter()
        .find(|s| s.label == "dynamic max-bandwidth")
        .unwrap()
        .points[0];
    assert!(!lightest.report.saturated);
}
