//! Differential tests: the multi-drive engine restricted to **one** drive
//! must be indistinguishable from the single-drive engine — the same
//! requests complete at the same instants in the same order, and the
//! metrics reports agree field-for-field.
//!
//! The comparison uses closed workloads: an open-queuing multi-drive run
//! wakes an idle drive one microsecond after the next arrival (a
//! scheduling quantum the single-drive engine does not need), so open
//! traces legitimately diverge by that microsecond.

use tapesim::layout::{build_placement, PlacementConfig, PlacementScheme};
use tapesim::model::{BlockSize, FaultConfig, JukeboxGeometry, TimingModel};
use tapesim::sched::{make_scheduler, AlgorithmId, EnvelopePolicy, TapeSelectPolicy};
use tapesim::sim::{
    check_trace, run_multi_drive_traced, run_simulation_traced, MemorySink, MetricsReport,
    SimConfig, TraceEvent, TraceRecord,
};
use tapesim::workload::{ArrivalProcess, BlockSampler, RequestFactory};

/// `(completion instant µs, request id)` for every completion, in trace
/// order.
fn completions(trace: &[TraceRecord]) -> Vec<(u64, u64)> {
    trace
        .iter()
        .filter_map(|r| match r.event {
            TraceEvent::Complete { req, .. } => Some((r.at.as_micros(), req.0)),
            _ => None,
        })
        .collect()
}

/// A run's aggregate report plus its completion sequence.
type RunOutcome = (MetricsReport, Vec<(u64, u64)>);

fn run_both(algorithm: AlgorithmId, seed: u64) -> (RunOutcome, RunOutcome) {
    let placed = build_placement(
        JukeboxGeometry::PAPER_DEFAULT,
        BlockSize::PAPER_DEFAULT,
        PlacementConfig::paper_baseline(),
    )
    .unwrap();
    let timing = TimingModel::paper_default();
    let cfg = SimConfig::quick();
    let process = ArrivalProcess::Closed { queue_length: 40 };

    let mk_factory = || {
        let sampler = BlockSampler::from_catalog(&placed.catalog, 40.0);
        RequestFactory::new(sampler, process, seed)
    };

    let mut single_sink = MemorySink::default();
    let single = {
        let mut factory = mk_factory();
        let mut sched = make_scheduler(algorithm);
        run_simulation_traced(
            &placed.catalog,
            &timing,
            sched.as_mut(),
            &mut factory,
            &cfg,
            &FaultConfig::NONE,
            0,
            &mut single_sink,
        )
        .unwrap()
    };

    let mut multi_sink = MemorySink::default();
    let multi = {
        let mut factory = mk_factory();
        let mut sched = make_scheduler(algorithm);
        run_multi_drive_traced(
            &placed.catalog,
            &timing,
            sched.as_mut(),
            &mut factory,
            &cfg,
            1,
            &FaultConfig::NONE,
            0,
            &mut multi_sink,
        )
        .unwrap()
    };

    let single_trace = single_sink.into_events();
    let multi_trace = multi_sink.into_events();
    check_trace(&single_trace).unwrap_or_else(|v| {
        panic!("single-drive trace invalid for {algorithm:?}: {}", v[0]);
    });
    check_trace(&multi_trace).unwrap_or_else(|v| {
        panic!("one-drive multi trace invalid for {algorithm:?}: {}", v[0]);
    });
    (
        (single, completions(&single_trace)),
        (multi, completions(&multi_trace)),
    )
}

#[test]
fn one_drive_multidrive_matches_engine_exactly() {
    let algorithms = [
        AlgorithmId::Fifo,
        AlgorithmId::Dynamic(TapeSelectPolicy::MaxBandwidth),
        AlgorithmId::Envelope(EnvelopePolicy::MaxBandwidth),
    ];
    for algorithm in algorithms {
        for seed in [1u64, 42, 0x1CDE_1999] {
            let ((single, single_done), (multi, multi_done)) = run_both(algorithm, seed);
            assert!(
                !single_done.is_empty(),
                "{algorithm:?} seed {seed}: no completions"
            );
            assert_eq!(
                single_done, multi_done,
                "{algorithm:?} seed {seed}: completion sequences diverge"
            );
            assert_eq!(
                single, multi,
                "{algorithm:?} seed {seed}: metrics reports diverge"
            );
        }
    }
}

#[test]
fn one_drive_differential_holds_under_replication() {
    // Replicated placement exercises the replica-selection path in both
    // engines; the envelope scheduler is the one that uses it.
    let placed = build_placement(
        JukeboxGeometry::PAPER_DEFAULT,
        BlockSize::PAPER_DEFAULT,
        PlacementConfig {
            scheme: PlacementScheme::Replication { nr: 1 },
            ..PlacementConfig::paper_baseline()
        },
    )
    .unwrap();
    let timing = TimingModel::paper_default();
    let cfg = SimConfig::quick();
    let algorithm = AlgorithmId::paper_recommended();
    for seed in [7u64, 99] {
        let mk_factory = || {
            let sampler = BlockSampler::from_catalog(&placed.catalog, 40.0);
            RequestFactory::new(sampler, ArrivalProcess::Closed { queue_length: 40 }, seed)
        };
        let mut single_sink = MemorySink::default();
        let mut factory = mk_factory();
        let mut sched = make_scheduler(algorithm);
        let single = run_simulation_traced(
            &placed.catalog,
            &timing,
            sched.as_mut(),
            &mut factory,
            &cfg,
            &FaultConfig::NONE,
            0,
            &mut single_sink,
        )
        .unwrap();
        let mut multi_sink = MemorySink::default();
        let mut factory = mk_factory();
        let mut sched = make_scheduler(algorithm);
        let multi = run_multi_drive_traced(
            &placed.catalog,
            &timing,
            sched.as_mut(),
            &mut factory,
            &cfg,
            1,
            &FaultConfig::NONE,
            0,
            &mut multi_sink,
        )
        .unwrap();
        assert_eq!(
            completions(&single_sink.into_events()),
            completions(&multi_sink.into_events()),
            "seed {seed}: replicated completion sequences diverge"
        );
        assert_eq!(single, multi, "seed {seed}: replicated reports diverge");
    }
}
