//! The workspace's pinned pseudo-random number generator, exposed under
//! a `rand`-compatible API (`StdRng`, `SeedableRng::seed_from_u64`,
//! `Rng::gen`, `Rng::gen_range` — exactly the surface the simulator
//! uses).
//!
//! This is a deliberate in-tree implementation, not a packaging
//! workaround: every golden trace, `results/` CSV, and checkpoint
//! stream-fingerprint in this repository is a function of the exact
//! `u64` stream produced here (SplitMix64). Depending on the registry
//! `rand` crate would tie those artifacts to its internal algorithms,
//! which are not guaranteed stable across versions; pinning the
//! generator in-tree makes the byte-identical-reproduction contract
//! independent of any upstream release, keeps
//! the workspace building with zero registry dependencies, and reduces
//! the supply-chain surface to this repository itself. Statistical
//! properties (uniformity, independence) hold; the sequences differ
//! from the registry crate of the same name. See README "Vendored
//! dependencies".

pub mod rngs {
    /// SplitMix64-based stand-in for the real `StdRng`.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        pub(crate) state: u64,
    }
}

pub trait SeedableRng: Sized {
    fn seed_from_u64(seed: u64) -> Self;
}

impl SeedableRng for rngs::StdRng {
    fn seed_from_u64(seed: u64) -> Self {
        rngs::StdRng {
            state: seed ^ 0x9E37_79B9_7F4A_7C15,
        }
    }
}

impl rngs::StdRng {
    fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

pub trait SampleUniform: Copy {
    fn sample_range(rng: &mut rngs::StdRng, lo: Self, hi: Self, inclusive: bool) -> Self;
}

macro_rules! impl_int_uniform {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_range(rng: &mut rngs::StdRng, lo: Self, hi: Self, inclusive: bool) -> Self {
                let span = if inclusive {
                    (hi as u128).wrapping_sub(lo as u128).wrapping_add(1)
                } else {
                    (hi as u128) - (lo as u128)
                };
                if span == 0 {
                    // Empty exclusive range is a caller bug; full inclusive
                    // wrap means "any value".
                    return lo;
                }
                let v = (rng.next_u64() as u128) % span;
                lo.wrapping_add(v as $t)
            }
        }
    )*};
}
impl_int_uniform!(u16, u32, u64, usize, i32, i64);

impl SampleUniform for f64 {
    fn sample_range(rng: &mut rngs::StdRng, lo: Self, hi: Self, _inclusive: bool) -> Self {
        let u = (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
        lo + u * (hi - lo)
    }
}

pub trait SampleRange<T> {
    fn sample_single(self, rng: &mut rngs::StdRng) -> T;
}

impl<T: SampleUniform> SampleRange<T> for std::ops::Range<T> {
    fn sample_single(self, rng: &mut rngs::StdRng) -> T {
        T::sample_range(rng, self.start, self.end, false)
    }
}

impl<T: SampleUniform> SampleRange<T> for std::ops::RangeInclusive<T> {
    fn sample_single(self, rng: &mut rngs::StdRng) -> T {
        let (lo, hi) = self.into_inner();
        T::sample_range(rng, lo, hi, true)
    }
}

pub trait Randomizable {
    fn random(rng: &mut rngs::StdRng) -> Self;
}

impl Randomizable for f64 {
    fn random(rng: &mut rngs::StdRng) -> Self {
        (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}

impl Randomizable for u64 {
    fn random(rng: &mut rngs::StdRng) -> Self {
        rng.next_u64()
    }
}

impl Randomizable for bool {
    fn random(rng: &mut rngs::StdRng) -> Self {
        rng.next_u64() & 1 == 1
    }
}

pub trait Rng {
    fn gen<T: Randomizable>(&mut self) -> T;
    fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T;
}

impl Rng for rngs::StdRng {
    fn gen<T: Randomizable>(&mut self) -> T {
        T::random(self)
    }
    fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T {
        range.sample_single(self)
    }
}
