//! In-tree property-testing harness with a `proptest`-compatible macro
//! surface, implementing exactly the subset this workspace uses: the
//! `proptest!` macro (seeded randomized case loop, no shrinking),
//! range/tuple/map/oneof/just strategies, `collection::vec`,
//! `collection::hash_set`, `option::of`, and the `prop_assert*` macros.
//!
//! Case generation is driven by a deterministic per-test SplitMix64
//! stream seeded from the test name, so a failing case reproduces under
//! plain `cargo test` with no persistence files. The `PROPTEST_CASES`
//! environment variable overrides the default case count; an explicit
//! `with_cases` wins over it, matching the registry crate's precedence.
//! Kept in-tree so the
//! test suites build with zero registry dependencies and the generated
//! case streams are pinned by this repository rather than an upstream
//! release; see README "Vendored dependencies".

pub mod test_runner {
    /// Deterministic SplitMix64 generator driving case generation.
    #[derive(Debug, Clone)]
    pub struct StubRng {
        state: u64,
    }

    impl StubRng {
        pub fn new(seed: u64) -> Self {
            StubRng {
                state: seed ^ 0x9E37_79B9_7F4A_7C15,
            }
        }

        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }

        pub fn next_f64(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
        }

        pub fn below(&mut self, n: u64) -> u64 {
            if n == 0 {
                0
            } else {
                self.next_u64() % n
            }
        }
    }

    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        pub cases: u32,
    }

    impl ProptestConfig {
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }

    impl Default for ProptestConfig {
        /// 256 cases, overridable via the `PROPTEST_CASES` environment
        /// variable (an explicit [`ProptestConfig::with_cases`] wins,
        /// matching the registry crate's precedence).
        fn default() -> Self {
            let cases = std::env::var("PROPTEST_CASES")
                .ok()
                .and_then(|v| v.parse().ok())
                .unwrap_or(256);
            ProptestConfig { cases }
        }
    }

    #[derive(Debug)]
    pub struct TestCaseError(pub String);

    impl TestCaseError {
        pub fn fail(msg: String) -> Self {
            TestCaseError(msg)
        }
    }

    impl std::fmt::Display for TestCaseError {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            write!(f, "{}", self.0)
        }
    }
}

pub mod strategy {
    use crate::test_runner::StubRng;

    pub trait Strategy {
        type Value;
        fn generate(&self, rng: &mut StubRng) -> Self::Value;

        fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
        {
            Map { inner: self, f }
        }

        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
        {
            BoxedStrategy(Box::new(self))
        }
    }

    pub struct BoxedStrategy<T>(pub Box<dyn Strategy<Value = T>>);

    impl<T> Strategy for BoxedStrategy<T> {
        type Value = T;
        fn generate(&self, rng: &mut StubRng) -> T {
            self.0.generate(rng)
        }
    }

    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn generate(&self, _rng: &mut StubRng) -> T {
            self.0.clone()
        }
    }

    pub struct Map<S, F> {
        pub(crate) inner: S,
        pub(crate) f: F,
    }

    impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
        type Value = O;
        fn generate(&self, rng: &mut StubRng) -> O {
            (self.f)(self.inner.generate(rng))
        }
    }

    pub struct OneOf<T>(pub Vec<BoxedStrategy<T>>);

    impl<T> Strategy for OneOf<T> {
        type Value = T;
        fn generate(&self, rng: &mut StubRng) -> T {
            let i = rng.below(self.0.len() as u64) as usize;
            self.0[i].generate(rng)
        }
    }

    pub trait RangeSample: Copy {
        fn sample_exclusive(rng: &mut StubRng, lo: Self, hi: Self) -> Self;
        fn sample_inclusive(rng: &mut StubRng, lo: Self, hi: Self) -> Self;
    }

    macro_rules! impl_range_sample_int {
        ($($t:ty),*) => {$(
            impl RangeSample for $t {
                fn sample_exclusive(rng: &mut StubRng, lo: Self, hi: Self) -> Self {
                    let span = (hi as u128) - (lo as u128);
                    lo + rng.below(span.min(u64::MAX as u128) as u64) as $t
                }
                fn sample_inclusive(rng: &mut StubRng, lo: Self, hi: Self) -> Self {
                    let span = (hi as u128) - (lo as u128) + 1;
                    lo + rng.below(span.min(u64::MAX as u128) as u64) as $t
                }
            }
        )*};
    }
    impl_range_sample_int!(u16, u32, u64, usize);

    impl RangeSample for f64 {
        fn sample_exclusive(rng: &mut StubRng, lo: Self, hi: Self) -> Self {
            lo + rng.next_f64() * (hi - lo)
        }
        fn sample_inclusive(rng: &mut StubRng, lo: Self, hi: Self) -> Self {
            lo + rng.next_f64() * (hi - lo)
        }
    }

    impl<T: RangeSample> Strategy for std::ops::Range<T> {
        type Value = T;
        fn generate(&self, rng: &mut StubRng) -> T {
            T::sample_exclusive(rng, self.start, self.end)
        }
    }

    impl<T: RangeSample> Strategy for std::ops::RangeInclusive<T> {
        type Value = T;
        fn generate(&self, rng: &mut StubRng) -> T {
            T::sample_inclusive(rng, *self.start(), *self.end())
        }
    }

    macro_rules! impl_tuple_strategy {
        ($(($($s:ident / $idx:tt),+))*) => {$(
            impl<$($s: Strategy),+> Strategy for ($($s,)+) {
                type Value = ($($s::Value,)+);
                fn generate(&self, rng: &mut StubRng) -> Self::Value {
                    ($(self.$idx.generate(rng),)+)
                }
            }
        )*};
    }
    impl_tuple_strategy! {
        (A/0, B/1)
        (A/0, B/1, C/2)
        (A/0, B/1, C/2, D/3)
        (A/0, B/1, C/2, D/3, E/4)
    }
}

pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::StubRng;
    use std::collections::HashSet;
    use std::hash::Hash;

    pub trait SizeRange {
        fn pick(&self, rng: &mut StubRng) -> usize;
    }

    impl SizeRange for usize {
        fn pick(&self, _rng: &mut StubRng) -> usize {
            *self
        }
    }

    impl SizeRange for std::ops::Range<usize> {
        fn pick(&self, rng: &mut StubRng) -> usize {
            self.start + rng.below((self.end - self.start) as u64) as usize
        }
    }

    impl SizeRange for std::ops::RangeInclusive<usize> {
        fn pick(&self, rng: &mut StubRng) -> usize {
            self.start() + rng.below((self.end() - self.start() + 1) as u64) as usize
        }
    }

    pub struct VecStrategy<S, R> {
        element: S,
        size: R,
    }

    pub fn vec<S: Strategy, R: SizeRange>(element: S, size: R) -> VecStrategy<S, R> {
        VecStrategy { element, size }
    }

    impl<S: Strategy, R: SizeRange> Strategy for VecStrategy<S, R> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut StubRng) -> Self::Value {
            let n = self.size.pick(rng);
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }

    pub struct HashSetStrategy<S, R> {
        element: S,
        size: R,
    }

    pub fn hash_set<S, R>(element: S, size: R) -> HashSetStrategy<S, R>
    where
        S: Strategy,
        S::Value: Eq + Hash,
        R: SizeRange,
    {
        HashSetStrategy { element, size }
    }

    impl<S, R> Strategy for HashSetStrategy<S, R>
    where
        S: Strategy,
        S::Value: Eq + Hash,
        R: SizeRange,
    {
        type Value = HashSet<S::Value>;
        fn generate(&self, rng: &mut StubRng) -> Self::Value {
            let target = self.size.pick(rng);
            let mut set = HashSet::new();
            // The element domain may be smaller than the target; bail out
            // after enough duplicate draws.
            for _ in 0..target.saturating_mul(20).max(64) {
                if set.len() >= target {
                    break;
                }
                set.insert(self.element.generate(rng));
            }
            set
        }
    }
}

pub mod option {
    use crate::strategy::Strategy;
    use crate::test_runner::StubRng;

    pub struct OptionStrategy<S>(S);

    pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
        OptionStrategy(inner)
    }

    impl<S: Strategy> Strategy for OptionStrategy<S> {
        type Value = Option<S::Value>;
        fn generate(&self, rng: &mut StubRng) -> Self::Value {
            if rng.below(4) == 0 {
                None
            } else {
                Some(self.0.generate(rng))
            }
        }
    }
}

pub mod prelude {
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_oneof, proptest};
}

#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl!{ $cfg; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl!{ $crate::test_runner::ProptestConfig::default(); $($rest)* }
    };
}

#[macro_export]
macro_rules! __proptest_impl {
    ($cfg:expr; $(
        $(#[$meta:meta])*
        fn $name:ident( $($arg:ident in $strat:expr),* $(,)? ) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let __config = $cfg;
            let mut __rng = $crate::test_runner::StubRng::new(
                stringify!($name).bytes().fold(0u64, |h, b| {
                    h.wrapping_mul(31).wrapping_add(b as u64)
                }),
            );
            for __case in 0..__config.cases {
                $(let $arg = $crate::strategy::Strategy::generate(&($strat), &mut __rng);)*
                let __outcome: ::std::result::Result<(), $crate::test_runner::TestCaseError> =
                    (|| { $body ::std::result::Result::Ok(()) })();
                if let ::std::result::Result::Err(e) = __outcome {
                    panic!("proptest case {} of {}: {}", __case, stringify!($name), e);
                }
            }
        }
    )*};
}

#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!("assertion failed: {}", stringify!($cond)),
            ));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!($($fmt)+),
            ));
        }
    };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => {{
        let (left, right) = (&$a, &$b);
        if !(left == right) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!("assertion failed: {:?} != {:?}", left, right),
            ));
        }
    }};
    ($a:expr, $b:expr, $($fmt:tt)+) => {{
        let (left, right) = (&$a, &$b);
        if !(left == right) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!($($fmt)+),
            ));
        }
    }};
}

#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::OneOf(vec![
            $($crate::strategy::Strategy::boxed($strat)),+
        ])
    };
}
