//! In-tree single-pass bench runner with a `criterion`-compatible API:
//! compiles the workspace benches and runs each closure once, with no
//! statistics. The benches under `crates/bench/benches/` double as
//! compile-and-smoke coverage of the hot paths; the measured regression
//! gate is the dependency-free `perf` binary (README "Performance"),
//! not this crate. Kept in-tree so `cargo bench` works with zero
//! registry dependencies; see README "Vendored dependencies".

pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

#[derive(Debug, Clone, Copy)]
pub enum BatchSize {
    SmallInput,
    LargeInput,
    PerIteration,
}

#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    Elements(u64),
    Bytes(u64),
}

pub struct BenchmarkId(String);

impl BenchmarkId {
    pub fn from_parameter<D: std::fmt::Display>(p: D) -> Self {
        BenchmarkId(p.to_string())
    }
    pub fn new<D: std::fmt::Display>(name: &str, p: D) -> Self {
        BenchmarkId(format!("{name}/{p}"))
    }
}

pub struct Bencher;

impl Bencher {
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        black_box(f());
    }

    pub fn iter_batched<I, O, S, F>(&mut self, mut setup: S, mut routine: F, _size: BatchSize)
    where
        S: FnMut() -> I,
        F: FnMut(I) -> O,
    {
        black_box(routine(setup()));
    }
}

#[derive(Default)]
pub struct Criterion;

impl Criterion {
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) -> &mut Self {
        eprintln!("bench {name}: single pass (offline stub)");
        f(&mut Bencher);
        self
    }

    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup {
        BenchmarkGroup {
            name: name.to_string(),
        }
    }
}

pub struct BenchmarkGroup {
    name: String,
}

impl BenchmarkGroup {
    pub fn throughput(&mut self, _t: Throughput) -> &mut Self {
        self
    }

    pub fn bench_with_input<I, F>(&mut self, id: BenchmarkId, input: &I, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        eprintln!("bench {}/{}: single pass (offline stub)", self.name, id.0);
        f(&mut Bencher, input);
        self
    }

    pub fn finish(self) {}
}

#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut c = $crate::Criterion;
            $($target(&mut c);)+
        }
    };
}

#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
