//! Deterministic chaos soak over the stepped core and the service layer
//! (see the `chaos` binary).
//!
//! Each seed drives two independent torture cycles, every schedule
//! derived from the seed through a SplitMix64 stream (no ambient
//! randomness, no wall clock):
//!
//! 1. **Service soak** — a [`JukeboxService`] over the external-arrival
//!    stepped multi-drive core is fed a seeded schedule of request
//!    bursts (some deliberately larger than the admission queue),
//!    transient media faults that heal mid-run, tape failure/repair
//!    cycles, and administrative drive offline/online flips — including
//!    occasional last-drive loss. The run is then replayed from the same
//!    seed and must reproduce a **byte-identical JSONL trace** and
//!    exactly equal reports.
//! 2. **Kill-9 / checkpoint-resume cycle** — a generated-arrival stepped
//!    run writes periodic checkpoints (the PR 5 seam), is abandoned
//!    mid-flight without any cleanup (the in-process equivalent of
//!    `kill -9`), and is resumed from the file left on disk. The resumed
//!    run must land on exactly the uninterrupted run's report, and its
//!    trace must be byte-identical to the uninterrupted trace's suffix
//!    from the checkpoint's sequence number on.
//!
//! Invariants asserted per seed, all violations fatal:
//!
//! - **Conservation** — every submission is exactly one of completed /
//!   rejected / expired: aggregate ([`ServiceStats::check_conservation`])
//!   *and* per ticket (no ticket is left queued or awaiting retry after
//!   drain), and the engine-side balance `admitted == served + failed +
//!   unserved + cancelled` holds for both phases.
//! - **Trace invariants** — the service trace passes the §2.2 checker
//!   ([`tapesim::sim::check_trace`]): mount state machine, sweep
//!   ordering, request conservation.
//! - **Bit-identical replay** — same seed, same bytes, for both the
//!   service trace and the resumed checkpoint suffix.

use std::path::{Path, PathBuf};

use tapesim::layout::{
    build_placement, BlockId, Catalog, LayoutKind, PlacementConfig, PlacementScheme,
};
use tapesim::model::{BlockSize, FaultConfig, JukeboxGeometry, Micros, SimTime, TimingModel};
use tapesim::sched::{make_scheduler, AlgorithmId, EnvelopePolicy, TapeSelectPolicy};
use tapesim::sim::checkpoint::{self, CheckpointOpts};
use tapesim::sim::trace::jsonl;
use tapesim::sim::{
    check_trace, run_multi_drive_traced, AdmissionPolicy, JukeboxService, MemorySink,
    MetricsReport, ServiceConfig, ServiceStats, SimError, StepOutcome, SteppedMultiDrive,
    TicketState, TraceRecord,
};
use tapesim::workload::{ArrivalProcess, BlockSampler, RequestFactory};
use tapesim::Scale;

/// Options of one soak invocation.
#[derive(Debug, Clone)]
pub struct ChaosConfig {
    /// Number of seeds to run.
    pub seeds: u64,
    /// First seed; seed `i` of the soak is `seed_base + i`.
    pub seed_base: u64,
    /// Simulation scale of every run.
    pub scale: Scale,
    /// Directory for the checkpoint files of the kill-9 cycles.
    pub workdir: PathBuf,
}

/// Per-seed summary of a clean (violation-free) soak cycle.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SeedReport {
    /// The seed.
    pub seed: u64,
    /// Service submissions (including rejected ones).
    pub submitted: u64,
    /// Tickets delivered within deadline.
    pub completed: u64,
    /// Tickets refused admission or shed.
    pub rejected: u64,
    /// Tickets that timed out.
    pub expired: u64,
    /// Retry resubmissions performed.
    pub retries: u64,
    /// Trace records emitted by the service run.
    pub trace_events: u64,
    /// Steps executed before the kill-9 abandonment.
    pub kill_steps: u64,
    /// Trace records replayed by the resumed run.
    pub resumed_events: u64,
}

impl SeedReport {
    /// One JSON line for the machine-readable soak summary. Key order is
    /// fixed; all values are integers, so the line round-trips exactly.
    pub fn to_json_line(&self) -> String {
        format!(
            "{{\"seed\":{},\"submitted\":{},\"completed\":{},\"rejected\":{},\
             \"expired\":{},\"retries\":{},\"trace_events\":{},\"kill_steps\":{},\
             \"resumed_events\":{}}}",
            self.seed,
            self.submitted,
            self.completed,
            self.rejected,
            self.expired,
            self.retries,
            self.trace_events,
            self.kill_steps,
            self.resumed_events
        )
    }
}

/// Result of a full soak: per-seed summaries plus the first seed's
/// service trace (the artifact uploaded by the `chaos-smoke` CI job).
#[derive(Debug)]
pub struct SoakOutcome {
    /// One summary per seed, in seed order.
    pub seeds: Vec<SeedReport>,
    /// JSONL trace of the first seed's service run.
    pub sample_trace: Vec<TraceRecord>,
}

/// SplitMix64 over the chaos seed: the sole source of randomness for a
/// soak schedule, so a seed fully determines every run.
struct ChaosRng {
    state: u64,
}

impl ChaosRng {
    fn new(seed: u64) -> ChaosRng {
        ChaosRng {
            state: seed ^ 0xC0A5_1DEA_D00D_FEED,
        }
    }

    fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform draw below `n` (modulo; the bias is irrelevant for
    /// schedule shaping).
    fn below(&mut self, n: u64) -> u64 {
        debug_assert!(n > 0);
        self.next_u64() % n
    }

    fn chance(&mut self, one_in: u64) -> bool {
        self.below(one_in) == 0
    }
}

/// Schedulers the soak rotates through (one per seed): the trivial one,
/// the dynamic family's recommended member, and an envelope scheduler.
const SOAK_ALGORITHMS: [AlgorithmId; 3] = [
    AlgorithmId::Fifo,
    AlgorithmId::Dynamic(TapeSelectPolicy::MaxBandwidth),
    AlgorithmId::Envelope(EnvelopePolicy::MaxBandwidth),
];

/// Everything one service soak produced, for replay comparison.
struct ServiceRun {
    records: Vec<TraceRecord>,
    jsonl: String,
    report: MetricsReport,
    stats: ServiceStats,
    states: Vec<TicketState>,
}

fn service_catalog() -> Result<Catalog, String> {
    build_placement(
        JukeboxGeometry::PAPER_DEFAULT,
        BlockSize::PAPER_DEFAULT,
        PlacementConfig {
            layout: LayoutKind::Vertical,
            ph_percent: 10.0,
            scheme: PlacementScheme::Replication { nr: 1 },
            sp: 1.0,
        },
    )
    .map(|p| p.catalog)
    .map_err(|e| format!("service placement infeasible: {e}"))
}

/// Faults of the service soak: copy losses — transient (healing) on most
/// seeds, permanent on a third of them so the service's retry/backoff
/// path actually fires — plus tape failure/repair cycles.
fn service_faults(rng: &mut ChaosRng) -> FaultConfig {
    let heal = if rng.chance(3) {
        None // permanent copy loss: drives requests into retry/expiry
    } else {
        Some(Micros::from_secs(2_000 + 2_000 * rng.below(4)))
    };
    FaultConfig {
        media_error_per_read: 0.01 + 0.01 * rng.below(3) as f64,
        media_retries: 0,
        copy_heal_mttr: heal,
        tape_mtbf: Some(Micros::from_secs(150_000 + 50_000 * rng.below(3))),
        tape_mttr: Some(Micros::from_secs(10_000 + 5_000 * rng.below(3))),
        ..FaultConfig::NONE
    }
}

/// Runs the seeded service soak once. Pure function of `(seed, scale)`:
/// calling it twice must produce byte-identical traces.
fn service_soak(seed: u64, scale: Scale) -> Result<ServiceRun, String> {
    let catalog = service_catalog()?;
    let timing = TimingModel::paper_default();
    let sim = scale.sim_config();
    let mut rng = ChaosRng::new(seed);

    let drives = 2 + rng.below(3) as u16; // 2..=4
    let algorithm = SOAK_ALGORITHMS[rng.below(SOAK_ALGORITHMS.len() as u64) as usize];
    let faults = service_faults(&mut rng);
    let queue_capacity = 16 + 8 * rng.below(5) as usize; // 16..=48
    let svc_cfg = ServiceConfig {
        queue_capacity,
        admission: if rng.chance(2) {
            AdmissionPolicy::RejectNew
        } else {
            AdmissionPolicy::ShedOldest
        },
        deadline: Some(Micros::from_secs(600 + 400 * rng.below(10))),
        max_retries: 1 + rng.below(3) as u32,
        backoff_base: Micros::from_secs(60),
        backoff_cap: Micros::from_secs(960),
    };

    // The factory is unused in external-arrival mode but structurally
    // required; its stream never advances.
    let sampler = BlockSampler::from_catalog(&catalog, 40.0);
    let mut factory =
        RequestFactory::new(sampler, ArrivalProcess::Closed { queue_length: 1 }, seed);
    let mut sched = make_scheduler(algorithm);
    let mut sink = MemorySink::new();
    let engine = SteppedMultiDrive::new_external(
        &catalog,
        &timing,
        sched.as_mut(),
        &mut factory,
        &sim,
        drives,
        &faults,
        seed ^ 0xFA17,
        &mut sink,
    )
    .map_err(|e| format!("seed {seed}: engine construction failed: {e}"))?;
    let mut svc = JukeboxService::new(engine, svc_cfg)
        .map_err(|e| format!("seed {seed}: service construction failed: {e}"))?;

    // Seeded burst schedule over the first 90% of the horizon, with
    // administrative drive flips (sometimes down to zero drives) woven
    // between bursts.
    let blocks = u64::from(catalog.num_blocks().max(1));
    let horizon_s = sim.duration.as_micros() / 1_000_000;
    let mut offline = vec![false; drives as usize];
    let mut at_s = 0u64;
    loop {
        at_s += 200 + rng.below(1_800);
        if at_s >= horizon_s * 9 / 10 {
            break;
        }
        let at = SimTime::ZERO + Micros::from_secs(at_s);

        // Maybe flip a drive. If every drive is already offline, bring
        // one back most of the time; otherwise allow last-drive loss only
        // occasionally (it expires the whole backlog).
        if rng.chance(4) {
            let d = rng.below(u64::from(drives)) as usize;
            let all_down = offline.iter().all(|&o| o);
            let survivors = offline.iter().filter(|&&o| !o).count();
            let flip_ok = if all_down {
                !rng.chance(4) // mostly recover
            } else if survivors == 1 && !offline[d] {
                rng.chance(2) // last-drive loss, sometimes
            } else {
                true
            };
            if flip_ok {
                offline[d] = !offline[d];
                svc.set_drive_offline(d, offline[d])
                    .map_err(|e| format!("seed {seed}: drive flip failed: {e}"))?;
            }
        }

        // Burst of submissions; one in six bursts deliberately overflows
        // the admission queue to exercise backpressure.
        let size = if rng.chance(6) {
            queue_capacity as u64 + rng.below(queue_capacity as u64)
        } else {
            1 + rng.below(20)
        };
        for j in 0..size {
            let block = BlockId(rng.below(blocks) as u32);
            match svc.submit(block, at + Micros::from_micros(j)) {
                Ok(_) | Err(SimError::Overloaded) => {}
                Err(e) => return Err(format!("seed {seed}: submit failed: {e}")),
            }
        }
    }

    let (report, stats, states) = svc
        .drain_with_tickets()
        .map_err(|e| format!("seed {seed}: drain failed: {e}"))?;
    let records = sink.into_events();
    let text = jsonl::to_jsonl_string(&records);
    Ok(ServiceRun {
        records,
        jsonl: text,
        report,
        stats,
        states,
    })
}

/// Asserts every conservation and trace invariant over one service run.
fn check_service_run(seed: u64, run: &ServiceRun) -> Result<(), String> {
    let stats = &run.stats;
    if !stats.check_conservation() {
        return Err(format!(
            "seed {seed}: conservation violated: {stats:?} (submitted != completed + rejected + expired)"
        ));
    }
    if stats.completed == 0 {
        return Err(format!(
            "seed {seed}: soak completed no requests: {stats:?}"
        ));
    }
    // Per-ticket conservation: after drain, no ticket may be left in a
    // non-terminal state, and the terminal counts must reconcile with the
    // aggregate stats (submissions rejected at the gate never mint a
    // ticket, which is the difference between the two rejection counts).
    let mut completed = 0u64;
    let mut rejected = 0u64;
    let mut expired = 0u64;
    for (i, s) in run.states.iter().enumerate() {
        match s {
            TicketState::Completed => completed += 1,
            TicketState::Rejected => rejected += 1,
            TicketState::Expired => expired += 1,
            TicketState::Queued | TicketState::AwaitingRetry => {
                return Err(format!(
                    "seed {seed}: ticket {i} left non-terminal after drain: {s:?}"
                ));
            }
        }
    }
    if completed != stats.completed || expired != stats.expired || rejected > stats.rejected {
        return Err(format!(
            "seed {seed}: ticket states disagree with stats: \
             {completed}/{rejected}/{expired} vs {stats:?}"
        ));
    }
    let gate_rejections = stats.rejected - rejected;
    if stats.submitted != run.states.len() as u64 + gate_rejections {
        return Err(format!(
            "seed {seed}: {} tickets + {gate_rejections} gate rejections != {} submissions",
            run.states.len(),
            stats.submitted
        ));
    }
    // The report must carry the service-level counters.
    if run.report.rejected != stats.rejected || run.report.expired != stats.expired {
        return Err(format!(
            "seed {seed}: report rejected/expired ({}/{}) diverge from stats {stats:?}",
            run.report.rejected, run.report.expired
        ));
    }
    // Engine-side balance.
    let r = &run.report;
    if r.admitted != r.served + r.failed_requests + r.unserved + r.cancelled {
        return Err(format!(
            "seed {seed}: engine balance violated: admitted {} != served {} + failed {} + \
             unserved {} + cancelled {}",
            r.admitted, r.served, r.failed_requests, r.unserved, r.cancelled
        ));
    }
    // §2.2 trace invariants.
    if let Err(violations) = check_trace(&run.records) {
        let first = violations
            .first()
            .map(ToString::to_string)
            .unwrap_or_default();
        return Err(format!(
            "seed {seed}: {} trace invariant violation(s); first: {first}",
            violations.len()
        ));
    }
    Ok(())
}

/// Fault presets of the kill-9 cycle (indexed by the chaos stream): none,
/// transient-heavy (exercises the healing state in the checkpoint), and
/// tape failure/repair.
fn kill9_faults(pick: u64) -> FaultConfig {
    match pick % 3 {
        0 => FaultConfig::NONE,
        1 => FaultConfig {
            media_error_per_read: 0.05,
            media_retries: 1,
            copy_heal_mttr: Some(Micros::from_secs(8_000)),
            load_failure_p: 0.05,
            load_retries: 1,
            ..FaultConfig::NONE
        },
        _ => FaultConfig {
            tape_mtbf: Some(Micros::from_secs(40_000)),
            tape_mttr: Some(Micros::from_secs(5_000)),
            ..FaultConfig::NONE
        },
    }
}

/// One kill-9 / checkpoint-resume cycle: returns `(kill_steps,
/// resumed_events)` on success.
fn kill9_cycle(seed: u64, scale: Scale, workdir: &Path) -> Result<(u64, u64), String> {
    let placed = build_placement(
        JukeboxGeometry::FIVE_TAPE,
        BlockSize::PAPER_DEFAULT,
        PlacementConfig::paper_baseline(),
    )
    .map_err(|e| format!("kill9 placement infeasible: {e}"))?;
    let catalog = &placed.catalog;
    let timing = TimingModel::paper_default();
    let sim = scale.sim_config();
    let mut rng = ChaosRng::new(seed ^ 0x9111_9111);

    let drives = [1u16, 2, 4][rng.below(3) as usize];
    let algorithm = SOAK_ALGORITHMS[rng.below(SOAK_ALGORITHMS.len() as u64) as usize];
    let faults = kill9_faults(rng.below(3));
    let process = if rng.chance(2) {
        ArrivalProcess::Closed { queue_length: 25 }
    } else {
        ArrivalProcess::OpenPoisson {
            mean_interarrival: Micros::from_secs(240),
        }
    };
    let fresh_factory = |catalog: &Catalog| {
        RequestFactory::new(BlockSampler::from_catalog(catalog, 40.0), process, seed)
    };

    // Uninterrupted reference run.
    let (full_report, full_trace) = {
        let mut factory = fresh_factory(catalog);
        let mut sched = make_scheduler(algorithm);
        let mut sink = MemorySink::new();
        let report = run_multi_drive_traced(
            catalog,
            &timing,
            sched.as_mut(),
            &mut factory,
            &sim,
            drives,
            &faults,
            seed ^ 0xFA17,
            &mut sink,
        )
        .map_err(|e| format!("seed {seed}: reference run failed: {e}"))?;
        (report, sink.into_events())
    };
    let r = &full_report;
    if r.admitted != r.served + r.failed_requests + r.unserved + r.cancelled {
        return Err(format!(
            "seed {seed}: batch balance violated: admitted {} != served {} + failed {} + \
             unserved {} + cancelled {}",
            r.admitted, r.served, r.failed_requests, r.unserved, r.cancelled
        ));
    }

    // Interrupted run: checkpoint periodically, then abandon mid-flight
    // ("kill -9"): no finish(), no final save — exactly the state a dead
    // process leaves behind is what resume gets.
    let ckpt_path = workdir.join(format!("chaos-{}-{seed}.ckpt", std::process::id()));
    let _ = std::fs::remove_file(&ckpt_path);
    let every = Micros::from_secs(10_000 + 5_000 * rng.below(5));
    let extra_steps = rng.below(400);
    let mut kill_steps = 0u64;
    {
        let mut factory = fresh_factory(catalog);
        let mut sched = make_scheduler(algorithm);
        let mut sink = MemorySink::new();
        let mut engine = SteppedMultiDrive::new(
            catalog,
            &timing,
            sched.as_mut(),
            &mut factory,
            &sim,
            drives,
            &faults,
            seed ^ 0xFA17,
            &mut sink,
            &CheckpointOpts::checkpoint_every(every, &ckpt_path),
        )
        .map_err(|e| format!("seed {seed}: killed run construction failed: {e}"))?;
        let mut after_first_ckpt: Option<u64> = None;
        loop {
            let outcome = engine
                .step()
                .map_err(|e| format!("seed {seed}: killed run step failed: {e}"))?;
            kill_steps += 1;
            if outcome == StepOutcome::Done {
                break;
            }
            match after_first_ckpt {
                None if ckpt_path.exists() => after_first_ckpt = Some(extra_steps),
                Some(0) => break,
                Some(n) => after_first_ckpt = Some(n - 1),
                None => {}
            }
        }
        // Dropping the engine (and its sink) here IS the kill: nothing
        // is flushed or finalized past the last on-disk checkpoint.
    }
    if !ckpt_path.exists() {
        return Err(format!(
            "seed {seed}: killed run wrote no checkpoint (interval {every} too long?)"
        ));
    }
    let ckpt = checkpoint::load(&ckpt_path)
        .map_err(|e| format!("seed {seed}: checkpoint left by the kill does not load: {e}"))?;

    // Resume and compare against the uninterrupted run.
    let (resumed_report, resumed_trace) = {
        let mut factory = fresh_factory(catalog);
        let mut sched = make_scheduler(algorithm);
        let mut sink = MemorySink::new();
        let report = tapesim::sim::run_multi_drive_checkpointed(
            catalog,
            &timing,
            sched.as_mut(),
            &mut factory,
            &sim,
            drives,
            &faults,
            seed ^ 0xFA17,
            &mut sink,
            &CheckpointOpts::resume_from(&ckpt_path),
        )
        .map_err(|e| format!("seed {seed}: resume failed: {e}"))?;
        (report, sink.into_events())
    };
    let _ = std::fs::remove_file(&ckpt_path);

    if resumed_report != full_report {
        return Err(format!(
            "seed {seed}: resumed report diverges from the uninterrupted run"
        ));
    }
    let suffix: Vec<TraceRecord> = full_trace
        .iter()
        .filter(|rec| rec.seq >= ckpt.trace_seq)
        .cloned()
        .collect();
    if jsonl::to_jsonl_string(&resumed_trace) != jsonl::to_jsonl_string(&suffix) {
        return Err(format!(
            "seed {seed}: resumed trace is not byte-identical to the uninterrupted suffix \
             (from seq {})",
            ckpt.trace_seq
        ));
    }
    Ok((kill_steps, resumed_trace.len() as u64))
}

/// Runs the full soak. Returns the per-seed summaries and the sample
/// trace, or the first invariant violation as an error string.
pub fn run_chaos(cfg: &ChaosConfig) -> Result<SoakOutcome, String> {
    if cfg.seeds == 0 {
        return Err("need at least one seed".into());
    }
    let mut seeds = Vec::new();
    let mut sample_trace = Vec::new();
    for i in 0..cfg.seeds {
        let seed = cfg.seed_base + i;

        // Service soak, twice: the replay must be bit-identical.
        let run = service_soak(seed, cfg.scale)?;
        check_service_run(seed, &run)?;
        let replay = service_soak(seed, cfg.scale)?;
        if replay.jsonl != run.jsonl {
            return Err(format!(
                "seed {seed}: service replay trace is not byte-identical"
            ));
        }
        if replay.report != run.report || replay.stats != run.stats {
            return Err(format!("seed {seed}: service replay report diverges"));
        }

        // Kill-9 / checkpoint-resume cycle.
        let (kill_steps, resumed_events) = kill9_cycle(seed, cfg.scale, &cfg.workdir)?;

        seeds.push(SeedReport {
            seed,
            submitted: run.stats.submitted,
            completed: run.stats.completed,
            rejected: run.stats.rejected,
            expired: run.stats.expired,
            retries: run.stats.retries,
            trace_events: run.records.len() as u64,
            kill_steps,
            resumed_events,
        });
        if i == 0 {
            sample_trace = run.records;
        }
    }
    // Across the soak, every outcome class must actually have been
    // exercised — a soak that never rejected or expired anything is not
    // testing backpressure or deadlines.
    let rejected: u64 = seeds.iter().map(|s| s.rejected).sum();
    let expired: u64 = seeds.iter().map(|s| s.expired).sum();
    if rejected == 0 {
        return Err("soak never exercised backpressure (0 rejections across all seeds)".into());
    }
    if expired == 0 {
        return Err("soak never exercised deadlines (0 expiries across all seeds)".into());
    }
    let retries: u64 = seeds.iter().map(|s| s.retries).sum();
    if cfg.seeds >= 10 && retries == 0 {
        return Err("soak never exercised the retry path (0 retries across all seeds)".into());
    }
    Ok(SoakOutcome {
        seeds,
        sample_trace,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick_cfg(seeds: u64, seed_base: u64) -> ChaosConfig {
        ChaosConfig {
            seeds,
            seed_base,
            scale: Scale::Quick,
            workdir: std::env::temp_dir(),
        }
    }

    #[test]
    fn soak_runs_clean_over_a_few_seeds() {
        let outcome = run_chaos(&quick_cfg(3, 0)).unwrap();
        assert_eq!(outcome.seeds.len(), 3);
        assert!(!outcome.sample_trace.is_empty());
        for s in &outcome.seeds {
            assert_eq!(s.submitted, s.completed + s.rejected + s.expired);
            assert!(s.kill_steps > 0, "kill happened mid-flight");
            assert!(s.resumed_events > 0, "resume replayed events");
        }
    }

    #[test]
    fn seed_reports_serialize_with_stable_keys() {
        let line = SeedReport {
            seed: 7,
            submitted: 100,
            completed: 90,
            rejected: 6,
            expired: 4,
            retries: 2,
            trace_events: 1234,
            kill_steps: 55,
            resumed_events: 99,
        }
        .to_json_line();
        assert!(line.starts_with("{\"seed\":7,"));
        assert!(line.ends_with("\"resumed_events\":99}"));
        assert!(line.contains("\"completed\":90"));
    }

    #[test]
    fn service_soak_is_a_pure_function_of_its_seed() {
        let a = service_soak(11, Scale::Quick).unwrap();
        let b = service_soak(11, Scale::Quick).unwrap();
        assert_eq!(a.jsonl, b.jsonl);
        assert_eq!(a.report, b.report);
        assert_eq!(a.stats, b.stats);
        assert_eq!(a.states, b.states);
    }
}
