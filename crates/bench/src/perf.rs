//! The `perf` harness: a dependency-free wall-clock benchmark over a
//! fixed scenario matrix, with a machine-readable report and a baseline
//! regression check (see the `perf` binary).
//!
//! ## Scenario matrix
//!
//! Eight scenarios cover the exposed hot paths:
//!
//! | name                | exercises                                          |
//! |---------------------|----------------------------------------------------|
//! | `engine-fifo`       | single-drive engine, trivial scheduling            |
//! | `envelope-heavy`    | envelope extension under full replication, NR-9    |
//! | `multi-drive`       | the 4-drive engine, dynamic max-bandwidth          |
//! | `faulted`           | fault injection + replica failover, NR-2           |
//! | `traced-null-sink`  | the traced entry point with a disabled sink        |
//! | `stepped-service`   | the service layer over the stepped core: external  |
//! |                     | submissions, deadlines, retries, transient faults  |
//! | `fleet-scale-serial`| 200 tapes x 8 drives, external burst storm through |
//! |                     | the calendar queue, serial stepping                |
//! | `fleet-scale-8w`    | the same storm with 8 window workers — the         |
//! |                     | parallel-over-serial speedup readout               |
//!
//! Each scenario runs `warmup_reps` untimed repetitions followed by
//! `reps` timed ones, all with the same seed; the report carries the
//! median and minimum wall time. Because every run is deterministic, the
//! harness also asserts that the simulated-work counters (`completed`,
//! `physical_reads`) are identical across repetitions and fails loudly
//! if they are not — a free determinism tripwire on every benchmark run.
//!
//! ## `BENCH_PERF.json` schema (version 2)
//!
//! Version 2 adds the per-scenario `workers` key (window worker threads;
//! `1` = serial stepping) and the top-level `host_parallelism` key (the
//! measuring host's hardware threads — worker counts above it time-slice
//! rather than run in parallel). Keys are emitted in a fixed, documented
//! order so diffs are stable:
//!
//! ```json
//! {
//!   "schema_version": 2,
//!   "scale": "quick",
//!   "warmup_reps": 1,
//!   "reps": 5,
//!   "host_parallelism": 8,
//!   "scenarios": [
//!     {
//!       "name": "engine-fifo",
//!       "workers": 1,
//!       "median_ms": 1.5,
//!       "min_ms": 1.4,
//!       "sim_seconds": 100000,
//!       "sim_secs_per_wall_sec": 66666666.7,
//!       "completed": 329,
//!       "physical_reads": 329
//!     }
//!   ]
//! }
//! ```
//!
//! Floats are printed with Rust's shortest-round-trip formatting, so
//! parsing the emitted JSON reproduces the exact values. The regression
//! check compares `median_ms` per scenario against a checked-in baseline
//! and fails when any scenario is slower than `baseline * (1 +
//! tolerance)`; wall-clock baselines are machine-specific, so the
//! baseline must be refreshed when the reference machine changes.

use std::time::Instant;

use tapesim::layout::BlockId;
use tapesim::model::FaultConfig;
use tapesim::model::{JukeboxGeometry, Micros, SimTime};
use tapesim::sim::{
    run_simulation_traced, AdmissionPolicy, JukeboxService, NullSink, RunSpec, ServiceConfig,
    SimConfig, SimError, SteppedMultiDrive,
};
use tapesim::workload::{ArrivalProcess, BlockSampler, RequestFactory};
use tapesim::{
    layout::LayoutKind, sched::make_scheduler, sched::AlgorithmId, sched::TapeSelectPolicy,
    ExperimentConfig, Scale,
};

/// Version of the emitted JSON schema. Version 2 added the per-scenario
/// `workers` key.
pub const SCHEMA_VERSION: u64 = 2;

/// Default regression tolerance: a scenario fails the check when its
/// median is more than 30% slower than the baseline. Wide enough to
/// absorb run-to-run noise on a shared runner, tight enough to catch a
/// hot-path regression of any consequence.
pub const DEFAULT_TOLERANCE: f64 = 0.30;

/// Which entry point a scenario is timed through.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ScenarioRoute {
    /// The plain runner ([`tapesim::sim::run_one`]).
    Runner,
    /// [`run_simulation_traced`] with a [`NullSink`] (times the traced
    /// entry point; a disabled sink must cost nothing).
    TracedNullSink,
    /// The [`JukeboxService`] layer over the stepped multi-drive core:
    /// a deterministic external submission schedule with deadlines and
    /// capped-backoff retries.
    SteppedService,
    /// The external-mode stepped multi-drive core under a fleet-scale
    /// burst storm (hundreds of tapes, 8 drives), stepped with the given
    /// number of window worker threads (`1` = serial stepping).
    FleetScale {
        /// Window worker threads to run with.
        workers: usize,
    },
}

impl ScenarioRoute {
    /// Window worker threads this route steps with (`1` for every serial
    /// route).
    pub fn workers(self) -> u64 {
        match self {
            ScenarioRoute::FleetScale { workers } => workers.max(1) as u64,
            _ => 1,
        }
    }
}

/// One benchmark scenario: a named experiment configuration plus the
/// entry point it is timed through.
pub struct ScenarioSpec {
    /// Stable scenario name (a `BENCH_PERF.json` key).
    pub name: &'static str,
    /// The experiment point to run.
    pub cfg: ExperimentConfig,
    /// The entry point this scenario times.
    pub route: ScenarioRoute,
}

/// The fixed scenario matrix at the given scale.
pub fn scenario_matrix(scale: Scale) -> Vec<ScenarioSpec> {
    let baseline = ExperimentConfig {
        scale,
        ..ExperimentConfig::paper_baseline()
    };
    vec![
        ScenarioSpec {
            name: "engine-fifo",
            cfg: ExperimentConfig {
                algorithm: AlgorithmId::Fifo,
                process: ArrivalProcess::Closed { queue_length: 60 },
                ..baseline.clone()
            },
            route: ScenarioRoute::Runner,
        },
        ScenarioSpec {
            name: "envelope-heavy",
            cfg: ExperimentConfig {
                process: ArrivalProcess::Closed { queue_length: 140 },
                scale,
                ..ExperimentConfig::paper_full_replication()
            },
            route: ScenarioRoute::Runner,
        },
        ScenarioSpec {
            name: "multi-drive",
            cfg: ExperimentConfig {
                drives: 4,
                algorithm: AlgorithmId::Dynamic(TapeSelectPolicy::MaxBandwidth),
                process: ArrivalProcess::Closed { queue_length: 140 },
                ..baseline.clone()
            },
            route: ScenarioRoute::Runner,
        },
        ScenarioSpec {
            name: "faulted",
            cfg: ExperimentConfig {
                layout: LayoutKind::Vertical,
                replicas: 2,
                sp: 1.0,
                algorithm: AlgorithmId::paper_recommended(),
                process: ArrivalProcess::Closed { queue_length: 60 },
                faults: FaultConfig {
                    media_error_per_read: 0.01,
                    media_retries: 1,
                    tape_mtbf: Some(Micros::from_secs(200_000)),
                    tape_mttr: Some(Micros::from_secs(20_000)),
                    ..FaultConfig::NONE
                },
                ..baseline.clone()
            },
            route: ScenarioRoute::Runner,
        },
        ScenarioSpec {
            name: "traced-null-sink",
            cfg: ExperimentConfig {
                algorithm: AlgorithmId::Dynamic(TapeSelectPolicy::MaxBandwidth),
                process: ArrivalProcess::Closed { queue_length: 140 },
                ..baseline.clone()
            },
            route: ScenarioRoute::TracedNullSink,
        },
        ScenarioSpec {
            name: "stepped-service",
            cfg: ExperimentConfig {
                drives: 2,
                replicas: 1,
                sp: 1.0,
                algorithm: AlgorithmId::paper_recommended(),
                // Transient copy losses make retries worth their while:
                // a failed read heals, so a backed-off resubmission can
                // succeed where the first attempt failed.
                faults: FaultConfig {
                    media_error_per_read: 0.02,
                    copy_heal_mttr: Some(Micros::from_secs(2_000)),
                    ..FaultConfig::NONE
                },
                ..baseline.clone()
            },
            route: ScenarioRoute::SteppedService,
        },
        ScenarioSpec {
            name: "fleet-scale-serial",
            cfg: fleet_scale_config(&baseline),
            route: ScenarioRoute::FleetScale { workers: 1 },
        },
        ScenarioSpec {
            name: "fleet-scale-8w",
            cfg: fleet_scale_config(&baseline),
            route: ScenarioRoute::FleetScale { workers: 8 },
        },
    ]
}

/// The fleet-scale experiment point: 200 tapes, 8 drives, no
/// replication. The workload is an external burst storm (see
/// [`run_fleet_scenario`]), so the arrival process here only seeds the
/// factory.
fn fleet_scale_config(baseline: &ExperimentConfig) -> ExperimentConfig {
    ExperimentConfig {
        geometry: JukeboxGeometry::new(200, 3_500),
        drives: 8,
        replicas: 1,
        sp: 1.0,
        // A sweeping scheduler: FIFO serves one request per tape visit,
        // which can never drain a fleet-scale burst before the engine's
        // saturation cutoff ends the run.
        algorithm: AlgorithmId::Static(TapeSelectPolicy::MaxRequests),
        process: ArrivalProcess::Closed { queue_length: 1 },
        ..baseline.clone()
    }
}

/// Drives one repetition of a `fleet-scale` scenario: bursts of external
/// submissions at distinct microsecond ticks (feeding the calendar
/// queue), drained by 8 drives between bursts, stepped with `workers`
/// window worker threads.
fn run_fleet_scenario(
    cfg: &ExperimentConfig,
    placed: &tapesim::layout::PlacedCatalog,
    sim: &SimConfig,
    seed: u64,
    workers: usize,
) -> Result<(u64, u64), SimError> {
    let sampler = BlockSampler::from_catalog(&placed.catalog, cfg.rh_percent);
    let mut factory = RequestFactory::new_clustered(sampler, cfg.process, cfg.cluster_run_p, seed);
    let mut scheduler = make_scheduler(cfg.algorithm);
    let mut sink = NullSink;
    let mut engine = SteppedMultiDrive::new_external(
        &placed.catalog,
        &cfg.timing,
        scheduler.as_mut(),
        &mut factory,
        sim,
        cfg.drives,
        &cfg.faults,
        seed,
        &mut sink,
    )?;
    engine.set_parallel(workers);
    // Seeded SplitMix64 draws concentrated on a small hot tape cluster;
    // every submission lands on its own microsecond tick so
    // calendar-queue buckets stay spread out. Cold blocks are striped
    // round-robin across tapes (ids one tape-count apart share a tape at
    // adjacent slots), so drawing `base + stride * q + r` with a few
    // residues `r` builds long sweeps on a handful of tapes — the shape
    // where partitioned-horizon windows carry the most stops.
    let blocks = u64::from(placed.catalog.num_blocks().max(1));
    let stride = u64::from(placed.catalog.geometry().tapes).max(1);
    // Skip the replicated hot set (~ph% of blocks) so each draw has
    // exactly one copy and sweeps stay single-tape.
    let base = blocks / 10;
    let span = ((blocks - base) / stride).max(1);
    let mut state = seed | 1;
    let mut next_u64 = move || {
        state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    };
    let horizon_s = sim.duration.as_micros() / 1_000_000;
    // One 1800-request burst per ~16.7 ks of sim time: 8 drives at
    // roughly one stop per 72 s drain ~1850 requests per gap, so each
    // burst is gone just before the next lands and the pending set never
    // reaches the engine's saturation cutoff.
    let burst_gap_s = 16_666u64.clamp(1, horizon_s.max(1));
    let mut at_s = 0u64;
    while at_s < horizon_s * 9 / 10 {
        let t0 = SimTime::ZERO + Micros::from_secs(at_s);
        for i in 0..1_800u64 {
            let x = next_u64();
            let q = (x >> 8) % span;
            let r = x % 8;
            // Block ids stay far below 2^32, so the cast is lossless.
            #[allow(clippy::cast_possible_truncation)]
            let block = BlockId(((base + stride * q + r) % blocks) as u32);
            match engine.submit_at(block, t0 + Micros::from_micros(i + 1)) {
                Ok(_) | Err(SimError::Overloaded) => {}
                Err(e) => return Err(e),
            }
        }
        engine.step_until(t0 + Micros::from_secs(burst_gap_s))?;
        let _ = engine.drain_events();
        at_s += burst_gap_s;
    }
    engine.step_until(engine.horizon())?;
    let _ = engine.drain_events();
    let report = engine.finish();
    Ok((report.completed, report.physical_reads))
}

/// Drives one repetition of the `stepped-service` scenario: a seeded
/// bursty submission schedule pushed through [`JukeboxService`] over the
/// external-arrival stepped multi-drive core.
fn run_service_scenario(
    cfg: &ExperimentConfig,
    placed: &tapesim::layout::PlacedCatalog,
    sim: &SimConfig,
    seed: u64,
) -> Result<(u64, u64), SimError> {
    let sampler = BlockSampler::from_catalog(&placed.catalog, cfg.rh_percent);
    let mut factory = RequestFactory::new_clustered(sampler, cfg.process, cfg.cluster_run_p, seed);
    let mut scheduler = make_scheduler(cfg.algorithm);
    let mut sink = NullSink;
    let engine = SteppedMultiDrive::new_external(
        &placed.catalog,
        &cfg.timing,
        scheduler.as_mut(),
        &mut factory,
        sim,
        cfg.drives,
        &cfg.faults,
        seed,
        &mut sink,
    )?;
    let mut svc = JukeboxService::new(
        engine,
        ServiceConfig {
            queue_capacity: 64,
            admission: AdmissionPolicy::ShedOldest,
            deadline: Some(Micros::from_secs(40_000)),
            max_retries: 2,
            backoff_base: Micros::from_secs(60),
            backoff_cap: Micros::from_secs(960),
        },
    )?;
    // Deterministic bursty schedule: 8 submissions every 2000 simulated
    // seconds over the first 90% of the horizon, blocks drawn from a
    // seeded SplitMix64 stream (same generator as the write-back write
    // stream; no ambient randomness).
    let blocks = placed.catalog.num_blocks().max(1);
    let mut state = seed | 1;
    let mut next_u64 = move || {
        state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    };
    let horizon_s = sim.duration.as_micros() / 1_000_000;
    let mut at_s = 0u64;
    while at_s < horizon_s * 9 / 10 {
        for j in 0..8u64 {
            // Counters stay far below 2^32, so the cast is lossless.
            #[allow(clippy::cast_possible_truncation)]
            let block = BlockId((next_u64() % u64::from(blocks)) as u32);
            let at = SimTime::ZERO + Micros::from_secs(at_s) + Micros::from_micros(j);
            match svc.submit(block, at) {
                Ok(_) | Err(SimError::Overloaded) => {}
                Err(e) => return Err(e),
            }
        }
        at_s += 2_000;
    }
    let (report, stats) = svc.drain()?;
    if !stats.check_conservation() {
        return Err(SimError::InvalidConfig(
            "service conservation violated in perf scenario",
        ));
    }
    Ok((report.completed, report.physical_reads))
}

/// Runs one scenario repetition and returns its simulated-work counters
/// `(completed, physical_reads)`.
pub fn run_scenario(
    spec: &ScenarioSpec,
    placed: &tapesim::layout::PlacedCatalog,
    sim: &SimConfig,
    seed: u64,
) -> Result<(u64, u64), SimError> {
    let cfg = &spec.cfg;
    let report = match spec.route {
        ScenarioRoute::TracedNullSink => {
            // Mirror the plain runner but through the traced entry point.
            // The scenario injects no faults, so the fault seed is unused.
            let sampler = BlockSampler::from_catalog(&placed.catalog, cfg.rh_percent);
            let mut factory =
                RequestFactory::new_clustered(sampler, cfg.process, cfg.cluster_run_p, seed);
            let mut scheduler = make_scheduler(cfg.algorithm);
            run_simulation_traced(
                &placed.catalog,
                &cfg.timing,
                scheduler.as_mut(),
                &mut factory,
                sim,
                &cfg.faults,
                seed,
                &mut NullSink,
            )?
        }
        ScenarioRoute::SteppedService => {
            return run_service_scenario(cfg, placed, sim, seed);
        }
        ScenarioRoute::FleetScale { workers } => {
            return run_fleet_scenario(cfg, placed, sim, seed, workers);
        }
        ScenarioRoute::Runner => {
            let spec = RunSpec {
                catalog: &placed.catalog,
                timing: &cfg.timing,
                algorithm: cfg.algorithm,
                process: cfg.process,
                rh_percent: cfg.rh_percent,
                cluster_run_p: cfg.cluster_run_p,
                drives: cfg.drives,
                config: *sim,
                faults: cfg.faults,
            };
            tapesim::sim::run_one(&spec, seed)?
        }
    };
    Ok((report.completed, report.physical_reads))
}

/// Timed results of one scenario.
#[derive(Debug, Clone, PartialEq)]
pub struct ScenarioResult {
    /// Scenario name.
    pub name: String,
    /// Window worker threads the scenario stepped with (1 = serial).
    pub workers: u64,
    /// Median wall time over the timed repetitions, in milliseconds.
    pub median_ms: f64,
    /// Minimum wall time, in milliseconds.
    pub min_ms: f64,
    /// Simulated horizon of one repetition, in seconds.
    pub sim_seconds: f64,
    /// Simulated seconds advanced per wall-clock second (at the median).
    pub sim_secs_per_wall_sec: f64,
    /// Requests completed in one repetition (identical across reps).
    pub completed: u64,
    /// Physical block reads in one repetition (identical across reps).
    pub physical_reads: u64,
}

/// A full harness report; serializes to `BENCH_PERF.json`.
#[derive(Debug, Clone, PartialEq)]
pub struct PerfReport {
    /// Schema version ([`SCHEMA_VERSION`]).
    pub schema_version: u64,
    /// Scale the matrix ran at (`"quick"`, `"default"`, or `"paper"`).
    pub scale: String,
    /// Untimed repetitions per scenario.
    pub warmup_reps: u64,
    /// Timed repetitions per scenario.
    pub reps: u64,
    /// Hardware threads available on the measuring host. Worker counts
    /// above this (e.g. `fleet-scale-8w` on a single-core runner)
    /// time-slice instead of running in parallel, so their timings are
    /// not comparable across hosts with different parallelism.
    pub host_parallelism: u64,
    /// Per-scenario results, in matrix order.
    pub scenarios: Vec<ScenarioResult>,
}

/// The canonical name of a scale in the report.
pub fn scale_name(scale: Scale) -> &'static str {
    match scale {
        Scale::Quick => "quick",
        Scale::Default => "default",
        Scale::Paper => "paper",
    }
}

fn median_of_sorted(sorted: &[f64]) -> f64 {
    let n = sorted.len();
    if n == 0 {
        return 0.0;
    }
    if n % 2 == 1 {
        sorted[n / 2]
    } else {
        (sorted[n / 2 - 1] + sorted[n / 2]) / 2.0
    }
}

/// Runs the whole matrix: per scenario, one catalog build, `warmup_reps`
/// untimed repetitions, then `reps` timed ones. Returns an error string
/// (suitable for a CLI) on infeasible configurations, simulation
/// failures, or a determinism violation between repetitions.
pub fn run_matrix(scale: Scale, warmup_reps: u64, reps: u64) -> Result<PerfReport, String> {
    let sim = scale.sim_config();
    // simlint: allow(panic, default_seeds(1) returns exactly one seed)
    let seed = tapesim::sim::default_seeds(1)[0];
    let reps = reps.max(1);
    let mut scenarios = Vec::new();
    for spec in scenario_matrix(scale) {
        let placed = spec
            .cfg
            .build_catalog()
            .map_err(|e| format!("{}: infeasible placement: {e}", spec.name))?;
        for _ in 0..warmup_reps {
            run_scenario(&spec, &placed, &sim, seed).map_err(|e| format!("{}: {e}", spec.name))?;
        }
        let mut times_ms: Vec<f64> = Vec::new();
        let mut counters: Option<(u64, u64)> = None;
        for _ in 0..reps {
            // simlint: allow(wall-clock, the perf harness measures real elapsed time by design; no simulated quantity depends on it)
            let t0 = Instant::now();
            let c = run_scenario(&spec, &placed, &sim, seed)
                .map_err(|e| format!("{}: {e}", spec.name))?;
            // simlint: allow(unit-const, wall-clock seconds to report milliseconds; not a simulated quantity)
            times_ms.push(t0.elapsed().as_secs_f64() * 1e3);
            match counters {
                None => counters = Some(c),
                Some(prev) if prev != c => {
                    return Err(format!(
                        "{}: nondeterministic repetition: {prev:?} vs {c:?}",
                        spec.name
                    ));
                }
                Some(_) => {}
            }
        }
        times_ms.sort_by(f64::total_cmp);
        let median_ms = median_of_sorted(&times_ms);
        let min_ms = times_ms.first().copied().unwrap_or(0.0);
        let sim_seconds = sim.duration.as_secs_f64();
        let (completed, physical_reads) = counters.unwrap_or((0, 0));
        scenarios.push(ScenarioResult {
            name: spec.name.to_owned(),
            workers: spec.route.workers(),
            median_ms,
            min_ms,
            sim_seconds,
            // simlint: allow(unit-const, report milliseconds back to wall-clock seconds; not a simulated quantity)
            sim_secs_per_wall_sec: sim_seconds / (median_ms / 1e3).max(1e-9),
            completed,
            physical_reads,
        });
    }
    // The two fleet-scale scenarios run the identical config and
    // submission schedule at different worker counts: their counters
    // must agree exactly, or the parallel core broke determinism.
    let fleet: Vec<&ScenarioResult> = scenarios
        .iter()
        .filter(|s| s.name.starts_with("fleet-scale"))
        .collect();
    for pair in fleet.windows(2) {
        let &[a, b] = pair else { continue };
        if (a.completed, a.physical_reads) != (b.completed, b.physical_reads) {
            return Err(format!(
                "{} vs {}: worker count changed results: ({}, {}) vs ({}, {})",
                a.name, b.name, a.completed, a.physical_reads, b.completed, b.physical_reads
            ));
        }
    }
    Ok(PerfReport {
        schema_version: SCHEMA_VERSION,
        scale: scale_name(scale).to_owned(),
        warmup_reps,
        reps,
        // simlint: allow(par-contract, host metadata recorded in the report header; does not affect measured results)
        host_parallelism: std::thread::available_parallelism().map_or(1, |n| n.get() as u64),
        scenarios,
    })
}

// ---------------------------------------------------------------------
// JSON emit
// ---------------------------------------------------------------------

fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Formats an f64 as a JSON number. Rust's `Display` for `f64` prints
/// the shortest string that parses back to the same value, so emitted
/// reports round-trip exactly; non-finite values (which valid reports
/// never contain) degrade to 0.
fn json_num(v: f64) -> String {
    if v.is_finite() {
        format!("{v}")
    } else {
        "0".to_owned()
    }
}

impl PerfReport {
    /// Serializes with the documented stable key order.
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        out.push_str("{\n");
        out.push_str(&format!("  \"schema_version\": {},\n", self.schema_version));
        out.push_str(&format!("  \"scale\": \"{}\",\n", json_escape(&self.scale)));
        out.push_str(&format!("  \"warmup_reps\": {},\n", self.warmup_reps));
        out.push_str(&format!("  \"reps\": {},\n", self.reps));
        out.push_str(&format!(
            "  \"host_parallelism\": {},\n",
            self.host_parallelism
        ));
        out.push_str("  \"scenarios\": [\n");
        for (i, s) in self.scenarios.iter().enumerate() {
            out.push_str("    {\n");
            out.push_str(&format!("      \"name\": \"{}\",\n", json_escape(&s.name)));
            out.push_str(&format!("      \"workers\": {},\n", s.workers));
            out.push_str(&format!(
                "      \"median_ms\": {},\n",
                json_num(s.median_ms)
            ));
            out.push_str(&format!("      \"min_ms\": {},\n", json_num(s.min_ms)));
            out.push_str(&format!(
                "      \"sim_seconds\": {},\n",
                json_num(s.sim_seconds)
            ));
            out.push_str(&format!(
                "      \"sim_secs_per_wall_sec\": {},\n",
                json_num(s.sim_secs_per_wall_sec)
            ));
            out.push_str(&format!("      \"completed\": {},\n", s.completed));
            out.push_str(&format!("      \"physical_reads\": {}\n", s.physical_reads));
            out.push_str(if i + 1 == self.scenarios.len() {
                "    }\n"
            } else {
                "    },\n"
            });
        }
        out.push_str("  ]\n}\n");
        out
    }

    /// Parses a report emitted by [`PerfReport::to_json`] (or any JSON
    /// with the same fields; unknown keys are ignored).
    pub fn from_json(text: &str) -> Result<PerfReport, String> {
        let v = JsonValue::parse(text)?;
        let obj = v.as_object("report")?;
        let schema_version = get_u64(obj, "schema_version")?;
        if schema_version != SCHEMA_VERSION {
            return Err(format!(
                "unsupported schema_version {schema_version} (expected {SCHEMA_VERSION})"
            ));
        }
        let scale = get_str(obj, "scale")?.to_owned();
        let warmup_reps = get_u64(obj, "warmup_reps")?;
        let reps = get_u64(obj, "reps")?;
        let host_parallelism = get_u64(obj, "host_parallelism")?;
        let scenarios = get(obj, "scenarios")?
            .as_array("scenarios")?
            .iter()
            .map(|s| {
                let o = s.as_object("scenario")?;
                Ok(ScenarioResult {
                    name: get_str(o, "name")?.to_owned(),
                    workers: get_u64(o, "workers")?,
                    median_ms: get_f64(o, "median_ms")?,
                    min_ms: get_f64(o, "min_ms")?,
                    sim_seconds: get_f64(o, "sim_seconds")?,
                    sim_secs_per_wall_sec: get_f64(o, "sim_secs_per_wall_sec")?,
                    completed: get_u64(o, "completed")?,
                    physical_reads: get_u64(o, "physical_reads")?,
                })
            })
            .collect::<Result<Vec<_>, String>>()?;
        Ok(PerfReport {
            schema_version,
            scale,
            warmup_reps,
            reps,
            host_parallelism,
            scenarios,
        })
    }

    /// Renders the human-readable summary table.
    pub fn to_table(&self) -> tapesim::analysis::Table {
        let mut t = tapesim::analysis::Table::new([
            "scenario",
            "workers",
            "median_ms",
            "min_ms",
            "sim_s/wall_s",
            "completed",
            "reads",
        ]);
        for s in &self.scenarios {
            t.push([
                s.name.clone(),
                s.workers.to_string(),
                tapesim::analysis::fnum(s.median_ms, 3),
                tapesim::analysis::fnum(s.min_ms, 3),
                tapesim::analysis::fnum(s.sim_secs_per_wall_sec, 0),
                s.completed.to_string(),
                s.physical_reads.to_string(),
            ]);
        }
        t
    }
}

// ---------------------------------------------------------------------
// Regression check
// ---------------------------------------------------------------------

/// One scenario slower than the baseline allows.
#[derive(Debug, Clone, PartialEq)]
pub struct Regression {
    /// Scenario name.
    pub scenario: String,
    /// Baseline median, in milliseconds.
    pub baseline_ms: f64,
    /// Current median, in milliseconds.
    pub current_ms: f64,
    /// `current / baseline`.
    pub ratio: f64,
}

/// Compares `current` against `baseline`: every baseline scenario must
/// be present in `current` and its median no more than `(1 + tolerance)`
/// times the baseline median. Returns the scenarios that regressed
/// (empty = pass). A scenario missing from `current` is an error — the
/// matrix itself changed, so the baseline must be refreshed.
pub fn compare_to_baseline(
    current: &PerfReport,
    baseline: &PerfReport,
    tolerance: f64,
) -> Result<Vec<Regression>, String> {
    let mut regressions = Vec::new();
    for b in &baseline.scenarios {
        let Some(c) = current.scenarios.iter().find(|c| c.name == b.name) else {
            return Err(format!(
                "scenario '{}' in baseline but not in current run; refresh the baseline",
                b.name
            ));
        };
        if b.median_ms > 0.0 && c.median_ms > b.median_ms * (1.0 + tolerance) {
            regressions.push(Regression {
                scenario: b.name.clone(),
                baseline_ms: b.median_ms,
                current_ms: c.median_ms,
                ratio: c.median_ms / b.median_ms,
            });
        }
    }
    Ok(regressions)
}

// ---------------------------------------------------------------------
// Minimal JSON parser (no dependencies)
// ---------------------------------------------------------------------

/// A parsed JSON value. Object keys keep their source order.
#[derive(Debug, Clone, PartialEq)]
enum JsonValue {
    Object(Vec<(String, JsonValue)>),
    Array(Vec<JsonValue>),
    String(String),
    Number(f64),
    Bool(bool),
    Null,
}

impl JsonValue {
    fn parse(text: &str) -> Result<JsonValue, String> {
        let mut p = Parser {
            bytes: text.as_bytes(),
            pos: 0,
        };
        p.skip_ws();
        let v = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(format!("trailing data at byte {}", p.pos));
        }
        Ok(v)
    }

    fn as_object(&self, what: &str) -> Result<&[(String, JsonValue)], String> {
        match self {
            JsonValue::Object(o) => Ok(o),
            _ => Err(format!("{what}: expected an object")),
        }
    }

    fn as_array(&self, what: &str) -> Result<&[JsonValue], String> {
        match self {
            JsonValue::Array(a) => Ok(a),
            _ => Err(format!("{what}: expected an array")),
        }
    }
}

fn get<'a>(obj: &'a [(String, JsonValue)], key: &str) -> Result<&'a JsonValue, String> {
    obj.iter()
        .find(|(k, _)| k == key)
        .map(|(_, v)| v)
        .ok_or_else(|| format!("missing key '{key}'"))
}

fn get_f64(obj: &[(String, JsonValue)], key: &str) -> Result<f64, String> {
    match get(obj, key)? {
        JsonValue::Number(n) => Ok(*n),
        _ => Err(format!("key '{key}': expected a number")),
    }
}

// Counters are far below 2^53, so the f64 round-trip is exact.
#[allow(clippy::cast_possible_truncation, clippy::cast_sign_loss)]
fn get_u64(obj: &[(String, JsonValue)], key: &str) -> Result<u64, String> {
    let n = get_f64(obj, key)?;
    if n < 0.0 || n.fract() != 0.0 {
        return Err(format!("key '{key}': expected a non-negative integer"));
    }
    Ok(n as u64)
}

fn get_str<'a>(obj: &'a [(String, JsonValue)], key: &str) -> Result<&'a str, String> {
    match get(obj, key)? {
        JsonValue::String(s) => Ok(s),
        _ => Err(format!("key '{key}': expected a string")),
    }
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if b == b' ' || b == b'\t' || b == b'\n' || b == b'\r' {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect_byte(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!("expected '{}' at byte {}", char::from(b), self.pos))
        }
    }

    fn value(&mut self) -> Result<JsonValue, String> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(JsonValue::String(self.string()?)),
            Some(b't') => self.literal("true", JsonValue::Bool(true)),
            Some(b'f') => self.literal("false", JsonValue::Bool(false)),
            Some(b'n') => self.literal("null", JsonValue::Null),
            Some(b) if b == b'-' || b.is_ascii_digit() => self.number(),
            _ => Err(format!("unexpected input at byte {}", self.pos)),
        }
    }

    fn literal(&mut self, lit: &str, v: JsonValue) -> Result<JsonValue, String> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(v)
        } else {
            Err(format!("invalid literal at byte {}", self.pos))
        }
    }

    fn object(&mut self) -> Result<JsonValue, String> {
        self.expect_byte(b'{')?;
        let mut out = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(JsonValue::Object(out));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect_byte(b':')?;
            self.skip_ws();
            let val = self.value()?;
            out.push((key, val));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(JsonValue::Object(out));
                }
                _ => return Err(format!("expected ',' or '}}' at byte {}", self.pos)),
            }
        }
    }

    fn array(&mut self) -> Result<JsonValue, String> {
        self.expect_byte(b'[')?;
        let mut out = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(JsonValue::Array(out));
        }
        loop {
            self.skip_ws();
            out.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(JsonValue::Array(out));
                }
                _ => return Err(format!("expected ',' or ']' at byte {}", self.pos)),
            }
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect_byte(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err("unterminated string".to_owned()),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or("truncated \\u escape")?;
                            let s = std::str::from_utf8(hex).map_err(|_| "bad \\u escape")?;
                            let code = u32::from_str_radix(s, 16).map_err(|_| "bad \\u escape")?;
                            out.push(char::from_u32(code).ok_or("bad \\u code point")?);
                            self.pos += 4;
                        }
                        _ => return Err(format!("bad escape at byte {}", self.pos)),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 scalar (the input came from &str,
                    // so char boundaries are valid).
                    let rest = &self.bytes[self.pos..];
                    let s = std::str::from_utf8(rest).map_err(|e| e.to_string())?;
                    let c = s.chars().next().ok_or("unterminated string")?;
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn number(&mut self) -> Result<JsonValue, String> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while let Some(b) = self.peek() {
            if b.is_ascii_digit() || b == b'.' || b == b'e' || b == b'E' || b == b'+' || b == b'-' {
                self.pos += 1;
            } else {
                break;
            }
        }
        let s = std::str::from_utf8(&self.bytes[start..self.pos]).map_err(|e| e.to_string())?;
        s.parse::<f64>()
            .map(JsonValue::Number)
            .map_err(|_| format!("invalid number '{s}'"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_report() -> PerfReport {
        PerfReport {
            schema_version: SCHEMA_VERSION,
            scale: "quick".to_owned(),
            warmup_reps: 1,
            reps: 5,
            host_parallelism: 8,
            scenarios: vec![
                ScenarioResult {
                    name: "engine-fifo".to_owned(),
                    workers: 1,
                    median_ms: 1.537,
                    min_ms: 1.101,
                    sim_seconds: 100_000.0,
                    sim_secs_per_wall_sec: 65_061_808.7,
                    completed: 329,
                    physical_reads: 329,
                },
                ScenarioResult {
                    name: "envelope-heavy".to_owned(),
                    workers: 1,
                    median_ms: 2.25,
                    min_ms: 2.0,
                    sim_seconds: 100_000.0,
                    sim_secs_per_wall_sec: 44_444_444.4,
                    completed: 1700,
                    physical_reads: 1658,
                },
            ],
        }
    }

    #[test]
    fn json_round_trips_exactly() {
        let r = sample_report();
        let parsed = PerfReport::from_json(&r.to_json()).unwrap();
        assert_eq!(parsed, r);
    }

    #[test]
    fn json_key_order_is_stable_and_documented() {
        let r = sample_report();
        let a = r.to_json();
        assert_eq!(a, r.to_json(), "emission must be deterministic");
        // Top-level keys in schema order.
        let pos = |key: &str| a.find(&format!("\"{key}\"")).expect(key);
        assert!(pos("schema_version") < pos("scale"));
        assert!(pos("scale") < pos("warmup_reps"));
        assert!(pos("warmup_reps") < pos("reps"));
        assert!(pos("reps") < pos("host_parallelism"));
        assert!(pos("host_parallelism") < pos("scenarios"));
        // Scenario keys in schema order.
        assert!(pos("name") < pos("workers"));
        assert!(pos("workers") < pos("median_ms"));
        assert!(pos("median_ms") < pos("min_ms"));
        assert!(pos("min_ms") < pos("sim_seconds"));
        assert!(pos("sim_seconds") < pos("sim_secs_per_wall_sec"));
        assert!(pos("sim_secs_per_wall_sec") < pos("completed"));
        assert!(pos("completed") < pos("physical_reads"));
    }

    #[test]
    fn from_json_rejects_other_schema_versions_and_garbage() {
        let mut r = sample_report();
        r.schema_version = 3;
        assert!(PerfReport::from_json(&r.to_json())
            .unwrap_err()
            .contains("schema_version"));
        assert!(PerfReport::from_json("not json").is_err());
        assert!(PerfReport::from_json("{}").is_err());
        assert!(PerfReport::from_json("{\"schema_version\": 2} trailing").is_err());
    }

    #[test]
    fn same_seed_runs_report_identical_work_counters() {
        let sim = SimConfig {
            duration: Micros::from_secs(3_000),
            warmup: Micros::from_secs(500),
            max_pending: 5_000,
        };
        for spec in scenario_matrix(Scale::Quick) {
            let placed = spec.cfg.build_catalog().unwrap();
            let a = run_scenario(&spec, &placed, &sim, 7).unwrap();
            let b = run_scenario(&spec, &placed, &sim, 7).unwrap();
            assert_eq!(a, b, "{} must be deterministic", spec.name);
        }
    }

    #[test]
    fn traced_null_sink_matches_untraced_run() {
        let sim = SimConfig {
            duration: Micros::from_secs(3_000),
            warmup: Micros::from_secs(500),
            max_pending: 5_000,
        };
        let matrix = scenario_matrix(Scale::Quick);
        let traced = matrix
            .iter()
            .find(|s| s.route == ScenarioRoute::TracedNullSink)
            .unwrap();
        let placed = traced.cfg.build_catalog().unwrap();
        let via_trace = run_scenario(traced, &placed, &sim, 11).unwrap();
        let plain = ScenarioSpec {
            name: "plain",
            cfg: traced.cfg.clone(),
            route: ScenarioRoute::Runner,
        };
        let via_runner = run_scenario(&plain, &placed, &sim, 11).unwrap();
        assert_eq!(via_trace, via_runner);
    }

    #[test]
    fn compare_flags_only_regressions_beyond_tolerance() {
        let base = sample_report();
        let mut cur = base.clone();
        // 20% slower: inside the default 30% tolerance.
        cur.scenarios[0].median_ms = base.scenarios[0].median_ms * 1.2;
        assert!(compare_to_baseline(&cur, &base, DEFAULT_TOLERANCE)
            .unwrap()
            .is_empty());
        // 40% slower: flagged.
        cur.scenarios[0].median_ms = base.scenarios[0].median_ms * 1.4;
        let regs = compare_to_baseline(&cur, &base, DEFAULT_TOLERANCE).unwrap();
        assert_eq!(regs.len(), 1);
        assert_eq!(regs[0].scenario, "engine-fifo");
        assert!((regs[0].ratio - 1.4).abs() < 1e-9);
        // A scenario missing from the current run is an error.
        cur.scenarios.remove(1);
        assert!(compare_to_baseline(&cur, &base, DEFAULT_TOLERANCE).is_err());
    }

    #[test]
    fn median_of_even_and_odd_sets() {
        assert_eq!(median_of_sorted(&[]), 0.0);
        assert_eq!(median_of_sorted(&[3.0]), 3.0);
        assert_eq!(median_of_sorted(&[1.0, 3.0]), 2.0);
        assert_eq!(median_of_sorted(&[1.0, 2.0, 10.0]), 2.0);
    }
}
