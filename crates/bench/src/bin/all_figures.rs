//! Runs every figure and table binary's logic in sequence — the one-shot
//! "regenerate the paper's evaluation" entry point.

use tapesim_bench::{emit_figure, HarnessOpts};

fn main() {
    let opts = HarnessOpts::from_args();
    println!("=== Reproducing Hillyer/Rastogi/Silberschatz, ICDE 1999 ===\n");

    println!("--- Figure 1 + Section 2.1 validation ---");
    let f1 = tapesim::fig1_locate_model(2130, 0x51);
    println!(
        "forward fit: short {:.3}+{:.4}k, long {:.3}+{:.4}k  (true 4.834+0.378k / 14.342+0.028k)",
        f1.forward.0.intercept, f1.forward.0.slope, f1.forward.1.intercept, f1.forward.1.slope
    );
    let v = tapesim::model_validation();
    println!(
        "validation: locate max/mean {:.2}%/{:.2}%, read max/mean {:.2}%/{:.2}%\n",
        v.max_locate_rel_err * 100.0,
        v.mean_locate_rel_err * 100.0,
        v.max_read_rel_err * 100.0,
        v.mean_read_rel_err * 100.0
    );

    println!("--- Figure 3 ---");
    let s3 = tapesim::fig3_transfer_size(opts.scale, opts.open);
    emit_figure(&opts, "fig3_transfer_size", "Figure 3", "block_mb", &s3);

    println!("--- Figure 4 ---");
    let s4 = tapesim::fig4_sched_algorithms(opts.scale, opts.open);
    emit_figure(&opts, "fig4_sched_norepl", "Figure 4", "intensity", &s4);

    println!("--- Figure 5 ---");
    let s5 = tapesim::fig5_placement(opts.scale, opts.open);
    emit_figure(&opts, "fig5_placement", "Figure 5", "intensity", &s5);

    println!("--- Figure 6 ---");
    let s6 = tapesim::fig6_replicas(opts.scale, opts.open);
    emit_figure(&opts, "fig6_replicas", "Figure 6", "intensity", &s6);

    println!("--- Figure 7 ---");
    let s7 = tapesim::fig7_replica_placement(opts.scale, opts.open);
    emit_figure(
        &opts,
        "fig7_replica_placement",
        "Figure 7",
        "intensity",
        &s7,
    );

    println!("--- Figure 8 ---");
    let s8 = tapesim::fig8_sched_replication(opts.scale, opts.open);
    emit_figure(&opts, "fig8_sched_repl", "Figure 8", "intensity", &s8);

    println!("--- Figure 9 ---");
    let s9 = tapesim::fig9_skew(opts.scale, opts.open);
    emit_figure(&opts, "fig9_skew", "Figure 9", "intensity", &s9);

    println!("--- Figure 10 ---");
    let c = tapesim::fig10b_cost_performance(opts.scale, 60);
    for series in &c {
        let last = series.points.last().unwrap();
        println!(
            "RH-{}: full-replication cost-performance ratio {:.3}",
            series.rh_percent, last.ratio
        );
    }
    println!("\ndone.");
}
