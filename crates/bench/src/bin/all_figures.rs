//! Runs every figure and table binary's logic in sequence — the one-shot
//! "regenerate the paper's evaluation" entry point.
//!
//! With `--checkpoint FILE` each figure's CSV is recorded as it finishes;
//! a killed run restarted with `--resume FILE` replays the finished
//! figures byte-for-byte and recomputes only the remainder.

use tapesim_bench::{emit_figure_cached, FigureCache, HarnessOpts};

fn main() {
    let opts = HarnessOpts::from_args();
    let mut cache = FigureCache::from_opts(&opts);
    println!("=== Reproducing Hillyer/Rastogi/Silberschatz, ICDE 1999 ===\n");

    println!("--- Figure 1 + Section 2.1 validation ---");
    let f1 = tapesim::fig1_locate_model(2130, 0x51);
    println!(
        "forward fit: short {:.3}+{:.4}k, long {:.3}+{:.4}k  (true 4.834+0.378k / 14.342+0.028k)",
        f1.forward.0.intercept, f1.forward.0.slope, f1.forward.1.intercept, f1.forward.1.slope
    );
    let v = tapesim::model_validation();
    println!(
        "validation: locate max/mean {:.2}%/{:.2}%, read max/mean {:.2}%/{:.2}%\n",
        v.max_locate_rel_err * 100.0,
        v.mean_locate_rel_err * 100.0,
        v.max_read_rel_err * 100.0,
        v.mean_read_rel_err * 100.0
    );

    println!("--- Figure 3 ---");
    emit_figure_cached(
        &opts,
        &mut cache,
        "fig3_transfer_size",
        "Figure 3",
        "block_mb",
        || tapesim::fig3_transfer_size(opts.scale, opts.open),
    );

    println!("--- Figure 4 ---");
    emit_figure_cached(
        &opts,
        &mut cache,
        "fig4_sched_norepl",
        "Figure 4",
        "intensity",
        || tapesim::fig4_sched_algorithms(opts.scale, opts.open),
    );

    println!("--- Figure 5 ---");
    emit_figure_cached(
        &opts,
        &mut cache,
        "fig5_placement",
        "Figure 5",
        "intensity",
        || tapesim::fig5_placement(opts.scale, opts.open),
    );

    println!("--- Figure 6 ---");
    emit_figure_cached(
        &opts,
        &mut cache,
        "fig6_replicas",
        "Figure 6",
        "intensity",
        || tapesim::fig6_replicas(opts.scale, opts.open),
    );

    println!("--- Figure 7 ---");
    emit_figure_cached(
        &opts,
        &mut cache,
        "fig7_replica_placement",
        "Figure 7",
        "intensity",
        || tapesim::fig7_replica_placement(opts.scale, opts.open),
    );

    println!("--- Figure 8 ---");
    emit_figure_cached(
        &opts,
        &mut cache,
        "fig8_sched_repl",
        "Figure 8",
        "intensity",
        || tapesim::fig8_sched_replication(opts.scale, opts.open),
    );

    println!("--- Figure 9 ---");
    emit_figure_cached(
        &opts,
        &mut cache,
        "fig9_skew",
        "Figure 9",
        "intensity",
        || tapesim::fig9_skew(opts.scale, opts.open),
    );

    println!("--- Figure 10 ---");
    let c = tapesim::fig10b_cost_performance(opts.scale, 60);
    for series in &c {
        if let Some(last) = series.points.last() {
            println!(
                "RH-{}: full-replication cost-performance ratio {:.3}",
                series.rh_percent, last.ratio
            );
        }
    }
    println!("\ndone.");
}
