//! Figure 6: throughput and latency as a function of the number of
//! replicas of hot data (vertical layout, replicas at the tape ends).

use tapesim_bench::{emit_figure, HarnessOpts};

fn main() {
    let opts = HarnessOpts::from_args();
    let series = tapesim::fig6_replicas(opts.scale, opts.open);
    emit_figure(
        &opts,
        "fig6_replicas",
        "Figure 6: number of replicas of hot data (PH-10 RH-40 SP-1.0, vertical)",
        "intensity",
        &series,
    );
    // The paper's headline deltas at full replication.
    if let (Some(nr0), Some(nr9)) = (series.first(), series.last()) {
        if let (Some(a), Some(b)) = (nr0.points.last(), nr9.points.last()) {
            println!(
                "full vs no replication at highest intensity: {:+.1}% req/min, {:+.1}% delay, {:+.1}% switches",
                (b.report.requests_per_min / a.report.requests_per_min - 1.0) * 100.0,
                (b.report.mean_delay_s / a.report.mean_delay_s - 1.0) * 100.0,
                (b.report.tape_switches as f64 / a.report.tape_switches as f64 - 1.0) * 100.0,
            );
            println!("(paper: about +18% requests/min, -13% response time, -20% switches)");
        }
    }
}
