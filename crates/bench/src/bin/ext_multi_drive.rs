//! Extension experiment: multi-drive jukeboxes (the paper's stated
//! future work). Sweeps the number of drives sharing one robot arm and
//! reports throughput/delay scaling, with and without replication.

use tapesim::prelude::*;
use tapesim::sim::run_multi_drive;
use tapesim_bench::{cached_csv, write_csv, FigureCache, HarnessOpts};

fn main() {
    let opts = HarnessOpts::from_args();
    let mut cache = FigureCache::from_opts(&opts);
    let timing = TimingModel::paper_default();
    let sim = opts.scale.sim_config();

    println!("Multi-drive extension: closed queue 120, PH-10 RH-40, envelope max-bandwidth\n");
    let (csv, _) = cached_csv(&mut cache, "ext_multi_drive", || {
        let mut t = Table::new(["layout", "drives", "KB/s", "speedup", "delay s", "switches"]);
        for (label, cfg) in [
            ("no replication", PlacementConfig::paper_baseline()),
            (
                "full replication",
                PlacementConfig::paper_full_replication(JukeboxGeometry::PAPER_DEFAULT),
            ),
        ] {
            let placed = build_placement(
                JukeboxGeometry::PAPER_DEFAULT,
                BlockSize::PAPER_DEFAULT,
                cfg,
            )
            .expect("feasible");
            let mut base = None;
            for drives in [1u16, 2, 3, 4] {
                let mut reports = Vec::new();
                for seed in opts.scale.seeds() {
                    let sampler = BlockSampler::from_catalog(&placed.catalog, 40.0);
                    let mut factory = RequestFactory::new(
                        sampler,
                        ArrivalProcess::Closed { queue_length: 120 },
                        seed,
                    );
                    let mut sched = make_scheduler(AlgorithmId::paper_recommended());
                    reports.push(
                        run_multi_drive(
                            &placed.catalog,
                            &timing,
                            sched.as_mut(),
                            &mut factory,
                            &sim,
                            drives,
                        )
                        .expect("multi-drive config is valid"),
                    );
                }
                let r = MetricsReport::mean_of(&reports);
                let b = *base.get_or_insert(r.throughput_kb_per_s);
                t.push([
                    label.to_string(),
                    drives.to_string(),
                    fnum(r.throughput_kb_per_s, 1),
                    format!("{:.2}x", r.throughput_kb_per_s / b),
                    fnum(r.mean_delay_s, 0),
                    r.tape_switches.to_string(),
                ]);
            }
        }
        println!("{}", t.to_aligned());
        t.to_csv()
    });
    write_csv(&opts, "ext_multi_drive", &csv);
    println!("(speedup is sub-linear: drives contend for the shared robot arm,\n and concurrent sweeps steal each other's batching opportunities)");
}
