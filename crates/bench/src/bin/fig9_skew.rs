//! Figure 9: the relationship between skew and performance improvements.
//! RH 20..80 at PH-10; non-replicated (dotted in the paper) vs fully
//! replicated (solid), max-bandwidth envelope.

use tapesim_bench::{emit_figure, HarnessOpts};

fn main() {
    let opts = HarnessOpts::from_args();
    let series = tapesim::fig9_skew(opts.scale, opts.open);
    emit_figure(
        &opts,
        "fig9_skew",
        "Figure 9: skew vs performance (PH-10, envelope max-bandwidth)",
        "intensity",
        &series,
    );
}
