//! Extension experiment: the paper's write-handling assumption, measured.
//!
//! Writes accumulate in a disk-resident delta buffer and are destaged to
//! tape during idle time, optionally piggybacked on read sweeps. The
//! experiment quantifies the two costs the paper waves at: how much read
//! latency the destaging steals, and how long deltas sit on disk.

use tapesim::prelude::*;
use tapesim::sim::{
    run_with_writeback, run_with_writeback_traced, FlushPolicy, MemorySink, WriteBackConfig,
};
use tapesim_bench::{cached_csv, write_csv, write_trace, FigureCache, HarnessOpts};

fn main() {
    let opts = HarnessOpts::from_args();
    let mut cache = FigureCache::from_opts(&opts);
    let timing = TimingModel::paper_default();
    let sim = opts.scale.sim_config();
    let placed = build_placement(
        JukeboxGeometry::PAPER_DEFAULT,
        BlockSize::PAPER_DEFAULT,
        PlacementConfig::paper_baseline(),
    )
    .expect("feasible");

    println!(
        "Write-back extension: open reads (1 per 300 s), PH-10 RH-40, envelope max-bandwidth\n"
    );
    let (csv, _) = cached_csv(&mut cache, "ext_writeback", || {
        let mut t = Table::new([
            "write gap s",
            "policy",
            "read delay s",
            "deltas flushed",
            "delta age s",
            "piggy",
            "idle",
        ]);
        for write_gap in [1_000_000u64, 600, 300, 150] {
            for policy in [FlushPolicy::IdleOnly, FlushPolicy::Piggyback] {
                let sampler = BlockSampler::from_catalog(&placed.catalog, 40.0);
                let mut factory = RequestFactory::new(
                    sampler,
                    ArrivalProcess::OpenPoisson {
                        mean_interarrival: Micros::from_secs(300),
                    },
                    7,
                );
                let mut sched = make_scheduler(AlgorithmId::paper_recommended());
                let r = run_with_writeback(
                    &placed.catalog,
                    &timing,
                    sched.as_mut(),
                    &mut factory,
                    &sim,
                    &WriteBackConfig {
                        write_mean_interarrival: Micros::from_secs(write_gap),
                        flush_batch: 10,
                        piggyback_min: 5,
                        policy,
                    },
                    1234,
                )
                .expect("write-back config is valid");
                t.push([
                    if write_gap >= 1_000_000 {
                        "(none)".to_string()
                    } else {
                        write_gap.to_string()
                    },
                    format!("{policy:?}"),
                    fnum(r.reads.mean_delay_s, 0),
                    r.deltas_flushed.to_string(),
                    fnum(r.mean_delta_age_s, 0),
                    r.piggyback_flushes.to_string(),
                    r.idle_flushes.to_string(),
                ]);
            }
        }
        println!("{}", t.to_aligned());
        t.to_csv()
    });
    write_csv(&opts, "ext_writeback", &csv);
    if opts.trace.is_some() {
        // Record the representative piggyback run (write gap 300 s) with
        // the event-trace layer attached.
        let sampler = BlockSampler::from_catalog(&placed.catalog, 40.0);
        let mut factory = RequestFactory::new(
            sampler,
            ArrivalProcess::OpenPoisson {
                mean_interarrival: Micros::from_secs(300),
            },
            7,
        );
        let mut sched = make_scheduler(AlgorithmId::paper_recommended());
        let mut sink = MemorySink::new();
        run_with_writeback_traced(
            &placed.catalog,
            &timing,
            sched.as_mut(),
            &mut factory,
            &sim,
            &WriteBackConfig {
                write_mean_interarrival: Micros::from_secs(300),
                flush_batch: 10,
                piggyback_min: 5,
                policy: FlushPolicy::Piggyback,
            },
            1234,
            &mut sink,
        )
        .expect("write-back config is valid");
        write_trace(&opts, &sink.into_events());
    }
    println!("(piggybacking destages deltas far sooner — a freshness/latency trade-off the\n paper's \"piggybacked on the read schedule\" suggestion leaves implicit)");
}
