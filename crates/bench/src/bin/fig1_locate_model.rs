//! Figure 1: locate time as a function of distance (1 MB logical blocks).
//!
//! Generates 2130 synthetic locate measurements (standing in for the
//! paper's hardware calibration run), refits the four piecewise-linear
//! regimes by least squares, and prints the recovered coefficients next
//! to the ground truth.

use tapesim::prelude::*;
use tapesim_bench::{write_csv, HarnessOpts};

fn main() {
    let opts = HarnessOpts::from_args();
    let data = tapesim::fig1_locate_model(2130, 0x51);

    println!("Figure 1: locate time vs distance (Exabyte EXB-8505XL model)\n");
    let mut t = Table::new([
        "regime",
        "fit startup (s)",
        "true",
        "fit s/MB",
        "true",
        "R^2",
        "n",
    ]);
    let truth = &data.drive.locate;
    let rows = [
        ("forward short", data.forward.0, truth.fwd_short),
        ("forward long", data.forward.1, truth.fwd_long),
        ("reverse short", data.reverse.0, truth.rev_short),
        ("reverse long", data.reverse.1, truth.rev_long),
    ];
    for (name, fit, seg) in rows {
        t.push([
            name.to_string(),
            fnum(fit.intercept, 3),
            fnum(seg.startup_s, 3),
            fnum(fit.slope, 4),
            fnum(seg.per_mb_s, 4),
            fnum(fit.r_squared, 4),
            fit.n.to_string(),
        ]);
    }
    println!("{}", t.to_aligned());

    // Scatter of the samples (distance vs time), one series per direction.
    let fwd: Vec<(f64, f64)> = data
        .samples
        .iter()
        .filter(|s| s.direction == tapesim::model::LocateDirection::Forward && !s.to_bot)
        .map(|s| (s.distance_mb as f64, s.measured_s))
        .collect();
    let rev: Vec<(f64, f64)> = data
        .samples
        .iter()
        .filter(|s| s.direction == tapesim::model::LocateDirection::Reverse && !s.to_bot)
        .map(|s| (s.distance_mb as f64, s.measured_s))
        .collect();
    println!(
        "{}",
        ascii_plot(
            "locate time vs distance",
            "distance (MB)",
            "locate time (s)",
            &[Series::new("forward", fwd), Series::new("reverse", rev)],
            64,
            18,
        )
    );

    let mut csv = Table::new([
        "direction",
        "distance_mb",
        "to_bot",
        "predicted_s",
        "measured_s",
    ]);
    for s in &data.samples {
        csv.push([
            format!("{:?}", s.direction),
            s.distance_mb.to_string(),
            s.to_bot.to_string(),
            fnum(s.predicted_s, 4),
            fnum(s.measured_s, 4),
        ]);
    }
    write_csv(&opts, "fig1_locate_samples", &csv.to_csv());
}
