//! Figure 10: cost effectiveness of replication.
//!
//! (a) the analytic expansion factor E = 1 + NR*PH/100;
//! (b) the cost-performance ratio of replication vs no replication as NR
//!     grows, for several skews, with the replicated jukebox's queue
//!     scaled down by E (same total workload over E times more jukeboxes).

use tapesim::prelude::*;
use tapesim_bench::{write_csv, HarnessOpts};

fn main() {
    let opts = HarnessOpts::from_args();

    // (a) expansion factor.
    println!("Figure 10(a): storage expansion factor E = 1 + NR*PH/100\n");
    let mut ta = Table::new(["PH %", "NR-0", "NR-1", "NR-2", "NR-4", "NR-6", "NR-9"]);
    for row in tapesim::fig10a_expansion() {
        let at = |nr: u32| {
            row.points
                .iter()
                .find(|p| p.0 == nr)
                .map(|p| fnum(p.1, 2))
                .unwrap_or_default()
        };
        ta.push([
            fnum(row.ph_percent, 0),
            at(0),
            at(1),
            at(2),
            at(4),
            at(6),
            at(9),
        ]);
    }
    println!("{}", ta.to_aligned());
    write_csv(&opts, "fig10a_expansion", &ta.to_csv());

    // (b) cost-performance at queue 60 (and 20 for the light-load case).
    for base_queue in [60u32, 20u32] {
        println!("Figure 10(b): cost-performance ratio, base queue {base_queue}\n");
        let curves = tapesim::fig10b_cost_performance(opts.scale, base_queue);
        let mut tb = Table::new(["RH %", "NR", "E", "queue", "KB/s", "ratio"]);
        let mut plot = Vec::new();
        for c in &curves {
            let pts: Vec<(f64, f64)> = c.points.iter().map(|p| (p.nr as f64, p.ratio)).collect();
            plot.push(Series::new(format!("RH-{}", c.rh_percent), pts));
            for p in &c.points {
                tb.push([
                    fnum(c.rh_percent, 0),
                    p.nr.to_string(),
                    fnum(p.expansion, 2),
                    p.queue.to_string(),
                    fnum(p.throughput, 1),
                    fnum(p.ratio, 3),
                ]);
            }
        }
        println!(
            "{}",
            ascii_plot(
                &format!("cost-performance ratio vs replicas (base queue {base_queue})"),
                "replicas (NR)",
                "ratio vs NR-0",
                &plot,
                64,
                16,
            )
        );
        println!("{}", tb.to_aligned());
        write_csv(
            &opts,
            &format!("fig10b_cost_performance_q{base_queue}"),
            &tb.to_csv(),
        );
    }
    println!("(paper: moderate skew degrades cost-performance by up to ~3%; very high skew gains ~8-10%, ~14% at queue 20)");
}
