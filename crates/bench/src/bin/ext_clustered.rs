//! Extension experiment: clustered (Markov-run) request streams.
//!
//! The paper assumes independent block requests and explicitly leaves
//! clustered dependencies unexploited. This ablation relaxes that
//! assumption: requests continue a sequential run with probability
//! `run_p`. Sequential runs turn many locates into cheap streaming reads,
//! so throughput rises with clustering — and the algorithm ranking of
//! Figure 4 must be preserved.

use tapesim::prelude::*;
use tapesim_bench::{cached_csv, write_csv, FigureCache, HarnessOpts};

fn main() {
    let opts = HarnessOpts::from_args();
    let mut cache = FigureCache::from_opts(&opts);
    let timing = TimingModel::paper_default();
    let sim = opts.scale.sim_config();
    let placed = build_placement(
        JukeboxGeometry::PAPER_DEFAULT,
        BlockSize::PAPER_DEFAULT,
        PlacementConfig::paper_baseline(),
    )
    .expect("feasible");

    let algorithms = [
        AlgorithmId::Fifo,
        AlgorithmId::Static(TapeSelectPolicy::MaxBandwidth),
        AlgorithmId::Dynamic(TapeSelectPolicy::MaxBandwidth),
        AlgorithmId::paper_recommended(),
    ];
    println!("Clustered-workload extension: PH-10 RH-40 NR-0 SP-0, closed queue 60\n");
    let (csv, _) = cached_csv(&mut cache, "ext_clustered", || {
        let mut t = Table::new(["run_p", "mean run", "algorithm", "KB/s", "delay s"]);
        for run_p in [0.0, 0.5, 0.8, 0.95] {
            let mut ranking = Vec::new();
            for alg in algorithms {
                let mut reports = Vec::new();
                for seed in opts.scale.seeds() {
                    let sampler = BlockSampler::from_catalog(&placed.catalog, 40.0);
                    let mut factory = RequestFactory::new_clustered(
                        sampler,
                        ArrivalProcess::Closed { queue_length: 60 },
                        run_p,
                        seed,
                    );
                    let mut sched = make_scheduler(alg);
                    reports.push(
                        run_simulation(
                            &placed.catalog,
                            &timing,
                            sched.as_mut(),
                            &mut factory,
                            &sim,
                        )
                        .expect("clustered config is valid"),
                    );
                }
                let r = MetricsReport::mean_of(&reports);
                t.push([
                    format!("{run_p}"),
                    format!("{:.1}", 1.0 / (1.0 - run_p)),
                    alg.name(),
                    fnum(r.throughput_kb_per_s, 1),
                    fnum(r.mean_delay_s, 0),
                ]);
                ranking.push((alg.name(), r.throughput_kb_per_s));
            }
            let best = ranking
                .iter()
                .max_by(|a, b| a.1.total_cmp(&b.1))
                .expect("non-empty");
            println!("run_p {run_p}: best = {} ({:.1} KB/s)", best.0, best.1);
        }
        println!("\n{}", t.to_aligned());
        t.to_csv()
    });
    write_csv(&opts, "ext_clustered", &csv);
    println!("(clustering raises absolute throughput; the paper's algorithm ranking persists)");
}
