//! Section 4.8's spare-capacity experiment: for a partially filled
//! jukebox, compare (a) packing the data onto as few tapes as possible
//! and leaving the spare empty against (b) spreading the data and filling
//! the spare slots at the tape ends with replicas of hot data.

use tapesim::prelude::*;
use tapesim_bench::{write_csv, HarnessOpts};

fn main() {
    let opts = HarnessOpts::from_args();
    let timing = TimingModel::paper_default();
    let sim = opts.scale.sim_config();
    let seeds = opts.scale.seeds();

    let mut t = Table::new([
        "fill %", "scheme", "E", "KB/s", "delay s", "p95 s", "switches",
    ]);
    println!("Spare capacity: PH-10 RH-60, closed queue 60, envelope max-bandwidth\n");
    for fill in [0.4, 0.5, 0.6, 0.7, 0.8, 0.9] {
        let mut pair = Vec::new();
        for (name, spare_use) in [
            ("packed, spare empty", SpareUse::LeaveEmpty),
            ("spread + replicas", SpareUse::FillWithReplicas),
        ] {
            let placed = build_spare_layout(
                JukeboxGeometry::PAPER_DEFAULT,
                BlockSize::PAPER_DEFAULT,
                SpareConfig {
                    ph_percent: 10.0,
                    fill_fraction: fill,
                    spare_use,
                },
            )
            .expect("feasible fill");
            let spec = RunSpec {
                catalog: &placed.catalog,
                timing: &timing,
                algorithm: AlgorithmId::paper_recommended(),
                process: ArrivalProcess::Closed { queue_length: 60 },
                rh_percent: 60.0,
                cluster_run_p: 0.0,
                drives: 1,
                config: sim,
                faults: tapesim::model::FaultConfig::NONE,
            };
            let (r, _) = tapesim::sim::run_seeds(&spec, &seeds).expect("spare config is valid");
            t.push([
                format!("{:.0}", fill * 100.0),
                name.to_string(),
                fnum(placed.expansion, 2),
                fnum(r.throughput_kb_per_s, 1),
                fnum(r.mean_delay_s, 0),
                fnum(r.p95_delay_s, 0),
                r.tape_switches.to_string(),
            ]);
            pair.push(r.throughput_kb_per_s);
        }
        println!(
            "fill {:>3.0}%: replicas change throughput by {:+.1}%",
            fill * 100.0,
            (pair[1] / pair[0] - 1.0) * 100.0
        );
    }
    println!("\n{}", t.to_aligned());
    write_csv(&opts, "spare_capacity", &t.to_csv());
    println!("(paper: filling existing spare capacity with replicas improves performance \"for free\";\n the packed scheme is within a percent or two of the full non-replicated layout)");
}
