//! Figure 8: relative performance of scheduling algorithms with full
//! replication at the tape ends, including the envelope variants.

use tapesim_bench::{emit_figure, HarnessOpts};

fn main() {
    let opts = HarnessOpts::from_args();
    let series = tapesim::fig8_sched_replication(opts.scale, opts.open);
    emit_figure(
        &opts,
        "fig8_sched_repl",
        "Figure 8: scheduling algorithms, full replication (PH-10 RH-40 NR-9 SP-1.0)",
        "intensity",
        &series,
    );
    // Envelope max-bandwidth vs dynamic max-bandwidth headline.
    let find = |name: &str| series.iter().find(|s| s.label == name);
    if let (Some(d), Some(e)) = (
        find("dynamic max-bandwidth"),
        find("envelope max-bandwidth"),
    ) {
        if let (Some(dp), Some(ep)) = (d.points.last(), e.points.last()) {
            println!(
                "envelope vs dynamic max-bandwidth at highest intensity: {:+.1}% throughput, {:+.1}% delay (paper: +6% / -5%)",
                (ep.report.throughput_kb_per_s / dp.report.throughput_kb_per_s - 1.0) * 100.0,
                (ep.report.mean_delay_s / dp.report.mean_delay_s - 1.0) * 100.0,
            );
        }
    }
}
