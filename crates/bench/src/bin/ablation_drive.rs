//! Drive-sensitivity ablation (Section 2.1's claim): a much faster
//! hypothetical drive improves every absolute number but does not change
//! the paper's conclusions about scheduling, placement, or replication.

use tapesim::prelude::*;
use tapesim_bench::HarnessOpts;

fn main() {
    let opts = HarnessOpts::from_args();
    let mut t = Table::new(["drive", "config", "KB/s", "delay s", "switches"]);
    let mut summary = Vec::new();
    for (drive_name, timing) in [
        ("EXB-8505XL (paper)", TimingModel::paper_default()),
        ("hypothetical fast", TimingModel::hypothetical_fast()),
    ] {
        let mut row = Vec::new();
        for (label, cfg) in [
            (
                "fifo no-repl",
                ExperimentConfig {
                    algorithm: AlgorithmId::Fifo,
                    timing: timing.clone(),
                    scale: opts.scale,
                    ..ExperimentConfig::paper_baseline()
                },
            ),
            (
                "dyn max-bw no-repl",
                ExperimentConfig {
                    timing: timing.clone(),
                    scale: opts.scale,
                    ..ExperimentConfig::paper_baseline()
                },
            ),
            (
                "envelope full-repl",
                ExperimentConfig {
                    timing: timing.clone(),
                    scale: opts.scale,
                    ..ExperimentConfig::paper_full_replication()
                },
            ),
        ] {
            let r = run_experiment(&cfg).expect("feasible").report;
            t.push([
                drive_name.to_string(),
                label.to_string(),
                fnum(r.throughput_kb_per_s, 1),
                fnum(r.mean_delay_s, 0),
                r.tape_switches.to_string(),
            ]);
            row.push(r.throughput_kb_per_s);
        }
        summary.push((drive_name, row));
    }
    println!("{}", t.to_aligned());
    for (name, row) in &summary {
        println!(
            "{name}: scheduling gain {:.1}x, replication gain {:+.1}%",
            row[1] / row[0],
            (row[2] / row[1] - 1.0) * 100.0
        );
    }
    println!("\n(the rankings must match across drives; only absolute numbers differ)");
}
