//! Extension experiment: Zipf popularity instead of the paper's two-class
//! hot/cold skew.
//!
//! The paper's skew model gives every hot block the same popularity. Here
//! the same jukebox is driven by a Zipf(theta) stream whose exponent is
//! fitted so the top 10% of blocks receive the same share of requests as
//! the paper's `(PH-10, RH)` settings — then the paper's two headline
//! recipes (scheduling and replication) are re-evaluated under the
//! smoother skew.

use tapesim::prelude::*;
use tapesim::sim::run_simulation;
use tapesim::workload::ZipfSampler;
use tapesim_bench::{cached_csv, write_csv, FigureCache, HarnessOpts};

fn run_zipf(
    placed: &tapesim::layout::PlacedCatalog,
    theta: f64,
    alg: AlgorithmId,
    seeds: &[u64],
    sim: &SimConfig,
) -> MetricsReport {
    let timing = TimingModel::paper_default();
    let reports: Vec<MetricsReport> = seeds
        .iter()
        .map(|&seed| {
            let sampler = ZipfSampler::new(placed.catalog.num_blocks(), theta);
            let mut factory = RequestFactory::new_zipf(
                sampler,
                ArrivalProcess::Closed { queue_length: 60 },
                seed,
            );
            let mut sched = make_scheduler(alg);
            run_simulation(&placed.catalog, &timing, sched.as_mut(), &mut factory, sim)
                .expect("zipf config is valid")
        })
        .collect();
    MetricsReport::mean_of(&reports)
}

fn main() {
    let opts = HarnessOpts::from_args();
    let mut cache = FigureCache::from_opts(&opts);
    let sim = opts.scale.sim_config();
    let seeds = opts.scale.seeds();

    let norepl = build_placement(
        JukeboxGeometry::PAPER_DEFAULT,
        BlockSize::PAPER_DEFAULT,
        PlacementConfig::paper_baseline(),
    )
    .expect("feasible");
    let repl = build_placement(
        JukeboxGeometry::PAPER_DEFAULT,
        BlockSize::PAPER_DEFAULT,
        PlacementConfig::paper_full_replication(JukeboxGeometry::PAPER_DEFAULT),
    )
    .expect("feasible");

    println!("Zipf-skew extension: closed queue 60; exponent fitted to the paper's (PH-10, RH)\n");
    let (csv, _) = cached_csv(&mut cache, "ext_zipf", || {
        let mut t = Table::new([
            "RH-equiv",
            "theta",
            "fifo KB/s",
            "dyn max-bw KB/s",
            "repl+envelope KB/s",
            "repl gain",
        ]);
        for rh in [40.0, 60.0, 80.0] {
            // Exponent whose top-10% mass matches RH; fitted on the
            // non-replicated catalog, reused for the replicated one (same
            // popularity law over a smaller block population).
            let theta = ZipfSampler::matching_exponent(norepl.catalog.num_blocks(), 10.0, rh);
            let fifo = run_zipf(&norepl, theta, AlgorithmId::Fifo, &seeds, &sim);
            let dynamic = run_zipf(
                &norepl,
                theta,
                AlgorithmId::Dynamic(TapeSelectPolicy::MaxBandwidth),
                &seeds,
                &sim,
            );
            let replicated = run_zipf(&repl, theta, AlgorithmId::paper_recommended(), &seeds, &sim);
            t.push([
                format!("RH-{rh}"),
                fnum(theta, 3),
                fnum(fifo.throughput_kb_per_s, 1),
                fnum(dynamic.throughput_kb_per_s, 1),
                fnum(replicated.throughput_kb_per_s, 1),
                format!(
                    "{:+.1}%",
                    (replicated.throughput_kb_per_s / dynamic.throughput_kb_per_s - 1.0) * 100.0
                ),
            ]);
        }
        println!("{}", t.to_aligned());
        t.to_csv()
    });
    write_csv(&opts, "ext_zipf", &csv);
    println!(
        "(the paper's conclusions survive a smoother skew: scheduling dominates FIFO and\n\
         replicating the most popular blocks at the tape ends still pays — note that under\n\
         Zipf the \"hot\" prefix only approximates the popular set, so gains are damped)"
    );
}
