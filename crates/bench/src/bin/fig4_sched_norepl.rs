//! Figure 4: relative performance of scheduling algorithms without
//! replication (FIFO, five static, five dynamic). PH-10 RH-40 NR-0 SP-0.

use tapesim_bench::{emit_figure, HarnessOpts};

fn main() {
    let opts = HarnessOpts::from_args();
    let series = tapesim::fig4_sched_algorithms(opts.scale, opts.open);
    emit_figure(
        &opts,
        "fig4_sched_norepl",
        "Figure 4: scheduling algorithms, no replication (PH-10 RH-40 NR-0 SP-0)",
        "intensity",
        &series,
    );
}
