//! Wall-clock performance harness over a fixed scenario matrix.
//!
//! Times each scenario (warmup + N repetitions), prints a human-readable
//! table, writes the machine-readable report to `BENCH_PERF.json`, and —
//! when `--check BASELINE` is given — fails with exit code 1 if any
//! scenario's median regresses beyond the tolerance.
//!
//! ```text
//! perf [--scale quick|default|paper] [--reps N] [--warmup N]
//!      [--out FILE|-] [--check BASELINE] [--tolerance F]
//! ```
//!
//! Refresh the checked-in baseline by running on the reference machine:
//!
//! ```text
//! cargo run --release -p tapesim-bench --bin perf -- --scale quick --out bench/baseline.json
//! ```

use std::fs;
use std::process::ExitCode;

use tapesim::Scale;
use tapesim_bench::perf::{compare_to_baseline, run_matrix, PerfReport, DEFAULT_TOLERANCE};

struct Opts {
    scale: Scale,
    reps: u64,
    warmup: u64,
    out: Option<String>,
    check: Option<String>,
    tolerance: f64,
}

fn usage(err: &str) -> ! {
    if !err.is_empty() {
        eprintln!("error: {err}");
    }
    eprintln!(
        "usage: perf [--scale quick|default|paper] [--reps N] [--warmup N] \
         [--out FILE|-] [--check BASELINE] [--tolerance F]"
    );
    std::process::exit(if err.is_empty() { 0 } else { 2 });
}

fn parse_opts() -> Opts {
    let mut opts = Opts {
        scale: Scale::Quick,
        reps: 5,
        warmup: 1,
        out: Some("BENCH_PERF.json".to_owned()),
        check: None,
        tolerance: DEFAULT_TOLERANCE,
    };
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--scale" => {
                let v = args.next().unwrap_or_default();
                match Scale::parse(&v) {
                    Some(s) => opts.scale = s,
                    None => usage(&format!("unknown scale '{v}'")),
                }
            }
            "--reps" => match args.next().unwrap_or_default().parse() {
                Ok(n) if n > 0 => opts.reps = n,
                _ => usage("--reps needs a positive integer"),
            },
            "--warmup" => match args.next().unwrap_or_default().parse() {
                Ok(n) => opts.warmup = n,
                _ => usage("--warmup needs a non-negative integer"),
            },
            "--out" => {
                let v = args.next().unwrap_or_default();
                if v.is_empty() {
                    usage("--out needs a file path (or '-' to skip writing)");
                }
                opts.out = if v == "-" { None } else { Some(v) };
            }
            "--check" => {
                let v = args.next().unwrap_or_default();
                if v.is_empty() {
                    usage("--check needs a baseline file path");
                }
                opts.check = Some(v);
            }
            "--tolerance" => match args.next().unwrap_or_default().parse() {
                Ok(f) if f >= 0.0 => opts.tolerance = f,
                _ => usage("--tolerance needs a non-negative fraction (e.g. 0.30)"),
            },
            "--help" | "-h" => usage(""),
            other => usage(&format!("unknown flag '{other}'")),
        }
    }
    opts
}

fn main() -> ExitCode {
    let opts = parse_opts();
    let report = match run_matrix(opts.scale, opts.warmup, opts.reps) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::FAILURE;
        }
    };
    println!(
        "perf matrix at scale '{}': {} warmup + {} timed reps per scenario\n",
        report.scale, report.warmup_reps, report.reps
    );
    println!("{}", report.to_table().to_aligned());
    if let Some(path) = &opts.out {
        match fs::write(path, report.to_json()) {
            Ok(()) => eprintln!("wrote {path}"),
            Err(e) => {
                eprintln!("error: cannot write {path}: {e}");
                return ExitCode::FAILURE;
            }
        }
    }
    if let Some(path) = &opts.check {
        let text = match fs::read_to_string(path) {
            Ok(t) => t,
            Err(e) => {
                eprintln!("error: cannot read baseline {path}: {e}");
                return ExitCode::FAILURE;
            }
        };
        let baseline = match PerfReport::from_json(&text) {
            Ok(b) => b,
            Err(e) => {
                eprintln!("error: baseline {path}: {e}");
                return ExitCode::FAILURE;
            }
        };
        match compare_to_baseline(&report, &baseline, opts.tolerance) {
            Ok(regressions) if regressions.is_empty() => {
                println!(
                    "baseline check passed: no scenario slower than {:.0}% over {path}",
                    opts.tolerance * 100.0
                );
            }
            Ok(regressions) => {
                for r in &regressions {
                    eprintln!(
                        "REGRESSION {}: median {:.3} ms vs baseline {:.3} ms ({:.2}x, \
                         tolerance {:.2}x)",
                        r.scenario,
                        r.current_ms,
                        r.baseline_ms,
                        r.ratio,
                        1.0 + opts.tolerance
                    );
                }
                return ExitCode::FAILURE;
            }
            Err(e) => {
                eprintln!("error: {e}");
                return ExitCode::FAILURE;
            }
        }
    }
    ExitCode::SUCCESS
}
