//! Figure 7: throughput and latency as a function of replica placement
//! (full replication, SP from tape beginning to tape end).

use tapesim_bench::{emit_figure, HarnessOpts};

fn main() {
    let opts = HarnessOpts::from_args();
    let series = tapesim::fig7_replica_placement(opts.scale, opts.open);
    emit_figure(
        &opts,
        "fig7_replica_placement",
        "Figure 7: replica placement (PH-10 RH-40 NR-9, vertical)",
        "intensity",
        &series,
    );
}
