//! Extension experiment: serpentine tape (the technology the paper scopes
//! out, stating its algorithms "would need to be modified").
//!
//! On a serpentine (multi-track) tape the logical block numbering snakes,
//! so the paper's single-pass sweep — read requests in ascending logical
//! order — is a boustrophedon that shuttles the tape once per occupied
//! track. That is fine for dense request sets but wasteful for sparse
//! ones, where a cost-model-aware nearest-neighbor order can hop between
//! tracks at matching longitudinal positions. This experiment quantifies
//! the gap as a function of the batch size, which is exactly the
//! modification the paper says its algorithms would need.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use tapesim::model::{logical_sweep_order, nearest_neighbor_order, SerpentineModel, SlotIndex};
use tapesim::prelude::*;
use tapesim_bench::{cached_csv, write_csv, FigureCache, HarnessOpts};

fn main() {
    let opts = HarnessOpts::from_args();
    let mut cache = FigureCache::from_opts(&opts);
    let m = SerpentineModel::dlt_like();
    let block = BlockSize::PAPER_DEFAULT;
    let slots = m.geometry.slots(block);
    println!(
        "Serpentine extension: {} — {} tracks x {} MB, {} slots of {}\n",
        m.name, m.geometry.tracks, m.geometry.track_length_mb, slots, block
    );

    let (csv, _) = cached_csv(&mut cache, "ext_serpentine", || {
        let mut t = Table::new([
            "batch",
            "fifo s",
            "logical sweep s",
            "nearest-neighbor s",
            "NN vs sweep",
        ]);
        let mut rng = StdRng::seed_from_u64(0x5E2F);
        for batch in [5usize, 10, 20, 50, 100, 200] {
            // Average over several random batches.
            let trials = 20;
            let (mut fifo_s, mut sweep_s, mut nn_s) = (0.0, 0.0, 0.0);
            for _ in 0..trials {
                let mut batch_slots: Vec<SlotIndex> = Vec::with_capacity(batch);
                while batch_slots.len() < batch {
                    let s = SlotIndex(rng.gen_range(0..slots));
                    if !batch_slots.contains(&s) {
                        batch_slots.push(s);
                    }
                }
                fifo_s += m.service_time(&batch_slots, block).as_secs_f64();
                sweep_s += m
                    .service_time(&logical_sweep_order(batch_slots.clone()), block)
                    .as_secs_f64();
                nn_s += m
                    .service_time(&nearest_neighbor_order(&m, block, batch_slots), block)
                    .as_secs_f64();
            }
            let n = trials as f64;
            t.push([
                batch.to_string(),
                fnum(fifo_s / n, 0),
                fnum(sweep_s / n, 0),
                fnum(nn_s / n, 0),
                format!("{:+.1}%", (nn_s / sweep_s - 1.0) * 100.0),
            ]);
        }
        println!("{}", t.to_aligned());
        t.to_csv()
    });
    write_csv(&opts, "ext_serpentine", &csv);
    println!(
        "(sorting by logical position — the paper's sweep — already beats FIFO, but a\n\
         cost-model-aware order recovers the cross-track savings the snake layout hides;\n\
         the gap is largest for sparse batches and closes as batches densify)"
    );
}
