//! Figure 3: the effect of the I/O transfer size on throughput.
//! PH-10 RH-40 NR-0 SP-0, dynamic max-bandwidth, one curve per intensity.

use tapesim::prelude::*;
use tapesim_bench::{series_to_csv, series_to_table, write_csv, HarnessOpts};

fn main() {
    let opts = HarnessOpts::from_args();
    let series = tapesim::fig3_transfer_size(opts.scale, opts.open);

    // Throughput vs block size plot (x = block MB, y = KB/s).
    let plot: Vec<Series> = series
        .iter()
        .map(|s| {
            Series::new(
                s.label.clone(),
                s.points
                    .iter()
                    .map(|p| (p.param, p.report.throughput_kb_per_s))
                    .collect(),
            )
        })
        .collect();
    println!(
        "{}",
        ascii_plot(
            "Figure 3: throughput vs transfer size (PH-10 RH-40 NR-0 SP-0)",
            "transfer size (MB)",
            "throughput (KB/s)",
            &plot,
            64,
            18,
        )
    );
    println!("{}", series_to_table(&series, "block_mb"));
    write_csv(
        &opts,
        &format!("fig3_transfer_size_{}", opts.variant()),
        &series_to_csv(&series, "block_mb"),
    );

    // The paper's headline: going from 16 MB to 8 MB costs ~2x.
    if let Some(s) = series.last() {
        let at = |mb: f64| {
            s.points
                .iter()
                .find(|p| p.param == mb)
                .map(|p| p.report.throughput_kb_per_s)
        };
        if let (Some(t8), Some(t16)) = (at(8.0), at(16.0)) {
            println!(
                "16 MB vs 8 MB throughput ratio at highest intensity: {:.2}x (paper: ~2x)",
                t16 / t8
            );
        }
    }
}
