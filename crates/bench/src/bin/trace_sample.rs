//! Records, validates, and summarizes one fully traced baseline run.
//!
//! Runs the paper's recommended configuration (PH-10 RH-40, envelope
//! max-bandwidth) with the event-trace layer attached, feeds the trace
//! through the §2.2 invariant checker, prints the latency percentiles and
//! drive-time phase breakdown derived *from the trace*, and — with
//! `--trace FILE` — writes the raw events as JSON Lines for external
//! analysis.
//!
//! ```sh
//! cargo run --release --bin trace_sample -- --scale quick --trace sample.jsonl
//! ```

use tapesim::model::FaultConfig;
use tapesim::prelude::*;
use tapesim::sim::trace::summarize;
use tapesim::sim::{check_trace, run_simulation_traced, MemorySink};
use tapesim_bench::{write_trace, HarnessOpts};

fn main() {
    let opts = HarnessOpts::from_args();
    let timing = TimingModel::paper_default();
    let cfg = opts.scale.sim_config();
    let placed = build_placement(
        JukeboxGeometry::PAPER_DEFAULT,
        BlockSize::PAPER_DEFAULT,
        PlacementConfig::paper_baseline(),
    )
    .expect("paper baseline placement is feasible");

    let process = if opts.open {
        ArrivalProcess::OpenPoisson {
            mean_interarrival: Micros::from_secs(300),
        }
    } else {
        ArrivalProcess::Closed { queue_length: 40 }
    };
    let sampler = BlockSampler::from_catalog(&placed.catalog, 40.0);
    let mut factory = RequestFactory::new(sampler, process, 7);
    let mut sched = make_scheduler(AlgorithmId::paper_recommended());
    let mut sink = MemorySink::new();
    let report = run_simulation_traced(
        &placed.catalog,
        &timing,
        sched.as_mut(),
        &mut factory,
        &cfg,
        &FaultConfig::NONE,
        0,
        &mut sink,
    )
    .expect("baseline run");
    let trace = sink.into_events();

    println!(
        "Traced baseline ({}, {}): {} events\n",
        AlgorithmId::paper_recommended().name(),
        opts.variant(),
        trace.len()
    );

    match check_trace(&trace) {
        Ok(stats) => {
            let mut t = Table::new(["invariant checker", "count"]);
            t.push(["arrivals".into(), stats.arrivals.to_string()]);
            t.push(["completions".into(), stats.completions.to_string()]);
            t.push(["outstanding at end".into(), stats.outstanding.to_string()]);
            t.push(["sweeps".into(), stats.sweeps.to_string()]);
            t.push(["mounts".into(), stats.mounts.to_string()]);
            t.push(["reads".into(), stats.reads.to_string()]);
            println!("{}", t.to_aligned());
        }
        Err(violations) => {
            eprintln!("TRACE INVARIANT VIOLATIONS ({}):", violations.len());
            for v in violations.iter().take(10) {
                eprintln!("  {v}");
            }
            std::process::exit(1);
        }
    }

    let s = summarize(&trace);
    let mut t = Table::new(["trace summary", "value"]);
    t.push(["p50 delay".into(), format!("{}", s.p50)]);
    t.push(["p95 delay".into(), format!("{}", s.p95)]);
    t.push(["p99 delay".into(), format!("{}", s.p99)]);
    t.push(["max delay".into(), format!("{}", s.max)]);
    t.push(["mean delay".into(), format!("{}", s.mean)]);
    t.push([
        "mount time".into(),
        format!(
            "{} ({:.1}%)",
            s.phases.mount,
            100.0 * s.phases.frac(s.phases.mount)
        ),
    ]);
    t.push([
        "locate time".into(),
        format!(
            "{} ({:.1}%)",
            s.phases.locate,
            100.0 * s.phases.frac(s.phases.locate)
        ),
    ]);
    t.push([
        "transfer time".into(),
        format!(
            "{} ({:.1}%)",
            s.phases.transfer,
            100.0 * s.phases.frac(s.phases.transfer)
        ),
    ]);
    t.push([
        "idle time".into(),
        format!(
            "{} ({:.1}%)",
            s.phases.idle,
            100.0 * s.phases.frac(s.phases.idle)
        ),
    ]);
    println!("{}", t.to_aligned());

    println!(
        "metrics cross-check: mean delay {:.1}s, p95 {:.1}s (report) — the trace-derived \
         figures above include warmup, the report's window does not",
        report.mean_delay_s, report.p95_delay_s
    );
    write_trace(&opts, &trace);
}
