//! Free-form experiment explorer: run any single point of the paper's
//! parameter space from the command line.
//!
//! ```text
//! cargo run --release -p tapesim-bench --bin explore -- \
//!     --alg "envelope max-bandwidth" --ph 10 --rh 60 --nr 9 --sp 1.0 \
//!     --layout vertical --queue 60 --scale default
//! ```

use tapesim::prelude::*;
use tapesim::Scale;

fn main() {
    let mut cfg = ExperimentConfig::paper_baseline();
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        let mut val = || args.next().unwrap_or_else(|| die("missing value"));
        match a.as_str() {
            "--alg" => {
                let v = val();
                cfg.algorithm = AlgorithmId::parse(&v).unwrap_or_else(|| {
                    die(&format!(
                        "unknown algorithm '{v}'; one of: {}",
                        AlgorithmId::all()
                            .iter()
                            .map(|a| a.name())
                            .collect::<Vec<_>>()
                            .join(", ")
                    ))
                });
            }
            "--ph" => cfg.ph_percent = parse(&val(), "--ph"),
            "--rh" => cfg.rh_percent = parse(&val(), "--rh"),
            "--nr" => cfg.replicas = parse(&val(), "--nr"),
            "--sp" => cfg.sp = parse(&val(), "--sp"),
            "--block-mb" => cfg.block = BlockSize::from_mb(parse(&val(), "--block-mb")),
            "--tapes" => {
                cfg.geometry =
                    JukeboxGeometry::new(parse(&val(), "--tapes"), cfg.geometry.tape_capacity_mb)
            }
            "--tape-gb" => {
                cfg.geometry = JukeboxGeometry::new(
                    cfg.geometry.tapes,
                    parse::<u64>(&val(), "--tape-gb") * 1024,
                )
            }
            "--layout" => {
                cfg.layout = match val().as_str() {
                    "horizontal" => LayoutKind::Horizontal,
                    "vertical" => LayoutKind::Vertical,
                    other => die(&format!("unknown layout '{other}'")),
                }
            }
            "--queue" => {
                cfg.process = ArrivalProcess::Closed {
                    queue_length: parse(&val(), "--queue"),
                }
            }
            "--interarrival" => {
                cfg.process = ArrivalProcess::OpenPoisson {
                    mean_interarrival: Micros::from_secs(parse(&val(), "--interarrival")),
                }
            }
            "--scale" => {
                let v = val();
                cfg.scale =
                    Scale::parse(&v).unwrap_or_else(|| die(&format!("unknown scale '{v}'")));
            }
            "--fast-drive" => cfg.timing = TimingModel::hypothetical_fast(),
            "--help" | "-h" => {
                eprintln!("flags: --alg NAME --ph P --rh P --nr N --sp S --block-mb M --tapes T \
                           --tape-gb G --layout horizontal|vertical --queue N | --interarrival SECS \
                           --scale quick|default|paper --fast-drive");
                return;
            }
            other => die(&format!("unknown flag '{other}'")),
        }
    }

    println!(
        "config: {} | PH-{} RH-{} NR-{} SP-{} {:?} | {} MB blocks | {} tapes x {} MB | {:?}",
        cfg.algorithm.name(),
        cfg.ph_percent,
        cfg.rh_percent,
        cfg.replicas,
        cfg.sp,
        cfg.layout,
        cfg.block.mb(),
        cfg.geometry.tapes,
        cfg.geometry.tape_capacity_mb,
        cfg.process,
    );
    match run_experiment(&cfg) {
        Ok(res) => {
            let r = &res.report;
            println!("expansion factor E = {:.3}", res.expansion);
            println!(
                "throughput      {:.1} +- {:.1} KB/s ({:.2} requests/min)",
                r.throughput_kb_per_s, res.throughput_ci95, r.requests_per_min
            );
            println!(
                "delay           mean {:.0}s, median {:.0}s, p95 {:.0}s, max {:.0}s",
                r.mean_delay_s, r.median_delay_s, r.p95_delay_s, r.max_delay_s
            );
            println!(
                "tape switches   {} ({:.1}/hour)",
                r.tape_switches, r.switches_per_hour
            );
            println!(
                "drive time      {:.0}% locate, {:.0}% read, {:.0}% switch, {:.0}% idle",
                r.locate_frac * 100.0,
                r.read_frac * 100.0,
                r.switch_frac * 100.0,
                r.idle_frac * 100.0
            );
            if r.saturated {
                println!("WARNING: the run saturated (arrivals exceed service capacity)");
            }
            for (i, s) in res.per_seed.iter().enumerate() {
                println!(
                    "  seed {i}: {:.1} KB/s, {:.0}s mean delay",
                    s.throughput_kb_per_s, s.mean_delay_s
                );
            }
        }
        Err(e) => die(&format!("infeasible configuration: {e}")),
    }
}

fn parse<T: std::str::FromStr>(s: &str, flag: &str) -> T {
    s.parse()
        .unwrap_or_else(|_| die(&format!("bad value '{s}' for {flag}")))
}

fn die(msg: &str) -> ! {
    eprintln!("error: {msg}");
    std::process::exit(2);
}
