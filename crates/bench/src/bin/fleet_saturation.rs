//! Fleet saturation study: throughput and tail response versus fleet
//! size (libraries × drives × robot arms), contrasting in-library and
//! cross-library replica placement (NR ∈ {0, 1, 3}).

use tapesim_bench::fleet::{default_cases, expected_rows, saturation_csv, QUEUE_LENGTH};
use tapesim_bench::{cached_csv, write_csv, FigureCache, HarnessOpts};

fn main() {
    let opts = HarnessOpts::from_args();
    let mut cache = FigureCache::from_opts(&opts);

    println!(
        "Fleet saturation: {} fleet shapes, closed queue {QUEUE_LENGTH}, PH-10 RH-40, envelope max-bandwidth\n",
        default_cases().len()
    );
    let (csv, _) = cached_csv(&mut cache, "fleet_saturation", || {
        saturation_csv(opts.scale)
    });
    let rows = csv.lines().count().saturating_sub(1);
    assert_eq!(
        rows,
        expected_rows(),
        "saturation CSV must cover the full case × NR × scope matrix"
    );
    write_csv(&opts, "fleet_saturation", &csv);
    println!("(robot arms bound drive scaling: past two drives per arm the exchange\n serializes mounts, and cross-library replicas trade arm relief for pass-through latency)");
}
