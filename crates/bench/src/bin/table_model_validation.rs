//! Section 2.1 validation table: model vs measurement error over ten
//! random walks of 100 locate + read operations each.
//!
//! Paper reference: largest locate error 0.6%, mean 0.5%; largest read
//! error 4.6%, mean 2.6%.

use tapesim::prelude::*;
use tapesim_bench::{write_csv, HarnessOpts};

fn main() {
    let opts = HarnessOpts::from_args();
    let report = tapesim::model_validation();

    println!("Timing-model validation: 10 random walks x 100 locates+reads\n");
    let mut t = Table::new(["walk", "locate err %", "read err %"]);
    for (i, w) in report.walks.iter().enumerate() {
        t.push([
            (i + 1).to_string(),
            fnum(w.locate_rel_err * 100.0, 3),
            fnum(w.read_rel_err * 100.0, 3),
        ]);
    }
    println!("{}", t.to_aligned());
    println!(
        "locate: max {:.2}%  mean {:.2}%   (paper: 0.6% / 0.5%)",
        report.max_locate_rel_err * 100.0,
        report.mean_locate_rel_err * 100.0
    );
    println!(
        "read:   max {:.2}%  mean {:.2}%   (paper: 4.6% / 2.6%)",
        report.max_read_rel_err * 100.0,
        report.mean_read_rel_err * 100.0
    );
    write_csv(&opts, "table_model_validation", &t.to_csv());
}
