//! Redundancy study: no redundancy vs NR replication vs `k + m` erasure
//! striping at matched storage expansion (E = 1.1 at PH-10), across a
//! permanent tape-loss fault axis.

use tapesim_bench::redundancy::{default_schemes, expected_rows, redundancy_csv, QUEUE_LENGTH};
use tapesim_bench::{cached_csv, write_csv, FigureCache, HarnessOpts};

fn main() {
    let opts = HarnessOpts::from_args();
    let mut cache = FigureCache::from_opts(&opts);

    println!(
        "Redundancy study: {} schemes at matched expansion, closed queue {QUEUE_LENGTH}, PH-10 RH-40, envelope max-bandwidth\n",
        default_schemes().len()
    );
    let (csv, _) = cached_csv(&mut cache, "redundancy_study", || {
        redundancy_csv(opts.scale)
    });
    let rows = csv.lines().count().saturating_sub(1);
    assert_eq!(
        rows,
        expected_rows(),
        "redundancy CSV must cover the full scheme × fault matrix"
    );
    write_csv(&opts, "redundancy_study", &csv);
    println!("(replication spends the expansion budget on placement freedom — one mount per\n read, cheapest copy; striping spends it on durability — two tape losses survived\n per stripe, at k mounts per hot read)");
}
