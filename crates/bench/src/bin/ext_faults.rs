//! Extension experiment: response time and availability under faults.
//!
//! A Figure-6-style sweep — replication degree NR in {0, 1, 3} — but
//! against an increasingly hostile fault model instead of an
//! increasingly loaded queue: media errors permanently kill individual
//! copies (no retries), and whole tapes fail and are repaired on an
//! exponential MTBF/MTTR clock. Replication is what the paper proposes
//! for *performance*; this experiment shows the same copies buying
//! *availability* — hot requests fail over to surviving replicas, so
//! permanently failed requests drop as NR grows, while the cold data
//! (single-copy under every NR) bounds how far availability can go.

use tapesim::model::Micros;
use tapesim::prelude::*;
use tapesim_bench::{cached_csv, write_csv, FigureCache, HarnessOpts};

/// Fault intensities swept: (label, media error probability per read,
/// whole-tape MTBF in seconds; `None` = no tape failures).
const LEVELS: [(&str, f64, Option<u64>); 4] = [
    ("none", 0.0, None),
    ("low", 0.002, Some(800_000)),
    ("medium", 0.01, Some(300_000)),
    ("high", 0.03, Some(120_000)),
];

fn main() {
    let opts = HarnessOpts::from_args();
    let mut cache = FigureCache::from_opts(&opts);

    println!(
        "Fault injection: PH-10 RH-40, envelope max-bandwidth, {} queue\n",
        opts.variant()
    );
    let (csv, _) = cached_csv(&mut cache, "ext_faults", || {
        let mut t = Table::new([
            "NR",
            "faults",
            "KB/s",
            "delay s",
            "degraded %",
            "failovers",
            "failed",
            "media errs",
        ]);
        for nr in [0u32, 1, 3] {
            let mut base = ExperimentConfig {
                replicas: nr,
                sp: 1.0,
                layout: if nr == 0 {
                    LayoutKind::Horizontal
                } else {
                    LayoutKind::Vertical
                },
                algorithm: AlgorithmId::paper_recommended(),
                scale: opts.scale,
                ..ExperimentConfig::paper_baseline()
            };
            if opts.open {
                base = base.with_open(90);
            }
            let placed = base.build_catalog().expect("feasible placement");
            for (label, media_p, mtbf_s) in LEVELS {
                let cfg = ExperimentConfig {
                    faults: FaultConfig {
                        media_error_per_read: media_p,
                        media_retries: 0,
                        tape_mtbf: mtbf_s.map(Micros::from_secs),
                        tape_mttr: Some(Micros::from_secs(20_000)),
                        ..FaultConfig::NONE
                    },
                    ..base.clone()
                };
                let (r, _) = run_with_catalog(&cfg, &placed).expect("fault sweep config is valid");
                t.push([
                    nr.to_string(),
                    label.to_string(),
                    fnum(r.throughput_kb_per_s, 1),
                    fnum(r.mean_delay_s, 0),
                    fnum(100.0 * r.degraded_frac, 1),
                    r.replica_failovers.to_string(),
                    r.failed_requests.to_string(),
                    r.media_errors.to_string(),
                ]);
            }
        }
        println!("{}", t.to_aligned());
        t.to_csv()
    });
    write_csv(&opts, "ext_faults", &csv);
    println!(
        "(failed = requests whose every copy was permanently lost; replication\n \
         cuts them to the cold-data share and converts the rest into failovers)"
    );
}
