//! Deterministic chaos soak: seeded fault/overload/kill-9 schedules over
//! the stepped core and the jukebox service, asserting conservation,
//! trace invariants, and bit-identical replay per seed.
//!
//! ```text
//! chaos [--seeds N] [--seed-base B] [--scale quick|default|paper]
//!       [--trace FILE] [--out FILE|-]
//! ```
//!
//! Exits 0 when every seed ran clean, 1 on the first invariant
//! violation, and 2 on usage errors. `--trace` writes the first seed's
//! service-run JSONL event trace (the CI artifact); `--out` writes the
//! per-seed summaries as JSON Lines (default `BENCH_CHAOS.jsonl`).

use std::fs;
use std::path::PathBuf;
use std::process::ExitCode;

use tapesim::prelude::Table;
use tapesim::sim::trace::jsonl;
use tapesim::Scale;
use tapesim_bench::chaos::{run_chaos, ChaosConfig};

struct Opts {
    cfg: ChaosConfig,
    trace: Option<PathBuf>,
    out: Option<PathBuf>,
}

fn usage(err: &str) -> ! {
    if !err.is_empty() {
        eprintln!("error: {err}");
    }
    eprintln!(
        "usage: chaos [--seeds N] [--seed-base B] [--scale quick|default|paper] \
         [--trace FILE] [--out FILE|-]"
    );
    std::process::exit(if err.is_empty() { 0 } else { 2 });
}

fn parse_opts() -> Opts {
    let mut opts = Opts {
        cfg: ChaosConfig {
            seeds: 20,
            seed_base: 0,
            scale: Scale::Quick,
            workdir: std::env::temp_dir(),
        },
        trace: None,
        out: Some(PathBuf::from("BENCH_CHAOS.jsonl")),
    };
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--seeds" => match args.next().unwrap_or_default().parse() {
                Ok(n) if n > 0 => opts.cfg.seeds = n,
                _ => usage("--seeds needs a positive integer"),
            },
            "--seed-base" => match args.next().unwrap_or_default().parse() {
                Ok(b) => opts.cfg.seed_base = b,
                _ => usage("--seed-base needs an integer"),
            },
            "--scale" => {
                let v = args.next().unwrap_or_default();
                match Scale::parse(&v) {
                    Some(s) => opts.cfg.scale = s,
                    None => usage(&format!("unknown scale '{v}'")),
                }
            }
            "--trace" => {
                let v = args.next().unwrap_or_default();
                if v.is_empty() {
                    usage("--trace needs a file path");
                }
                opts.trace = Some(PathBuf::from(v));
            }
            "--out" => {
                let v = args.next().unwrap_or_default();
                if v.is_empty() {
                    usage("--out needs a file path (or '-' to skip writing)");
                }
                opts.out = if v == "-" {
                    None
                } else {
                    Some(PathBuf::from(v))
                };
            }
            "--help" | "-h" => usage(""),
            other => usage(&format!("unknown flag '{other}'")),
        }
    }
    opts
}

fn main() -> ExitCode {
    let opts = parse_opts();
    println!(
        "chaos soak: {} seed(s) from {} at scale {:?}",
        opts.cfg.seeds, opts.cfg.seed_base, opts.cfg.scale
    );
    let outcome = match run_chaos(&opts.cfg) {
        Ok(o) => o,
        Err(e) => {
            eprintln!("CHAOS VIOLATION: {e}");
            return ExitCode::FAILURE;
        }
    };
    let mut t = Table::new([
        "seed",
        "submitted",
        "completed",
        "rejected",
        "expired",
        "retries",
        "trace_events",
        "kill_steps",
        "resumed_events",
    ]);
    for s in &outcome.seeds {
        t.push([
            s.seed.to_string(),
            s.submitted.to_string(),
            s.completed.to_string(),
            s.rejected.to_string(),
            s.expired.to_string(),
            s.retries.to_string(),
            s.trace_events.to_string(),
            s.kill_steps.to_string(),
            s.resumed_events.to_string(),
        ]);
    }
    println!("{}", t.to_aligned());
    println!(
        "all {} seed(s) clean: conservation, trace invariants, bit-identical replay, \
         kill-9 resume equivalence",
        outcome.seeds.len()
    );
    if let Some(path) = &opts.out {
        let mut text = String::new();
        for s in &outcome.seeds {
            text.push_str(&s.to_json_line());
            text.push('\n');
        }
        match fs::write(path, text) {
            Ok(()) => eprintln!("wrote {}", path.display()),
            Err(e) => {
                eprintln!("error: cannot write {}: {e}", path.display());
                return ExitCode::FAILURE;
            }
        }
    }
    if let Some(path) = &opts.trace {
        if let Some(parent) = path.parent() {
            if !parent.as_os_str().is_empty() {
                let _ = fs::create_dir_all(parent);
            }
        }
        match fs::write(path, jsonl::to_jsonl_string(&outcome.sample_trace)) {
            Ok(()) => eprintln!(
                "wrote {} trace events to {}",
                outcome.sample_trace.len(),
                path.display()
            ),
            Err(e) => {
                eprintln!("error: cannot write {}: {e}", path.display());
                return ExitCode::FAILURE;
            }
        }
    }
    ExitCode::SUCCESS
}
