//! Figure 5: throughput and latency as a function of hot-data placement
//! (no replication): horizontal layouts at SP 0..1 plus vertical.

use tapesim_bench::{emit_figure, HarnessOpts};

fn main() {
    let opts = HarnessOpts::from_args();
    let series = tapesim::fig5_placement(opts.scale, opts.open);
    emit_figure(
        &opts,
        "fig5_placement",
        "Figure 5: hot-data placement, no replication (PH-10 RH-40 NR-0)",
        "intensity",
        &series,
    );
}
