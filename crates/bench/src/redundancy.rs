//! The redundancy study: NR replication versus `k + m` erasure striping
//! versus no redundancy, compared at **matched storage expansion**.
//!
//! Storing one extra replica of the hot 10% costs `E = 1.1`; so does
//! `2 + 2` striping (`E = 1 + (PH/100) · m/k`). With the storage budget
//! pinned, the schemes differ only in how they spend it:
//!
//! * **Replication** buys *placement freedom* — a read needs any one
//!   copy, so the scheduler picks the cheapest tape and a hot read still
//!   mounts one tape.
//! * **Erasure striping** buys *durability* — a `2 + 2` stripe survives
//!   any two tape losses (replication's two copies survive one), but
//!   every hot read must gather `k = 2` shards from distinct tapes.
//!
//! Every point runs the paper's base workload (closed queue 20, RH-40
//! over a PH-10 horizontal layout, recommended scheduler, one drive) on
//! the same 10-tape cabinet; a fault axis sweeps permanent tape loss
//! from none to roughly three tapes per run, exposing the availability
//! ordering the schemes pay for.

use tapesim::prelude::*;
use tapesim::sim::{run_erasure_simulation, run_multi_drive_with_faults};

/// One redundancy scheme of the three-way comparison.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SchemeCase {
    /// CSV label (`none`, `nr1`, `ec2p2`).
    pub label: &'static str,
    /// The placement scheme under test.
    pub scheme: PlacementScheme,
}

/// The three-way comparison: no redundancy, one replica, and `2 + 2`
/// striping. The latter two have identical storage expansion (1.1 at
/// PH-10), which is the point of the study.
pub fn default_schemes() -> Vec<SchemeCase> {
    vec![
        SchemeCase {
            label: "none",
            scheme: PlacementScheme::Replication { nr: 0 },
        },
        SchemeCase {
            label: "nr1",
            scheme: PlacementScheme::Replication { nr: 1 },
        },
        SchemeCase {
            label: "ec2p2",
            scheme: PlacementScheme::Erasure { k: 2, m: 2 },
        },
    ]
}

/// The fault axis: mean time between permanent per-tape losses, in
/// simulated seconds (`None` = no faults). At the default 1M-second
/// horizon the finite levels lose roughly one and three of the cabinet's
/// ten tapes per run.
pub const TAPE_MTBF_LEVELS_S: [Option<u64>; 3] = [None, Some(10_000_000), Some(3_000_000)];

/// Fixed closed-queue length shared by every point (the paper's base).
pub const QUEUE_LENGTH: u32 = 20;

/// Rows the redundancy CSV always contains (excluding the header); the
/// CI schema check pins this count.
pub fn expected_rows() -> usize {
    default_schemes().len() * TAPE_MTBF_LEVELS_S.len()
}

fn fault_config(mtbf_s: Option<u64>) -> FaultConfig {
    match mtbf_s {
        None => FaultConfig::NONE,
        Some(s) => FaultConfig {
            tape_mtbf: Some(Micros::from_secs(s)),
            tape_mttr: None, // permanent: the copies on the tape are gone
            ..FaultConfig::NONE
        },
    }
}

/// Runs one (scheme, fault level) point, averaged over the scale's
/// seeds.
fn run_point(case: SchemeCase, mtbf_s: Option<u64>, scale: Scale) -> MetricsReport {
    let cfg = PlacementConfig {
        layout: LayoutKind::Horizontal,
        ph_percent: 10.0,
        scheme: case.scheme,
        sp: 0.0,
    };
    let placed = build_placement(
        JukeboxGeometry::PAPER_DEFAULT,
        BlockSize::PAPER_DEFAULT,
        cfg,
    )
    // simlint: allow(panic, study placements fit a 10-tape cabinet by construction)
    .expect("study placements are feasible");
    let timing = TimingModel::paper_default();
    let sim = scale.sim_config();
    let faults = fault_config(mtbf_s);
    let process = ArrivalProcess::Closed {
        queue_length: QUEUE_LENGTH,
    };
    let mut reports = Vec::new();
    for seed in scale.seeds() {
        let mut sched = make_scheduler(AlgorithmId::paper_recommended());
        let sampler = BlockSampler::from_catalog(&placed.catalog, 40.0);
        let report = if placed.catalog.stripe().is_some() {
            run_erasure_simulation(
                &placed.catalog,
                &timing,
                sched.as_mut(),
                sampler,
                process,
                &sim,
                &faults,
                seed,
                1,
            )
        } else {
            let mut factory = RequestFactory::new(sampler, process, seed);
            run_multi_drive_with_faults(
                &placed.catalog,
                &timing,
                sched.as_mut(),
                &mut factory,
                &sim,
                1,
                &faults,
                seed,
            )
        };
        // simlint: allow(panic, static study config validated by build_placement)
        reports.push(report.expect("study config is valid"));
    }
    MetricsReport::mean_of(&reports)
}

fn ratio(num: u64, den: u64) -> f64 {
    if den == 0 {
        0.0
    } else {
        num as f64 / den as f64
    }
}

/// Runs the full scheme × fault matrix, prints the aligned summary
/// table, and returns the CSV (one row per point).
pub fn redundancy_csv(scale: Scale) -> String {
    let mut t = Table::new([
        "scheme",
        "expansion",
        "tape_mtbf_s",
        "throughput_kb_per_s",
        "requests_per_min",
        "mean_delay_s",
        "p95_delay_s",
        "tape_switches",
        "physical_reads",
        "reads_per_logical",
        "admitted",
        "served",
        "failed_requests",
        "failed_frac",
        "replica_failovers",
        "ec_unavailable",
        "saturated",
    ]);
    let mut shown = Table::new([
        "scheme",
        "mtbf(s)",
        "KB/s",
        "p95(s)",
        "reads/logical",
        "failed%",
    ]);
    for case in default_schemes() {
        let expansion = scheme_expansion_factor(case.scheme, 10.0);
        for mtbf_s in TAPE_MTBF_LEVELS_S {
            let r = run_point(case, mtbf_s, scale);
            let mtbf_label = mtbf_s.map_or_else(|| "none".to_string(), |s| s.to_string());
            t.push([
                case.label.to_string(),
                fnum(expansion, 2),
                mtbf_label.clone(),
                fnum(r.throughput_kb_per_s, 3),
                fnum(r.requests_per_min, 4),
                fnum(r.mean_delay_s, 1),
                fnum(r.p95_delay_s, 1),
                r.tape_switches.to_string(),
                r.physical_reads.to_string(),
                fnum(ratio(r.physical_reads, r.served), 3),
                r.admitted.to_string(),
                r.served.to_string(),
                r.failed_requests.to_string(),
                fnum(ratio(r.failed_requests, r.admitted), 4),
                r.replica_failovers.to_string(),
                r.ec_unavailable.to_string(),
                r.saturated.to_string(),
            ]);
            shown.push([
                case.label.to_string(),
                mtbf_label,
                fnum(r.throughput_kb_per_s, 1),
                fnum(r.p95_delay_s, 0),
                fnum(ratio(r.physical_reads, r.served), 2),
                fnum(100.0 * ratio(r.failed_requests, r.admitted), 2),
            ]);
        }
    }
    println!("{}", shown.to_aligned());
    t.to_csv()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn schemes_match_storage_expansion() {
        let schemes = default_schemes();
        let e: Vec<f64> = schemes
            .iter()
            .map(|c| scheme_expansion_factor(c.scheme, 10.0))
            .collect();
        assert_eq!(e[0], 1.0, "baseline stores no extra copies");
        assert!(
            (e[1] - e[2]).abs() < 1e-9,
            "replication and striping must match: {} vs {}",
            e[1],
            e[2]
        );
    }

    #[test]
    fn expected_rows_matches_matrix() {
        assert_eq!(expected_rows(), 9);
    }

    #[test]
    fn fault_levels_include_a_faultless_baseline() {
        assert_eq!(TAPE_MTBF_LEVELS_S[0], None);
        assert!(fault_config(TAPE_MTBF_LEVELS_S[0]).is_inert());
        assert!(!fault_config(TAPE_MTBF_LEVELS_S[2]).is_inert());
    }
}
