//! Shared harness code for the figure-regeneration binaries.
//!
//! Every binary accepts:
//!
//! * `--scale quick|default|paper` — simulation horizon (default:
//!   `default`, i.e. 1M simulated seconds x 3 seeds);
//! * `--open` — run the open-queuing (Poisson) variant instead of the
//!   closed-queuing one;
//! * `--out DIR` — also write the CSV into `DIR` (default `results/`,
//!   created on demand; pass `--out -` to skip writing);
//! * `--trace FILE` — for trace-aware binaries (`trace_sample`,
//!   `ext_writeback`), record the event trace of the representative run
//!   as JSON Lines into `FILE` (see EXPERIMENTS.md for the schema);
//! * `--checkpoint FILE` — record each completed figure/table into
//!   `FILE` as it finishes, so a killed run can be resumed;
//! * `--resume FILE` — restore completed figures/tables from `FILE`
//!   instead of recomputing them (and keep checkpointing into the same
//!   file unless `--checkpoint` names another one). Because every run
//!   is deterministic, a resumed invocation writes exactly the CSVs the
//!   uninterrupted one would have.

#![forbid(unsafe_code)]

pub mod chaos;
pub mod fleet;
pub mod perf;
pub mod redundancy;

use std::collections::BTreeMap;
use std::fs;
use std::path::PathBuf;

use tapesim::prelude::*;
use tapesim::sim::trace::jsonl;
use tapesim::sim::TraceRecord;
use tapesim::{Scale, SweepSeries};

/// Parsed command-line options common to all figure binaries.
#[derive(Debug, Clone)]
pub struct HarnessOpts {
    /// Simulation scale.
    pub scale: Scale,
    /// Open-queuing variant.
    pub open: bool,
    /// Output directory for CSV files (`None` = don't write).
    pub out_dir: Option<PathBuf>,
    /// Destination for a JSONL event trace of the representative run
    /// (`None` = tracing disabled; only trace-aware binaries honor it).
    pub trace: Option<PathBuf>,
    /// Figure-cache file written as figures complete (`--checkpoint`).
    pub checkpoint: Option<PathBuf>,
    /// Figure-cache file restored before computing (`--resume`).
    pub resume: Option<PathBuf>,
}

impl HarnessOpts {
    /// Parses `std::env::args`; exits with usage on error.
    pub fn from_args() -> HarnessOpts {
        let mut opts = HarnessOpts {
            scale: Scale::Default,
            open: false,
            out_dir: Some(PathBuf::from("results")),
            trace: None,
            checkpoint: None,
            resume: None,
        };
        let mut args = std::env::args().skip(1);
        while let Some(a) = args.next() {
            match a.as_str() {
                "--scale" => {
                    let v = args.next().unwrap_or_default();
                    match Scale::parse(&v) {
                        Some(s) => opts.scale = s,
                        None => usage(&format!("unknown scale '{v}'")),
                    }
                }
                "--open" => opts.open = true,
                "--trace" => {
                    let v = args.next().unwrap_or_default();
                    if v.is_empty() {
                        usage("--trace needs a file path");
                    }
                    opts.trace = Some(PathBuf::from(v));
                }
                "--out" => {
                    let v = args.next().unwrap_or_default();
                    opts.out_dir = if v == "-" {
                        None
                    } else {
                        Some(PathBuf::from(v))
                    };
                }
                "--checkpoint" => {
                    let v = args.next().unwrap_or_default();
                    if v.is_empty() {
                        usage("--checkpoint needs a file path");
                    }
                    opts.checkpoint = Some(PathBuf::from(v));
                }
                "--resume" => {
                    let v = args.next().unwrap_or_default();
                    if v.is_empty() {
                        usage("--resume needs a file path");
                    }
                    opts.resume = Some(PathBuf::from(v));
                }
                "--help" | "-h" => usage(""),
                other => usage(&format!("unknown flag '{other}'")),
            }
        }
        opts
    }

    /// Suffix identifying the workload variant in filenames/titles.
    pub fn variant(&self) -> &'static str {
        if self.open {
            "open"
        } else {
            "closed"
        }
    }
}

fn usage(err: &str) -> ! {
    if !err.is_empty() {
        eprintln!("error: {err}");
    }
    eprintln!(
        "usage: <figure-binary> [--scale quick|default|paper] [--open] [--out DIR|-] \
         [--trace FILE] [--checkpoint FILE] [--resume FILE]"
    );
    std::process::exit(if err.is_empty() { 0 } else { 2 });
}

/// Figure-level checkpoint cache behind `--checkpoint` / `--resume`.
///
/// Figure binaries are deterministic, so a figure's CSV is a complete
/// record of its computation: the cache stores finished CSVs keyed by
/// figure name, flushed to disk after every figure. Resuming replays
/// the cached figures byte-for-byte and recomputes only the rest. The
/// file format is plain text — a `=meta` line pinning the scale and
/// variant (a checkpoint from a different scale is refused), then one
/// `=figure <name>` … `=endfigure` section per finished figure.
#[derive(Debug)]
pub struct FigureCache {
    write_path: Option<PathBuf>,
    meta: String,
    done: BTreeMap<String, String>,
}

impl FigureCache {
    /// Builds the cache from the harness options: loads `--resume` if
    /// given (ignoring it with a warning when unreadable or taken at a
    /// different scale/variant), and arranges to write to `--checkpoint`
    /// (or back to the `--resume` file when only that was given).
    pub fn from_opts(opts: &HarnessOpts) -> FigureCache {
        let meta = format!("scale={:?} open={}", opts.scale, opts.open);
        let mut done = BTreeMap::new();
        if let Some(path) = &opts.resume {
            match fs::read_to_string(path) {
                Ok(text) => match parse_figure_cache(&text, &meta) {
                    Ok(map) => {
                        eprintln!(
                            "resumed {} finished figure(s) from {}",
                            map.len(),
                            path.display()
                        );
                        done = map;
                    }
                    Err(e) => eprintln!(
                        "warning: ignoring checkpoint {}: {e} (recomputing everything)",
                        path.display()
                    ),
                },
                Err(e) => eprintln!(
                    "warning: cannot read checkpoint {}: {e} (recomputing everything)",
                    path.display()
                ),
            }
        }
        FigureCache {
            write_path: opts.checkpoint.clone().or_else(|| opts.resume.clone()),
            meta,
            done,
        }
    }

    /// The cached CSV for `name`, if that figure already finished.
    pub fn get(&self, name: &str) -> Option<&str> {
        self.done.get(name).map(String::as_str)
    }

    /// Records a finished figure and flushes the cache file (written to
    /// a temp file and renamed, so the cache is never half-written).
    pub fn record(&mut self, name: &str, csv: &str) {
        self.done.insert(name.to_string(), csv.to_string());
        let Some(path) = &self.write_path else { return };
        let mut out = format!("=meta {}\n", self.meta);
        for (k, v) in &self.done {
            out.push_str(&format!("=figure {k}\n{v}=endfigure\n"));
        }
        let tmp = path.with_extension("ckpt.tmp");
        let write = fs::write(&tmp, out).and_then(|()| fs::rename(&tmp, path));
        if let Err(e) = write {
            eprintln!("warning: cannot write checkpoint {}: {e}", path.display());
        }
    }
}

fn parse_figure_cache(text: &str, expect_meta: &str) -> Result<BTreeMap<String, String>, String> {
    let mut lines = text.lines();
    let meta = lines
        .next()
        .and_then(|l| l.strip_prefix("=meta "))
        .ok_or("missing =meta line")?;
    if meta != expect_meta {
        return Err(format!(
            "checkpoint was taken with '{meta}' but this run is '{expect_meta}'"
        ));
    }
    let mut done = BTreeMap::new();
    let mut cur: Option<(String, String)> = None;
    for line in lines {
        if let Some(name) = line.strip_prefix("=figure ") {
            if cur.is_some() {
                return Err("nested =figure section".into());
            }
            cur = Some((name.to_string(), String::new()));
        } else if line == "=endfigure" {
            let (name, csv) = cur.take().ok_or("=endfigure without =figure")?;
            done.insert(name, csv);
        } else if let Some((_, csv)) = &mut cur {
            csv.push_str(line);
            csv.push('\n');
        } else if !line.trim().is_empty() {
            return Err(format!("unexpected line outside a section: '{line}'"));
        }
    }
    if cur.is_some() {
        return Err("unterminated =figure section (file truncated)".into());
    }
    Ok(done)
}

/// Runs `compute` unless the cache already holds `name`'s CSV, emits the
/// figure either way, and records it. Cached figures skip the expensive
/// sweep entirely; the CSV written is byte-identical because the
/// underlying simulations are deterministic.
pub fn emit_figure_cached(
    opts: &HarnessOpts,
    cache: &mut FigureCache,
    name: &str,
    title: &str,
    param_name: &str,
    compute: impl FnOnce() -> Vec<SweepSeries>,
) {
    let full = format!("{name}_{}", opts.variant());
    if let Some(csv) = cache.get(&full).map(str::to_string) {
        println!("{title}: restored from checkpoint (skipping recompute)\n");
        write_csv(opts, &full, &csv);
        cache.record(&full, &csv);
        return;
    }
    let series = compute();
    println!("{}", parametric_plot(title, &series));
    println!("{}", series_to_table(&series, param_name));
    let csv = series_to_csv(&series, param_name);
    write_csv(opts, &full, &csv);
    cache.record(&full, &csv);
}

/// The table-binary counterpart of [`emit_figure_cached`]: returns the
/// cached CSV for `name` or runs `compute` (which prints its own output)
/// and records its result. The boolean is true when the value came from
/// the checkpoint.
pub fn cached_csv(
    cache: &mut FigureCache,
    name: &str,
    compute: impl FnOnce() -> String,
) -> (String, bool) {
    if let Some(csv) = cache.get(name).map(str::to_string) {
        println!("{name}: restored from checkpoint (skipping recompute)");
        cache.record(name, &csv);
        return (csv, true);
    }
    let csv = compute();
    cache.record(name, &csv);
    (csv, false)
}

/// Writes a recorded event trace as JSON Lines to the `--trace` path.
/// No-op when tracing was not requested.
pub fn write_trace(opts: &HarnessOpts, records: &[TraceRecord]) {
    let Some(path) = &opts.trace else { return };
    if let Some(parent) = path.parent() {
        if !parent.as_os_str().is_empty() {
            let _ = fs::create_dir_all(parent);
        }
    }
    match fs::write(path, jsonl::to_jsonl_string(records)) {
        Ok(()) => eprintln!("wrote {} trace events to {}", records.len(), path.display()),
        Err(e) => eprintln!("warning: cannot write {}: {e}", path.display()),
    }
}

/// Writes `contents` as `results/<name>.csv` (or the `--out` directory).
pub fn write_csv(opts: &HarnessOpts, name: &str, contents: &str) {
    let Some(dir) = &opts.out_dir else { return };
    if let Err(e) = fs::create_dir_all(dir) {
        eprintln!("warning: cannot create {}: {e}", dir.display());
        return;
    }
    let path = dir.join(format!("{name}.csv"));
    match fs::write(&path, contents) {
        Ok(()) => eprintln!("wrote {}", path.display()),
        Err(e) => eprintln!("warning: cannot write {}: {e}", path.display()),
    }
}

/// Renders a family of sweep series as a long-form CSV: one row per
/// (series, point).
pub fn series_to_csv(series: &[SweepSeries], param_name: &str) -> String {
    let mut t = Table::new([
        "series",
        param_name,
        "throughput_kb_per_s",
        "requests_per_min",
        "mean_delay_s",
        "median_delay_s",
        "p95_delay_s",
        "p99_delay_s",
        "max_delay_s",
        "tape_switches",
        "physical_reads",
        "locate_frac",
        "read_frac",
        "switch_frac",
        "idle_frac",
        "saturated",
    ]);
    for s in series {
        for p in &s.points {
            t.push([
                s.label.clone(),
                format!("{}", p.param),
                fnum(p.report.throughput_kb_per_s, 3),
                fnum(p.report.requests_per_min, 4),
                fnum(p.report.mean_delay_s, 1),
                fnum(p.report.median_delay_s, 1),
                fnum(p.report.p95_delay_s, 1),
                fnum(p.report.p99_delay_s, 1),
                fnum(p.report.max_delay_s, 1),
                p.report.tape_switches.to_string(),
                p.report.physical_reads.to_string(),
                fnum(p.report.locate_frac, 4),
                fnum(p.report.read_frac, 4),
                fnum(p.report.switch_frac, 4),
                fnum(p.report.idle_frac, 4),
                p.report.saturated.to_string(),
            ]);
        }
    }
    t.to_csv()
}

/// Renders a compact aligned table: one row per (series, point) with the
/// two paper axes (throughput, mean delay).
pub fn series_to_table(series: &[SweepSeries], param_name: &str) -> String {
    let mut t = Table::new(["series", param_name, "KB/s", "delay(s)", "switches"]);
    for s in series {
        for p in &s.points {
            t.push([
                s.label.clone(),
                format!("{}", p.param),
                fnum(p.report.throughput_kb_per_s, 1),
                fnum(p.report.mean_delay_s, 0),
                p.report.tape_switches.to_string(),
            ]);
        }
    }
    t.to_aligned()
}

/// Renders the paper's parametric throughput/delay plot for a family.
pub fn parametric_plot(title: &str, series: &[SweepSeries]) -> String {
    let plot_series: Vec<Series> = series
        .iter()
        .map(|s| {
            Series::new(
                s.label.clone(),
                s.points
                    .iter()
                    .map(|p| (p.report.throughput_kb_per_s, p.report.mean_delay_s))
                    .collect(),
            )
        })
        .collect();
    ascii_plot(
        title,
        "mean throughput (KB/s)",
        "mean delay (s)",
        &plot_series,
        64,
        20,
    )
}

/// Prints the standard three renderings of a figure and writes its CSV.
pub fn emit_figure(
    opts: &HarnessOpts,
    name: &str,
    title: &str,
    param_name: &str,
    series: &[SweepSeries],
) {
    println!("{}", parametric_plot(title, series));
    println!("{}", series_to_table(series, param_name));
    let csv = series_to_csv(series, param_name);
    write_csv(opts, &format!("{name}_{}", opts.variant()), &csv);
}
