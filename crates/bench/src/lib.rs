//! Shared harness code for the figure-regeneration binaries.
//!
//! Every binary accepts:
//!
//! * `--scale quick|default|paper` — simulation horizon (default:
//!   `default`, i.e. 1M simulated seconds x 3 seeds);
//! * `--open` — run the open-queuing (Poisson) variant instead of the
//!   closed-queuing one;
//! * `--out DIR` — also write the CSV into `DIR` (default `results/`,
//!   created on demand; pass `--out -` to skip writing);
//! * `--trace FILE` — for trace-aware binaries (`trace_sample`,
//!   `ext_writeback`), record the event trace of the representative run
//!   as JSON Lines into `FILE` (see EXPERIMENTS.md for the schema).

#![forbid(unsafe_code)]

pub mod perf;

use std::fs;
use std::path::PathBuf;

use tapesim::prelude::*;
use tapesim::sim::trace::jsonl;
use tapesim::sim::TraceRecord;
use tapesim::{Scale, SweepSeries};

/// Parsed command-line options common to all figure binaries.
#[derive(Debug, Clone)]
pub struct HarnessOpts {
    /// Simulation scale.
    pub scale: Scale,
    /// Open-queuing variant.
    pub open: bool,
    /// Output directory for CSV files (`None` = don't write).
    pub out_dir: Option<PathBuf>,
    /// Destination for a JSONL event trace of the representative run
    /// (`None` = tracing disabled; only trace-aware binaries honor it).
    pub trace: Option<PathBuf>,
}

impl HarnessOpts {
    /// Parses `std::env::args`; exits with usage on error.
    pub fn from_args() -> HarnessOpts {
        let mut opts = HarnessOpts {
            scale: Scale::Default,
            open: false,
            out_dir: Some(PathBuf::from("results")),
            trace: None,
        };
        let mut args = std::env::args().skip(1);
        while let Some(a) = args.next() {
            match a.as_str() {
                "--scale" => {
                    let v = args.next().unwrap_or_default();
                    match Scale::parse(&v) {
                        Some(s) => opts.scale = s,
                        None => usage(&format!("unknown scale '{v}'")),
                    }
                }
                "--open" => opts.open = true,
                "--trace" => {
                    let v = args.next().unwrap_or_default();
                    if v.is_empty() {
                        usage("--trace needs a file path");
                    }
                    opts.trace = Some(PathBuf::from(v));
                }
                "--out" => {
                    let v = args.next().unwrap_or_default();
                    opts.out_dir = if v == "-" {
                        None
                    } else {
                        Some(PathBuf::from(v))
                    };
                }
                "--help" | "-h" => usage(""),
                other => usage(&format!("unknown flag '{other}'")),
            }
        }
        opts
    }

    /// Suffix identifying the workload variant in filenames/titles.
    pub fn variant(&self) -> &'static str {
        if self.open {
            "open"
        } else {
            "closed"
        }
    }
}

fn usage(err: &str) -> ! {
    if !err.is_empty() {
        eprintln!("error: {err}");
    }
    eprintln!(
        "usage: <figure-binary> [--scale quick|default|paper] [--open] [--out DIR|-] \
         [--trace FILE]"
    );
    std::process::exit(if err.is_empty() { 0 } else { 2 });
}

/// Writes a recorded event trace as JSON Lines to the `--trace` path.
/// No-op when tracing was not requested.
pub fn write_trace(opts: &HarnessOpts, records: &[TraceRecord]) {
    let Some(path) = &opts.trace else { return };
    if let Some(parent) = path.parent() {
        if !parent.as_os_str().is_empty() {
            let _ = fs::create_dir_all(parent);
        }
    }
    match fs::write(path, jsonl::to_jsonl_string(records)) {
        Ok(()) => eprintln!("wrote {} trace events to {}", records.len(), path.display()),
        Err(e) => eprintln!("warning: cannot write {}: {e}", path.display()),
    }
}

/// Writes `contents` as `results/<name>.csv` (or the `--out` directory).
pub fn write_csv(opts: &HarnessOpts, name: &str, contents: &str) {
    let Some(dir) = &opts.out_dir else { return };
    if let Err(e) = fs::create_dir_all(dir) {
        eprintln!("warning: cannot create {}: {e}", dir.display());
        return;
    }
    let path = dir.join(format!("{name}.csv"));
    match fs::write(&path, contents) {
        Ok(()) => eprintln!("wrote {}", path.display()),
        Err(e) => eprintln!("warning: cannot write {}: {e}", path.display()),
    }
}

/// Renders a family of sweep series as a long-form CSV: one row per
/// (series, point).
pub fn series_to_csv(series: &[SweepSeries], param_name: &str) -> String {
    let mut t = Table::new([
        "series",
        param_name,
        "throughput_kb_per_s",
        "requests_per_min",
        "mean_delay_s",
        "median_delay_s",
        "p95_delay_s",
        "p99_delay_s",
        "max_delay_s",
        "tape_switches",
        "physical_reads",
        "locate_frac",
        "read_frac",
        "switch_frac",
        "idle_frac",
        "saturated",
    ]);
    for s in series {
        for p in &s.points {
            t.push([
                s.label.clone(),
                format!("{}", p.param),
                fnum(p.report.throughput_kb_per_s, 3),
                fnum(p.report.requests_per_min, 4),
                fnum(p.report.mean_delay_s, 1),
                fnum(p.report.median_delay_s, 1),
                fnum(p.report.p95_delay_s, 1),
                fnum(p.report.p99_delay_s, 1),
                fnum(p.report.max_delay_s, 1),
                p.report.tape_switches.to_string(),
                p.report.physical_reads.to_string(),
                fnum(p.report.locate_frac, 4),
                fnum(p.report.read_frac, 4),
                fnum(p.report.switch_frac, 4),
                fnum(p.report.idle_frac, 4),
                p.report.saturated.to_string(),
            ]);
        }
    }
    t.to_csv()
}

/// Renders a compact aligned table: one row per (series, point) with the
/// two paper axes (throughput, mean delay).
pub fn series_to_table(series: &[SweepSeries], param_name: &str) -> String {
    let mut t = Table::new(["series", param_name, "KB/s", "delay(s)", "switches"]);
    for s in series {
        for p in &s.points {
            t.push([
                s.label.clone(),
                format!("{}", p.param),
                fnum(p.report.throughput_kb_per_s, 1),
                fnum(p.report.mean_delay_s, 0),
                p.report.tape_switches.to_string(),
            ]);
        }
    }
    t.to_aligned()
}

/// Renders the paper's parametric throughput/delay plot for a family.
pub fn parametric_plot(title: &str, series: &[SweepSeries]) -> String {
    let plot_series: Vec<Series> = series
        .iter()
        .map(|s| {
            Series::new(
                s.label.clone(),
                s.points
                    .iter()
                    .map(|p| (p.report.throughput_kb_per_s, p.report.mean_delay_s))
                    .collect(),
            )
        })
        .collect();
    ascii_plot(
        title,
        "mean throughput (KB/s)",
        "mean delay (s)",
        &plot_series,
        64,
        20,
    )
}

/// Prints the standard three renderings of a figure and writes its CSV.
pub fn emit_figure(
    opts: &HarnessOpts,
    name: &str,
    title: &str,
    param_name: &str,
    series: &[SweepSeries],
) {
    println!("{}", parametric_plot(title, series));
    println!("{}", series_to_table(series, param_name));
    let csv = series_to_csv(series, param_name);
    write_csv(opts, &format!("{name}_{}", opts.variant()), &csv);
}
