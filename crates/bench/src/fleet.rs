//! The fleet saturation study: simulated throughput and tail response
//! versus fleet size (libraries × drives × robot arms) at a fixed
//! workload, contrasting in-library and cross-library replica placement.
//!
//! Every point runs the same closed queue (120 requests, RH-40 over a
//! PH-10 horizontal layout) under the paper's recommended scheduler, so
//! differences between rows measure only the fleet shape and the replica
//! scope: how much adding drives buys once they contend for robot arms,
//! and how much cross-library replicas relieve the home library's arm.

use tapesim::prelude::*;
use tapesim::sim::run_fleet;

/// One fleet shape in the saturation sweep. Libraries are identical
/// EXB-210-style cabinets of [`TAPES_PER_LIBRARY`] shelves, connected by
/// the default pass-through model.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FleetCase {
    /// Number of libraries.
    pub libraries: u16,
    /// Drives per library.
    pub drives: u16,
    /// Robot arms per library.
    pub robots: u16,
}

/// Shelf slots per library — one paper cabinet each, so fleet capacity
/// grows with library count.
pub const TAPES_PER_LIBRARY: u16 = 10;

/// Fixed closed-queue length shared by every point of the sweep.
pub const QUEUE_LENGTH: u32 = 120;

impl FleetCase {
    /// Short label like `2Lx2Dx1R`.
    pub fn label(&self) -> String {
        format!("{}Lx{}Dx{}R", self.libraries, self.drives, self.robots)
    }

    /// Total drives across the fleet.
    pub fn total_drives(&self) -> u16 {
        self.libraries * self.drives
    }

    /// The fleet topology for this case.
    pub fn topology(&self) -> Topology {
        Topology::uniform(
            self.libraries,
            self.drives,
            self.robots,
            TAPES_PER_LIBRARY,
            RobotModel::exb210(),
            InterLibraryModel::DEFAULT,
        )
        // simlint: allow(panic, sweep cases are static and non-degenerate)
        .expect("sweep cases are non-degenerate")
    }

    /// The jukebox geometry matching this fleet's shelf total.
    pub fn geometry(&self) -> JukeboxGeometry {
        JukeboxGeometry::new(
            self.libraries * TAPES_PER_LIBRARY,
            JukeboxGeometry::PAPER_DEFAULT.tape_capacity_mb,
        )
    }
}

/// The default sweep: drive scaling across library counts (1, 2, 4
/// cabinets of two drives each), plus a single-library pair isolating
/// the robot-arm axis (four drives behind one arm versus two arms).
pub fn default_cases() -> Vec<FleetCase> {
    vec![
        FleetCase {
            libraries: 1,
            drives: 2,
            robots: 1,
        },
        FleetCase {
            libraries: 2,
            drives: 2,
            robots: 1,
        },
        FleetCase {
            libraries: 4,
            drives: 2,
            robots: 1,
        },
        FleetCase {
            libraries: 1,
            drives: 4,
            robots: 1,
        },
        FleetCase {
            libraries: 1,
            drives: 4,
            robots: 2,
        },
    ]
}

/// The replica counts contrasted at every fleet size.
pub const REPLICA_COUNTS: [u32; 3] = [0, 1, 3];

/// Rows the saturation CSV always contains (excluding the header):
/// NR-0 contributes one row per case, each NR > 0 contributes one row
/// per scope per case. The CI schema check pins this count.
pub fn expected_rows() -> usize {
    let per_case = 1 + 2 * (REPLICA_COUNTS.len() - 1);
    default_cases().len() * per_case
}

/// Runs one point of the sweep, averaged over the scale's seeds.
fn run_point(case: FleetCase, nr: u32, scope: ReplicaScope, scale: Scale) -> MetricsReport {
    let geometry = case.geometry();
    let topology = case.topology();
    let cfg = PlacementConfig {
        layout: LayoutKind::Horizontal,
        ph_percent: 10.0,
        scheme: PlacementScheme::Replication { nr },
        sp: 0.0,
    };
    let placed = build_fleet_placement(geometry, BlockSize::PAPER_DEFAULT, cfg, &topology, scope)
        // simlint: allow(panic, NR <= 3 on 10-shelf cabinets always fits)
        .expect("sweep placements are feasible");
    let timing = TimingModel::paper_default();
    let sim = scale.sim_config();
    let mut reports = Vec::new();
    for seed in scale.seeds() {
        let sampler = BlockSampler::from_catalog(&placed.catalog, 40.0);
        let mut factory = RequestFactory::new(
            sampler,
            ArrivalProcess::Closed {
                queue_length: QUEUE_LENGTH,
            },
            seed,
        );
        let mut sched = make_scheduler(AlgorithmId::paper_recommended());
        reports.push(
            run_fleet(
                &placed.catalog,
                &timing,
                topology.clone(),
                sched.as_mut(),
                &mut factory,
                &sim,
                &FaultConfig::NONE,
                0,
            )
            // simlint: allow(panic, static sweep config validated by topology())
            .expect("fleet config is valid"),
        );
    }
    MetricsReport::mean_of(&reports)
}

/// Runs the full saturation matrix, prints the aligned summary table,
/// and returns the CSV (one row per fleet case × NR × scope).
pub fn saturation_csv(scale: Scale) -> String {
    let mut t = Table::new([
        "fleet",
        "libraries",
        "drives",
        "robots",
        "nr",
        "scope",
        "throughput_kb_per_s",
        "requests_per_min",
        "mean_delay_s",
        "p95_delay_s",
        "tape_switches",
        "saturated",
    ]);
    let mut shown = Table::new(["fleet", "nr", "scope", "KB/s", "p95(s)", "switches"]);
    for case in default_cases() {
        for nr in REPLICA_COUNTS {
            let scopes: &[(&str, ReplicaScope)] = if nr == 0 {
                &[("none", ReplicaScope::InLibrary)]
            } else {
                &[
                    ("in_lib", ReplicaScope::InLibrary),
                    ("cross_lib", ReplicaScope::CrossLibrary),
                ]
            };
            for (scope_label, scope) in scopes {
                let r = run_point(case, nr, *scope, scale);
                t.push([
                    case.label(),
                    case.libraries.to_string(),
                    case.total_drives().to_string(),
                    (case.libraries * case.robots).to_string(),
                    nr.to_string(),
                    (*scope_label).to_string(),
                    fnum(r.throughput_kb_per_s, 3),
                    fnum(r.requests_per_min, 4),
                    fnum(r.mean_delay_s, 1),
                    fnum(r.p95_delay_s, 1),
                    r.tape_switches.to_string(),
                    r.saturated.to_string(),
                ]);
                shown.push([
                    case.label(),
                    nr.to_string(),
                    (*scope_label).to_string(),
                    fnum(r.throughput_kb_per_s, 1),
                    fnum(r.p95_delay_s, 0),
                    r.tape_switches.to_string(),
                ]);
            }
        }
    }
    println!("{}", shown.to_aligned());
    t.to_csv()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sweep_has_at_least_three_fleet_sizes() {
        let cases = default_cases();
        let mut drive_counts: Vec<u16> = cases.iter().map(FleetCase::total_drives).collect();
        drive_counts.sort_unstable();
        drive_counts.dedup();
        assert!(drive_counts.len() >= 3, "need ≥ 3 distinct fleet sizes");
    }

    #[test]
    fn expected_rows_matches_matrix() {
        // 5 cases × (1 + 2 + 2) rows.
        assert_eq!(expected_rows(), 25);
    }

    #[test]
    fn cases_build_valid_topologies() {
        for case in default_cases() {
            let topo = case.topology();
            assert_eq!(topo.total_drives(), case.total_drives());
            topo.check_geometry(&case.geometry()).expect("consistent");
        }
    }
}
