//! Scaling of the upper-envelope computation with the number of pending
//! requests — the O(n^2 t^2) bound of Section 3.3 in practice.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use tapesim::model::SimTime;
use tapesim::prelude::*;
use tapesim::sched::compute_upper_envelope;

fn bench_envelope(c: &mut Criterion) {
    let g = JukeboxGeometry::PAPER_DEFAULT;
    let placed = build_placement(
        g,
        BlockSize::PAPER_DEFAULT,
        PlacementConfig::paper_full_replication(g),
    )
    .unwrap();
    let timing = TimingModel::paper_default();
    let sampler = BlockSampler::from_catalog(&placed.catalog, 40.0);
    let mut group = c.benchmark_group("envelope/compute_upper");
    for n in [20u32, 60, 140, 280] {
        let mut f = RequestFactory::new(
            sampler.clone(),
            ArrivalProcess::Closed { queue_length: n },
            11,
        );
        let snapshot: Vec<Request> = (0..n).map(|_| f.make(SimTime::ZERO)).collect();
        group.throughput(Throughput::Elements(n as u64));
        group.bench_with_input(BenchmarkId::from_parameter(n), &snapshot, |b, snap| {
            let view = tapesim::sched::JukeboxView {
                catalog: &placed.catalog,
                timing: &timing,
                mounted: None,
                head: SlotIndex(0),
                now: SimTime::ZERO,
                unavailable: &[],
                offline: &[],
                fleet: tapesim::sched::FleetView::SINGLE,
            };
            b.iter(|| compute_upper_envelope(&view, snap))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_envelope);
criterion_main!(benches);
