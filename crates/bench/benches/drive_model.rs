//! Microbenchmarks of the drive timing model: locate cost evaluation and
//! sweep cost walks — the hot inner loops of every bandwidth estimate.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use tapesim::prelude::*;
use tapesim::sched::walk_cost;

fn bench_locate(c: &mut Criterion) {
    let t = TimingModel::paper_default();
    let b = BlockSize::PAPER_DEFAULT;
    c.bench_function("drive/locate_short_fwd", |bench| {
        bench.iter(|| {
            t.drive
                .locate(black_box(SlotIndex(10)), black_box(SlotIndex(11)), b)
        })
    });
    c.bench_function("drive/locate_long_rev_to_bot", |bench| {
        bench.iter(|| {
            t.drive
                .locate(black_box(SlotIndex(440)), black_box(SlotIndex(0)), b)
        })
    });
}

fn bench_walk(c: &mut Criterion) {
    let t = TimingModel::paper_default();
    let b = BlockSize::PAPER_DEFAULT;
    let stops: Vec<SlotIndex> = (0..100).map(|i| SlotIndex(i * 4)).collect();
    c.bench_function("drive/walk_cost_100_stops", |bench| {
        bench.iter(|| walk_cost(&t, b, SlotIndex(0), black_box(stops.iter().copied())))
    });
}

criterion_group!(benches, bench_locate, bench_walk);
criterion_main!(benches);
