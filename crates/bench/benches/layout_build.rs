//! Benchmarks of catalog construction: full placements (horizontal and
//! vertical, with and without replication) and the spare-capacity
//! layouts, at 16 MB and 1 MB block sizes.

use criterion::{criterion_group, criterion_main, Criterion};
use tapesim::prelude::*;

fn bench_placements(c: &mut Criterion) {
    let g = JukeboxGeometry::PAPER_DEFAULT;
    c.bench_function("layout/horizontal_norepl_16mb", |b| {
        b.iter(|| {
            build_placement(
                g,
                BlockSize::PAPER_DEFAULT,
                PlacementConfig::paper_baseline(),
            )
        })
    });
    c.bench_function("layout/vertical_full_repl_16mb", |b| {
        b.iter(|| {
            build_placement(
                g,
                BlockSize::PAPER_DEFAULT,
                PlacementConfig::paper_full_replication(g),
            )
        })
    });
    c.bench_function("layout/horizontal_norepl_1mb", |b| {
        b.iter(|| build_placement(g, BlockSize::from_mb(1), PlacementConfig::paper_baseline()))
    });
    c.bench_function("layout/spare_spread_replicas", |b| {
        b.iter(|| {
            build_spare_layout(
                g,
                BlockSize::PAPER_DEFAULT,
                SpareConfig {
                    ph_percent: 10.0,
                    fill_fraction: 0.75,
                    spare_use: SpareUse::FillWithReplicas,
                },
            )
        })
    });
}

criterion_group!(benches, bench_placements);
criterion_main!(benches);
