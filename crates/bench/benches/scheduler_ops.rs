//! Benchmarks of one major-rescheduler invocation per algorithm, at light
//! and heavy queue lengths, on the full-replication catalog (the hardest
//! case: every hot request has ten candidate tapes).

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use tapesim::model::SimTime;
use tapesim::prelude::*;
use tapesim::sched::PendingList;

fn pending(catalog: &Catalog, n: u32, seed: u64) -> PendingList {
    let sampler = BlockSampler::from_catalog(catalog, 40.0);
    let mut f = RequestFactory::new(sampler, ArrivalProcess::Closed { queue_length: n }, seed);
    (0..n).map(|_| f.make(SimTime::ZERO)).collect()
}

fn bench_major(c: &mut Criterion) {
    let g = JukeboxGeometry::PAPER_DEFAULT;
    let placed = build_placement(
        g,
        BlockSize::PAPER_DEFAULT,
        PlacementConfig::paper_full_replication(g),
    )
    .unwrap();
    let timing = TimingModel::paper_default();
    let algorithms = [
        AlgorithmId::Fifo,
        AlgorithmId::Static(TapeSelectPolicy::MaxRequests),
        AlgorithmId::Dynamic(TapeSelectPolicy::MaxBandwidth),
        AlgorithmId::Envelope(EnvelopePolicy::MaxBandwidth),
    ];
    for queue in [20u32, 140] {
        for alg in algorithms {
            let id = format!("major_reschedule/{}/q{queue}", alg.name().replace(' ', "_"));
            c.bench_function(&id, |b| {
                b.iter_batched(
                    || (make_scheduler(alg), pending(&placed.catalog, queue, 7)),
                    |(mut s, mut p)| {
                        let view = tapesim::sched::JukeboxView {
                            catalog: &placed.catalog,
                            timing: &timing,
                            mounted: None,
                            head: SlotIndex(0),
                            now: SimTime::ZERO,
                            unavailable: &[],
                            offline: &[],
                            fleet: tapesim::sched::FleetView::SINGLE,
                        };
                        s.major_reschedule(&view, &mut p)
                    },
                    BatchSize::SmallInput,
                )
            });
        }
    }
}

criterion_group!(benches, bench_major);
criterion_main!(benches);
