//! End-to-end simulator throughput: simulated seconds per wall second for
//! representative algorithm/layout combinations on a short horizon.

use criterion::{criterion_group, criterion_main, Criterion};
use tapesim::prelude::*;

fn short_sim(catalog: &Catalog, alg: AlgorithmId) -> MetricsReport {
    let timing = TimingModel::paper_default();
    let sampler = BlockSampler::from_catalog(catalog, 40.0);
    let mut factory = RequestFactory::new(sampler, ArrivalProcess::Closed { queue_length: 60 }, 3);
    let mut sched = make_scheduler(alg);
    let cfg = SimConfig {
        duration: Micros::from_secs(50_000),
        warmup: Micros::from_secs(5_000),
        max_pending: 5_000,
    };
    run_simulation(catalog, &timing, sched.as_mut(), &mut factory, &cfg)
        .expect("bench config is valid")
}

fn bench_sim(c: &mut Criterion) {
    let g = JukeboxGeometry::PAPER_DEFAULT;
    let norepl = build_placement(
        g,
        BlockSize::PAPER_DEFAULT,
        PlacementConfig::paper_baseline(),
    )
    .unwrap()
    .catalog;
    let repl = build_placement(
        g,
        BlockSize::PAPER_DEFAULT,
        PlacementConfig::paper_full_replication(g),
    )
    .unwrap()
    .catalog;
    c.bench_function("sim/50ks_fifo_norepl", |b| {
        b.iter(|| short_sim(&norepl, AlgorithmId::Fifo))
    });
    c.bench_function("sim/50ks_dynamic_maxbw_norepl", |b| {
        b.iter(|| {
            short_sim(
                &norepl,
                AlgorithmId::Dynamic(TapeSelectPolicy::MaxBandwidth),
            )
        })
    });
    c.bench_function("sim/50ks_envelope_maxbw_fullrepl", |b| {
        b.iter(|| short_sim(&repl, AlgorithmId::paper_recommended()))
    });
    criterion::black_box(());
}

criterion_group!(benches, bench_sim);
criterion_main!(benches);
