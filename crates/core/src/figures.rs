//! Figure-level experiment drivers: one function per figure of the
//! paper's evaluation (Section 4), each returning the structured series
//! the figure plots. The `tapesim-bench` binaries print these as CSV,
//! aligned tables, and ASCII plots.
#![allow(clippy::cast_precision_loss)] // sweep grid parameters are small integers

use tapesim_analysis::{piecewise_fit, LineFit};
use tapesim_layout::{
    expansion_factor, expansion_table, scaled_queue_length, ExpansionRow, LayoutKind, PlacedCatalog,
};
use tapesim_model::synth::{synthesize_locates, LocateSample, NoiseModel};
use tapesim_model::units::mb_f64;
use tapesim_model::validate::{validate_model, ValidationConfig, ValidationReport};
use tapesim_model::{BlockSize, DriveModel, LocateDirection};
use tapesim_sched::{AlgorithmId, EnvelopePolicy, TapeSelectPolicy};
use tapesim_sim::MetricsReport;
use tapesim_workload::ArrivalProcess;

use crate::experiment::{run_with_catalog, ExperimentConfig, Scale};
use crate::par::par_map_indexed;

/// One point of a sweep: the intensity parameter (queue length for closed
/// queuing, mean interarrival seconds for open) and the measured report.
#[derive(Debug, Clone)]
pub struct SweepPoint {
    /// The intensity parameter value.
    pub param: f64,
    /// Seed-averaged metrics at this point.
    pub report: MetricsReport,
}

/// A named series of sweep points (one curve of a figure).
#[derive(Debug, Clone)]
pub struct SweepSeries {
    /// Legend label.
    pub label: String,
    /// Points in parameter order.
    pub points: Vec<SweepPoint>,
}

/// The workload-intensity grid traced out by each parametric curve.
#[derive(Debug, Clone)]
pub enum IntensityGrid {
    /// Closed queuing: fixed queue lengths.
    Closed(Vec<u32>),
    /// Open queuing: mean interarrival times in seconds (descending =
    /// increasing load).
    Open(Vec<u64>),
}

impl IntensityGrid {
    /// The default grid for a scale: the paper's queue lengths (closed) or
    /// a matching range of interarrival times (open).
    pub fn default_for(scale: Scale, open: bool) -> IntensityGrid {
        if open {
            // The jukebox serves roughly one 16 MB request per 30-60 s;
            // these means run from light load to just below saturation.
            IntensityGrid::Open(match scale {
                Scale::Quick => vec![240, 120, 80, 60],
                _ => vec![300, 240, 180, 120, 90, 70, 60],
            })
        } else {
            IntensityGrid::Closed(scale.queue_lengths())
        }
    }

    fn apply(&self, cfg: &ExperimentConfig, idx: usize) -> (f64, ExperimentConfig) {
        match self {
            IntensityGrid::Closed(qs) => (qs[idx] as f64, cfg.clone().with_queue(qs[idx])),
            IntensityGrid::Open(gaps) => (gaps[idx] as f64, cfg.clone().with_open(gaps[idx])),
        }
    }

    fn len(&self) -> usize {
        match self {
            IntensityGrid::Closed(v) => v.len(),
            IntensityGrid::Open(v) => v.len(),
        }
    }
}

/// Sweeps one configuration across an intensity grid, reusing a single
/// catalog build.
pub fn sweep_intensity(
    label: impl Into<String>,
    base: &ExperimentConfig,
    grid: &IntensityGrid,
) -> SweepSeries {
    let placed = base
        .build_catalog()
        // simlint: allow(panic, figure configs are static and exercised by the tier-1 tests)
        .expect("figure configurations are feasible by construction");
    // The points are independent simulations; fan them over the cores.
    let points = par_map_indexed(grid.len(), |i| {
        let (param, cfg) = grid.apply(base, i);
        let (report, _) = run_with_catalog(&cfg, &placed)
            // simlint: allow(panic, figure configs are static and exercised by the tier-1 tests)
            .expect("figure simulation configs are valid");
        SweepPoint { param, report }
    });
    SweepSeries {
        label: label.into(),
        points,
    }
}

/// True when two configurations consume identical placement parameters,
/// i.e. [`ExperimentConfig::build_catalog`] returns the same catalog for
/// both (the build is deterministic in these fields). Lets series that
/// vary only the workload or algorithm share one catalog build.
fn same_placement(a: &ExperimentConfig, b: &ExperimentConfig) -> bool {
    a.geometry == b.geometry
        && a.block == b.block
        && a.layout == b.layout
        && a.replicas == b.replicas
        && a.ph_percent.to_bits() == b.ph_percent.to_bits()
        && a.sp.to_bits() == b.sp.to_bits()
}

/// Sweeps a family of labeled configurations across a shared intensity
/// grid, flattening every (series, point) pair into one parallel map so
/// `all_figures` saturates the cores even when a figure has more series
/// than any series has points. Catalogs are built once per *distinct*
/// placement (figures like 4 and 8 sweep eleven algorithms over one
/// placement).
fn sweep_grid(bases: Vec<(String, ExperimentConfig)>, grid: &IntensityGrid) -> Vec<SweepSeries> {
    let mut catalog_of: Vec<usize> = Vec::with_capacity(bases.len());
    let mut uniq: Vec<usize> = Vec::new();
    for (s, (_, cfg)) in bases.iter().enumerate() {
        match uniq.iter().position(|&u| same_placement(&bases[u].1, cfg)) {
            Some(k) => catalog_of.push(k),
            None => {
                catalog_of.push(uniq.len());
                uniq.push(s);
            }
        }
    }
    let placed: Vec<PlacedCatalog> = par_map_indexed(uniq.len(), |k| {
        bases[uniq[k]]
            .1
            .build_catalog()
            // simlint: allow(panic, figure configs are static and exercised by the tier-1 tests)
            .expect("figure configurations are feasible by construction")
    });
    let pts = grid.len();
    let reports = par_map_indexed(bases.len() * pts, |j| {
        let (s, i) = (j / pts, j % pts);
        let (param, cfg) = grid.apply(&bases[s].1, i);
        let (report, _) = run_with_catalog(&cfg, &placed[catalog_of[s]])
            // simlint: allow(panic, figure configs are static and exercised by the tier-1 tests)
            .expect("figure simulation configs are valid");
        SweepPoint { param, report }
    });
    let mut reports = reports.into_iter();
    bases
        .into_iter()
        .map(|(label, _)| SweepSeries {
            label,
            points: reports.by_ref().take(pts).collect(),
        })
        .collect()
}

// ---------------------------------------------------------------------
// Figure 1 and the Section 2.1 validation table
// ---------------------------------------------------------------------

/// The Figure 1 reproduction: synthetic locate measurements (standing in
/// for the paper's 2130 hardware locates) and the piecewise least-squares
/// refit per direction.
#[derive(Debug, Clone)]
pub struct Fig1Data {
    /// All samples (forward and reverse, including to-BOT locates).
    pub samples: Vec<LocateSample>,
    /// Fit of the forward short/long regimes (to-BOT samples excluded).
    pub forward: (LineFit, LineFit),
    /// Fit of the reverse short/long regimes (to-BOT samples excluded).
    pub reverse: (LineFit, LineFit),
    /// The ground-truth drive model the samples came from.
    pub drive: DriveModel,
}

/// Generates the Figure 1 data: `n` random locates with 1 MB logical
/// blocks on a 7 GB tape, then refits the four locate regimes.
pub fn fig1_locate_model(n: usize, seed: u64) -> Fig1Data {
    let drive = DriveModel::exb8505xl();
    let block = BlockSize::from_mb(1);
    let samples = synthesize_locates(
        &drive,
        block,
        7 * 1024,
        n,
        NoiseModel::locate_default(),
        seed,
    );
    let split = |dir: LocateDirection| -> Vec<(f64, f64)> {
        samples
            .iter()
            .filter(|s| s.direction == dir && !s.to_bot)
            .map(|s| (mb_f64(s.distance_mb), s.measured_s))
            .collect()
    };
    let threshold = mb_f64(drive.locate.short_threshold_mb);
    Fig1Data {
        forward: piecewise_fit(&split(LocateDirection::Forward), threshold),
        reverse: piecewise_fit(&split(LocateDirection::Reverse), threshold),
        samples,
        drive,
    }
}

/// The Section 2.1 random-walk validation (ten walks of 100 locate+read
/// operations), reproducing the reported error table.
pub fn model_validation() -> ValidationReport {
    validate_model(&DriveModel::exb8505xl(), &ValidationConfig::default())
}

// ---------------------------------------------------------------------
// Figures 3-9
// ---------------------------------------------------------------------

/// Figure 3: throughput as a function of the I/O transfer size, one curve
/// per workload intensity. PH-10 RH-40 NR-0 SP-0, dynamic max-bandwidth.
pub fn fig3_transfer_size(scale: Scale, open: bool) -> Vec<SweepSeries> {
    let block_sizes: [u32; 7] = [1, 2, 4, 8, 16, 32, 64];
    let grid = IntensityGrid::default_for(scale, open);
    let bases: Vec<ExperimentConfig> = block_sizes
        .iter()
        .map(|&mb| ExperimentConfig {
            block: BlockSize::from_mb(mb),
            ..base_fig3(scale)
        })
        .collect();
    let placed: Vec<PlacedCatalog> = par_map_indexed(bases.len(), |b| {
        // simlint: allow(panic, figure configs are static and exercised by the tier-1 tests)
        bases[b].build_catalog().expect("feasible")
    });
    let pts = grid.len();
    let reports = par_map_indexed(bases.len() * pts, |j| {
        let (b, i) = (j / pts, j % pts);
        let (_, cfg) = grid.apply(&bases[b], i);
        let (report, _) = run_with_catalog(&cfg, &placed[b])
            // simlint: allow(panic, figure configs are static and exercised by the tier-1 tests)
            .expect("figure simulation configs are valid");
        report
    });
    // One series per intensity; the x axis is the block size, so emit
    // the sweep transposed.
    (0..pts)
        .map(|i| {
            let (param, _) = grid.apply(&base_fig3(scale), i);
            SweepSeries {
                label: if open {
                    format!("interarrival {param}s")
                } else {
                    format!("queue {param}")
                },
                points: block_sizes
                    .iter()
                    .enumerate()
                    .map(|(b, &mb)| SweepPoint {
                        param: f64::from(mb),
                        report: reports[b * pts + i].clone(),
                    })
                    .collect(),
            }
        })
        .collect()
}

fn base_fig3(scale: Scale) -> ExperimentConfig {
    ExperimentConfig {
        scale,
        ..ExperimentConfig::paper_baseline()
    }
}

/// Figure 4: throughput/delay parametric curves for the scheduling
/// algorithms with no replication (FIFO, five static, five dynamic).
pub fn fig4_sched_algorithms(scale: Scale, open: bool) -> Vec<SweepSeries> {
    let grid = IntensityGrid::default_for(scale, open);
    let mut algorithms = vec![AlgorithmId::Fifo];
    algorithms.extend(TapeSelectPolicy::ALL.into_iter().map(AlgorithmId::Static));
    algorithms.extend(TapeSelectPolicy::ALL.into_iter().map(AlgorithmId::Dynamic));
    let bases = algorithms
        .into_iter()
        .map(|alg| {
            let base = ExperimentConfig {
                algorithm: alg,
                scale,
                ..ExperimentConfig::paper_baseline()
            };
            (alg.name(), base)
        })
        .collect();
    sweep_grid(bases, &grid)
}

/// Figure 5: hot-data placement with no replication — horizontal layouts
/// at SP in {0, 0.25, 0.5, 0.75, 1} plus the vertical layout. Dynamic
/// max-bandwidth.
pub fn fig5_placement(scale: Scale, open: bool) -> Vec<SweepSeries> {
    let grid = IntensityGrid::default_for(scale, open);
    let mut bases: Vec<(String, ExperimentConfig)> = [0.0, 0.25, 0.5, 0.75, 1.0]
        .iter()
        .map(|&sp| {
            let base = ExperimentConfig {
                sp,
                scale,
                ..ExperimentConfig::paper_baseline()
            };
            (format!("horizontal SP-{sp}"), base)
        })
        .collect();
    let vertical = ExperimentConfig {
        layout: LayoutKind::Vertical,
        scale,
        ..ExperimentConfig::paper_baseline()
    };
    bases.push(("vertical".into(), vertical));
    sweep_grid(bases, &grid)
}

/// Figure 6: number of replicas 0..9 (vertical layout, replicas at the
/// tape ends). Dynamic max-bandwidth.
pub fn fig6_replicas(scale: Scale, open: bool) -> Vec<SweepSeries> {
    let grid = IntensityGrid::default_for(scale, open);
    let nrs: &[u32] = match scale {
        Scale::Quick => &[0, 2, 9],
        _ => &[0, 1, 2, 4, 6, 9],
    };
    let bases = nrs
        .iter()
        .map(|&nr| {
            let base = ExperimentConfig {
                layout: LayoutKind::Vertical,
                replicas: nr,
                sp: 1.0,
                scale,
                ..ExperimentConfig::paper_baseline()
            };
            (format!("NR-{nr}"), base)
        })
        .collect();
    sweep_grid(bases, &grid)
}

/// Figure 7: placement of replicas with full replication — SP from the
/// beginning to the end of tape. Dynamic max-bandwidth.
pub fn fig7_replica_placement(scale: Scale, open: bool) -> Vec<SweepSeries> {
    let grid = IntensityGrid::default_for(scale, open);
    let bases = [0.0, 0.25, 0.5, 0.75, 1.0]
        .iter()
        .map(|&sp| {
            let base = ExperimentConfig {
                layout: LayoutKind::Vertical,
                replicas: 9,
                sp,
                scale,
                ..ExperimentConfig::paper_baseline()
            };
            (format!("SP-{sp}"), base)
        })
        .collect();
    sweep_grid(bases, &grid)
}

/// Figure 8: scheduling algorithms with full replication at the tape
/// ends, including the three envelope variants.
pub fn fig8_sched_replication(scale: Scale, open: bool) -> Vec<SweepSeries> {
    let grid = IntensityGrid::default_for(scale, open);
    let mut algorithms = vec![AlgorithmId::Static(TapeSelectPolicy::MaxBandwidth)];
    algorithms.extend(TapeSelectPolicy::ALL.into_iter().map(AlgorithmId::Dynamic));
    algorithms.extend(EnvelopePolicy::ALL.into_iter().map(AlgorithmId::Envelope));
    let bases = algorithms
        .into_iter()
        .map(|alg| {
            let base = ExperimentConfig {
                layout: LayoutKind::Vertical,
                replicas: 9,
                sp: 1.0,
                algorithm: alg,
                scale,
                ..ExperimentConfig::paper_baseline()
            };
            (alg.name(), base)
        })
        .collect();
    sweep_grid(bases, &grid)
}

/// Figure 9: the relationship between skew and performance. RH sweeps
/// 20..80 with PH-10; dotted curves are non-replicated (hot at the
/// beginning), solid curves fully replicated (hot at the end). Best
/// algorithm (max-bandwidth envelope).
pub fn fig9_skew(scale: Scale, open: bool) -> Vec<SweepSeries> {
    let grid = IntensityGrid::default_for(scale, open);
    let mut bases: Vec<(String, ExperimentConfig)> = Vec::new();
    for &rh in &[20.0, 40.0, 60.0, 80.0] {
        for replicated in [false, true] {
            let base = ExperimentConfig {
                rh_percent: rh,
                layout: if replicated {
                    LayoutKind::Vertical
                } else {
                    LayoutKind::Horizontal
                },
                replicas: if replicated { 9 } else { 0 },
                sp: if replicated { 1.0 } else { 0.0 },
                algorithm: AlgorithmId::paper_recommended(),
                scale,
                ..ExperimentConfig::paper_baseline()
            };
            let label = format!(
                "RH-{rh} {}",
                if replicated { "replicated" } else { "no-repl" }
            );
            bases.push((label, base));
        }
    }
    sweep_grid(bases, &grid)
}

// ---------------------------------------------------------------------
// Figure 10: cost-performance
// ---------------------------------------------------------------------

/// One cost-performance measurement: the throughput ratio (per jukebox)
/// of an NR-replica scheme to the non-replicated scheme, with the
/// replicated jukebox's queue scaled down by the expansion factor.
#[derive(Debug, Clone)]
pub struct CostPerfPoint {
    /// Number of replicas.
    pub nr: u32,
    /// Expansion factor `E`.
    pub expansion: f64,
    /// Queue length used for the replicated scheme (`base / E`).
    pub queue: u32,
    /// Throughput of the replicated scheme (KB/s).
    pub throughput: f64,
    /// Cost-performance ratio vs. the NR-0 scheme.
    pub ratio: f64,
}

/// A cost-performance curve for one skew.
#[derive(Debug, Clone)]
pub struct CostPerfSeries {
    /// Percent of requests to hot data.
    pub rh_percent: f64,
    /// Points by number of replicas.
    pub points: Vec<CostPerfPoint>,
}

/// Figure 10(a): the analytic expansion-factor surface.
pub fn fig10a_expansion() -> Vec<ExpansionRow> {
    expansion_table(&[5.0, 10.0, 20.0, 30.0], 9)
}

/// Figure 10(b): cost-performance ratio of replication vs. no
/// replication as NR grows, for several skews. The workload is a closed
/// queue of `base_queue` per jukebox in the non-replicated case and
/// `base_queue / E` in the replicated case (the same total workload
/// spread over `E` times more jukeboxes).
pub fn fig10b_cost_performance(scale: Scale, base_queue: u32) -> Vec<CostPerfSeries> {
    let nrs: &[u32] = match scale {
        Scale::Quick => &[0, 2, 9],
        _ => &[0, 1, 2, 4, 6, 9],
    };
    let rhs = [40.0, 60.0, 80.0, 95.0];
    // Flatten the (rh, nr) grid into one parallel map; the NR-0 baseline
    // each ratio divides by is the first point of its rh chunk, so the
    // ratios are computed after the map from the same measurements the
    // sequential loop used.
    let jobs: Vec<(f64, u32)> = rhs
        .iter()
        .flat_map(|&rh| nrs.iter().map(move |&nr| (rh, nr)))
        .collect();
    // The placement depends only on NR, so one catalog per replica count
    // serves every skew (`rh` only steers the workload).
    let cfg_for = |rh: f64, nr: u32| {
        let e = expansion_factor(nr, 10.0);
        let queue = scaled_queue_length(base_queue, e);
        ExperimentConfig {
            layout: LayoutKind::Vertical,
            replicas: nr,
            sp: 1.0,
            rh_percent: rh,
            algorithm: AlgorithmId::paper_recommended(),
            process: ArrivalProcess::Closed {
                queue_length: queue,
            },
            scale,
            ..ExperimentConfig::paper_baseline()
        }
    };
    let placed: Vec<PlacedCatalog> = par_map_indexed(nrs.len(), |k| {
        // simlint: allow(panic, rhs is a non-empty literal array)
        cfg_for(rhs[0], nrs[k])
            .build_catalog()
            // simlint: allow(panic, figure configs are static and exercised by the tier-1 tests)
            .expect("feasible")
    });
    let measured: Vec<CostPerfPoint> = par_map_indexed(jobs.len(), |j| {
        let (rh, nr) = jobs[j];
        let e = expansion_factor(nr, 10.0);
        let queue = scaled_queue_length(base_queue, e);
        let cfg = cfg_for(rh, nr);
        let (report, _) = run_with_catalog(&cfg, &placed[j % nrs.len()])
            // simlint: allow(panic, figure configs are static and exercised by the tier-1 tests)
            .expect("figure simulation configs are valid");
        CostPerfPoint {
            nr,
            expansion: e,
            queue,
            throughput: report.throughput_kb_per_s,
            ratio: 0.0,
        }
    });
    measured
        .chunks(nrs.len())
        .zip(rhs)
        .map(|(chunk, rh)| {
            // simlint: allow(panic, chunks(nrs.len()) over rhs.len()*nrs.len() jobs yields non-empty chunks)
            debug_assert_eq!(chunk[0].nr, 0, "NR grid starts at 0");
            // simlint: allow(panic, chunks(nrs.len()) over rhs.len()*nrs.len() jobs yields non-empty chunks)
            let base = chunk[0].throughput;
            CostPerfSeries {
                rh_percent: rh,
                points: chunk
                    .iter()
                    .map(|p| CostPerfPoint {
                        ratio: if base > 0.0 { p.throughput / base } else { 0.0 },
                        ..p.clone()
                    })
                    .collect(),
            }
        })
        .collect()
}

/// Sanity alias used by benches: one quick mid-load baseline report.
pub fn baseline_report(scale: Scale) -> MetricsReport {
    let cfg = ExperimentConfig {
        scale,
        ..ExperimentConfig::paper_baseline()
    };
    crate::experiment::run_experiment(&cfg)
        // simlint: allow(panic, figure configs are static and exercised by the tier-1 tests)
        .expect("baseline feasible")
        .report
}
