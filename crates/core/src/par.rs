//! Minimal deterministic fork-join helper for the figure sweeps.
//!
//! The figure drivers fan independent simulation runs (one per sweep
//! point) over the available cores with [`par_map_indexed`]. Results are
//! returned strictly in index order and every job is a pure function of
//! its index, so the output is identical whether the map runs on one
//! thread or many — parallelism here only changes wall time, never
//! values (the same contract `run_seeds` follows for per-seed threads).

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Mutex, PoisonError};

/// Runs `f(i)` for every `i` in `0..n` across the available cores and
/// returns the results in index order.
///
/// Work is handed out through a shared atomic counter, so threads stay
/// busy even when job durations differ wildly (a saturated sweep point
/// can take many times longer than a light one). With a single core —
/// or `n <= 1` — the map degenerates to a plain sequential loop with no
/// thread or lock overhead.
///
/// A panicking job propagates out of the enclosing scope and aborts the
/// whole map, matching the behavior of a sequential loop.
pub fn par_map_indexed<T, F>(n: usize, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    let workers = std::thread::available_parallelism()
        .map_or(1, usize::from)
        .min(n);
    if workers <= 1 {
        return (0..n).map(f).collect();
    }
    let next = AtomicUsize::new(0);
    let slots: Mutex<Vec<Option<T>>> = Mutex::new((0..n).map(|_| None).collect());
    std::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= n {
                    break;
                }
                let r = f(i);
                let mut guard = slots.lock().unwrap_or_else(PoisonError::into_inner);
                guard[i] = Some(r);
            });
        }
    });
    slots
        .into_inner()
        .unwrap_or_else(PoisonError::into_inner)
        .into_iter()
        // simlint: allow(panic, the scope above joins every worker, so each claimed index was filled or the scope already panicked)
        .map(|r| r.expect("every index claimed and completed"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn results_come_back_in_index_order() {
        let out = par_map_indexed(100, |i| i * i);
        assert_eq!(out.len(), 100);
        for (i, v) in out.iter().enumerate() {
            assert_eq!(*v, i * i);
        }
    }

    #[test]
    fn empty_and_single_maps_work() {
        assert_eq!(par_map_indexed(0, |i| i), Vec::<usize>::new());
        assert_eq!(par_map_indexed(1, |i| i + 7), vec![7]);
    }

    #[test]
    fn matches_sequential_reference() {
        let f = |i: usize| (i as u64).wrapping_mul(0x9E37_79B9).rotate_left(13);
        let seq: Vec<u64> = (0..257).map(f).collect();
        assert_eq!(par_map_indexed(257, f), seq);
    }
}
