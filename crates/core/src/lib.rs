//! # tapesim
//!
//! A complete reproduction of *Scheduling and Data Replication to Improve
//! Tape Jukebox Performance* (Hillyer, Rastogi, Silberschatz; ICDE 1999)
//! as a Rust library: the calibrated tape timing model, data placement
//! and replication schemes, fourteen scheduling algorithms including the
//! envelope-extension algorithm, a discrete-event simulator of the
//! service model, and experiment drivers that regenerate every figure of
//! the paper's evaluation.
//!
//! ## Quickstart
//!
//! ```
//! use tapesim::prelude::*;
//!
//! // The paper's moderate-skew baseline on a short horizon.
//! let cfg = ExperimentConfig {
//!     scale: Scale::Quick,
//!     ..ExperimentConfig::paper_baseline()
//! };
//! let result = run_experiment(&cfg).unwrap();
//! assert!(result.report.throughput_kb_per_s > 0.0);
//! ```
//!
//! The crates underneath are re-exported in full: [`model`] (timing),
//! [`layout`] (placement/replication), [`workload`] (skew and arrival
//! processes), [`sched`] (algorithms), [`sim`] (engine), and
//! [`analysis`] (stats/tables/plots).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod experiment;
pub mod figures;
pub mod par;

/// Statistics, fitting, tables, and plots.
pub use tapesim_analysis as analysis;
/// Data layout, placement, and replication (Sections 4.3-4.5, 4.8).
pub use tapesim_layout as layout;
/// The tape/drive/robot timing model (Section 2.1).
pub use tapesim_model as model;
/// Scheduling algorithms (Section 3).
pub use tapesim_sched as sched;
/// The discrete-event simulator (Section 2.2).
pub use tapesim_sim as sim;
/// Request generation: hot/cold skew, closed/open queuing (Section 4).
pub use tapesim_workload as workload;

pub use experiment::{
    run_experiment, run_with_catalog, ExperimentConfig, ExperimentError, ExperimentResult, Scale,
};
pub use figures::{
    baseline_report, fig10a_expansion, fig10b_cost_performance, fig1_locate_model,
    fig3_transfer_size, fig4_sched_algorithms, fig5_placement, fig6_replicas,
    fig7_replica_placement, fig8_sched_replication, fig9_skew, model_validation, sweep_intensity,
    CostPerfPoint, CostPerfSeries, Fig1Data, IntensityGrid, SweepPoint, SweepSeries,
};
pub use par::par_map_indexed;

/// Convenient glob-import surface.
pub mod prelude {
    pub use crate::experiment::{
        run_experiment, run_with_catalog, ExperimentConfig, ExperimentError, ExperimentResult,
        Scale,
    };
    pub use crate::figures::*;
    pub use tapesim_analysis::{ascii_plot, fnum, Series, Table};
    pub use tapesim_layout::{
        build_fleet_placement, build_placement, build_spare_layout, expansion_factor,
        scheme_expansion_factor, BlockId, Catalog, LayoutKind, PlacementConfig, PlacementScheme,
        ReplicaScope, SpareConfig, SpareUse, StripeInfo,
    };
    pub use tapesim_model::FaultConfig;
    pub use tapesim_model::{
        BlockSize, DriveModel, InterLibraryModel, JukeboxGeometry, LibraryTopo, Micros, RobotModel,
        SimTime, SlotIndex, TapeId, TimingModel, Topology,
    };
    pub use tapesim_sched::{
        make_scheduler, AlgorithmId, EnvelopePolicy, Scheduler, TapeSelectPolicy,
    };
    pub use tapesim_sim::{run_simulation, MetricsReport, RunSpec, SimConfig, SimError};
    pub use tapesim_workload::{ArrivalProcess, BlockSampler, Request, RequestFactory};
}
