//! End-to-end experiment configuration: one struct capturing the paper's
//! six-dimensional parameter space (arrival process, skew, transfer size,
//! algorithm, placement, replication) plus simulation scale.

use tapesim_layout::{
    build_placement, LayoutKind, PlacedCatalog, PlacementConfig, PlacementError, PlacementScheme,
};
use tapesim_model::{BlockSize, FaultConfig, JukeboxGeometry, Micros, TimingModel};
use tapesim_sched::AlgorithmId;
use tapesim_sim::{default_seeds, run_seeds, MetricsReport, RunSpec, SimConfig, SimError};
use tapesim_workload::ArrivalProcess;

/// Anything that can go wrong running an experiment end to end: the
/// placement can be infeasible, or the simulation config invalid.
#[derive(Debug, Clone, PartialEq)]
pub enum ExperimentError {
    /// The requested placement does not fit the jukebox.
    Placement(PlacementError),
    /// The simulation rejected its configuration.
    Sim(SimError),
}

impl std::fmt::Display for ExperimentError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ExperimentError::Placement(e) => write!(f, "placement error: {e}"),
            ExperimentError::Sim(e) => write!(f, "simulation error: {e}"),
        }
    }
}

impl std::error::Error for ExperimentError {}

impl From<PlacementError> for ExperimentError {
    fn from(e: PlacementError) -> Self {
        ExperimentError::Placement(e)
    }
}

impl From<SimError> for ExperimentError {
    fn from(e: SimError) -> Self {
        ExperimentError::Sim(e)
    }
}

/// How long and how many seeds to simulate.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scale {
    /// Short runs for tests and smoke checks (100k simulated seconds,
    /// 1 seed).
    Quick,
    /// The default: 1M simulated seconds, 3 seeds — reproduces the
    /// paper's rankings in minutes of wall-clock time.
    Default,
    /// The paper's horizon: 10M simulated seconds, 3 seeds.
    Paper,
}

impl Scale {
    /// The simulation config for this scale.
    pub fn sim_config(self) -> SimConfig {
        match self {
            Scale::Quick => SimConfig::quick(),
            Scale::Default => SimConfig::default(),
            Scale::Paper => SimConfig::paper_scale(),
        }
    }

    /// The RNG seeds for this scale.
    pub fn seeds(self) -> Vec<u64> {
        match self {
            Scale::Quick => default_seeds(1),
            Scale::Default | Scale::Paper => default_seeds(3),
        }
    }

    /// The closed-queue lengths swept by the parametric figures
    /// (the paper plots 20, 40, ..., 140).
    pub fn queue_lengths(self) -> Vec<u32> {
        match self {
            Scale::Quick => vec![20, 60, 100, 140],
            Scale::Default | Scale::Paper => vec![20, 40, 60, 80, 100, 120, 140],
        }
    }

    /// Parses `"quick"`, `"default"`, or `"paper"`.
    pub fn parse(s: &str) -> Option<Scale> {
        match s {
            "quick" => Some(Scale::Quick),
            "default" => Some(Scale::Default),
            "paper" => Some(Scale::Paper),
            _ => None,
        }
    }
}

/// A complete experiment point, in the paper's notation: `PH`/`RH` skew,
/// `NR` replicas, `SP` placement, plus layout, block size, algorithm,
/// arrival process, and simulation scale.
#[derive(Debug, Clone, PartialEq)]
pub struct ExperimentConfig {
    /// Jukebox shape (paper: 10 tapes x 7 GB).
    pub geometry: JukeboxGeometry,
    /// Logical block size (paper settles on 16 MB).
    pub block: BlockSize,
    /// Percent of data that is hot (`PH`).
    pub ph_percent: f64,
    /// Percent of requests directed to hot data (`RH`).
    pub rh_percent: f64,
    /// Replicas of each hot block (`NR`).
    pub replicas: u32,
    /// Normalized start position of the hot/replica region (`SP`).
    pub sp: f64,
    /// Horizontal or vertical hot-data layout.
    pub layout: LayoutKind,
    /// Scheduling algorithm.
    pub algorithm: AlgorithmId,
    /// Closed or open arrivals.
    pub process: ArrivalProcess,
    /// Drive/robot timing model.
    pub timing: TimingModel,
    /// Horizon/warmup/seeds.
    pub scale: Scale,
    /// Number of tape drives (1 = the paper's configuration).
    pub drives: u16,
    /// Sequential-run probability (0 = the paper's independent stream).
    pub cluster_run_p: f64,
    /// Fault model ([`FaultConfig::NONE`] reproduces the paper's
    /// fault-free runs exactly).
    pub faults: FaultConfig,
}

impl ExperimentConfig {
    /// The paper's moderate-skew baseline: PH-10 RH-40 NR-0 SP-0,
    /// horizontal layout, dynamic max-bandwidth, closed queue of 60.
    pub fn paper_baseline() -> Self {
        ExperimentConfig {
            geometry: JukeboxGeometry::PAPER_DEFAULT,
            block: BlockSize::PAPER_DEFAULT,
            ph_percent: 10.0,
            rh_percent: 40.0,
            replicas: 0,
            sp: 0.0,
            layout: LayoutKind::Horizontal,
            algorithm: AlgorithmId::Dynamic(tapesim_sched::TapeSelectPolicy::MaxBandwidth),
            process: ArrivalProcess::Closed { queue_length: 60 },
            timing: TimingModel::paper_default(),
            scale: Scale::Default,
            drives: 1,
            cluster_run_p: 0.0,
            faults: FaultConfig::NONE,
        }
    }

    /// The paper's best replicated configuration: vertical layout, full
    /// replication at the tape ends, max-bandwidth envelope.
    pub fn paper_full_replication() -> Self {
        let geometry = JukeboxGeometry::PAPER_DEFAULT;
        ExperimentConfig {
            replicas: geometry.tapes as u32 - 1,
            sp: 1.0,
            layout: LayoutKind::Vertical,
            algorithm: AlgorithmId::paper_recommended(),
            ..ExperimentConfig::paper_baseline()
        }
    }

    /// Builds the catalog for this configuration.
    pub fn build_catalog(&self) -> Result<PlacedCatalog, PlacementError> {
        build_placement(
            self.geometry,
            self.block,
            PlacementConfig {
                layout: self.layout,
                ph_percent: self.ph_percent,
                scheme: PlacementScheme::Replication { nr: self.replicas },
                sp: self.sp,
            },
        )
    }

    /// Convenience: replaces the closed-queue length.
    pub fn with_queue(mut self, queue_length: u32) -> Self {
        self.process = ArrivalProcess::Closed { queue_length };
        self
    }

    /// Convenience: replaces the open-queue mean interarrival time.
    pub fn with_open(mut self, mean_interarrival_s: u64) -> Self {
        self.process = ArrivalProcess::OpenPoisson {
            mean_interarrival: Micros::from_secs(mean_interarrival_s),
        };
        self
    }
}

/// The result of running one experiment point.
#[derive(Debug, Clone)]
pub struct ExperimentResult {
    /// Seed-averaged metrics.
    pub report: MetricsReport,
    /// Per-seed metrics, in seed order.
    pub per_seed: Vec<MetricsReport>,
    /// Analytic expansion factor of the placement.
    pub expansion: f64,
    /// 95% confidence half-width on the mean throughput (KB/s), from the
    /// per-seed spread; 0 for single-seed runs.
    pub throughput_ci95: f64,
    /// 95% confidence half-width on the mean delay (seconds).
    pub delay_ci95: f64,
}

/// Builds the catalog and runs the experiment across this scale's seeds.
pub fn run_experiment(cfg: &ExperimentConfig) -> Result<ExperimentResult, ExperimentError> {
    let placed = cfg.build_catalog()?;
    let (report, per_seed) = run_with_catalog(cfg, &placed)?;
    let thr: Vec<f64> = per_seed.iter().map(|r| r.throughput_kb_per_s).collect();
    let del: Vec<f64> = per_seed.iter().map(|r| r.mean_delay_s).collect();
    Ok(ExperimentResult {
        report,
        throughput_ci95: tapesim_analysis::ci95_half_width(&thr),
        delay_ci95: tapesim_analysis::ci95_half_width(&del),
        per_seed,
        expansion: placed.expansion,
    })
}

/// Runs the experiment against an already-built catalog (lets figure
/// sweeps that vary only the workload reuse one placement).
pub fn run_with_catalog(
    cfg: &ExperimentConfig,
    placed: &PlacedCatalog,
) -> Result<(MetricsReport, Vec<MetricsReport>), SimError> {
    let spec = RunSpec {
        catalog: &placed.catalog,
        timing: &cfg.timing,
        algorithm: cfg.algorithm,
        process: cfg.process,
        rh_percent: cfg.rh_percent,
        cluster_run_p: cfg.cluster_run_p,
        drives: cfg.drives,
        config: cfg.scale.sim_config(),
        faults: cfg.faults,
    };
    run_seeds(&spec, &cfg.scale.seeds())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn baseline_builds_and_runs_quick() {
        let cfg = ExperimentConfig {
            scale: Scale::Quick,
            ..ExperimentConfig::paper_baseline()
        };
        let r = run_experiment(&cfg).unwrap();
        assert!(r.report.completed > 100);
        assert_eq!(r.per_seed.len(), 1);
        assert!((r.expansion - 1.0).abs() < 1e-12);
    }

    #[test]
    fn full_replication_has_expansion() {
        let cfg = ExperimentConfig {
            scale: Scale::Quick,
            ..ExperimentConfig::paper_full_replication()
        };
        let placed = cfg.build_catalog().unwrap();
        assert!((placed.expansion - 1.9).abs() < 1e-12);
    }

    #[test]
    fn scale_grids() {
        assert_eq!(Scale::Quick.queue_lengths(), vec![20, 60, 100, 140]);
        assert_eq!(Scale::Default.queue_lengths().len(), 7);
        assert_eq!(Scale::Quick.seeds().len(), 1);
        assert_eq!(Scale::Paper.seeds().len(), 3);
        assert_eq!(Scale::parse("paper"), Some(Scale::Paper));
        assert_eq!(Scale::parse("bogus"), None);
    }

    #[test]
    fn with_helpers_replace_process() {
        let cfg = ExperimentConfig::paper_baseline().with_queue(20);
        assert_eq!(cfg.process, ArrivalProcess::Closed { queue_length: 20 });
        let cfg = cfg.with_open(120);
        assert!(matches!(cfg.process, ArrivalProcess::OpenPoisson { .. }));
    }
}
