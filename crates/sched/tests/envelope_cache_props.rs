//! Property suite for the envelope extension cache (`ExtensionCache`):
//! the cached driver must be bit-identical to a fresh recomputation.
//!
//! Two properties on random catalogs and request queues:
//!
//! 1. `compute_upper_envelope` (cached extension lists, invalidation on
//!    change) and `compute_upper_envelope_fresh` (rebuild everything on
//!    every iteration) produce identical envelopes, assignments, and
//!    per-tape counts.
//! 2. Every cached per-prefix cost equals the tape-switch charge plus an
//!    independent `prefix_cost` recomputation over the cached slot list —
//!    exact `Micros` equality, no tolerance.

use proptest::prelude::*;

use tapesim_layout::{BlockId, Catalog};
use tapesim_model::{
    BlockSize, JukeboxGeometry, PhysicalAddr, SimTime, SlotIndex, TapeId, TimingModel,
};
use tapesim_sched::envelope::envelope_after_absorb;
use tapesim_sched::{
    compute_upper_envelope, compute_upper_envelope_fresh, prefix_cost, ExtensionCache, JukeboxView,
};
use tapesim_workload::{Request, RequestId};

const TAPES: u16 = 3;
const SLOTS: u32 = 500;

/// Builds a random catalog on `TAPES` tapes x `SLOTS` slots (1 MB
/// blocks), each block with the requested number of copies at random
/// slots. Returns `None` when the placement stream runs dry.
#[allow(clippy::cast_possible_truncation)] // at most 8 blocks per generated case
fn random_catalog(
    placements: &[(u16, u32)],
    copies_per_block: &[usize],
) -> Option<(Catalog, Vec<BlockId>)> {
    let g = JukeboxGeometry::new(TAPES, u64::from(SLOTS));
    let blocks = copies_per_block.len() as u32;
    let mut builder = Catalog::builder(g, BlockSize::from_mb(1), blocks, 0);
    let mut it = placements.iter();
    let mut ids = Vec::new();
    for (b, &copies) in copies_per_block.iter().enumerate() {
        let id = BlockId(b as u32);
        ids.push(id);
        let mut placed_tapes = Vec::new();
        let mut placed = 0;
        while placed < copies {
            let &(t, s) = it.next()?;
            let tape = TapeId(t % TAPES);
            if placed_tapes.contains(&tape) {
                continue;
            }
            let addr = PhysicalAddr {
                tape,
                slot: SlotIndex(s % SLOTS),
            };
            if builder.place(id, addr).is_ok() {
                placed_tapes.push(tape);
                placed += 1;
            }
        }
    }
    builder.build().ok().map(|c| (c, ids))
}

fn one_request_per_block(ids: &[BlockId]) -> Vec<Request> {
    ids.iter()
        .enumerate()
        .map(|(i, &b)| Request {
            id: RequestId(i as u64),
            block: b,
            arrival: SimTime::ZERO,
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    #[test]
    fn cached_envelope_equals_fresh_recomputation(
        placements in proptest::collection::vec((0u16..TAPES, 0u32..SLOTS), 60),
        copies in proptest::collection::vec(1usize..=3, 2..=8),
        mounted in proptest::option::of(0u16..TAPES),
        head in 0u32..SLOTS,
    ) {
        let Some((catalog, ids)) = random_catalog(&placements, &copies) else {
            return Ok(());
        };
        let timing = TimingModel::paper_default();
        let view = JukeboxView {
            catalog: &catalog,
            timing: &timing,
            mounted: mounted.map(TapeId),
            head: SlotIndex(head),
            now: SimTime::ZERO,
            unavailable: &[],
            offline: &[],
        };
        let pending = one_request_per_block(&ids);
        let cached = compute_upper_envelope(&view, &pending);
        let fresh = compute_upper_envelope_fresh(&view, &pending);
        prop_assert_eq!(cached, fresh);
    }

    #[test]
    fn cached_prefix_costs_match_fresh_prefix_cost(
        placements in proptest::collection::vec((0u16..TAPES, 0u32..SLOTS), 60),
        copies in proptest::collection::vec(1usize..=3, 2..=8),
        mounted in proptest::option::of(0u16..TAPES),
    ) {
        let Some((catalog, ids)) = random_catalog(&placements, &copies) else {
            return Ok(());
        };
        let timing = TimingModel::paper_default();
        let view = JukeboxView {
            catalog: &catalog,
            timing: &timing,
            mounted: mounted.map(TapeId),
            head: SlotIndex(0),
            now: SimTime::ZERO,
            unavailable: &[],
            offline: &[],
        };
        let pending = one_request_per_block(&ids);
        // Drive the cache exactly as the extension loop does: from the
        // post-absorption envelope and assignment.
        let (env, assigned) = envelope_after_absorb(&view, &pending);
        let mut cache = ExtensionCache::new(TAPES as usize);
        for t in 0..TAPES {
            let tape = TapeId(t);
            cache.refresh(&view, &pending, &assigned, &env, tape);
            prop_assert_eq!(cache.start(tape), SlotIndex(env[tape.index()]));
            let slots = cache.slots(tape).to_vec();
            let costs = cache.prefix_costs(tape).to_vec();
            prop_assert_eq!(slots.len(), costs.len());
            for k in 0..slots.len() {
                let expect =
                    cache.switch_charge(tape) + prefix_cost(&view, cache.start(tape), &slots[..=k]);
                prop_assert_eq!(
                    costs[k],
                    expect,
                    "tape {} prefix {} diverges from fresh recomputation",
                    t,
                    k
                );
            }
        }
    }
}

#[test]
fn refresh_after_invalidate_reflects_new_assignments() {
    // Two replicated blocks on tape 1; assigning one elsewhere and
    // invalidating must shrink tape 1's extension list, while a refresh
    // without invalidation keeps serving the cached (stale) list — the
    // contract the extension loop relies on.
    let g = JukeboxGeometry::new(TAPES, u64::from(SLOTS));
    let mut b = Catalog::builder(g, BlockSize::from_mb(1), 2, 0);
    let place = |b: &mut tapesim_layout::CatalogBuilder, blk: u32, t: u16, s: u32| {
        b.place(
            BlockId(blk),
            PhysicalAddr {
                tape: TapeId(t),
                slot: SlotIndex(s),
            },
        )
        .unwrap();
    };
    place(&mut b, 0, 0, 10);
    place(&mut b, 0, 1, 50);
    place(&mut b, 1, 0, 300);
    place(&mut b, 1, 1, 70);
    let catalog = b.build().unwrap();
    let timing = TimingModel::paper_default();
    let view = JukeboxView {
        catalog: &catalog,
        timing: &timing,
        mounted: None,
        head: SlotIndex(0),
        now: SimTime::ZERO,
        unavailable: &[],
        offline: &[],
    };
    let pending = one_request_per_block(&[BlockId(0), BlockId(1)]);
    let env = vec![0, 0, 0];
    let mut assigned = vec![None, None];
    let mut cache = ExtensionCache::new(TAPES as usize);
    cache.refresh(&view, &pending, &assigned, &env, TapeId(1));
    assert_eq!(cache.slots(TapeId(1)), &[SlotIndex(50), SlotIndex(70)]);

    assigned[0] = Some(TapeId(0));
    cache.refresh(&view, &pending, &assigned, &env, TapeId(1));
    assert_eq!(
        cache.slots(TapeId(1)),
        &[SlotIndex(50), SlotIndex(70)],
        "without invalidation the cached list is served as-is"
    );

    cache.invalidate(TapeId(1));
    cache.refresh(&view, &pending, &assigned, &env, TapeId(1));
    assert_eq!(cache.slots(TapeId(1)), &[SlotIndex(70)]);
    assert_eq!(cache.prefix_costs(TapeId(1)).len(), 1);
    assert_eq!(
        cache.prefix_costs(TapeId(1))[0],
        cache.switch_charge(TapeId(1)) + prefix_cost(&view, SlotIndex(0), &[SlotIndex(70)])
    );
}
