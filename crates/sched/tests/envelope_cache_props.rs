//! Property suite for the envelope extension cache (`ExtensionCache`):
//! the cached driver must be bit-identical to a fresh recomputation.
//!
//! Two properties on random catalogs and request queues:
//!
//! 1. `compute_upper_envelope` (cached extension lists, invalidation on
//!    change) and `compute_upper_envelope_fresh` (rebuild everything on
//!    every iteration) produce identical envelopes, assignments, and
//!    per-tape counts.
//! 2. Every cached per-prefix cost equals the tape-switch charge plus an
//!    independent `prefix_cost` recomputation over the cached slot list —
//!    exact `Micros` equality, no tolerance.
//! 3. The persistent `EnvelopeIndex`, delta-updated through a random
//!    sequence of arrivals, completions, cancellations and tape
//!    availability flips, drives `compute_upper_envelope_indexed` to the
//!    same envelope/assignment/counts as both scan-based drivers at
//!    every step — exact equality, no tolerance.

use proptest::prelude::*;

use tapesim_layout::{BlockId, Catalog};
use tapesim_model::{
    BlockSize, JukeboxGeometry, PhysicalAddr, SimTime, SlotIndex, TapeId, TimingModel,
};
use tapesim_sched::envelope::envelope_after_absorb;
use tapesim_sched::{
    compute_upper_envelope, compute_upper_envelope_fresh, compute_upper_envelope_indexed,
    prefix_cost, EnvelopeIndex, ExtensionCache, JukeboxView,
};
use tapesim_workload::{Request, RequestId};

const TAPES: u16 = 3;
const SLOTS: u32 = 500;

/// Builds a random catalog on `TAPES` tapes x `SLOTS` slots (1 MB
/// blocks), each block with the requested number of copies at random
/// slots. Returns `None` when the placement stream runs dry.
#[allow(clippy::cast_possible_truncation)] // at most 8 blocks per generated case
fn random_catalog(
    placements: &[(u16, u32)],
    copies_per_block: &[usize],
) -> Option<(Catalog, Vec<BlockId>)> {
    let g = JukeboxGeometry::new(TAPES, u64::from(SLOTS));
    let blocks = copies_per_block.len() as u32;
    let mut builder = Catalog::builder(g, BlockSize::from_mb(1), blocks, 0);
    let mut it = placements.iter();
    let mut ids = Vec::new();
    for (b, &copies) in copies_per_block.iter().enumerate() {
        let id = BlockId(b as u32);
        ids.push(id);
        let mut placed_tapes = Vec::new();
        let mut placed = 0;
        while placed < copies {
            let &(t, s) = it.next()?;
            let tape = TapeId(t % TAPES);
            if placed_tapes.contains(&tape) {
                continue;
            }
            let addr = PhysicalAddr {
                tape,
                slot: SlotIndex(s % SLOTS),
            };
            if builder.place(id, addr).is_ok() {
                placed_tapes.push(tape);
                placed += 1;
            }
        }
    }
    builder.build().ok().map(|c| (c, ids))
}

fn one_request_per_block(ids: &[BlockId]) -> Vec<Request> {
    ids.iter()
        .enumerate()
        .map(|(i, &b)| Request {
            id: RequestId(i as u64),
            block: b,
            arrival: SimTime::ZERO,
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    #[test]
    fn cached_envelope_equals_fresh_recomputation(
        placements in proptest::collection::vec((0u16..TAPES, 0u32..SLOTS), 60),
        copies in proptest::collection::vec(1usize..=3, 2..=8),
        mounted in proptest::option::of(0u16..TAPES),
        head in 0u32..SLOTS,
    ) {
        let Some((catalog, ids)) = random_catalog(&placements, &copies) else {
            return Ok(());
        };
        let timing = TimingModel::paper_default();
        let view = JukeboxView {
            catalog: &catalog,
            timing: &timing,
            mounted: mounted.map(TapeId),
            head: SlotIndex(head),
            now: SimTime::ZERO,
            unavailable: &[],
            offline: &[],
            fleet: tapesim_sched::FleetView::SINGLE,
        };
        let pending = one_request_per_block(&ids);
        let cached = compute_upper_envelope(&view, &pending);
        let fresh = compute_upper_envelope_fresh(&view, &pending);
        prop_assert_eq!(cached, fresh);
    }

    #[test]
    fn cached_prefix_costs_match_fresh_prefix_cost(
        placements in proptest::collection::vec((0u16..TAPES, 0u32..SLOTS), 60),
        copies in proptest::collection::vec(1usize..=3, 2..=8),
        mounted in proptest::option::of(0u16..TAPES),
    ) {
        let Some((catalog, ids)) = random_catalog(&placements, &copies) else {
            return Ok(());
        };
        let timing = TimingModel::paper_default();
        let view = JukeboxView {
            catalog: &catalog,
            timing: &timing,
            mounted: mounted.map(TapeId),
            head: SlotIndex(0),
            now: SimTime::ZERO,
            unavailable: &[],
            offline: &[],
            fleet: tapesim_sched::FleetView::SINGLE,
        };
        let pending = one_request_per_block(&ids);
        // Drive the cache exactly as the extension loop does: from the
        // post-absorption envelope and assignment.
        let (env, assigned) = envelope_after_absorb(&view, &pending);
        let mut cache = ExtensionCache::new(TAPES as usize);
        for t in 0..TAPES {
            let tape = TapeId(t);
            cache.refresh(&view, &pending, &assigned, &env, tape);
            prop_assert_eq!(cache.start(tape), SlotIndex(env[tape.index()]));
            let slots = cache.slots(tape).to_vec();
            let costs = cache.prefix_costs(tape).to_vec();
            prop_assert_eq!(slots.len(), costs.len());
            for k in 0..slots.len() {
                let expect =
                    cache.switch_charge(tape) + prefix_cost(&view, cache.start(tape), &slots[..=k]);
                prop_assert_eq!(
                    costs[k],
                    expect,
                    "tape {} prefix {} diverges from fresh recomputation",
                    t,
                    k
                );
            }
        }
    }

    /// Property 3: a persistent index delta-updated through membership
    /// churn (arrivals, completions/cancels, fault/fail-back availability
    /// flips) matches a from-scratch computation at every step.
    #[test]
    fn indexed_envelope_equals_fresh_across_membership_churn(
        placements in proptest::collection::vec((0u16..TAPES, 0u32..SLOTS), 80),
        copies in proptest::collection::vec(1usize..=3, 3..=8),
        mounted in proptest::option::of(0u16..TAPES),
        head in 0u32..SLOTS,
        ops in proptest::collection::vec((0u16..4, 0u32..1000), 1..40),
    ) {
        let Some((catalog, ids)) = random_catalog(&placements, &copies) else {
            return Ok(());
        };
        let timing = TimingModel::paper_default();
        let mounted = mounted.map(TapeId);
        let mut live: Vec<Request> = Vec::new();
        let mut next_id: u64 = 0;
        let mut unavailable: Vec<TapeId> = Vec::new();
        let mut index = EnvelopeIndex::default();
        for &(kind, payload) in &ops {
            match kind {
                // Arrival (twice as likely as the other events).
                0 | 3 => {
                    let block = ids[payload as usize % ids.len()];
                    live.push(Request {
                        id: RequestId(next_id),
                        block,
                        arrival: SimTime::ZERO,
                    });
                    next_id += 1;
                }
                // Completion or cancellation: one request leaves.
                1 => {
                    if !live.is_empty() {
                        live.remove(payload as usize % live.len());
                    }
                }
                // Fault or fail-back: flip one tape's availability (the
                // mounted tape stays available, as in the simulator).
                2 => {
                    let tape =
                        TapeId(u16::try_from(payload % u32::from(TAPES)).expect("reduced mod TAPES"));
                    if mounted != Some(tape) {
                        if let Some(p) = unavailable.iter().position(|&t| t == tape) {
                            unavailable.remove(p);
                        } else {
                            unavailable.push(tape);
                        }
                    }
                }
                _ => unreachable!(),
            }
            let view = JukeboxView {
                catalog: &catalog,
                timing: &timing,
                mounted,
                head: SlotIndex(head),
                now: SimTime::ZERO,
                unavailable: &unavailable,
                offline: &[],
                fleet: tapesim_sched::FleetView::SINGLE,
            };
            // The same availability filter a major reschedule applies.
            let snapshot: Vec<Request> = live
                .iter()
                .filter(|r| {
                    catalog
                        .replicas(r.block)
                        .iter()
                        .any(|a| view.is_available(a.tape))
                })
                .copied()
                .collect();
            index.sync(&catalog, &snapshot);
            prop_assert_eq!(index.len(), snapshot.len());
            if snapshot.is_empty() {
                continue;
            }
            let indexed = compute_upper_envelope_indexed(&view, &snapshot, &index);
            let fresh = compute_upper_envelope_fresh(&view, &snapshot);
            let cached = compute_upper_envelope(&view, &snapshot);
            prop_assert_eq!(&indexed, &fresh);
            prop_assert_eq!(&indexed, &cached);
        }
    }
}

#[test]
fn index_pin_refcounts_survive_duplicate_requests() {
    // Two requests for the same non-replicated block: removing one must
    // keep the pin, removing both must drop it. Asserted through the
    // computed envelope against the fresh driver.
    let g = JukeboxGeometry::new(TAPES, u64::from(SLOTS));
    let mut b = Catalog::builder(g, BlockSize::from_mb(1), 2, 0);
    b.place(
        BlockId(0),
        PhysicalAddr {
            tape: TapeId(0),
            slot: SlotIndex(40),
        },
    )
    .unwrap();
    b.place(
        BlockId(1),
        PhysicalAddr {
            tape: TapeId(1),
            slot: SlotIndex(7),
        },
    )
    .unwrap();
    let catalog = b.build().unwrap();
    let timing = TimingModel::paper_default();
    let view = JukeboxView {
        catalog: &catalog,
        timing: &timing,
        mounted: None,
        head: SlotIndex(0),
        now: SimTime::ZERO,
        unavailable: &[],
        offline: &[],
        fleet: tapesim_sched::FleetView::SINGLE,
    };
    let req = |id: u64, blk: u32| Request {
        id: RequestId(id),
        block: BlockId(blk),
        arrival: SimTime::ZERO,
    };
    let mut index = EnvelopeIndex::default();

    let both = vec![req(0, 0), req(1, 0), req(2, 1)];
    index.sync(&catalog, &both);
    let upper = compute_upper_envelope_indexed(&view, &both, &index);
    assert_eq!(upper.env, vec![41, 8, 0]);

    let one = vec![req(1, 0), req(2, 1)];
    index.sync(&catalog, &one);
    assert_eq!(index.len(), 2);
    let upper = compute_upper_envelope_indexed(&view, &one, &index);
    assert_eq!(upper.env, vec![41, 8, 0]);

    let none = vec![req(2, 1)];
    index.sync(&catalog, &none);
    let upper = compute_upper_envelope_indexed(&view, &none, &index);
    assert_eq!(upper.env, vec![0, 8, 0]);
    assert_eq!(upper, compute_upper_envelope_fresh(&view, &none));
}

#[test]
fn index_sync_treats_id_reuse_with_new_fields_as_remove_plus_add() {
    // A recycled request id pointing at a different block must not leave
    // stale entries behind: the equality diff treats it as departure +
    // arrival.
    let g = JukeboxGeometry::new(TAPES, u64::from(SLOTS));
    let mut b = Catalog::builder(g, BlockSize::from_mb(1), 2, 0);
    b.place(
        BlockId(0),
        PhysicalAddr {
            tape: TapeId(0),
            slot: SlotIndex(100),
        },
    )
    .unwrap();
    b.place(
        BlockId(1),
        PhysicalAddr {
            tape: TapeId(2),
            slot: SlotIndex(5),
        },
    )
    .unwrap();
    let catalog = b.build().unwrap();
    let timing = TimingModel::paper_default();
    let view = JukeboxView {
        catalog: &catalog,
        timing: &timing,
        mounted: None,
        head: SlotIndex(0),
        now: SimTime::ZERO,
        unavailable: &[],
        offline: &[],
        fleet: tapesim_sched::FleetView::SINGLE,
    };
    let mut index = EnvelopeIndex::default();
    let first = vec![Request {
        id: RequestId(9),
        block: BlockId(0),
        arrival: SimTime::ZERO,
    }];
    index.sync(&catalog, &first);
    let upper = compute_upper_envelope_indexed(&view, &first, &index);
    assert_eq!(upper.env, vec![101, 0, 0]);

    let second = vec![Request {
        id: RequestId(9),
        block: BlockId(1),
        arrival: SimTime::ZERO,
    }];
    index.sync(&catalog, &second);
    assert_eq!(index.len(), 1);
    let upper = compute_upper_envelope_indexed(&view, &second, &index);
    assert_eq!(upper.env, vec![0, 0, 6]);
    assert_eq!(upper, compute_upper_envelope_fresh(&view, &second));
}

#[test]
fn refresh_after_invalidate_reflects_new_assignments() {
    // Two replicated blocks on tape 1; assigning one elsewhere and
    // invalidating must shrink tape 1's extension list, while a refresh
    // without invalidation keeps serving the cached (stale) list — the
    // contract the extension loop relies on.
    let g = JukeboxGeometry::new(TAPES, u64::from(SLOTS));
    let mut b = Catalog::builder(g, BlockSize::from_mb(1), 2, 0);
    let place = |b: &mut tapesim_layout::CatalogBuilder, blk: u32, t: u16, s: u32| {
        b.place(
            BlockId(blk),
            PhysicalAddr {
                tape: TapeId(t),
                slot: SlotIndex(s),
            },
        )
        .unwrap();
    };
    place(&mut b, 0, 0, 10);
    place(&mut b, 0, 1, 50);
    place(&mut b, 1, 0, 300);
    place(&mut b, 1, 1, 70);
    let catalog = b.build().unwrap();
    let timing = TimingModel::paper_default();
    let view = JukeboxView {
        catalog: &catalog,
        timing: &timing,
        mounted: None,
        head: SlotIndex(0),
        now: SimTime::ZERO,
        unavailable: &[],
        offline: &[],
        fleet: tapesim_sched::FleetView::SINGLE,
    };
    let pending = one_request_per_block(&[BlockId(0), BlockId(1)]);
    let env = vec![0, 0, 0];
    let mut assigned = vec![None, None];
    let mut cache = ExtensionCache::new(TAPES as usize);
    cache.refresh(&view, &pending, &assigned, &env, TapeId(1));
    assert_eq!(cache.slots(TapeId(1)), &[SlotIndex(50), SlotIndex(70)]);

    assigned[0] = Some(TapeId(0));
    cache.refresh(&view, &pending, &assigned, &env, TapeId(1));
    assert_eq!(
        cache.slots(TapeId(1)),
        &[SlotIndex(50), SlotIndex(70)],
        "without invalidation the cached list is served as-is"
    );

    cache.invalidate(TapeId(1));
    cache.refresh(&view, &pending, &assigned, &env, TapeId(1));
    assert_eq!(cache.slots(TapeId(1)), &[SlotIndex(70)]);
    assert_eq!(cache.prefix_costs(TapeId(1)).len(), 1);
    assert_eq!(
        cache.prefix_costs(TapeId(1))[0],
        cache.switch_charge(TapeId(1)) + prefix_cost(&view, SlotIndex(0), &[SlotIndex(70)])
    );
}
