//! Tape selection policies (Section 3.1).
//!
//! The static and dynamic algorithm families differ only in the criterion
//! by which the major rescheduler selects the next tape:
//!
//! * **round robin** — the next tape in jukebox order after the currently
//!   mounted tape that has a pending request;
//! * **max requests** — a tape with the maximal number of pending
//!   requests, ties broken by preferring the first in jukebox order
//!   starting at the currently mounted tape;
//! * **max bandwidth** — like max requests, but by effective bandwidth;
//! * **oldest request, max requests** — among the tapes that can satisfy
//!   the oldest request in the system, choose by max requests;
//! * **oldest request, max bandwidth** — likewise by max bandwidth.
#![allow(clippy::cast_precision_loss)] // queue lengths stay far below 2^53

use tapesim_model::TapeId;
use tapesim_workload::Request;

use crate::api::{JukeboxView, PendingList};
use crate::cost::{
    candidates_for_all_tapes, counts_for_all_tapes, effective_bandwidth, TapeCandidate,
};

/// The five tape-selection policies of Section 3.1.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum TapeSelectPolicy {
    /// Next tape in jukebox order with a pending request.
    RoundRobin,
    /// Tape with the most pending requests.
    MaxRequests,
    /// Tape with the highest effective bandwidth.
    MaxBandwidth,
    /// Tape satisfying the oldest request, by max requests.
    OldestMaxRequests,
    /// Tape satisfying the oldest request, by max bandwidth.
    OldestMaxBandwidth,
}

impl TapeSelectPolicy {
    /// All five policies, for sweeps over the algorithm family.
    pub const ALL: [TapeSelectPolicy; 5] = [
        TapeSelectPolicy::RoundRobin,
        TapeSelectPolicy::MaxRequests,
        TapeSelectPolicy::MaxBandwidth,
        TapeSelectPolicy::OldestMaxRequests,
        TapeSelectPolicy::OldestMaxBandwidth,
    ];

    /// Stable display name.
    pub fn name(self) -> &'static str {
        match self {
            TapeSelectPolicy::RoundRobin => "round-robin",
            TapeSelectPolicy::MaxRequests => "max-requests",
            TapeSelectPolicy::MaxBandwidth => "max-bandwidth",
            TapeSelectPolicy::OldestMaxRequests => "oldest/max-requests",
            TapeSelectPolicy::OldestMaxBandwidth => "oldest/max-bandwidth",
        }
    }

    /// Selects the tape to service next, or `None` when the pending list
    /// is empty.
    pub fn select(self, view: &JukeboxView<'_>, pending: &PendingList) -> Option<TapeId> {
        if pending.is_empty() {
            return None;
        }
        let geometry = view.catalog.geometry();
        // The reference tape for "jukebox order starting at the currently
        // mounted tape".
        let anchor = view.mounted.unwrap_or(TapeId(0));

        match self {
            TapeSelectPolicy::RoundRobin => {
                // Scan mounted+1, mounted+2, ..., wrapping, ending at the
                // mounted tape itself. Only "has a pending request" is
                // needed, so skip the sorted candidate slot lists.
                let counts = counts_for_all_tapes(view.catalog, pending);
                let t = geometry.tapes;
                (1..=t)
                    .map(|i| TapeId((anchor.0 + i) % t))
                    .find(|&tape| view.is_available(tape) && counts[tape.index()] > 0)
            }
            TapeSelectPolicy::MaxRequests => best_by_count(view, pending, anchor, None),
            TapeSelectPolicy::MaxBandwidth => best_by(view, pending, anchor, None, |v, c| {
                effective_bandwidth(v, c)
            }),
            TapeSelectPolicy::OldestMaxRequests => {
                let eligible = oldest_eligible(view, pending)?;
                best_by_count(view, pending, anchor, Some(&eligible))
            }
            TapeSelectPolicy::OldestMaxBandwidth => {
                let eligible = oldest_eligible(view, pending)?;
                best_by(view, pending, anchor, Some(&eligible), |v, c| {
                    effective_bandwidth(v, c)
                })
            }
        }
    }
}

/// The tapes eligible to serve under the "oldest request" policies:
/// normally the replica tapes of the oldest pending request. When fault
/// injection has taken *every* copy of the oldest request offline, the
/// policies would otherwise deadlock (no tape can ever be selected), so
/// they fail over to the oldest pending request that still has a copy on
/// a non-offline tape; the stranded request stays pending until a repair
/// brings a copy back. With no offline tapes — every fault-free
/// configuration — this is exactly the replica set of the oldest request.
fn oldest_eligible(view: &JukeboxView<'_>, pending: &PendingList) -> Option<Vec<TapeId>> {
    let replica_tapes = |r: &Request| -> Vec<TapeId> {
        view.catalog
            .replicas(r.block)
            .iter()
            .map(|a| a.tape)
            .collect()
    };
    let oldest = pending.oldest()?;
    let tapes = replica_tapes(oldest);
    if view.offline.is_empty() || tapes.iter().any(|&t| !view.is_offline(t)) {
        return Some(tapes);
    }
    pending
        .iter()
        .find(|r| {
            view.catalog
                .replicas_of(r.block, view.offline)
                .next()
                .is_some()
        })
        .map(replica_tapes)
}

/// Picks the tape maximizing `score`, breaking ties by the first tape in
/// jukebox order starting at `anchor`. Restricting to `eligible` tapes
/// when given.
/// [`best_by`] specialized to the count-scored policies: the score is the
/// pending-request count, so the per-tape sorted slot lists are never
/// built. Selection and tie-breaking are identical to scoring a full
/// candidate with `request_count as f64`.
fn best_by_count(
    view: &JukeboxView<'_>,
    pending: &PendingList,
    anchor: TapeId,
    eligible: Option<&[TapeId]>,
) -> Option<TapeId> {
    let geometry = view.catalog.geometry();
    let counts = counts_for_all_tapes(view.catalog, pending);
    let mut best: Option<(f64, u16, TapeId)> = None;
    for tape in geometry.tape_ids() {
        if !view.is_available(tape) {
            continue;
        }
        if let Some(list) = eligible {
            if !list.contains(&tape) {
                continue;
            }
        }
        if counts[tape.index()] == 0 {
            continue;
        }
        let s = counts[tape.index()] as f64;
        let dist = geometry.circular_distance(anchor, tape);
        let better = match &best {
            None => true,
            Some((bs, bd, _)) => s > *bs || (s == *bs && dist < *bd),
        };
        if better {
            best = Some((s, dist, tape));
        }
    }
    best.map(|(_, _, t)| t)
}

fn best_by(
    view: &JukeboxView<'_>,
    pending: &PendingList,
    anchor: TapeId,
    eligible: Option<&[TapeId]>,
    score: impl Fn(&JukeboxView<'_>, &TapeCandidate) -> f64,
) -> Option<TapeId> {
    let geometry = view.catalog.geometry();
    let candidates = candidates_for_all_tapes(view.catalog, pending);
    let mut best: Option<(f64, u16, TapeId)> = None;
    for tape in geometry.tape_ids() {
        if !view.is_available(tape) {
            continue;
        }
        if let Some(list) = eligible {
            if !list.contains(&tape) {
                continue;
            }
        }
        let Some(cand) = &candidates[tape.index()] else {
            continue;
        };
        let s = score(view, cand);
        let dist = geometry.circular_distance(anchor, tape);
        let better = match &best {
            None => true,
            Some((bs, bd, _)) => s > *bs || (s == *bs && dist < *bd),
        };
        if better {
            best = Some((s, dist, tape));
        }
    }
    best.map(|(_, _, t)| t)
}

#[cfg(test)]
mod tests {
    use super::*;
    use tapesim_layout::{BlockId, Catalog};
    use tapesim_model::{
        BlockSize, JukeboxGeometry, PhysicalAddr, SimTime, SlotIndex, TimingModel,
    };
    use tapesim_workload::{Request, RequestId};

    /// 4 tapes x 100 slots (1 MB blocks). Block i lives on tape i % 4 at
    /// slot 10 * (i / 4) + 5.
    fn catalog() -> Catalog {
        let g = JukeboxGeometry::new(4, 100);
        let mut b = Catalog::builder(g, BlockSize::from_mb(1), 40, 0);
        for i in 0..40u32 {
            b.place(
                BlockId(i),
                PhysicalAddr {
                    tape: TapeId((i % 4) as u16),
                    slot: SlotIndex(10 * (i / 4) + 5),
                },
            )
            .unwrap();
        }
        b.build().unwrap()
    }

    fn req(id: u64, blockid: u32) -> Request {
        Request {
            id: RequestId(id),
            block: BlockId(blockid),
            arrival: SimTime::ZERO,
        }
    }

    fn view<'a>(
        catalog: &'a Catalog,
        timing: &'a TimingModel,
        mounted: Option<TapeId>,
    ) -> JukeboxView<'a> {
        JukeboxView {
            catalog,
            timing,
            mounted,
            head: SlotIndex(0),
            now: SimTime::ZERO,
            unavailable: &[],
            offline: &[],
            fleet: crate::api::FleetView::SINGLE,
        }
    }

    #[test]
    fn empty_pending_selects_nothing() {
        let c = catalog();
        let t = TimingModel::paper_default();
        let v = view(&c, &t, None);
        let p = PendingList::new();
        for policy in TapeSelectPolicy::ALL {
            assert_eq!(policy.select(&v, &p), None, "{}", policy.name());
        }
    }

    #[test]
    fn round_robin_scans_after_mounted() {
        let c = catalog();
        let t = TimingModel::paper_default();
        // Requests on tapes 1 and 3.
        let p: PendingList = vec![req(0, 1), req(1, 3)].into_iter().collect();
        let v = view(&c, &t, Some(TapeId(1)));
        // After tape 1 comes 2 (nothing), then 3 (has a request).
        assert_eq!(TapeSelectPolicy::RoundRobin.select(&v, &p), Some(TapeId(3)));
        // After tape 3, wraps to 0 (nothing), then 1.
        let v3 = view(&c, &t, Some(TapeId(3)));
        assert_eq!(
            TapeSelectPolicy::RoundRobin.select(&v3, &p),
            Some(TapeId(1))
        );
    }

    #[test]
    fn round_robin_can_reselect_mounted_as_last_resort() {
        let c = catalog();
        let t = TimingModel::paper_default();
        let p: PendingList = vec![req(0, 2)].into_iter().collect();
        let v = view(&c, &t, Some(TapeId(2)));
        assert_eq!(TapeSelectPolicy::RoundRobin.select(&v, &p), Some(TapeId(2)));
    }

    #[test]
    fn max_requests_picks_heaviest_tape() {
        let c = catalog();
        let t = TimingModel::paper_default();
        // Three requests on tape 2, one on tape 0.
        let p: PendingList = vec![req(0, 0), req(1, 2), req(2, 6), req(3, 10)]
            .into_iter()
            .collect();
        let v = view(&c, &t, None);
        assert_eq!(
            TapeSelectPolicy::MaxRequests.select(&v, &p),
            Some(TapeId(2))
        );
    }

    #[test]
    fn max_requests_tie_breaks_toward_mounted() {
        let c = catalog();
        let t = TimingModel::paper_default();
        // One request each on tapes 0 and 3.
        let p: PendingList = vec![req(0, 0), req(1, 3)].into_iter().collect();
        // Mounted tape 3: distance(3->3)=0 beats distance(3->0)=1.
        let v = view(&c, &t, Some(TapeId(3)));
        assert_eq!(
            TapeSelectPolicy::MaxRequests.select(&v, &p),
            Some(TapeId(3))
        );
        // Mounted tape 1: distance(1->3)=2 beats... distance(1->0)=3; so 3.
        let v1 = view(&c, &t, Some(TapeId(1)));
        assert_eq!(
            TapeSelectPolicy::MaxRequests.select(&v1, &p),
            Some(TapeId(3))
        );
    }

    #[test]
    fn max_bandwidth_prefers_mounted_over_equal_work() {
        let c = catalog();
        let t = TimingModel::paper_default();
        // Identical work on tapes 0 and 1 (same slots), but tape 1 is
        // mounted, so it avoids the 81 s switch.
        let p: PendingList = vec![req(0, 0), req(1, 1)].into_iter().collect();
        let v = view(&c, &t, Some(TapeId(1)));
        assert_eq!(
            TapeSelectPolicy::MaxBandwidth.select(&v, &p),
            Some(TapeId(1))
        );
    }

    #[test]
    fn oldest_policies_restrict_to_tapes_with_oldest() {
        let c = catalog();
        let t = TimingModel::paper_default();
        // Oldest request (id 0) is on tape 1; tape 2 has more requests but
        // cannot satisfy the oldest.
        let p: PendingList = vec![req(0, 1), req(1, 2), req(2, 6), req(3, 10)]
            .into_iter()
            .collect();
        let v = view(&c, &t, None);
        assert_eq!(
            TapeSelectPolicy::OldestMaxRequests.select(&v, &p),
            Some(TapeId(1))
        );
        assert_eq!(
            TapeSelectPolicy::OldestMaxBandwidth.select(&v, &p),
            Some(TapeId(1))
        );
    }

    #[test]
    fn offline_tapes_are_never_selected() {
        let c = catalog();
        let t = TimingModel::paper_default();
        // Requests on tapes 1 and 3; tape 3 has more work but is offline.
        let p: PendingList = vec![req(0, 1), req(1, 3), req(2, 7), req(3, 11)]
            .into_iter()
            .collect();
        let offline = [TapeId(3)];
        let v = JukeboxView {
            offline: &offline,
            fleet: crate::api::FleetView::SINGLE,
            ..view(&c, &t, None)
        };
        for policy in TapeSelectPolicy::ALL {
            assert_eq!(policy.select(&v, &p), Some(TapeId(1)), "{}", policy.name());
        }
    }

    #[test]
    fn oldest_policies_fail_over_when_oldest_is_stranded() {
        let c = catalog();
        let t = TimingModel::paper_default();
        // Oldest request's only copy is on tape 1, which is offline. The
        // oldest policies must fall back to the next-oldest serviceable
        // request (block 2, on tape 2) instead of deadlocking.
        let p: PendingList = vec![req(0, 1), req(1, 2)].into_iter().collect();
        let offline = [TapeId(1)];
        let v = JukeboxView {
            offline: &offline,
            fleet: crate::api::FleetView::SINGLE,
            ..view(&c, &t, None)
        };
        assert_eq!(
            TapeSelectPolicy::OldestMaxRequests.select(&v, &p),
            Some(TapeId(2))
        );
        assert_eq!(
            TapeSelectPolicy::OldestMaxBandwidth.select(&v, &p),
            Some(TapeId(2))
        );
        // When every pending request is stranded, nothing is selected.
        let all_off = [TapeId(1), TapeId(2)];
        let v2 = JukeboxView {
            offline: &all_off,
            fleet: crate::api::FleetView::SINGLE,
            ..view(&c, &t, None)
        };
        assert_eq!(TapeSelectPolicy::OldestMaxRequests.select(&v2, &p), None);
    }

    #[test]
    fn policy_names_are_distinct() {
        let mut names: Vec<&str> = TapeSelectPolicy::ALL.iter().map(|p| p.name()).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), 5);
    }
}
