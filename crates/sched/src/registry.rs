//! A registry of every scheduling algorithm studied by the paper, for
//! experiment harnesses that sweep over algorithms.

use crate::api::Scheduler;
use crate::envelope::{EnvelopePolicy, EnvelopeScheduler};
use crate::families::{DynamicScheduler, StaticScheduler};
use crate::fifo::FifoScheduler;
use crate::select::TapeSelectPolicy;

/// Identifier of one of the fourteen algorithms: FIFO, five static, five
/// dynamic, and three envelope variants.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AlgorithmId {
    /// First-in first-out.
    Fifo,
    /// Static family member.
    Static(TapeSelectPolicy),
    /// Dynamic family member.
    Dynamic(TapeSelectPolicy),
    /// Envelope-extension variant.
    Envelope(EnvelopePolicy),
}

impl AlgorithmId {
    /// Every algorithm, in the order the paper introduces them.
    pub fn all() -> Vec<AlgorithmId> {
        let mut v = vec![AlgorithmId::Fifo];
        v.extend(TapeSelectPolicy::ALL.into_iter().map(AlgorithmId::Static));
        v.extend(TapeSelectPolicy::ALL.into_iter().map(AlgorithmId::Dynamic));
        v.extend(EnvelopePolicy::ALL.into_iter().map(AlgorithmId::Envelope));
        v
    }

    /// Stable display name, matching `Scheduler::name`.
    pub fn name(self) -> String {
        match self {
            AlgorithmId::Fifo => "fifo".to_string(),
            AlgorithmId::Static(p) => format!("static {}", p.name()),
            AlgorithmId::Dynamic(p) => format!("dynamic {}", p.name()),
            AlgorithmId::Envelope(p) => format!("envelope {}", p.name()),
        }
    }

    /// The paper's recommended default: max-bandwidth envelope, which
    /// degenerates to dynamic max-bandwidth when nothing is replicated
    /// (Section 4.6).
    pub fn paper_recommended() -> AlgorithmId {
        AlgorithmId::Envelope(EnvelopePolicy::MaxBandwidth)
    }

    /// Parses a name produced by [`AlgorithmId::name`].
    pub fn parse(s: &str) -> Option<AlgorithmId> {
        AlgorithmId::all().into_iter().find(|a| a.name() == s)
    }
}

/// Instantiates the scheduler for an algorithm id.
pub fn make_scheduler(id: AlgorithmId) -> Box<dyn Scheduler> {
    match id {
        AlgorithmId::Fifo => Box::new(FifoScheduler::new()),
        AlgorithmId::Static(p) => Box::new(StaticScheduler::new(p)),
        AlgorithmId::Dynamic(p) => Box::new(DynamicScheduler::new(p)),
        AlgorithmId::Envelope(p) => Box::new(EnvelopeScheduler::new(p)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_has_fourteen_algorithms() {
        let all = AlgorithmId::all();
        assert_eq!(all.len(), 14);
        let mut names: Vec<String> = all.iter().map(|a| a.name()).collect();
        names.sort();
        names.dedup();
        assert_eq!(names.len(), 14, "duplicate algorithm names");
    }

    #[test]
    fn names_round_trip_through_parse() {
        for id in AlgorithmId::all() {
            assert_eq!(AlgorithmId::parse(&id.name()), Some(id));
        }
        assert_eq!(AlgorithmId::parse("nonsense"), None);
    }

    #[test]
    fn schedulers_report_matching_names() {
        for id in AlgorithmId::all() {
            let s = make_scheduler(id);
            assert_eq!(s.name(), id.name());
        }
    }

    #[test]
    fn recommended_is_envelope_max_bandwidth() {
        assert_eq!(
            AlgorithmId::paper_recommended().name(),
            "envelope max-bandwidth"
        );
    }
}
