//! Schedule cost evaluation and effective bandwidth (Section 3.1).
//!
//! The *effective bandwidth* of a schedule is the total number of bytes
//! retrieved divided by the seconds needed to perform the retrieval. The
//! time includes tape-switch overhead (rewind, eject, robotic tape motion,
//! and load) and schedule execution time (locating and reading through the
//! blocks in the service list), computed with the Section 2.1 timing
//! model.

use tapesim_layout::Catalog;
use tapesim_model::{BlockSize, Micros, ReadContext, SlotIndex, TapeId, TimingModel};
use tapesim_workload::Request;

use crate::api::{JukeboxView, PendingList, ScheduledRead, ServiceList};

/// Time to execute a sequence of stops in the given order starting with
/// the head at `head`. Each stop is one locate (in whichever direction the
/// target lies) followed by one block read; after a read the head rests at
/// the following slot.
pub fn walk_cost(
    timing: &TimingModel,
    block: BlockSize,
    head: SlotIndex,
    stops: impl IntoIterator<Item = SlotIndex>,
) -> Micros {
    let mut pos = head;
    let mut total = Micros::ZERO;
    for s in stops {
        let (locate, dir) = timing.drive.locate(pos, s, block);
        let ctx = match dir {
            None => ReadContext::Streaming,
            Some(tapesim_model::LocateDirection::Forward) => ReadContext::AfterForwardLocate,
            Some(tapesim_model::LocateDirection::Reverse) => ReadContext::AfterReverseLocate,
        };
        total += locate + timing.drive.read_block(block, ctx);
        pos = s.next();
    }
    total
}

/// Time to execute a full service list (forward then reverse phase) from
/// `head`.
pub fn execution_cost(
    timing: &TimingModel,
    block: BlockSize,
    head: SlotIndex,
    list: &ServiceList,
) -> Micros {
    let stops = list
        .forward_stops()
        .map(|r| r.slot)
        .chain(list.reverse_stops().map(|r| r.slot));
    walk_cost(timing, block, head, stops)
}

/// The pending work a single tape could serve: the distinct slots to read
/// and the number of requests they satisfy.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TapeCandidate {
    /// The candidate tape.
    pub tape: TapeId,
    /// Distinct slots holding requested blocks, sorted ascending.
    pub slots: Vec<SlotIndex>,
    /// Number of pending requests a sweep over `slots` would satisfy.
    pub request_count: usize,
}

/// Collects the candidate work for `tape`: every pending request with a
/// copy on that tape. Returns `None` when the tape can satisfy nothing.
pub fn candidate_for_tape(
    catalog: &Catalog,
    pending: &PendingList,
    tape: TapeId,
) -> Option<TapeCandidate> {
    let mut slots: Vec<SlotIndex> = Vec::new();
    let mut request_count = 0usize;
    for r in pending.iter() {
        if let Some(addr) = catalog.copy_on_tape(r.block, tape) {
            slots.push(addr.slot);
            request_count += 1;
        }
    }
    if slots.is_empty() {
        return None;
    }
    slots.sort_unstable();
    slots.dedup();
    Some(TapeCandidate {
        tape,
        slots,
        request_count,
    })
}

/// Collects the candidate work for every tape in a single pass over the
/// pending list. Entry `t` is what [`candidate_for_tape`] would return
/// for tape `t` — a block has at most one copy per tape, so walking each
/// request's replica list visits exactly the `(request, tape)` pairs the
/// per-tape scans would, without rescanning the pending list per tape.
pub fn candidates_for_all_tapes(
    catalog: &Catalog,
    pending: &PendingList,
) -> Vec<Option<TapeCandidate>> {
    let tapes = catalog.geometry().tapes as usize;
    let mut slots: Vec<Vec<SlotIndex>> = vec![Vec::new(); tapes];
    let mut counts: Vec<usize> = vec![0; tapes];
    for r in pending.iter() {
        for a in catalog.replicas(r.block) {
            slots[a.tape.index()].push(a.slot);
            counts[a.tape.index()] += 1;
        }
    }
    catalog
        .geometry()
        .tape_ids()
        .zip(slots)
        .zip(counts)
        .map(|((tape, mut slots), request_count)| {
            if slots.is_empty() {
                return None;
            }
            slots.sort_unstable();
            slots.dedup();
            Some(TapeCandidate {
                tape,
                slots,
                request_count,
            })
        })
        .collect()
}

/// Per-tape pending-request counts in a single pass — entry `t` equals
/// the `request_count` of [`candidates_for_all_tapes`]'s entry `t` (0
/// where that entry is `None`). The count-scored selection policies and
/// availability probes need only this, not the sorted slot lists.
pub fn counts_for_all_tapes(catalog: &Catalog, pending: &PendingList) -> Vec<usize> {
    let mut counts: Vec<usize> = vec![0; catalog.geometry().tapes as usize];
    for r in pending.iter() {
        for a in catalog.replicas(r.block) {
            counts[a.tape.index()] += 1;
        }
    }
    counts
}

/// Cost to prepare `tape` for service: zero when it is already mounted,
/// otherwise rewind (if a tape is mounted) + eject + exchange + load,
/// plus the fleet terms — the wait for this library's robot pool and the
/// pass-through transfer if `tape` is homed in another library. Both
/// fleet terms are exactly zero under [`crate::FleetView::SINGLE`], so
/// single-library costs are unchanged from the pre-fleet model.
pub fn mount_cost(view: &JukeboxView<'_>, tape: TapeId) -> Micros {
    let fleet = view.fleet.robot_wait(view.now) + view.fleet.penalty(tape);
    match view.mounted {
        Some(m) if m == tape => Micros::ZERO,
        Some(_) => {
            view.timing
                .full_switch_from(view.head, view.catalog.block_size())
                + fleet
        }
        // Empty drive: the robot fetches the tape and the drive loads it.
        None => view.timing.robot.exchange() + view.timing.drive.load() + fleet,
    }
}

/// Head position a sweep over `tape` would start from.
pub fn start_head(view: &JukeboxView<'_>, tape: TapeId) -> SlotIndex {
    match view.mounted {
        Some(m) if m == tape => view.head,
        _ => SlotIndex::BOT,
    }
}

/// Effective bandwidth (bytes per second) of sweeping a candidate tape:
/// bytes of the distinct blocks read, divided by mount cost plus sweep
/// execution time.
pub fn effective_bandwidth(view: &JukeboxView<'_>, candidate: &TapeCandidate) -> f64 {
    let block = view.catalog.block_size();
    let cost = mount_cost(view, candidate.tape)
        + walk_cost(
            view.timing,
            block,
            start_head(view, candidate.tape),
            candidate.slots.iter().copied(),
        );
    let bytes = candidate.slots.len() as u64 * block.bytes();
    cost.bytes_per_sec(bytes)
}

/// Maps a set of requests (all with a copy on `tape`) to a forward-only
/// service list sorted by slot, merging requests that share a block.
pub fn forward_list_for(catalog: &Catalog, tape: TapeId, requests: Vec<Request>) -> ServiceList {
    let mut list = ServiceList::new();
    for r in requests {
        let addr = catalog
            .copy_on_tape(r.block, tape)
            // simlint: allow(panic, scheduler contract; the caller routed this request to a tape holding a copy)
            .expect("request scheduled on a tape without a copy");
        list.insert_forward(addr.slot, r);
    }
    list
}

/// Builds the service list for one sweep over `tape` starting with the
/// head at `head`: blocks at or ahead of the head form the forward phase
/// (ascending), blocks behind the head form the reverse phase (descending,
/// read on the way back). On a freshly mounted tape (`head` = 0) the sweep
/// is purely forward.
pub fn split_sweep(
    catalog: &Catalog,
    tape: TapeId,
    head: SlotIndex,
    requests: Vec<Request>,
) -> ServiceList {
    // Resolve each slot once, split around the head, then build each
    // phase by a stable sort and a linear group-by-slot: repeated
    // ordered inserts into a `VecDeque` are quadratic in sweep length.
    // The stable sort keeps requests at the same slot in input order,
    // exactly like appending to an existing stop did.
    let mut forward: Vec<(SlotIndex, Request)> = Vec::new();
    let mut reverse: Vec<(SlotIndex, Request)> = Vec::new();
    for r in requests {
        let addr = catalog
            .copy_on_tape(r.block, tape)
            // simlint: allow(panic, scheduler contract; the caller routed this request to a tape holding a copy)
            .expect("request scheduled on a tape without a copy");
        if addr.slot >= head {
            forward.push((addr.slot, r));
        } else {
            reverse.push((addr.slot, r));
        }
    }
    forward.sort_by_key(|&(slot, _)| slot);
    reverse.sort_by_key(|&(slot, _)| core::cmp::Reverse(slot));
    let group = |items: Vec<(SlotIndex, Request)>| -> Vec<ScheduledRead> {
        let mut out: Vec<ScheduledRead> = Vec::new();
        for (slot, r) in items {
            match out.last_mut() {
                Some(stop) if stop.slot == slot => stop.requests.push(r),
                _ => out.push(ScheduledRead {
                    slot,
                    requests: vec![r],
                }),
            }
        }
        out
    };
    ServiceList::from_parts(group(forward), group(reverse))
        // simlint: allow(panic, the grouped phases are strictly ordered by construction)
        .expect("grouped sweep phases are strictly ordered")
}

#[cfg(test)]
mod tests {
    use super::*;
    use tapesim_layout::{BlockId, Catalog};
    use tapesim_model::{JukeboxGeometry, PhysicalAddr, SimTime};
    use tapesim_workload::RequestId;

    fn block1() -> BlockSize {
        BlockSize::from_mb(1)
    }

    fn timing() -> TimingModel {
        TimingModel::paper_default()
    }

    /// 2 tapes x 100 slots of 1 MB; blocks 0..5 on tape 0 at slots
    /// 10,20,30,40,50; blocks 5..10 on tape 1 at slots 5,15,25,35,45.
    fn catalog() -> Catalog {
        let g = JukeboxGeometry::new(2, 100);
        let mut b = Catalog::builder(g, block1(), 10, 0);
        for i in 0..5u32 {
            b.place(
                BlockId(i),
                PhysicalAddr {
                    tape: TapeId(0),
                    slot: SlotIndex(10 + 10 * i),
                },
            )
            .unwrap();
        }
        for i in 0..5u32 {
            b.place(
                BlockId(5 + i),
                PhysicalAddr {
                    tape: TapeId(1),
                    slot: SlotIndex(5 + 10 * i),
                },
            )
            .unwrap();
        }
        b.build().unwrap()
    }

    fn req(id: u64, blockid: u32) -> Request {
        Request {
            id: RequestId(id),
            block: BlockId(blockid),
            arrival: SimTime::ZERO,
        }
    }

    #[test]
    fn walk_cost_single_forward_stop() {
        let t = timing();
        let b = block1();
        // Locate 0 -> 10 (10 MB, short fwd) + read after forward locate.
        let cost = walk_cost(&t, b, SlotIndex(0), [SlotIndex(10)]);
        let expect =
            Micros::from_secs_f64(4.834 + 0.378 * 10.0) + Micros::from_secs_f64(0.38 + 1.77);
        assert_eq!(cost, expect);
    }

    #[test]
    fn walk_cost_contiguous_blocks_stream() {
        let t = timing();
        let b = block1();
        // Reading slots 10 and 11: second read needs no locate.
        let cost = walk_cost(&t, b, SlotIndex(10), [SlotIndex(10), SlotIndex(11)]);
        let expect = Micros::from_secs_f64(1.77) + Micros::from_secs_f64(1.77);
        assert_eq!(cost, expect);
    }

    #[test]
    fn walk_cost_reverse_stop() {
        let t = timing();
        let b = block1();
        let cost = walk_cost(&t, b, SlotIndex(30), [SlotIndex(10)]);
        // 20 MB reverse (short) + read after reverse locate.
        let expect = Micros::from_secs_f64(4.99 + 0.328 * 20.0) + Micros::from_secs_f64(1.77);
        assert_eq!(cost, expect);
    }

    #[test]
    fn execution_cost_covers_both_phases() {
        let t = timing();
        let b = block1();
        let mut list = ServiceList::new();
        list.insert_forward(SlotIndex(10), req(0, 0));
        list.insert_forward(SlotIndex(20), req(1, 1));
        list.insert_reverse(SlotIndex(5), req(2, 2));
        let by_walk = walk_cost(
            &t,
            b,
            SlotIndex(0),
            [SlotIndex(10), SlotIndex(20), SlotIndex(5)],
        );
        assert_eq!(execution_cost(&t, b, SlotIndex(0), &list), by_walk);
    }

    #[test]
    fn candidate_collects_and_dedups() {
        let c = catalog();
        let mut p = PendingList::new();
        p.push(req(0, 0)); // tape 0 slot 10
        p.push(req(1, 6)); // tape 1 slot 15
        p.push(req(2, 0)); // duplicate block
        p.push(req(3, 3)); // tape 0 slot 40
        let cand = candidate_for_tape(&c, &p, TapeId(0)).unwrap();
        assert_eq!(cand.slots, vec![SlotIndex(10), SlotIndex(40)]);
        assert_eq!(cand.request_count, 3);
        let cand1 = candidate_for_tape(&c, &p, TapeId(1)).unwrap();
        assert_eq!(cand1.slots, vec![SlotIndex(15)]);
        assert_eq!(cand1.request_count, 1);
    }

    #[test]
    fn candidate_none_when_tape_has_nothing() {
        let c = catalog();
        let mut p = PendingList::new();
        p.push(req(0, 0));
        assert!(candidate_for_tape(&c, &p, TapeId(1)).is_none());
    }

    #[test]
    fn mount_cost_depends_on_state() {
        let c = catalog();
        let t = timing();
        let view = |mounted, head| JukeboxView {
            catalog: &c,
            timing: &t,
            mounted,
            head,
            now: SimTime::ZERO,
            unavailable: &[],
            offline: &[],
            fleet: crate::api::FleetView::SINGLE,
        };
        // Already mounted: free.
        assert_eq!(
            mount_cost(&view(Some(TapeId(0)), SlotIndex(7)), TapeId(0)),
            Micros::ZERO
        );
        // Other tape mounted at slot 7: rewind + 81 s.
        let v = view(Some(TapeId(1)), SlotIndex(7));
        let expect = t.full_switch_from(SlotIndex(7), c.block_size());
        assert_eq!(mount_cost(&v, TapeId(0)), expect);
        // Empty drive: exchange + load only.
        assert_eq!(
            mount_cost(&view(None, SlotIndex(0)), TapeId(0)),
            Micros::from_secs(62)
        );
    }

    #[test]
    fn effective_bandwidth_prefers_mounted_tape() {
        let c = catalog();
        let t = timing();
        let p: PendingList = vec![req(0, 0), req(1, 5)].into_iter().collect();
        let view = JukeboxView {
            catalog: &c,
            timing: &t,
            mounted: Some(TapeId(0)),
            head: SlotIndex(0),
            now: SimTime::ZERO,
            unavailable: &[],
            offline: &[],
            fleet: crate::api::FleetView::SINGLE,
        };
        let c0 = candidate_for_tape(&c, &p, TapeId(0)).unwrap();
        let c1 = candidate_for_tape(&c, &p, TapeId(1)).unwrap();
        // Same single-block work, but tape 1 needs a switch.
        assert!(effective_bandwidth(&view, &c0) > effective_bandwidth(&view, &c1));
    }

    #[test]
    fn forward_list_groups_same_block() {
        let c = catalog();
        let list = forward_list_for(&c, TapeId(0), vec![req(0, 3), req(1, 0), req(2, 3)]);
        let slots: Vec<u32> = list.forward_stops().map(|r| r.slot.0).collect();
        assert_eq!(slots, vec![10, 40]);
        assert_eq!(list.requests(), 3);
    }

    #[test]
    #[should_panic(expected = "without a copy")]
    fn forward_list_rejects_foreign_request() {
        let c = catalog();
        let _ = forward_list_for(&c, TapeId(0), vec![req(0, 7)]);
    }
}
