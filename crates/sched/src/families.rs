//! The static and dynamic algorithm families (Section 3.1).
//!
//! A *static* algorithm chooses a tape via its [`TapeSelectPolicy`] and
//! forms the service list by sorting all pending requests for that tape.
//! Newly arriving requests are always deferred to the pending list.
//!
//! The corresponding *dynamic* algorithm uses the same major rescheduler
//! but inserts arrivals for the current tape into the running sweep on the
//! fly, provided the requested block is ahead of the current position of
//! the tape head.

use tapesim_model::TapeId;
use tapesim_workload::Request;

use crate::api::{ArrivalOutcome, JukeboxView, PendingList, Scheduler, ServiceList, SweepPlan};
use crate::cost::{split_sweep, start_head};
use crate::select::TapeSelectPolicy;

/// Shared major rescheduler of the static/dynamic families: select a tape
/// by `policy`, extract every pending request with a copy on it, and sort
/// them by position into a sweep (a forward phase; when the selected tape
/// is already mounted mid-tape, requests behind the head are read in the
/// reverse phase on the way back).
fn family_major_reschedule(
    policy: TapeSelectPolicy,
    view: &JukeboxView<'_>,
    pending: &mut PendingList,
) -> Option<SweepPlan> {
    let tape = policy.select(view, pending)?;
    let requests = pending.extract(|r| view.catalog.copy_on_tape(r.block, tape).is_some());
    debug_assert!(!requests.is_empty(), "selected tape must have requests");
    Some(SweepPlan {
        tape,
        list: split_sweep(view.catalog, tape, start_head(view, tape), requests),
    })
}

/// A static scheduler: tape selection by policy, arrivals always deferred.
#[derive(Debug, Clone)]
pub struct StaticScheduler {
    policy: TapeSelectPolicy,
    name: String,
}

impl StaticScheduler {
    /// Creates a static scheduler with the given tape-selection policy.
    pub fn new(policy: TapeSelectPolicy) -> Self {
        StaticScheduler {
            policy,
            name: format!("static {}", policy.name()),
        }
    }

    /// The tape-selection policy.
    pub fn policy(&self) -> TapeSelectPolicy {
        self.policy
    }
}

impl Scheduler for StaticScheduler {
    fn name(&self) -> &str {
        &self.name
    }

    fn major_reschedule(
        &mut self,
        view: &JukeboxView<'_>,
        pending: &mut PendingList,
    ) -> Option<SweepPlan> {
        family_major_reschedule(self.policy, view, pending)
    }
    // on_arrival: default (defer), which is what makes it static.
}

/// A dynamic scheduler: same tape selection, but arrivals for the current
/// tape are inserted into the sweep when their block is still ahead of the
/// head.
#[derive(Debug, Clone)]
pub struct DynamicScheduler {
    policy: TapeSelectPolicy,
    name: String,
}

impl DynamicScheduler {
    /// Creates a dynamic scheduler with the given tape-selection policy.
    pub fn new(policy: TapeSelectPolicy) -> Self {
        DynamicScheduler {
            policy,
            name: format!("dynamic {}", policy.name()),
        }
    }

    /// The tape-selection policy.
    pub fn policy(&self) -> TapeSelectPolicy {
        self.policy
    }
}

impl Scheduler for DynamicScheduler {
    fn name(&self) -> &str {
        &self.name
    }

    fn major_reschedule(
        &mut self,
        view: &JukeboxView<'_>,
        pending: &mut PendingList,
    ) -> Option<SweepPlan> {
        family_major_reschedule(self.policy, view, pending)
    }

    fn on_arrival(
        &mut self,
        view: &JukeboxView<'_>,
        sweep_tape: TapeId,
        sweep: &mut ServiceList,
        request: Request,
        pending: &mut PendingList,
    ) -> ArrivalOutcome {
        if let Some(addr) = view.catalog.copy_on_tape(request.block, sweep_tape) {
            // Insert only if the block is ahead of the head in the sweep.
            if addr.slot >= view.head {
                sweep.insert_forward(addr.slot, request);
                return ArrivalOutcome::Inserted;
            }
        }
        pending.push(request);
        ArrivalOutcome::Deferred
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tapesim_layout::{BlockId, Catalog};
    use tapesim_model::{
        BlockSize, JukeboxGeometry, PhysicalAddr, SimTime, SlotIndex, TimingModel,
    };
    use tapesim_workload::RequestId;

    /// 3 tapes x 100 slots; block i on tape i % 3 at slot 10 * (i / 3) + 5.
    fn catalog() -> Catalog {
        let g = JukeboxGeometry::new(3, 100);
        let mut b = Catalog::builder(g, BlockSize::from_mb(1), 30, 0);
        for i in 0..30u32 {
            b.place(
                BlockId(i),
                PhysicalAddr {
                    tape: TapeId((i % 3) as u16),
                    slot: SlotIndex(10 * (i / 3) + 5),
                },
            )
            .unwrap();
        }
        b.build().unwrap()
    }

    fn req(id: u64, blockid: u32) -> Request {
        Request {
            id: RequestId(id),
            block: BlockId(blockid),
            arrival: SimTime::ZERO,
        }
    }

    fn view<'a>(
        catalog: &'a Catalog,
        timing: &'a TimingModel,
        mounted: Option<TapeId>,
        head: SlotIndex,
    ) -> JukeboxView<'a> {
        JukeboxView {
            catalog,
            timing,
            mounted,
            head,
            now: SimTime::ZERO,
            unavailable: &[],
            offline: &[],
            fleet: crate::api::FleetView::SINGLE,
        }
    }

    #[test]
    fn static_extracts_all_requests_for_tape_sorted() {
        let c = catalog();
        let t = TimingModel::paper_default();
        let v = view(&c, &t, None, SlotIndex(0));
        // Blocks 0, 3, 6 on tape 0 at slots 5, 15, 25; block 1 on tape 1.
        let mut p: PendingList = vec![req(0, 6), req(1, 1), req(2, 0), req(3, 3)]
            .into_iter()
            .collect();
        let mut s = StaticScheduler::new(TapeSelectPolicy::MaxRequests);
        let plan = s.major_reschedule(&v, &mut p).unwrap();
        assert_eq!(plan.tape, TapeId(0));
        let slots: Vec<u32> = plan.list.forward_stops().map(|r| r.slot.0).collect();
        assert_eq!(slots, vec![5, 15, 25]);
        // The request for tape 1 stays pending.
        assert_eq!(p.len(), 1);
        assert_eq!(p.oldest().unwrap().block, BlockId(1));
    }

    #[test]
    fn static_defers_arrivals_even_for_current_tape() {
        let c = catalog();
        let t = TimingModel::paper_default();
        let v = view(&c, &t, Some(TapeId(0)), SlotIndex(0));
        let mut sweep = ServiceList::new();
        let mut p = PendingList::new();
        let mut s = StaticScheduler::new(TapeSelectPolicy::MaxBandwidth);
        let out = s.on_arrival(&v, TapeId(0), &mut sweep, req(9, 0), &mut p);
        assert_eq!(out, ArrivalOutcome::Deferred);
        assert!(sweep.is_empty());
        assert_eq!(p.len(), 1);
    }

    #[test]
    fn dynamic_inserts_ahead_of_head() {
        let c = catalog();
        let t = TimingModel::paper_default();
        // Head at slot 10; block 3 (tape 0, slot 15) is ahead.
        let v = view(&c, &t, Some(TapeId(0)), SlotIndex(10));
        let mut sweep = ServiceList::new();
        let mut p = PendingList::new();
        let mut s = DynamicScheduler::new(TapeSelectPolicy::MaxBandwidth);
        let out = s.on_arrival(&v, TapeId(0), &mut sweep, req(9, 3), &mut p);
        assert_eq!(out, ArrivalOutcome::Inserted);
        assert_eq!(sweep.stops(), 1);
        assert!(p.is_empty());
    }

    #[test]
    fn dynamic_defers_behind_head() {
        let c = catalog();
        let t = TimingModel::paper_default();
        // Head at slot 10; block 0 (tape 0, slot 5) is behind.
        let v = view(&c, &t, Some(TapeId(0)), SlotIndex(10));
        let mut sweep = ServiceList::new();
        let mut p = PendingList::new();
        let mut s = DynamicScheduler::new(TapeSelectPolicy::MaxBandwidth);
        let out = s.on_arrival(&v, TapeId(0), &mut sweep, req(9, 0), &mut p);
        assert_eq!(out, ArrivalOutcome::Deferred);
        assert_eq!(p.len(), 1);
    }

    #[test]
    fn dynamic_defers_other_tape_blocks() {
        let c = catalog();
        let t = TimingModel::paper_default();
        let v = view(&c, &t, Some(TapeId(0)), SlotIndex(0));
        let mut sweep = ServiceList::new();
        let mut p = PendingList::new();
        let mut s = DynamicScheduler::new(TapeSelectPolicy::RoundRobin);
        // Block 1 lives on tape 1 only.
        let out = s.on_arrival(&v, TapeId(0), &mut sweep, req(9, 1), &mut p);
        assert_eq!(out, ArrivalOutcome::Deferred);
    }

    #[test]
    fn dynamic_insert_at_head_slot_is_allowed() {
        let c = catalog();
        let t = TimingModel::paper_default();
        let v = view(&c, &t, Some(TapeId(0)), SlotIndex(5));
        let mut sweep = ServiceList::new();
        let mut p = PendingList::new();
        let mut s = DynamicScheduler::new(TapeSelectPolicy::MaxRequests);
        let out = s.on_arrival(&v, TapeId(0), &mut sweep, req(9, 0), &mut p);
        assert_eq!(out, ArrivalOutcome::Inserted);
    }

    #[test]
    fn names_reflect_family_and_policy() {
        assert_eq!(
            StaticScheduler::new(TapeSelectPolicy::MaxBandwidth).name(),
            "static max-bandwidth"
        );
        assert_eq!(
            DynamicScheduler::new(TapeSelectPolicy::RoundRobin).name(),
            "dynamic round-robin"
        );
    }
}
