//! # tapesim-sched
//!
//! Retrieval scheduling algorithms for tape jukeboxes, implementing
//! Section 3 of *Scheduling and Data Replication to Improve Tape Jukebox
//! Performance* (ICDE 1999):
//!
//! * the trivial [`FifoScheduler`];
//! * five *static* and five *dynamic* algorithms parameterized by a
//!   [`TapeSelectPolicy`] ([`StaticScheduler`], [`DynamicScheduler`]);
//! * the globally-optimizing [`EnvelopeScheduler`] with three tape-switch
//!   variants ([`EnvelopePolicy`]).
//!
//! Every algorithm implements the [`Scheduler`] trait — a *major
//! rescheduler* invoked at tape-switch time and an *incremental scheduler*
//! invoked for arrivals during a sweep (Section 2.2's service model).
//! Sweep costs and effective bandwidths are computed with the exact
//! Section 2.1 timing model via the [`cost`] module.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod api;
pub mod cost;
pub mod ec;
pub mod envelope;
pub mod families;
pub mod fifo;
pub mod optimal;
pub mod registry;
pub mod select;

pub use api::{
    ArrivalOutcome, FleetView, JukeboxView, PendingList, ScheduledRead, Scheduler, ServiceList,
    SweepPhase, SweepPlan,
};
pub use cost::{
    candidate_for_tape, candidates_for_all_tapes, effective_bandwidth, execution_cost,
    forward_list_for, mount_cost, split_sweep, start_head, walk_cost, TapeCandidate,
};
pub use ec::{choose_shards, read_envelope, shard_pick_cost};
pub use envelope::{
    compute_upper_envelope, compute_upper_envelope_fresh, compute_upper_envelope_indexed,
    prefix_cost, EnvelopeIndex, EnvelopePolicy, EnvelopeScheduler, ExtensionCache, UpperEnvelope,
};
pub use families::{DynamicScheduler, StaticScheduler};
pub use fifo::FifoScheduler;
pub use registry::{make_scheduler, AlgorithmId};
pub use select::TapeSelectPolicy;
