//! The scheduling interface of Section 2.2's service model.
//!
//! A scheduling algorithm is specified by a *major rescheduler* that at
//! tape-switch time chooses a tape and forms a retrieval schedule, and an
//! *incremental scheduler* that handles newly arriving requests — either
//! scheduling them on the fly or deferring them until the next invocation
//! of the major rescheduler.
//!
//! A retrieval schedule (the *service list*) is executed in a single sweep
//! over the tape: a forward phase (forward locates only) followed by a
//! reverse phase (reverse locates only).
#![allow(clippy::cast_possible_truncation)] // request ids are minted from a u32-bounded counter

use std::collections::VecDeque;

use tapesim_layout::Catalog;
use tapesim_model::{Micros, SimTime, SlotIndex, TapeId, TimingModel};
use tapesim_workload::Request;

/// Fleet-level state visible to the cost model: what this drive's
/// library robot pool is doing and how far away each tape is homed.
///
/// The pre-fleet engine exposed neither quantity, so the legacy value
/// [`FleetView::SINGLE`] (robot free now, no penalties) keeps every cost
/// computed by a single-library/single-robot run bit-identical to the
/// historical arithmetic — both extra terms are exactly zero micros.
#[derive(Clone, Copy)]
pub struct FleetView<'a> {
    /// Earliest instant the robot pool serving this drive's library can
    /// begin another exchange. `SimTime::ZERO` means "free now" and adds
    /// nothing to any cost.
    pub robot_free: SimTime,
    /// Extra mount latency per tape id (pass-through transfer from the
    /// tape's home library to this drive's library). An empty slice means
    /// no tape carries a penalty.
    pub mount_penalty: &'a [Micros],
}

impl FleetView<'static> {
    /// The legacy single-library view: robot free, no penalties.
    pub const SINGLE: FleetView<'static> = FleetView {
        robot_free: SimTime::ZERO,
        mount_penalty: &[],
    };
}

impl FleetView<'_> {
    /// How long a mount starting at `now` would wait for a robot arm.
    #[inline]
    pub fn robot_wait(&self, now: SimTime) -> Micros {
        Micros::from_micros(self.robot_free.as_micros().saturating_sub(now.as_micros()))
    }

    /// Pass-through penalty for mounting `tape` on this drive (zero when
    /// the tape is homed in this drive's library, and always zero for
    /// the legacy view).
    #[inline]
    pub fn penalty(&self, tape: TapeId) -> Micros {
        self.mount_penalty
            .get(tape.index())
            .copied()
            .unwrap_or(Micros::ZERO)
    }
}

/// A read-only snapshot of the jukebox state handed to schedulers.
///
/// In a single-drive jukebox (the paper's configuration) `unavailable` is
/// empty. The multi-drive extension passes the tapes currently mounted in
/// — or being switched into — *other* drives, which the scheduler must
/// not select.
#[derive(Clone, Copy)]
pub struct JukeboxView<'a> {
    /// The block-to-tape mapping.
    pub catalog: &'a Catalog,
    /// The drive + robot timing model (used for bandwidth estimates).
    pub timing: &'a TimingModel,
    /// The currently mounted tape, if any.
    pub mounted: Option<TapeId>,
    /// Current head position on the mounted tape: the slot at which the
    /// next read would start. Meaningful only when `mounted` is `Some`.
    pub head: SlotIndex,
    /// The current simulation time.
    pub now: SimTime,
    /// Tapes held by other drives; schedulers must not select them.
    /// Must be sorted ascending: [`JukeboxView::is_available`] binary
    /// searches it from the scheduler inner loop.
    pub unavailable: &'a [TapeId],
    /// Tapes currently failed (offline) per the fault injector;
    /// schedulers must not select them. Unlike `unavailable`, offline
    /// tapes may come back after repair, and a request whose only copies
    /// are offline should be left pending rather than scheduled. Must be
    /// sorted ascending, like `unavailable`.
    pub offline: &'a [TapeId],
    /// Fleet-level robot/pass-through state. [`FleetView::SINGLE`] for
    /// single-library runs (adds zero to every cost).
    pub fleet: FleetView<'a>,
}

impl JukeboxView<'_> {
    /// Checks (in debug builds) the sorted-slice contract on
    /// `unavailable` and `offline` that the binary searches below rely
    /// on. Engines call this once per view construction.
    #[inline]
    pub fn debug_assert_sorted(&self) {
        debug_assert!(
            // simlint: allow(panic, windows(2) yields exactly-2-element slices)
            self.unavailable.windows(2).all(|w| w[0] < w[1]),
            "JukeboxView::unavailable must be sorted ascending without duplicates"
        );
        debug_assert!(
            // simlint: allow(panic, windows(2) yields exactly-2-element slices)
            self.offline.windows(2).all(|w| w[0] < w[1]),
            "JukeboxView::offline must be sorted ascending without duplicates"
        );
    }

    /// True when `tape` may be selected by this drive's scheduler: it is
    /// neither held by another drive nor offline due to a fault.
    #[inline]
    pub fn is_available(&self, tape: TapeId) -> bool {
        self.unavailable.binary_search(&tape).is_err() && !self.is_offline(tape)
    }

    /// True when `tape` is failed/offline per the fault injector.
    #[inline]
    pub fn is_offline(&self, tape: TapeId) -> bool {
        self.offline.binary_search(&tape).is_ok()
    }
}

/// One stop of a sweep: a slot to read and the requests it satisfies.
///
/// Multiple outstanding requests for the same block are satisfied by a
/// single physical read, so they share one scheduled stop.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ScheduledRead {
    /// The slot to read on the sweep's tape.
    pub slot: SlotIndex,
    /// The requests satisfied by reading this slot (at least one).
    pub requests: Vec<Request>,
}

/// Which phase of the sweep a stop belongs to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SweepPhase {
    /// Ascending slots, forward locates.
    Forward,
    /// Descending slots, reverse locates, executed after the forward phase.
    Reverse,
}

impl SweepPhase {
    /// Stable lower-case name, used by trace serialization and CSV output.
    pub fn name(self) -> &'static str {
        match self {
            SweepPhase::Forward => "forward",
            SweepPhase::Reverse => "reverse",
        }
    }
}

/// The retrieval schedule for one sweep: a forward phase of ascending
/// slots followed by a reverse phase of descending slots.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ServiceList {
    forward: VecDeque<ScheduledRead>,
    reverse: VecDeque<ScheduledRead>,
}

impl ServiceList {
    /// An empty service list.
    pub fn new() -> Self {
        ServiceList::default()
    }

    /// Rebuilds a service list from explicit forward and reverse phases —
    /// the checkpoint-restore counterpart of [`ServiceList::forward_stops`]
    /// / [`ServiceList::reverse_stops`]. Errors (rather than panicking) if
    /// the phases are not strictly ordered, since checkpoint data comes
    /// from outside the process.
    pub fn from_parts(
        forward: Vec<ScheduledRead>,
        reverse: Vec<ScheduledRead>,
    ) -> Result<Self, &'static str> {
        if !forward
            .iter()
            .zip(forward.iter().skip(1))
            .all(|(a, b)| a.slot < b.slot)
        {
            return Err("forward stops must be strictly ascending");
        }
        if !reverse
            .iter()
            .zip(reverse.iter().skip(1))
            .all(|(a, b)| a.slot > b.slot)
        {
            return Err("reverse stops must be strictly descending");
        }
        if forward
            .iter()
            .chain(reverse.iter())
            .any(|s| s.requests.is_empty())
        {
            return Err("every stop must carry at least one request");
        }
        Ok(ServiceList {
            forward: forward.into(),
            reverse: reverse.into(),
        })
    }

    /// Builds a forward-only service list from stops sorted ascending by
    /// slot.
    ///
    /// # Panics
    /// Panics in debug builds if the stops are not strictly ascending.
    pub fn from_forward(stops: Vec<ScheduledRead>) -> Self {
        debug_assert!(
            // simlint: allow(panic, windows(2) yields exactly two elements)
            stops.windows(2).all(|w| w[0].slot < w[1].slot),
            "forward stops must be strictly ascending"
        );
        ServiceList {
            forward: stops.into(),
            reverse: VecDeque::new(),
        }
    }

    /// The next stop to execute and its phase, without removing it.
    pub fn peek(&self) -> Option<(&ScheduledRead, SweepPhase)> {
        if let Some(r) = self.forward.front() {
            Some((r, SweepPhase::Forward))
        } else {
            self.reverse.front().map(|r| (r, SweepPhase::Reverse))
        }
    }

    /// Removes and returns the next stop and its phase.
    pub fn pop(&mut self) -> Option<(ScheduledRead, SweepPhase)> {
        if let Some(r) = self.forward.pop_front() {
            Some((r, SweepPhase::Forward))
        } else {
            self.reverse.pop_front().map(|r| (r, SweepPhase::Reverse))
        }
    }

    /// True when both phases are exhausted.
    pub fn is_empty(&self) -> bool {
        self.forward.is_empty() && self.reverse.is_empty()
    }

    /// Number of stops remaining (forward + reverse).
    pub fn stops(&self) -> usize {
        self.forward.len() + self.reverse.len()
    }

    /// Number of requests remaining across all stops.
    pub fn requests(&self) -> usize {
        self.forward
            .iter()
            .chain(self.reverse.iter())
            .map(|r| r.requests.len())
            .sum()
    }

    /// Inserts a request into the forward phase at `slot`, merging with an
    /// existing stop at the same slot, keeping ascending order.
    ///
    /// The caller is responsible for checking that `slot` has not yet been
    /// passed by the head.
    pub fn insert_forward(&mut self, slot: SlotIndex, request: Request) {
        Self::insert_ordered(&mut self.forward, slot, request, /*ascending=*/ true);
    }

    /// Inserts a request into the reverse phase at `slot`, merging with an
    /// existing stop at the same slot, keeping descending order.
    pub fn insert_reverse(&mut self, slot: SlotIndex, request: Request) {
        Self::insert_ordered(&mut self.reverse, slot, request, /*ascending=*/ false);
    }

    fn insert_ordered(
        list: &mut VecDeque<ScheduledRead>,
        slot: SlotIndex,
        request: Request,
        ascending: bool,
    ) {
        let pos = list.partition_point(|r| {
            if ascending {
                r.slot < slot
            } else {
                r.slot > slot
            }
        });
        if let Some(stop) = list.get_mut(pos) {
            if stop.slot == slot {
                stop.requests.push(request);
                return;
            }
        }
        list.insert(
            pos,
            ScheduledRead {
                slot,
                requests: vec![request],
            },
        );
    }

    /// Iterator over forward-phase stops in execution order.
    pub fn forward_stops(&self) -> impl Iterator<Item = &ScheduledRead> {
        self.forward.iter()
    }

    /// Iterator over reverse-phase stops in execution order.
    pub fn reverse_stops(&self) -> impl Iterator<Item = &ScheduledRead> {
        self.reverse.iter()
    }

    /// Slot of the last stop of the forward phase, if any.
    pub fn forward_end(&self) -> Option<SlotIndex> {
        self.forward.back().map(|r| r.slot)
    }
}

/// A chosen tape plus the retrieval schedule for it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SweepPlan {
    /// The tape to service.
    pub tape: TapeId,
    /// The stops to execute.
    pub list: ServiceList,
}

/// The pending list: all requests not yet scheduled for retrieval, in
/// arrival (FIFO) order.
#[derive(Debug, Clone, Default)]
pub struct PendingList {
    queue: VecDeque<Request>,
}

impl PendingList {
    /// An empty pending list.
    pub fn new() -> Self {
        PendingList::default()
    }

    /// Appends a newly arrived or deferred request.
    pub fn push(&mut self, r: Request) {
        self.queue.push_back(r);
    }

    /// The oldest pending request (the head of the list).
    pub fn oldest(&self) -> Option<&Request> {
        self.queue.front()
    }

    /// Number of pending requests.
    pub fn len(&self) -> usize {
        self.queue.len()
    }

    /// True if no requests are pending.
    pub fn is_empty(&self) -> bool {
        self.queue.is_empty()
    }

    /// Iterates the pending requests in arrival order.
    pub fn iter(&self) -> impl Iterator<Item = &Request> {
        self.queue.iter()
    }

    /// Removes and returns all requests for which `pred` is true,
    /// preserving arrival order in both the result and the remainder.
    pub fn extract<F: FnMut(&Request) -> bool>(&mut self, mut pred: F) -> Vec<Request> {
        let mut taken = Vec::new();
        self.queue.retain(|r| {
            if pred(r) {
                taken.push(*r);
                false
            } else {
                true
            }
        });
        taken
    }
}

impl FromIterator<Request> for PendingList {
    fn from_iter<T: IntoIterator<Item = Request>>(iter: T) -> Self {
        PendingList {
            queue: iter.into_iter().collect(),
        }
    }
}

/// Outcome of the incremental scheduler for a new arrival.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ArrivalOutcome {
    /// The request was inserted into the running sweep.
    Inserted,
    /// The request was deferred to the pending list.
    Deferred,
}

/// A scheduling algorithm: a major rescheduler plus an incremental
/// scheduler (Section 2.2).
pub trait Scheduler {
    /// A short, stable name for reports ("dynamic max-bandwidth", ...).
    fn name(&self) -> &str;

    /// Invoked at tape-switch time with the pending list. Selects the tape
    /// to service next, extracts the requests it will serve from
    /// `pending`, and returns the sweep plan. Returns `None` when nothing
    /// can be scheduled (empty pending list).
    fn major_reschedule(
        &mut self,
        view: &JukeboxView<'_>,
        pending: &mut PendingList,
    ) -> Option<SweepPlan>;

    /// Invoked when a request arrives during the execution of a sweep.
    /// Either inserts the request into `sweep` (the in-progress service
    /// list on `sweep_tape`) or defers it by appending to `pending`.
    ///
    /// The default implementation defers (the behaviour of all *static*
    /// algorithms).
    fn on_arrival(
        &mut self,
        _view: &JukeboxView<'_>,
        _sweep_tape: TapeId,
        _sweep: &mut ServiceList,
        request: Request,
        pending: &mut PendingList,
    ) -> ArrivalOutcome {
        pending.push(request);
        ArrivalOutcome::Deferred
    }

    /// Serializes whatever internal state the incremental scheduler
    /// carries across arrivals, for a checkpoint. Most algorithms are
    /// stateless between calls (their plans are derived fresh from the
    /// pending list) and return `None`, the default. The envelope
    /// algorithm returns its per-tape envelope boundaries, which stay
    /// live across a multi-drive sweep.
    fn checkpoint_state(&self) -> Option<String> {
        None
    }

    /// Restores state produced by [`Scheduler::checkpoint_state`] on a
    /// freshly constructed scheduler of the same algorithm. The default
    /// errors: a checkpoint carrying state for a stateless scheduler can
    /// only mean the configurations disagree.
    fn restore_state(&mut self, _state: &str) -> Result<(), &'static str> {
        Err("this scheduler carries no checkpointable state")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tapesim_layout::BlockId;
    use tapesim_workload::RequestId;

    fn req(id: u64) -> Request {
        Request {
            id: RequestId(id),
            block: BlockId(id as u32),
            arrival: SimTime::ZERO,
        }
    }

    fn stop(slot: u32, ids: &[u64]) -> ScheduledRead {
        ScheduledRead {
            slot: SlotIndex(slot),
            requests: ids.iter().map(|&i| req(i)).collect(),
        }
    }

    #[test]
    fn service_list_pops_forward_then_reverse() {
        let mut l = ServiceList::from_forward(vec![stop(1, &[0]), stop(5, &[1])]);
        l.insert_reverse(SlotIndex(3), req(2));
        l.insert_reverse(SlotIndex(2), req(3));
        let order: Vec<(u32, SweepPhase)> = std::iter::from_fn(|| l.pop())
            .map(|(s, p)| (s.slot.0, p))
            .collect();
        assert_eq!(
            order,
            vec![
                (1, SweepPhase::Forward),
                (5, SweepPhase::Forward),
                (3, SweepPhase::Reverse),
                (2, SweepPhase::Reverse),
            ]
        );
    }

    #[test]
    fn insert_forward_keeps_ascending_order_and_merges() {
        let mut l = ServiceList::from_forward(vec![stop(2, &[0]), stop(8, &[1])]);
        l.insert_forward(SlotIndex(5), req(2));
        l.insert_forward(SlotIndex(8), req(3)); // merge with existing stop
        let slots: Vec<u32> = l.forward_stops().map(|r| r.slot.0).collect();
        assert_eq!(slots, vec![2, 5, 8]);
        assert_eq!(l.stops(), 3);
        assert_eq!(l.requests(), 4);
        let last = l.forward_stops().last().unwrap();
        assert_eq!(last.requests.len(), 2);
    }

    #[test]
    fn insert_reverse_keeps_descending_order() {
        let mut l = ServiceList::new();
        l.insert_reverse(SlotIndex(3), req(0));
        l.insert_reverse(SlotIndex(9), req(1));
        l.insert_reverse(SlotIndex(6), req(2));
        let slots: Vec<u32> = l.reverse_stops().map(|r| r.slot.0).collect();
        assert_eq!(slots, vec![9, 6, 3]);
    }

    #[test]
    fn peek_does_not_consume() {
        let mut l = ServiceList::from_forward(vec![stop(1, &[0])]);
        assert_eq!(l.peek().unwrap().0.slot, SlotIndex(1));
        assert_eq!(l.stops(), 1);
        l.pop();
        assert!(l.is_empty());
        assert!(l.peek().is_none());
    }

    #[test]
    fn forward_end_reports_last_forward_slot() {
        let l = ServiceList::from_forward(vec![stop(1, &[0]), stop(7, &[1])]);
        assert_eq!(l.forward_end(), Some(SlotIndex(7)));
        assert_eq!(ServiceList::new().forward_end(), None);
    }

    #[test]
    #[cfg(debug_assertions)]
    #[should_panic(expected = "strictly ascending")]
    fn from_forward_rejects_unsorted() {
        let _ = ServiceList::from_forward(vec![stop(5, &[0]), stop(2, &[1])]);
    }

    #[test]
    fn pending_list_preserves_fifo_order() {
        let mut p = PendingList::new();
        for i in 0..5 {
            p.push(req(i));
        }
        assert_eq!(p.oldest().unwrap().id, RequestId(0));
        assert_eq!(p.len(), 5);
        let ids: Vec<u64> = p.iter().map(|r| r.id.0).collect();
        assert_eq!(ids, vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn extract_partitions_preserving_order() {
        let mut p: PendingList = (0..6).map(req).collect();
        let even = p.extract(|r| r.id.0 % 2 == 0);
        assert_eq!(even.iter().map(|r| r.id.0).collect::<Vec<_>>(), [0, 2, 4]);
        assert_eq!(p.iter().map(|r| r.id.0).collect::<Vec<_>>(), [1, 3, 5]);
    }
}
