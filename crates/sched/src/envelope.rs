//! The envelope-extension algorithm (Section 3.2).
//!
//! Simple algorithms greedily service every request on the chosen tape,
//! even when a replicated block could be fetched far more cheaply from
//! another tape. The envelope-extension algorithm takes a global view:
//!
//! 1. the requests for **non-replicated** blocks pin down an *envelope* —
//!    a set of tape prefixes that must be traversed no matter what;
//! 2. replicated requests whose copies already fall inside the envelope
//!    are absorbed at no extra cost;
//! 3. the remaining requests are scheduled by repeatedly extending the
//!    envelope along the prefix with the highest *incremental bandwidth*
//!    (bytes gained per second of extra locate/read/switch time),
//!    shrinking it back wherever a newly enclosed replica makes an
//!    earlier extension redundant.
//!
//! The resulting *upper envelope* covers all requests. A tape-switch
//! policy (oldest request / max requests / max bandwidth) then chooses
//! which tape to visit first, and the sweep services every request
//! satisfiable inside the chosen tape's envelope.
//!
//! Scheduling an optimal extension is NP-hard (Theorem 1); the greedy
//! extension is within a harmonic factor of optimal (Theorem 2, tested
//! against a brute-force oracle in `optimal.rs`).
#![allow(clippy::cast_precision_loss)] // request counts used for ranking stay far below 2^53

use std::collections::{BTreeMap, BTreeSet};

use tapesim_layout::Catalog;
use tapesim_model::{Micros, ReadContext, SlotIndex, TapeId};
use tapesim_workload::Request;

use crate::api::{ArrivalOutcome, JukeboxView, PendingList, Scheduler, ServiceList, SweepPlan};
use crate::cost::{mount_cost, split_sweep, start_head, walk_cost};

/// Tape-switch policies applicable to the envelope algorithm
/// (Section 3.2: "oldest request envelope", "max requests envelope",
/// "max bandwidth envelope").
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum EnvelopePolicy {
    /// Visit a tape that can satisfy the oldest request (by max requests
    /// among those).
    OldestRequest,
    /// Visit the tape whose envelope satisfies the most requests.
    MaxRequests,
    /// Visit the tape whose in-envelope schedule has the highest effective
    /// bandwidth.
    MaxBandwidth,
}

impl EnvelopePolicy {
    /// All three envelope tape-switch policies.
    pub const ALL: [EnvelopePolicy; 3] = [
        EnvelopePolicy::OldestRequest,
        EnvelopePolicy::MaxRequests,
        EnvelopePolicy::MaxBandwidth,
    ];

    /// Stable display name.
    pub fn name(self) -> &'static str {
        match self {
            EnvelopePolicy::OldestRequest => "oldest-request",
            EnvelopePolicy::MaxRequests => "max-requests",
            EnvelopePolicy::MaxBandwidth => "max-bandwidth",
        }
    }
}

/// The upper envelope: per tape, the first slot *outside* the envelope
/// (0 = empty envelope). A copy at slot `s` on tape `t` is inside the
/// envelope iff `s < env[t]`.
pub type Envelope = Vec<u32>;

/// The result of the upper-envelope computation: the envelope itself plus
/// the per-request tape assignment (indices into the pending snapshot).
#[derive(Debug, Clone, PartialEq)]
pub struct UpperEnvelope {
    /// First-slot-outside boundary per tape.
    pub env: Envelope,
    /// Assigned tape per request (same order as the input snapshot).
    pub assigned: Vec<TapeId>,
    /// Number of requests assigned per tape.
    pub counts: Vec<u32>,
}

/// The envelope-extension scheduler.
#[derive(Debug, Clone)]
pub struct EnvelopeScheduler {
    policy: EnvelopePolicy,
    name: String,
    /// Envelope from the most recent major reschedule, consulted and
    /// extended by the incremental scheduler during the sweep.
    env: Envelope,
    /// Persistent index of the pending snapshot, delta-updated across
    /// major reschedules so the upper-envelope computation never rescans
    /// the whole pending list per tape.
    index: EnvelopeIndex,
}

impl EnvelopeScheduler {
    /// Creates an envelope scheduler with the given tape-switch policy.
    pub fn new(policy: EnvelopePolicy) -> Self {
        EnvelopeScheduler {
            policy,
            name: format!("envelope {}", policy.name()),
            env: Vec::new(),
            index: EnvelopeIndex::default(),
        }
    }

    /// The tape-switch policy.
    pub fn policy(&self) -> EnvelopePolicy {
        self.policy
    }

    /// The envelope from the most recent major reschedule (for tests and
    /// diagnostics).
    pub fn current_envelope(&self) -> &Envelope {
        &self.env
    }

    /// The persistent pending-set index (for tests and diagnostics).
    /// Empty until a reschedule sees a snapshot large enough to cross
    /// the indexed-driver threshold.
    pub fn envelope_index(&self) -> &EnvelopeIndex {
        &self.index
    }
}

impl Scheduler for EnvelopeScheduler {
    fn name(&self) -> &str {
        &self.name
    }

    fn major_reschedule(
        &mut self,
        view: &JukeboxView<'_>,
        pending: &mut PendingList,
    ) -> Option<SweepPlan> {
        if pending.is_empty() {
            return None;
        }
        // Only requests with a copy on an available tape can be planned
        // now (others wait for another drive to release their tape).
        let snapshot: Vec<Request> = pending
            .iter()
            .filter(|r| {
                view.catalog
                    .replicas(r.block)
                    .iter()
                    .any(|a| view.is_available(a.tape))
            })
            .copied()
            .collect();
        if snapshot.is_empty() {
            return None;
        }
        // The persistent index pays off once the snapshot is large enough
        // to amortize its per-reschedule sync; below that the plain scan
        // is faster. Both drivers produce the identical envelope (the
        // property suite pins this), so the switch is purely a speed
        // choice — and deterministic, since it depends only on the
        // snapshot size.
        let upper = if snapshot.len() >= INDEXED_ENVELOPE_THRESHOLD {
            self.index.sync(view.catalog, &snapshot);
            compute_upper_envelope_indexed(view, &snapshot, &self.index)
        } else {
            if !self.index.is_empty() {
                self.index = EnvelopeIndex::default();
            }
            compute_upper_envelope(view, &snapshot)
        };
        let tape = select_envelope_tape(self.policy, view, &snapshot, &upper.env)?;
        let env_t = upper.env[tape.index()];
        let taken = pending.extract(|r| {
            view.catalog
                .copy_on_tape(r.block, tape)
                .is_some_and(|a| a.slot.0 < env_t)
        });
        debug_assert!(!taken.is_empty(), "chosen tape must satisfy something");
        self.env = upper.env;
        Some(SweepPlan {
            tape,
            list: split_sweep(view.catalog, tape, start_head(view, tape), taken),
        })
    }

    fn on_arrival(
        &mut self,
        view: &JukeboxView<'_>,
        sweep_tape: TapeId,
        sweep: &mut ServiceList,
        request: Request,
        pending: &mut PendingList,
    ) -> ArrivalOutcome {
        if self.env.len() != view.catalog.geometry().tapes as usize {
            // No envelope computed yet (no major reschedule has run).
            pending.push(request);
            return ArrivalOutcome::Deferred;
        }
        // Case 1: satisfiable by the current tape within the envelope.
        if let Some(addr) = view.catalog.copy_on_tape(request.block, sweep_tape) {
            if addr.slot.0 < self.env[sweep_tape.index()] {
                if addr.slot >= view.head {
                    sweep.insert_forward(addr.slot, request);
                } else {
                    // Behind the head but inside the envelope: read it in
                    // the reverse phase on the way back down the tape.
                    sweep.insert_reverse(addr.slot, request);
                }
                return ArrivalOutcome::Inserted;
            }
        }
        // Case 2: satisfiable inside another tape's envelope at no extra
        // envelope cost -> it will be picked up by a later sweep; defer.
        let inside_elsewhere = view.catalog.replicas(request.block).iter().any(|a| {
            a.tape != sweep_tape && view.is_available(a.tape) && a.slot.0 < self.env[a.tape.index()]
        });
        if inside_elsewhere {
            pending.push(request);
            return ArrivalOutcome::Deferred;
        }
        // Case 3: outside the envelope everywhere. Apply the extension
        // rule (steps 3-4) for this single request: extend the envelope
        // along the copy with the highest incremental bandwidth.
        let block = view.catalog.block_size();
        let mut best: Option<(f64, TapeId, SlotIndex)> = None;
        for a in view.catalog.replicas(request.block) {
            if !view.is_available(a.tape) {
                continue;
            }
            let env_a = SlotIndex(self.env[a.tape.index()]);
            let mut cost = prefix_cost(view, env_a, &[a.slot]);
            if env_a == SlotIndex::BOT && view.mounted != Some(a.tape) {
                cost += view.timing.switch_time();
            }
            let bw = cost.bytes_per_sec(block.bytes());
            let better = match &best {
                None => true,
                Some((b, t, _)) => bw > *b || (bw == *b && a.tape < *t),
            };
            if better {
                best = Some((bw, a.tape, a.slot));
            }
        }
        let Some((_, tape, slot)) = best else {
            // Every copy is on a tape held by another drive; wait.
            pending.push(request);
            return ArrivalOutcome::Deferred;
        };
        self.env[tape.index()] = self.env[tape.index()].max(slot.0 + 1);
        if tape == sweep_tape {
            // The envelope on the mounted tape always starts at or beyond
            // the head, so an extension is ahead of the head.
            sweep.insert_forward(slot, request);
            ArrivalOutcome::Inserted
        } else {
            pending.push(request);
            ArrivalOutcome::Deferred
        }
    }

    /// The per-tape envelope boundaries as a comma-separated list (empty
    /// string before the first major reschedule).
    fn checkpoint_state(&self) -> Option<String> {
        let s = self
            .env
            .iter()
            .map(u32::to_string)
            .collect::<Vec<_>>()
            .join(",");
        Some(s)
    }

    fn restore_state(&mut self, state: &str) -> Result<(), &'static str> {
        // The index is derivable from the pending list; drop it and let
        // the first post-restore sync rebuild it from scratch.
        self.index = EnvelopeIndex::default();
        if state.is_empty() {
            self.env = Vec::new();
            return Ok(());
        }
        let mut env = Vec::new();
        for part in state.split(',') {
            let v: u32 = part
                .parse()
                .map_err(|_| "malformed envelope boundary in checkpoint")?;
            env.push(v);
        }
        self.env = env;
        Ok(())
    }
}

/// Cost of walking from the envelope boundary `start` through `slots`
/// (ascending) and locating back to `start` — the incremental cost of an
/// envelope extension, excluding any tape-switch charge.
pub fn prefix_cost(view: &JukeboxView<'_>, start: SlotIndex, slots: &[SlotIndex]) -> Micros {
    let block = view.catalog.block_size();
    let mut total = walk_cost(view.timing, block, start, slots.iter().copied());
    if let Some(&last) = slots.last() {
        let (back, _) = view.timing.drive.locate(last.next(), start, block);
        total += back;
    }
    total
}

/// Computes the schedule `S1` of Section 3.3: the envelope and assignment
/// after steps 1-2 only (initial envelope from non-replicated requests,
/// then absorption). Requests left `None` are the ones an extension must
/// still schedule. Used by the Theorem 2 oracle in [`crate::optimal`].
pub fn envelope_after_absorb(
    view: &JukeboxView<'_>,
    pending: &[Request],
) -> (Envelope, Vec<Option<TapeId>>) {
    let catalog = view.catalog;
    let tapes = catalog.geometry().tapes as usize;
    let mut env: Envelope = vec![0; tapes];
    for r in pending {
        if let [a] = catalog.replicas(r.block) {
            if view.is_available(a.tape) {
                let boundary = &mut env[a.tape.index()];
                *boundary = (*boundary).max(a.slot.0 + 1);
            }
        }
    }
    if let Some(m) = view.mounted {
        env[m.index()] = env[m.index()].max(view.head.0);
    }
    let mut assigned: Vec<Option<TapeId>> = vec![None; pending.len()];
    let mut counts: Vec<u32> = vec![0; tapes];
    absorb(view, pending, &mut assigned, &mut counts, &env);
    (env, assigned)
}

/// Snapshot size at which [`EnvelopeScheduler`] switches from the plain
/// per-reschedule scan to the persistent [`EnvelopeIndex`]. Maintaining
/// the index costs an ordered diff pass per reschedule; with the small
/// pending sets of closed-queue paper runs that overhead exceeds the
/// scan it replaces, so the index only engages for large backlogs.
const INDEXED_ENVELOPE_THRESHOLD: usize = 512;

/// Persistent index of the pending snapshot for incremental envelope
/// recomputation.
///
/// A major reschedule recomputes the upper envelope from scratch; with a
/// plain scan that costs O(tapes x pending) per extension-list rebuild
/// plus a full pass to find the non-replicated pins. The index keeps
/// three derived views of the pending set alive across reschedules:
///
/// * `members` — the requests indexed, keyed by id, so the next sync can
///   diff instead of rescan;
/// * `by_tape` — per tape, the sorted `(slot, request id)` pairs of every
///   replica copy, so an extension-list rebuild walks exactly the
///   entries on that tape;
/// * `pins` — per tape, the slots pinned by non-replicated requests with
///   a reference count, so the step-1 initial envelope is the last pin
///   key per tape instead of a scan.
///
/// [`EnvelopeIndex::sync`] delta-updates all three from the snapshot:
/// arrivals, completions, cancellations and availability changes all
/// manifest as membership diffs, so the entry-maintenance cost is
/// proportional to the churn since the previous reschedule, not to the
/// pending-list length (the diff itself is one ordered pass over the
/// snapshot).
/// The indexed driver produces bit-identical envelopes, assignments and
/// [`Micros`] costs to the scan-based one (asserted in debug builds and
/// by the property suite in `tests/envelope_cache_props.rs`).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct EnvelopeIndex {
    /// Indexed requests by id, for diffing against the next snapshot.
    members: BTreeMap<u64, Request>,
    /// Per tape: `(slot, request id)` for the canonical copy of every
    /// member's block with a replica on that tape, sorted ascending.
    by_tape: Vec<BTreeSet<(u32, u64)>>,
    /// Per tape: slot -> number of non-replicated members pinning it.
    pins: Vec<BTreeMap<u32, u32>>,
}

impl EnvelopeIndex {
    /// Number of requests currently indexed.
    pub fn len(&self) -> usize {
        self.members.len()
    }

    /// Whether the index holds no requests.
    pub fn is_empty(&self) -> bool {
        self.members.is_empty()
    }

    /// Delta-updates the index to match `snapshot` (the availability-
    /// filtered pending list a major reschedule operates on). Requests
    /// that left the snapshot are removed, new ones are added; a request
    /// re-appearing with different fields under a reused id is treated as
    /// remove + add.
    pub fn sync(&mut self, catalog: &Catalog, snapshot: &[Request]) {
        self.ensure_tapes(catalog.geometry().tapes as usize);
        let mut current: BTreeMap<u64, Request> = BTreeMap::new();
        for r in snapshot {
            current.insert(r.id.0, *r);
        }
        let departed: Vec<Request> = self
            .members
            .values()
            .filter(|r| current.get(&r.id.0).is_none_or(|c| c != *r))
            .copied()
            .collect();
        for r in &departed {
            self.members.remove(&r.id.0);
            self.remove_entries(catalog, r);
        }
        for r in snapshot {
            if let std::collections::btree_map::Entry::Vacant(slot) = self.members.entry(r.id.0) {
                slot.insert(*r);
                self.add_entries(catalog, r);
            }
        }
    }

    fn ensure_tapes(&mut self, tapes: usize) {
        if self.by_tape.len() != tapes {
            self.members.clear();
            self.by_tape = vec![BTreeSet::new(); tapes];
            self.pins = vec![BTreeMap::new(); tapes];
        }
    }

    fn add_entries(&mut self, catalog: &Catalog, r: &Request) {
        let replicas = catalog.replicas(r.block);
        for a in replicas {
            // Canonical copy per tape, matching `copy_on_tape` so the
            // indexed extension lists equal the scan-based ones.
            if let Some(c) = catalog.copy_on_tape(r.block, a.tape) {
                self.by_tape[a.tape.index()].insert((c.slot.0, r.id.0));
            }
        }
        if let [a] = replicas {
            *self.pins[a.tape.index()].entry(a.slot.0).or_insert(0) += 1;
        }
    }

    fn remove_entries(&mut self, catalog: &Catalog, r: &Request) {
        let replicas = catalog.replicas(r.block);
        for a in replicas {
            if let Some(c) = catalog.copy_on_tape(r.block, a.tape) {
                self.by_tape[a.tape.index()].remove(&(c.slot.0, r.id.0));
            }
        }
        if let [a] = replicas {
            let pins = &mut self.pins[a.tape.index()];
            if let Some(count) = pins.get_mut(&a.slot.0) {
                *count -= 1;
                if *count == 0 {
                    pins.remove(&a.slot.0);
                }
            } else {
                debug_assert!(false, "pin missing on removal");
            }
        }
    }

    /// The step-1 initial envelope (non-replicated pins only; the caller
    /// applies the mounted-head pin): per tape, one past the outermost
    /// pinned slot.
    fn initial_envelope(&self, tapes: usize) -> Envelope {
        (0..tapes)
            .map(|t| self.pins[t].keys().next_back().map_or(0, |&s| s + 1))
            .collect()
    }

    /// The indexed `(slot, request id)` entries on `tape`, ascending.
    fn tape_entries(&self, tape: TapeId) -> &BTreeSet<(u32, u64)> {
        &self.by_tape[tape.index()]
    }
}

/// Per-call cache of the per-tape extension lists and their prefix cost
/// sums.
///
/// Every iteration of the extension loop needs, for each available tape,
/// the sorted list of slots holding copies of still-unassigned requests
/// and the cumulative locate/read/locate-back cost of each prefix.
/// Rebuilding those lists on every iteration costs O(tapes x requests)
/// plus a sort per tape; the driver loop instead keeps this cache and
/// invalidates only the tapes whose unassigned set or envelope boundary
/// actually changed since the list was built.
///
/// All cached quantities are exact integer [`Micros`] sums produced by
/// the same incremental walk the uncached code performs, so a cache hit
/// is bit-identical to a fresh recomputation — the property suite in
/// `tests/envelope_cache_props.rs` asserts cached prefix costs equal
/// [`prefix_cost`] and that the cached and always-rebuild drivers agree.
#[derive(Debug, Clone, Default)]
pub struct ExtensionCache {
    tapes: Vec<TapeExtension>,
}

/// One tape's cached extension list.
#[derive(Debug, Clone, Default)]
struct TapeExtension {
    valid: bool,
    /// `(slot, pending index)` for every unassigned request with a copy
    /// on this tape, sorted by `(slot, index)`.
    entries: Vec<(SlotIndex, usize)>,
    /// Distinct slots, ascending — the extension list of Section 3.2.
    slots: Vec<SlotIndex>,
    /// Envelope boundary the cached walk started from.
    start: SlotIndex,
    /// Tape-switch charge applied to every prefix (nonzero only when the
    /// envelope was empty and the tape is not the mounted one).
    switch: Micros,
    /// `costs[k]`: switch charge + walk through `slots[..=k]` + locate
    /// back to `start`.
    costs: Vec<Micros>,
    /// `bws[k]`: `costs[k]` as bytes/second for a `(k + 1)`-block prefix.
    bws: Vec<f64>,
}

impl ExtensionCache {
    /// An empty (all-stale) cache for a jukebox with `tapes` tapes.
    pub fn new(tapes: usize) -> ExtensionCache {
        ExtensionCache {
            tapes: vec![TapeExtension::default(); tapes],
        }
    }

    /// Marks one tape's cached extension list stale.
    pub fn invalidate(&mut self, tape: TapeId) {
        self.tapes[tape.index()].valid = false;
    }

    /// Marks every tape stale (used by the fresh-recomputation reference
    /// driver the property suite compares against).
    pub fn invalidate_all(&mut self) {
        for t in &mut self.tapes {
            t.valid = false;
        }
    }

    /// Distinct extension slots cached for `tape`, ascending.
    pub fn slots(&self, tape: TapeId) -> &[SlotIndex] {
        &self.tapes[tape.index()].slots
    }

    /// Cached per-prefix extension costs for `tape`: entry `k` equals the
    /// tape-switch charge plus [`prefix_cost`] over `slots()[..=k]`.
    pub fn prefix_costs(&self, tape: TapeId) -> &[Micros] {
        &self.tapes[tape.index()].costs
    }

    /// The envelope boundary the cached walk for `tape` started from.
    pub fn start(&self, tape: TapeId) -> SlotIndex {
        self.tapes[tape.index()].start
    }

    /// The tape-switch charge folded into every cached prefix cost.
    pub fn switch_charge(&self, tape: TapeId) -> Micros {
        self.tapes[tape.index()].switch
    }

    /// Rebuilds `tape`'s extension list if it is stale.
    pub fn refresh(
        &mut self,
        view: &JukeboxView<'_>,
        pending: &[Request],
        assigned: &[Option<TapeId>],
        env: &Envelope,
        tape: TapeId,
    ) {
        if !self.tapes[tape.index()].valid {
            self.rebuild(view, pending, assigned, env, tape);
        }
    }

    /// Rebuilds `tape`'s extension list if it is stale, sourcing the
    /// unassigned entries from `source` (pending-list scan or persistent
    /// index).
    fn refresh_from(
        &mut self,
        view: &JukeboxView<'_>,
        source: &ExtensionSource<'_>,
        assigned: &[Option<TapeId>],
        env: &Envelope,
        tape: TapeId,
    ) {
        if self.tapes[tape.index()].valid {
            return;
        }
        match source {
            ExtensionSource::Scan { pending } => self.rebuild(view, pending, assigned, env, tape),
            ExtensionSource::Index { index, by_id } => {
                self.rebuild_indexed(view, index, by_id, assigned, env, tape);
            }
        }
    }

    fn rebuild(
        &mut self,
        view: &JukeboxView<'_>,
        pending: &[Request],
        assigned: &[Option<TapeId>],
        env: &Envelope,
        tape: TapeId,
    ) {
        let catalog = view.catalog;
        let ext = &mut self.tapes[tape.index()];
        ext.entries.clear();
        for (i, r) in pending.iter().enumerate() {
            if assigned[i].is_some() {
                continue;
            }
            if let Some(a) = catalog.copy_on_tape(r.block, tape) {
                debug_assert!(a.slot.0 >= env[tape.index()], "unscheduled inside envelope");
                ext.entries.push((a.slot, i));
            }
        }
        Self::finish_rebuild(ext, view, env, tape);
    }

    /// Index-fed rebuild: walks only the `(slot, id)` entries recorded
    /// for `tape` instead of the whole pending list. After the sort the
    /// entry list is identical to [`ExtensionCache::rebuild`]'s, so all
    /// downstream costs are bit-identical.
    fn rebuild_indexed(
        &mut self,
        view: &JukeboxView<'_>,
        index: &EnvelopeIndex,
        by_id: &BTreeMap<u64, usize>,
        assigned: &[Option<TapeId>],
        env: &Envelope,
        tape: TapeId,
    ) {
        let ext = &mut self.tapes[tape.index()];
        ext.entries.clear();
        for &(slot, id) in index.tape_entries(tape) {
            let Some(&i) = by_id.get(&id) else {
                debug_assert!(false, "index member {id} missing from snapshot");
                continue;
            };
            if assigned[i].is_some() {
                continue;
            }
            debug_assert!(slot >= env[tape.index()], "unscheduled inside envelope");
            ext.entries.push((SlotIndex(slot), i));
        }
        Self::finish_rebuild(ext, view, env, tape);
    }

    /// Shared tail of a rebuild: sorts the collected entries and walks
    /// each prefix incrementally, exactly as `prefix_cost` would for the
    /// slots seen so far.
    fn finish_rebuild(
        ext: &mut TapeExtension,
        view: &JukeboxView<'_>,
        env: &Envelope,
        tape: TapeId,
    ) {
        ext.slots.clear();
        ext.costs.clear();
        ext.bws.clear();
        ext.start = SlotIndex(env[tape.index()]);
        ext.switch = if ext.start == SlotIndex::BOT && view.mounted != Some(tape) {
            view.timing.switch_time()
        } else {
            Micros::ZERO
        };
        ext.valid = true;
        if ext.entries.is_empty() {
            return;
        }
        ext.entries.sort_unstable();
        let block = view.catalog.block_size();
        let start = ext.start;
        let mut pos = start;
        let mut out_time = Micros::ZERO;
        for &(slot, _) in &ext.entries {
            if ext.slots.last() == Some(&slot) {
                continue; // several requests for the same block
            }
            ext.slots.push(slot);
            let (lt, dir) = view.timing.drive.locate(pos, slot, block);
            let ctx = match dir {
                None => ReadContext::Streaming,
                Some(tapesim_model::LocateDirection::Forward) => ReadContext::AfterForwardLocate,
                Some(tapesim_model::LocateDirection::Reverse) => ReadContext::AfterReverseLocate,
            };
            out_time += lt + view.timing.drive.read_block(block, ctx);
            pos = slot.next();
            let (back, _) = view.timing.drive.locate(pos, start, block);
            let cost = ext.switch + out_time + back;
            ext.costs.push(cost);
            ext.bws
                .push(cost.bytes_per_sec(ext.slots.len() as u64 * block.bytes()));
        }
    }
}

/// How the upper-envelope driver sources its extension lists.
#[derive(Debug, Clone, Copy)]
enum RebuildMode<'a> {
    /// Scan the pending snapshot, reusing cached lists across iterations.
    Cached,
    /// Scan and rebuild every list on every iteration (reference driver).
    Fresh,
    /// Feed the cache from a persistent, delta-updated [`EnvelopeIndex`].
    Indexed(&'a EnvelopeIndex),
}

/// Where an extension-list rebuild finds the unassigned requests.
enum ExtensionSource<'a> {
    /// Full scan of the pending snapshot.
    Scan {
        /// The pending snapshot.
        pending: &'a [Request],
    },
    /// Walk of the per-tape index entries.
    Index {
        /// The persistent index (already synced to the snapshot).
        index: &'a EnvelopeIndex,
        /// Request id -> snapshot position.
        by_id: &'a BTreeMap<u64, usize>,
    },
}

/// Computes the upper envelope over a snapshot of the pending list,
/// following Section 3.2's six steps. Reuses cached extension lists
/// across iterations of the extension loop.
pub fn compute_upper_envelope(view: &JukeboxView<'_>, pending: &[Request]) -> UpperEnvelope {
    compute_upper_envelope_impl(view, pending, RebuildMode::Cached)
}

/// Reference variant of [`compute_upper_envelope`] that rebuilds every
/// extension list on every iteration instead of reusing the cache. Only
/// exists so tests can assert the cached and fresh computations agree;
/// schedulers always use a cached driver.
pub fn compute_upper_envelope_fresh(view: &JukeboxView<'_>, pending: &[Request]) -> UpperEnvelope {
    compute_upper_envelope_impl(view, pending, RebuildMode::Fresh)
}

/// Incremental variant of [`compute_upper_envelope`]: sources the initial
/// envelope and every extension-list rebuild from `index`, which must
/// have been [`EnvelopeIndex::sync`]ed against `pending`. Produces
/// bit-identical output to the scan-based drivers (asserted in debug
/// builds); the work per rebuild is proportional to the entries on the
/// tape rather than the pending-list length.
pub fn compute_upper_envelope_indexed(
    view: &JukeboxView<'_>,
    pending: &[Request],
    index: &EnvelopeIndex,
) -> UpperEnvelope {
    compute_upper_envelope_impl(view, pending, RebuildMode::Indexed(index))
}

/// Step 1: initial envelope from non-replicated requests (the mounted-
/// head pin is applied by the caller). In the multi-drive extension,
/// every request in `pending` must have a copy on an available tape (the
/// caller filters), and unavailable tapes are never part of the envelope.
fn scan_initial_envelope(view: &JukeboxView<'_>, pending: &[Request], tapes: usize) -> Envelope {
    let catalog = view.catalog;
    let mut env: Envelope = vec![0; tapes];
    for r in pending {
        debug_assert!(
            catalog
                .replicas(r.block)
                .iter()
                .any(|a| view.is_available(a.tape)),
            "snapshot contains a request with no available copy"
        );
        if let [a] = catalog.replicas(r.block) {
            let boundary = &mut env[a.tape.index()];
            *boundary = (*boundary).max(a.slot.0 + 1);
        }
    }
    env
}

fn compute_upper_envelope_impl(
    view: &JukeboxView<'_>,
    pending: &[Request],
    mode: RebuildMode<'_>,
) -> UpperEnvelope {
    let catalog = view.catalog;
    let tapes = catalog.geometry().tapes as usize;
    let n = pending.len();

    let mut env: Envelope = match mode {
        RebuildMode::Indexed(index) => {
            let env = index.initial_envelope(tapes);
            debug_assert_eq!(
                env,
                scan_initial_envelope(view, pending, tapes),
                "index pins diverge from the snapshot scan"
            );
            env
        }
        RebuildMode::Cached | RebuildMode::Fresh => scan_initial_envelope(view, pending, tapes),
    };
    if let Some(m) = view.mounted {
        env[m.index()] = env[m.index()].max(view.head.0);
    }

    let by_id: BTreeMap<u64, usize> = match mode {
        RebuildMode::Indexed(_) => pending
            .iter()
            .enumerate()
            .map(|(i, r)| (r.id.0, i))
            .collect(),
        RebuildMode::Cached | RebuildMode::Fresh => BTreeMap::new(),
    };
    let source = match mode {
        RebuildMode::Indexed(index) => ExtensionSource::Index {
            index,
            by_id: &by_id,
        },
        RebuildMode::Cached | RebuildMode::Fresh => ExtensionSource::Scan { pending },
    };

    let mut assigned: Vec<Option<TapeId>> = vec![None; n];
    let mut counts: Vec<u32> = vec![0; tapes];

    // Step 2 (and re-absorption at each iteration): schedule every
    // request satisfiable inside the current envelope.
    absorb(view, pending, &mut assigned, &mut counts, &env);

    // Steps 3-6: extend along the best prefix, shrink, iterate. The
    // cached extension lists stay valid for any tape whose unassigned
    // set and envelope boundary did not change; after each iteration the
    // diff below invalidates exactly the tapes they did change for (a
    // request's assignment flip dirties every tape holding a replica of
    // its block; assignment *moves* during shrink keep the request
    // assigned and so never touch the unassigned extension lists).
    let mut cache = ExtensionCache::new(tapes);
    let mut was_assigned: Vec<bool> = assigned.iter().map(Option::is_some).collect();
    let mut prev_env = env.clone();
    while assigned.iter().any(Option::is_none) {
        if matches!(mode, RebuildMode::Fresh) {
            cache.invalidate_all();
        }
        extend_once(
            view,
            &source,
            &mut assigned,
            &mut counts,
            &mut env,
            &mut cache,
        );
        shrink(view, pending, &mut assigned, &mut counts, &mut env);
        absorb(view, pending, &mut assigned, &mut counts, &env);
        for (i, was) in was_assigned.iter_mut().enumerate() {
            let now = assigned[i].is_some();
            if now != *was {
                *was = now;
                for a in catalog.replicas(pending[i].block) {
                    cache.invalidate(a.tape);
                }
            }
        }
        for (tape, prev) in catalog.geometry().tape_ids().zip(prev_env.iter_mut()) {
            if env[tape.index()] != *prev {
                *prev = env[tape.index()];
                cache.invalidate(tape);
            }
        }
    }

    UpperEnvelope {
        env,
        assigned: assigned
            .into_iter()
            // simlint: allow(panic, the absorb/extend loop above exits only once every request is assigned)
            .map(|a| a.expect("loop exits with all requests assigned"))
            .collect(),
        counts,
    }
}

/// Step 2: absorb unscheduled requests that are inside the envelope. When
/// several replicas are inside, prefer the currently mounted tape, then
/// the tape with the most scheduled requests that is first in jukebox
/// order after the mounted tape.
fn absorb(
    view: &JukeboxView<'_>,
    pending: &[Request],
    assigned: &mut [Option<TapeId>],
    counts: &mut [u32],
    env: &Envelope,
) {
    let geometry = view.catalog.geometry();
    let anchor = view.mounted.unwrap_or(TapeId(0));
    for (i, r) in pending.iter().enumerate() {
        if assigned[i].is_some() {
            continue;
        }
        let mut choice: Option<(u32, u16, TapeId)> = None; // (count, dist, tape)
        for a in view.catalog.replicas(r.block) {
            if !view.is_available(a.tape) || a.slot.0 >= env[a.tape.index()] {
                continue;
            }
            if view.mounted == Some(a.tape) {
                choice = Some((u32::MAX, 0, a.tape));
                break;
            }
            let c = counts[a.tape.index()];
            let dist = geometry.circular_distance(anchor, a.tape);
            let better = match &choice {
                None => true,
                Some((bc, bd, _)) => c > *bc || (c == *bc && dist < *bd),
            };
            if better {
                choice = Some((c, dist, a.tape));
            }
        }
        if let Some((_, _, tape)) = choice {
            assigned[i] = Some(tape);
            counts[tape.index()] += 1;
        }
    }
}

/// Steps 3-4: compute the incremental bandwidth of every extension-list
/// prefix and extend the envelope along the best one, scheduling its
/// requests.
fn extend_once(
    view: &JukeboxView<'_>,
    source: &ExtensionSource<'_>,
    assigned: &mut [Option<TapeId>],
    counts: &mut [u32],
    env: &mut Envelope,
    cache: &mut ExtensionCache,
) {
    let geometry = view.catalog.geometry();

    // Best = (bandwidth, scheduled-count on tape, tape, prefix length).
    struct Best {
        bw: f64,
        count: u32,
        tape: TapeId,
        prefix: usize,
    }
    let mut best: Option<Best> = None;
    for tape in geometry.tape_ids() {
        if !view.is_available(tape) {
            continue;
        }
        cache.refresh_from(view, source, assigned, env, tape);
        let ext = &cache.tapes[tape.index()];
        let count = counts[tape.index()];
        for (k, &bw) in ext.bws.iter().enumerate() {
            let better = match &best {
                None => true,
                Some(b) => {
                    bw > b.bw
                        || (bw == b.bw && (count > b.count || (count == b.count && tape < b.tape)))
                }
            };
            if better {
                best = Some(Best {
                    bw,
                    count,
                    tape,
                    prefix: k + 1,
                });
            }
        }
    }

    // simlint: allow(panic, the caller loops only while unscheduled requests remain, so some prefix was scored)
    let best = best.expect("extend_once called with unscheduled requests remaining");
    // Apply the chosen prefix from the winner's cached extension list:
    // every unassigned request with a copy at or before the prefix's
    // outermost slot joins the winner tape.
    let tape = best.tape;
    let ext = &cache.tapes[tape.index()];
    let edge = ext.slots[best.prefix - 1];
    for &(slot, i) in &ext.entries {
        if slot > edge {
            break;
        }
        assigned[i] = Some(tape);
        counts[tape.index()] += 1;
    }
    env[tape.index()] = env[tape.index()].max(edge.0 + 1);
}

/// Step 5: shrink the envelope wherever the block scheduled at a tape's
/// outer edge is replicated inside another tape's envelope. Shrinks the
/// tape with the fewest scheduled requests first, breaking ties toward
/// the lowest tape in jukebox order, and repeats until no envelope can
/// shrink further.
fn shrink(
    view: &JukeboxView<'_>,
    pending: &[Request],
    assigned: &mut [Option<TapeId>],
    counts: &mut [u32],
    env: &mut Envelope,
) {
    let catalog = view.catalog;
    let geometry = catalog.geometry();
    let anchor = view.mounted.unwrap_or(TapeId(0));
    loop {
        // Collect shrink candidates: (count, tape a, target tape b).
        let mut candidate: Option<(u32, TapeId, TapeId)> = None;
        for a in geometry.tape_ids() {
            // The outer edge must be defined by a scheduled request.
            let edge = env[a.index()];
            if edge == 0 {
                continue;
            }
            // The head position pins the mounted tape's envelope: there is
            // nothing to gain by moving the edge block elsewhere.
            if view.mounted == Some(a) && view.head.0 >= edge {
                continue;
            }
            // Find the requests assigned to `a` at the edge slot.
            let edge_slot = SlotIndex(edge - 1);
            let mut edge_block = None;
            for (i, r) in pending.iter().enumerate() {
                if assigned[i] != Some(a) {
                    continue;
                }
                if catalog.copy_on_tape(r.block, a).map(|x| x.slot) == Some(edge_slot) {
                    edge_block = Some(r.block);
                    break;
                }
            }
            let Some(block) = edge_block else {
                continue; // edge pinned by the head position, not a request
            };
            let replicas = catalog.replicas(block);
            if replicas.len() < 2 {
                continue; // non-replicated blocks cannot move
            }
            // Candidate target: a copy inside another tape's envelope.
            let mut target: Option<(u32, u16, TapeId)> = None;
            for c in replicas {
                if c.tape == a || !view.is_available(c.tape) || c.slot.0 >= env[c.tape.index()] {
                    continue;
                }
                if view.mounted == Some(c.tape) {
                    target = Some((u32::MAX, 0, c.tape));
                    break;
                }
                let cnt = counts[c.tape.index()];
                let dist = geometry.circular_distance(anchor, c.tape);
                let better = match &target {
                    None => true,
                    Some((bc, bd, _)) => cnt > *bc || (cnt == *bc && dist < *bd),
                };
                if better {
                    target = Some((cnt, dist, c.tape));
                }
            }
            let Some((_, _, b)) = target else { continue };
            let cnt_a = counts[a.index()];
            let better = match &candidate {
                None => true,
                Some((bc, ba, _)) => cnt_a < *bc || (cnt_a == *bc && a < *ba),
            };
            if better {
                candidate = Some((cnt_a, a, b));
            }
        }
        let Some((_, a, b)) = candidate else { break };

        // Move every request reading the edge block from a to b.
        let edge_slot = SlotIndex(env[a.index()] - 1);
        for (i, r) in pending.iter().enumerate() {
            if assigned[i] == Some(a)
                && catalog.copy_on_tape(r.block, a).map(|x| x.slot) == Some(edge_slot)
            {
                assigned[i] = Some(b);
                counts[a.index()] -= 1;
                counts[b.index()] += 1;
            }
        }
        // Shrink a's envelope back to its next scheduled request (or to
        // the head position on the mounted tape, or to zero).
        let mut new_edge: u32 = 0;
        for (i, r) in pending.iter().enumerate() {
            if assigned[i] == Some(a) {
                if let Some(x) = catalog.copy_on_tape(r.block, a) {
                    new_edge = new_edge.max(x.slot.0 + 1);
                }
            }
        }
        if view.mounted == Some(a) {
            new_edge = new_edge.max(view.head.0);
        }
        debug_assert!(new_edge < env[a.index()], "shrink must make progress");
        env[a.index()] = new_edge;
    }
}

/// Applies the envelope tape-switch policy: for each tape, the candidate
/// set is every pending request satisfiable inside that tape's envelope
/// (in general a superset of the per-tape assignment).
fn select_envelope_tape(
    policy: EnvelopePolicy,
    view: &JukeboxView<'_>,
    pending: &[Request],
    env: &Envelope,
) -> Option<TapeId> {
    let catalog = view.catalog;
    let geometry = catalog.geometry();
    let anchor = view.mounted.unwrap_or(TapeId(0));
    let block = catalog.block_size();

    // In-envelope candidate sets per tape.
    let in_env = |r: &Request, tape: TapeId| -> Option<SlotIndex> {
        catalog
            .copy_on_tape(r.block, tape)
            .filter(|a| a.slot.0 < env[tape.index()])
            .map(|a| a.slot)
    };

    let eligible: Option<Vec<TapeId>> = match policy {
        EnvelopePolicy::OldestRequest => {
            let oldest = pending.first()?;
            Some(
                geometry
                    .tape_ids()
                    .filter(|&t| in_env(oldest, t).is_some())
                    .collect(),
            )
        }
        _ => None,
    };

    // One pass over the pending list builds every tape's in-envelope
    // candidate set (a replica appears at most once per tape, so this is
    // exactly the per-tape scan it replaces).
    let mut slots_by_tape: Vec<Vec<SlotIndex>> = vec![Vec::new(); geometry.tapes as usize];
    let mut count_by_tape: Vec<usize> = vec![0; geometry.tapes as usize];
    for r in pending {
        for a in catalog.replicas(r.block) {
            if a.slot.0 < env[a.tape.index()] {
                slots_by_tape[a.tape.index()].push(a.slot);
                count_by_tape[a.tape.index()] += 1;
            }
        }
    }

    let mut best: Option<(f64, u16, TapeId)> = None;
    for tape in geometry.tape_ids() {
        if !view.is_available(tape) {
            continue;
        }
        if let Some(list) = &eligible {
            if !list.contains(&tape) {
                continue;
            }
        }
        let slots = &mut slots_by_tape[tape.index()];
        let request_count = count_by_tape[tape.index()];
        if slots.is_empty() {
            continue;
        }
        slots.sort_unstable();
        slots.dedup();
        let score = match policy {
            EnvelopePolicy::MaxBandwidth => {
                let cost = mount_cost(view, tape)
                    + walk_cost(
                        view.timing,
                        block,
                        start_head(view, tape),
                        slots.iter().copied(),
                    );
                cost.bytes_per_sec(slots.len() as u64 * block.bytes())
            }
            // OldestRequest restricts eligibility and then ranks by
            // request count, like the basic oldest-request policies.
            EnvelopePolicy::MaxRequests | EnvelopePolicy::OldestRequest => request_count as f64,
        };
        let dist = geometry.circular_distance(anchor, tape);
        let better = match &best {
            None => true,
            Some((bs, bd, _)) => score > *bs || (score == *bs && dist < *bd),
        };
        if better {
            best = Some((score, dist, tape));
        }
    }
    best.map(|(_, _, t)| t)
}

#[cfg(test)]
mod tests {
    use super::*;
    use tapesim_layout::{BlockId, Catalog, CatalogBuilder};
    use tapesim_model::{BlockSize, JukeboxGeometry, PhysicalAddr, SimTime, TimingModel};
    use tapesim_workload::RequestId;

    fn req(id: u64, blockid: u32) -> Request {
        Request {
            id: RequestId(id),
            block: BlockId(blockid),
            arrival: SimTime::ZERO,
        }
    }

    fn place(b: &mut CatalogBuilder, blk: u32, t: u16, s: u32) {
        b.place(
            BlockId(blk),
            PhysicalAddr {
                tape: TapeId(t),
                slot: SlotIndex(s),
            },
        )
        .unwrap();
    }

    fn view<'a>(
        catalog: &'a Catalog,
        timing: &'a TimingModel,
        mounted: Option<TapeId>,
        head: SlotIndex,
    ) -> JukeboxView<'a> {
        JukeboxView {
            catalog,
            timing,
            mounted,
            head,
            now: SimTime::ZERO,
            unavailable: &[],
            offline: &[],
            fleet: crate::api::FleetView::SINGLE,
        }
    }

    /// The paper's Figure 2: tape 1 holds A, B and a far copy of D; tape 0
    /// holds C with the other copy of D right after it. With the head at
    /// the beginning of tape 1, the envelope algorithm must fetch D from
    /// tape 0 (extending past C) instead of running to the end of tape 1.
    fn figure2_catalog() -> Catalog {
        let g = JukeboxGeometry::new(2, 500);
        let mut b = Catalog::builder(g, BlockSize::from_mb(1), 4, 0);
        // Blocks: 0 = A, 1 = B, 2 = C, 3 = D.
        place(&mut b, 0, 1, 10); // A on tape 1
        place(&mut b, 1, 1, 20); // B on tape 1
        place(&mut b, 2, 0, 30); // C on tape 0
        place(&mut b, 3, 0, 31); // D replica right after C
        place(&mut b, 3, 1, 450); // D replica at the far end of tape 1
        b.build().unwrap()
    }

    #[test]
    fn figure2_example_fetches_d_from_tape0() {
        let c = figure2_catalog();
        let t = TimingModel::paper_default();
        let v = view(&c, &t, Some(TapeId(1)), SlotIndex(0));
        let pending = [req(0, 0), req(1, 1), req(2, 2), req(3, 3)];
        let upper = compute_upper_envelope(&v, &pending);
        // Non-replicated: A, B pin tape 1 to 21; C pins tape 0 to 31.
        // D extends tape 0 to 32 (cheap) rather than tape 1 to 451.
        assert_eq!(upper.env, vec![32, 21]);
        assert_eq!(
            upper.assigned,
            vec![TapeId(1), TapeId(1), TapeId(0), TapeId(0)]
        );
        assert_eq!(upper.counts, vec![2, 2]);
    }

    #[test]
    fn greedy_would_have_gone_to_the_tape_end() {
        // Sanity check of the scenario: without the envelope's global
        // view, tape 1's own schedule for {A, B, D} runs to slot 450.
        let c = figure2_catalog();
        let d_on_tape1 = c.copy_on_tape(BlockId(3), TapeId(1)).unwrap();
        assert_eq!(d_on_tape1.slot, SlotIndex(450));
    }

    /// Shrink scenario: X is extended onto tape 0 first (cheap, envelope
    /// already open there); a later extension of tape 1 encloses X's
    /// other copy, so step 5 moves X to tape 1 and shrinks tape 0.
    #[test]
    fn shrink_moves_edge_block_and_contracts_envelope() {
        let g = JukeboxGeometry::new(3, 500);
        let mut b = Catalog::builder(g, BlockSize::from_mb(1), 4, 0);
        place(&mut b, 0, 0, 9); // N0: non-replicated, pins tape 0 to 10
        place(&mut b, 1, 0, 10); // X on tape 0, just past N0
        place(&mut b, 1, 1, 30); // X's replica on tape 1
        place(&mut b, 2, 1, 60); // Z on tape 1 ...
        place(&mut b, 2, 2, 300); // ... and far out on tape 2
        place(&mut b, 3, 2, 490); // filler so the catalog has a block 3
        let c = b.build().unwrap();
        let t = TimingModel::paper_default();
        let v = view(&c, &t, None, SlotIndex(0));
        let pending = [req(0, 0), req(1, 1), req(2, 2)];
        let upper = compute_upper_envelope(&v, &pending);
        // X ends up on tape 1 (its copy at 30 is inside tape 1's envelope
        // once Z extends it to 61), and tape 0 shrinks back to N0.
        assert_eq!(upper.env, vec![10, 61, 0]);
        assert_eq!(upper.assigned, vec![TapeId(0), TapeId(1), TapeId(1)]);
        assert_eq!(upper.counts, vec![1, 2, 0]);
    }

    #[test]
    fn no_replication_envelope_covers_exactly_the_requests() {
        // With single-copy blocks the upper envelope is just the initial
        // envelope, and every request is absorbed onto its only tape.
        let g = JukeboxGeometry::new(2, 500);
        let mut b = Catalog::builder(g, BlockSize::from_mb(1), 4, 0);
        place(&mut b, 0, 0, 100);
        place(&mut b, 1, 0, 200);
        place(&mut b, 2, 1, 50);
        place(&mut b, 3, 1, 400);
        let c = b.build().unwrap();
        let t = TimingModel::paper_default();
        let v = view(&c, &t, None, SlotIndex(0));
        let pending = [req(0, 0), req(1, 1), req(2, 2), req(3, 3)];
        let upper = compute_upper_envelope(&v, &pending);
        assert_eq!(upper.env, vec![201, 401]);
        assert_eq!(
            upper.assigned,
            vec![TapeId(0), TapeId(0), TapeId(1), TapeId(1)]
        );
    }

    #[test]
    fn major_reschedule_extracts_only_in_envelope_requests() {
        let c = figure2_catalog();
        let t = TimingModel::paper_default();
        let v = view(&c, &t, Some(TapeId(1)), SlotIndex(0));
        let mut pending: PendingList = vec![req(0, 0), req(1, 1), req(2, 2), req(3, 3)]
            .into_iter()
            .collect();
        let mut s = EnvelopeScheduler::new(EnvelopePolicy::MaxBandwidth);
        let plan = s.major_reschedule(&v, &mut pending).unwrap();
        // Mounted tape 1 has A and B cheap (no switch); the envelope on
        // tape 1 is only 21 slots, so D@450 is NOT part of tape 1's sweep.
        assert_eq!(plan.tape, TapeId(1));
        let slots: Vec<u32> = plan.list.forward_stops().map(|r| r.slot.0).collect();
        assert_eq!(slots, vec![10, 20]);
        // C and D remain pending for the tape 0 sweep.
        assert_eq!(pending.len(), 2);
        assert_eq!(s.current_envelope(), &vec![32, 21]);
    }

    #[test]
    fn incremental_inserts_inside_envelope_ahead_of_head() {
        let c = figure2_catalog();
        let t = TimingModel::paper_default();
        let v = view(&c, &t, Some(TapeId(1)), SlotIndex(0));
        let mut pending: PendingList = vec![req(0, 0), req(1, 1), req(2, 2), req(3, 3)]
            .into_iter()
            .collect();
        let mut s = EnvelopeScheduler::new(EnvelopePolicy::MaxBandwidth);
        let mut plan = s.major_reschedule(&v, &mut pending).unwrap();
        // New request for B (tape 1 slot 20, inside envelope 21, ahead of
        // head 11 after reading A).
        let v2 = view(&c, &t, Some(TapeId(1)), SlotIndex(11));
        let out = s.on_arrival(&v2, TapeId(1), &mut plan.list, req(9, 1), &mut pending);
        assert_eq!(out, ArrivalOutcome::Inserted);
    }

    #[test]
    fn incremental_reverse_inserts_behind_head() {
        let c = figure2_catalog();
        let t = TimingModel::paper_default();
        let v = view(&c, &t, Some(TapeId(1)), SlotIndex(0));
        let mut pending: PendingList = vec![req(0, 0), req(1, 1), req(2, 2), req(3, 3)]
            .into_iter()
            .collect();
        let mut s = EnvelopeScheduler::new(EnvelopePolicy::MaxBandwidth);
        let mut plan = s.major_reschedule(&v, &mut pending).unwrap();
        // Head has passed slot 10; a new request for A (slot 10) lands in
        // the reverse phase.
        let v2 = view(&c, &t, Some(TapeId(1)), SlotIndex(15));
        let out = s.on_arrival(&v2, TapeId(1), &mut plan.list, req(9, 0), &mut pending);
        assert_eq!(out, ArrivalOutcome::Inserted);
        let rev: Vec<u32> = plan.list.reverse_stops().map(|r| r.slot.0).collect();
        assert_eq!(rev, vec![10]);
    }

    #[test]
    fn incremental_defers_requests_inside_other_envelopes() {
        let c = figure2_catalog();
        let t = TimingModel::paper_default();
        let v = view(&c, &t, Some(TapeId(1)), SlotIndex(0));
        let mut pending: PendingList = vec![req(0, 0), req(1, 1), req(2, 2), req(3, 3)]
            .into_iter()
            .collect();
        let mut s = EnvelopeScheduler::new(EnvelopePolicy::MaxBandwidth);
        let mut plan = s.major_reschedule(&v, &mut pending).unwrap();
        // New request for C: inside tape 0's envelope, not on tape 1 at
        // all -> deferred, envelope untouched.
        let before = s.current_envelope().clone();
        let out = s.on_arrival(&v, TapeId(1), &mut plan.list, req(9, 2), &mut pending);
        assert_eq!(out, ArrivalOutcome::Deferred);
        assert_eq!(s.current_envelope(), &before);
        assert_eq!(pending.len(), 3);
    }

    #[test]
    fn incremental_extends_envelope_for_uncovered_requests() {
        // A fresh block far out on the mounted tape: the envelope extends
        // and the request joins the sweep.
        let g = JukeboxGeometry::new(2, 500);
        let mut b = Catalog::builder(g, BlockSize::from_mb(1), 3, 0);
        place(&mut b, 0, 0, 10);
        place(&mut b, 1, 0, 50);
        place(&mut b, 2, 1, 100);
        let c = b.build().unwrap();
        let t = TimingModel::paper_default();
        let v = view(&c, &t, Some(TapeId(0)), SlotIndex(0));
        let mut pending: PendingList = vec![req(0, 0)].into_iter().collect();
        let mut s = EnvelopeScheduler::new(EnvelopePolicy::MaxBandwidth);
        let mut plan = s.major_reschedule(&v, &mut pending).unwrap();
        assert_eq!(s.current_envelope(), &vec![11, 0]);
        let out = s.on_arrival(&v, TapeId(0), &mut plan.list, req(9, 1), &mut pending);
        assert_eq!(out, ArrivalOutcome::Inserted);
        assert_eq!(s.current_envelope(), &vec![51, 0]);
        // And an off-tape block is deferred but still extends its tape.
        let out2 = s.on_arrival(&v, TapeId(0), &mut plan.list, req(10, 2), &mut pending);
        assert_eq!(out2, ArrivalOutcome::Deferred);
        assert_eq!(s.current_envelope(), &vec![51, 101]);
    }

    #[test]
    fn empty_pending_returns_none() {
        let c = figure2_catalog();
        let t = TimingModel::paper_default();
        let v = view(&c, &t, None, SlotIndex(0));
        let mut s = EnvelopeScheduler::new(EnvelopePolicy::MaxRequests);
        assert!(s.major_reschedule(&v, &mut PendingList::new()).is_none());
    }

    #[test]
    fn policy_names() {
        assert_eq!(
            EnvelopeScheduler::new(EnvelopePolicy::OldestRequest).name(),
            "envelope oldest-request"
        );
        assert_eq!(EnvelopePolicy::ALL.len(), 3);
    }

    #[test]
    fn envelope_after_absorb_leaves_extensions_unassigned() {
        let c = figure2_catalog();
        let t = TimingModel::paper_default();
        let v = view(&c, &t, Some(TapeId(1)), SlotIndex(0));
        let pending = [req(0, 0), req(1, 1), req(2, 2), req(3, 3)];
        let (env, assigned) = envelope_after_absorb(&v, &pending);
        assert_eq!(env, vec![31, 21]);
        // D (index 3) is outside both initial envelopes.
        assert_eq!(assigned[3], None);
        assert!(assigned[..3].iter().all(Option::is_some));
    }
}
