//! Brute-force optimal schedule extension — the test oracle for the
//! Section 3.3 complexity results.
//!
//! Theorem 1 states that finding a minimum-cost extension of the
//! post-absorption schedule `S1` is NP-hard, so the envelope algorithm is
//! greedy; Theorem 2 bounds its extension cost within a harmonic factor of
//! optimal:
//!
//! ```text
//! C(S2) - C(S1) <= Hn * (C(S2opt) - C(S1)) - n*(Hn - 1)*(Cs + Cr) + n*Cd
//! ```
//!
//! where `n` is the number of requests unscheduled after step 2, `Cs` the
//! startup cost of a short forward locate, `Cr` the block transfer time,
//! `Cd` the difference between long- and short-distance forward locate
//! startups, and `Hn` the n-th harmonic number.
//!
//! This module evaluates extension costs with the same out-and-back
//! accounting the envelope algorithm uses (Section 3.2, step 3) and finds
//! the true optimum by exhaustive enumeration over the replica choice of
//! each unscheduled request — exponential, so only usable on the small
//! instances the property tests construct.
#![allow(clippy::cast_possible_truncation)] // the oracle is capped at test-sized instances
#![allow(clippy::cast_precision_loss)] // harmonic-series terms use small n

use tapesim_model::{Micros, SlotIndex, TapeId};
use tapesim_workload::Request;

use crate::api::JukeboxView;
use crate::cost::walk_cost;
use crate::envelope::Envelope;

/// Extension cost of assigning a set of requests to tapes, measured from
/// the baseline envelope `env1`: for each tape, the cost of locating from
/// the envelope boundary out through the newly scheduled slots (ascending)
/// and back to the boundary, plus a tape-switch charge the first time a
/// tape with an empty envelope (other than the mounted tape) is opened.
/// Requests whose chosen copy already lies inside `env1` cost nothing.
pub fn extension_cost(
    view: &JukeboxView<'_>,
    env1: &Envelope,
    pending: &[Request],
    assignment: &[TapeId],
) -> Micros {
    assert_eq!(pending.len(), assignment.len());
    let catalog = view.catalog;
    let block = catalog.block_size();
    let tapes = catalog.geometry().tapes as usize;

    // Per tape, the new slots outside the baseline envelope.
    let mut new_slots: Vec<Vec<SlotIndex>> = vec![Vec::new(); tapes];
    for (r, &tape) in pending.iter().zip(assignment) {
        let addr = catalog
            .copy_on_tape(r.block, tape)
            // simlint: allow(panic, oracle precondition; assignments only name tapes holding a copy)
            .expect("request assigned to a tape without a copy");
        if addr.slot.0 >= env1[tape.index()] {
            new_slots[tape.index()].push(addr.slot);
        }
    }

    let mut total = Micros::ZERO;
    for (t, slots) in new_slots.iter_mut().enumerate() {
        slots.sort_unstable();
        slots.dedup();
        let Some(&last_slot) = slots.last() else {
            continue;
        };
        let start = SlotIndex(env1[t]);
        let tape = TapeId(t as u16);
        if start == SlotIndex::BOT && view.mounted != Some(tape) {
            total += view.timing.switch_time();
        }
        total += walk_cost(view.timing, block, start, slots.iter().copied());
        let (back, _) = view.timing.drive.locate(last_slot.next(), start, block);
        total += back;
    }
    total
}

/// Exhaustively finds the cheapest extension: for every unscheduled
/// request, tries each replica tape. `base_assignment` supplies the
/// (fixed) tapes of already-absorbed requests; `None` entries are free.
///
/// Returns the optimal cost and one optimal full assignment.
///
/// # Panics
/// Panics if the search space exceeds `10^6` combinations — the oracle is
/// for test-sized instances only.
pub fn brute_force_optimal_extension(
    view: &JukeboxView<'_>,
    env1: &Envelope,
    pending: &[Request],
    base_assignment: &[Option<TapeId>],
) -> (Micros, Vec<TapeId>) {
    assert_eq!(pending.len(), base_assignment.len());
    let free: Vec<usize> = base_assignment
        .iter()
        .enumerate()
        .filter_map(|(i, a)| a.is_none().then_some(i))
        .collect();
    let space: usize = free
        .iter()
        .map(|&i| view.catalog.replicas(pending[i].block).len())
        .product();
    assert!(
        space <= 1_000_000,
        "oracle search space too large ({space} combinations)"
    );

    let mut assignment: Vec<TapeId> = base_assignment
        .iter()
        .zip(pending)
        // simlint: allow(panic, catalog guarantees at least one replica per block)
        .map(|(a, r)| a.unwrap_or_else(|| view.catalog.replicas(r.block)[0].tape))
        .collect();
    let mut best_cost = Micros::from_micros(u64::MAX);
    let mut best_assignment = assignment.clone();

    // Odometer enumeration over the free requests' replica choices.
    let mut digits = vec![0usize; free.len()];
    loop {
        for (d, &i) in digits.iter().zip(&free) {
            assignment[i] = view.catalog.replicas(pending[i].block)[*d].tape;
        }
        let cost = extension_cost(view, env1, pending, &assignment);
        if cost < best_cost {
            best_cost = cost;
            best_assignment = assignment.clone();
        }
        // Increment the odometer.
        let mut k = 0;
        loop {
            if k == digits.len() {
                return (best_cost, best_assignment);
            }
            digits[k] += 1;
            if digits[k] < view.catalog.replicas(pending[free[k]].block).len() {
                break;
            }
            digits[k] = 0;
            k += 1;
        }
    }
}

/// The Theorem 2 right-hand side, in seconds:
/// `Hn * opt - n*(Hn - 1)*(Cs + Cr) + n*Cd`.
pub fn theorem2_bound_secs(view: &JukeboxView<'_>, n: usize, opt_extension_secs: f64) -> f64 {
    if n == 0 {
        return 0.0;
    }
    let drive = &view.timing.drive;
    let block_mb = view.catalog.block_size().mb_f64();
    let cs = drive.locate.fwd_short.startup_s;
    let cr = drive.read.per_mb_s * block_mb;
    let cd = drive.locate.fwd_long.startup_s - drive.locate.fwd_short.startup_s;
    let hn: f64 = (1..=n).map(|i| 1.0 / i as f64).sum();
    hn * opt_extension_secs - n as f64 * (hn - 1.0) * (cs + cr) + n as f64 * cd
}

#[cfg(test)]
mod tests {
    use super::*;
    use tapesim_layout::{BlockId, Catalog};
    use tapesim_model::{BlockSize, JukeboxGeometry, PhysicalAddr, SimTime, TimingModel};
    use tapesim_workload::RequestId;

    fn req(id: u64, blockid: u32) -> Request {
        Request {
            id: RequestId(id),
            block: BlockId(blockid),
            arrival: SimTime::ZERO,
        }
    }

    /// 3 tapes x 500 slots of 1 MB. Block 0 on t0@10 and t1@20; block 1 on
    /// t2@400 only; block 2 on t1@25 and t2@30.
    fn catalog() -> Catalog {
        let g = JukeboxGeometry::new(3, 500);
        let mut b = Catalog::builder(g, BlockSize::from_mb(1), 3, 0);
        let place = |b: &mut tapesim_layout::CatalogBuilder, blk: u32, t: u16, s: u32| {
            b.place(
                BlockId(blk),
                PhysicalAddr {
                    tape: TapeId(t),
                    slot: SlotIndex(s),
                },
            )
            .unwrap()
        };
        place(&mut b, 0, 0, 10);
        place(&mut b, 0, 1, 20);
        place(&mut b, 1, 2, 400);
        place(&mut b, 2, 1, 25);
        place(&mut b, 2, 2, 30);
        b.build().unwrap()
    }

    #[test]
    fn extension_cost_is_zero_inside_envelope() {
        let c = catalog();
        let t = TimingModel::paper_default();
        let view = JukeboxView {
            catalog: &c,
            timing: &t,
            mounted: None,
            head: SlotIndex(0),
            now: SimTime::ZERO,
            unavailable: &[],
            offline: &[],
            fleet: crate::api::FleetView::SINGLE,
        };
        let pending = [req(0, 0)];
        // Envelope already covers t0 up to slot 11.
        let env = vec![11, 0, 0];
        let cost = extension_cost(&view, &env, &pending, &[TapeId(0)]);
        assert_eq!(cost, Micros::ZERO);
    }

    #[test]
    fn extension_cost_includes_switch_for_fresh_tape() {
        let c = catalog();
        let t = TimingModel::paper_default();
        let view = JukeboxView {
            catalog: &c,
            timing: &t,
            mounted: Some(TapeId(0)),
            head: SlotIndex(0),
            now: SimTime::ZERO,
            unavailable: &[],
            offline: &[],
            fleet: crate::api::FleetView::SINGLE,
        };
        let pending = [req(0, 0)];
        let env = vec![0, 0, 0];
        // On mounted tape 0: no switch charge.
        let on_mounted = extension_cost(&view, &env, &pending, &[TapeId(0)]);
        // On tape 1: same shape of walk (different slot) plus 81 s switch.
        let on_other = extension_cost(&view, &env, &pending, &[TapeId(1)]);
        assert!(on_other > on_mounted + Micros::from_secs(80));
    }

    #[test]
    fn brute_force_picks_the_cheap_replica() {
        let c = catalog();
        let t = TimingModel::paper_default();
        let view = JukeboxView {
            catalog: &c,
            timing: &t,
            mounted: None,
            head: SlotIndex(0),
            now: SimTime::ZERO,
            unavailable: &[],
            offline: &[],
            fleet: crate::api::FleetView::SINGLE,
        };
        // Request 0 (block 1) pins tape 2's envelope implicitly? No —
        // env1 is given. Say tape 2 is already open to slot 401.
        let env1 = vec![0, 0, 401];
        // Block 2 has copies on t1@25 (fresh tape, switch) and t2@30
        // (inside the open envelope: free!).
        let pending = [req(0, 2)];
        let (cost, assign) = brute_force_optimal_extension(&view, &env1, &pending, &[None]);
        assert_eq!(assign, vec![TapeId(2)]);
        assert_eq!(cost, Micros::ZERO);
    }

    #[test]
    fn brute_force_enumerates_all_choices() {
        let c = catalog();
        let t = TimingModel::paper_default();
        let view = JukeboxView {
            catalog: &c,
            timing: &t,
            mounted: Some(TapeId(0)),
            head: SlotIndex(0),
            now: SimTime::ZERO,
            unavailable: &[],
            offline: &[],
            fleet: crate::api::FleetView::SINGLE,
        };
        let env1 = vec![0, 0, 0];
        // Block 0: t0@10 (mounted, no switch) vs t1@20 (switch) — t0 wins.
        let pending = [req(0, 0)];
        let (opt, assign) = brute_force_optimal_extension(&view, &env1, &pending, &[None]);
        assert_eq!(assign, vec![TapeId(0)]);
        let manual = extension_cost(&view, &env1, &pending, &[TapeId(0)]);
        assert_eq!(opt, manual);
        // And the optimum is genuinely the min over both options.
        let alt = extension_cost(&view, &env1, &pending, &[TapeId(1)]);
        assert!(opt <= alt);
    }

    #[test]
    fn theorem2_bound_grows_with_n() {
        let c = catalog();
        let t = TimingModel::paper_default();
        let view = JukeboxView {
            catalog: &c,
            timing: &t,
            mounted: None,
            head: SlotIndex(0),
            now: SimTime::ZERO,
            unavailable: &[],
            offline: &[],
            fleet: crate::api::FleetView::SINGLE,
        };
        assert_eq!(theorem2_bound_secs(&view, 0, 0.0), 0.0);
        let b1 = theorem2_bound_secs(&view, 1, 100.0);
        // H1 = 1: bound = opt + Cd.
        assert!((b1 - (100.0 + 9.508)).abs() < 1e-9);
        let b2 = theorem2_bound_secs(&view, 2, 100.0);
        assert!(b2 > b1);
    }
}
