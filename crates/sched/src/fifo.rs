//! The trivial FIFO scheduling algorithm (Section 3.1).
//!
//! FIFO services requests strictly in their order of arrival. For random
//! requests to a tape jukebox this gives terrible performance: most
//! retrievals incur a tape rewind, switch, and a long locate. It is
//! included as the baseline that motivates every other algorithm.

use crate::api::{JukeboxView, PendingList, Scheduler, ServiceList, SweepPlan};

/// The FIFO scheduler: one request per sweep, in arrival order.
#[derive(Debug, Clone, Default)]
pub struct FifoScheduler;

impl FifoScheduler {
    /// Creates a FIFO scheduler.
    pub fn new() -> Self {
        FifoScheduler
    }
}

impl Scheduler for FifoScheduler {
    fn name(&self) -> &str {
        "fifo"
    }

    fn major_reschedule(
        &mut self,
        view: &JukeboxView<'_>,
        pending: &mut PendingList,
    ) -> Option<SweepPlan> {
        // The first (oldest) request with a copy on an available tape.
        // Satisfy it from the mounted tape when possible; otherwise from
        // the copy on the lowest available tape in jukebox order.
        let pick = pending.iter().find_map(|r| {
            let replicas = view.catalog.replicas(r.block);
            view.mounted
                .filter(|&m| view.is_available(m))
                .and_then(|m| replicas.iter().find(|a| a.tape == m))
                .or_else(|| replicas.iter().find(|a| view.is_available(a.tape)))
                .map(|addr| (*r, *addr))
        })?;
        let (oldest, addr) = pick;
        let taken = pending.extract(|r| r.id == oldest.id);
        debug_assert_eq!(taken.len(), 1);
        let mut list = ServiceList::new();
        list.insert_forward(addr.slot, oldest);
        Some(SweepPlan {
            tape: addr.tape,
            list,
        })
    }
    // Incremental scheduler: the default (defer everything).
}

#[cfg(test)]
mod tests {
    use super::*;
    use tapesim_layout::{BlockId, Catalog};
    use tapesim_model::{
        BlockSize, JukeboxGeometry, PhysicalAddr, SimTime, SlotIndex, TapeId, TimingModel,
    };
    use tapesim_workload::{Request, RequestId};

    /// Block 0 on tapes 0 and 1; block 1 only on tape 1.
    fn catalog() -> Catalog {
        let g = JukeboxGeometry::new(2, 100);
        let mut b = Catalog::builder(g, BlockSize::from_mb(1), 2, 0);
        b.place(
            BlockId(0),
            PhysicalAddr {
                tape: TapeId(0),
                slot: SlotIndex(10),
            },
        )
        .unwrap();
        b.place(
            BlockId(0),
            PhysicalAddr {
                tape: TapeId(1),
                slot: SlotIndex(90),
            },
        )
        .unwrap();
        b.place(
            BlockId(1),
            PhysicalAddr {
                tape: TapeId(1),
                slot: SlotIndex(20),
            },
        )
        .unwrap();
        b.build().unwrap()
    }

    fn req(id: u64, blockid: u32) -> Request {
        Request {
            id: RequestId(id),
            block: BlockId(blockid),
            arrival: SimTime::ZERO,
        }
    }

    #[test]
    fn services_strictly_in_arrival_order() {
        let c = catalog();
        let t = TimingModel::paper_default();
        let v = JukeboxView {
            catalog: &c,
            timing: &t,
            mounted: None,
            head: SlotIndex(0),
            now: SimTime::ZERO,
            unavailable: &[],
            offline: &[],
            fleet: crate::api::FleetView::SINGLE,
        };
        let mut p: PendingList = vec![req(0, 1), req(1, 0)].into_iter().collect();
        let mut s = FifoScheduler::new();
        let plan = s.major_reschedule(&v, &mut p).unwrap();
        assert_eq!(plan.tape, TapeId(1));
        assert_eq!(plan.list.requests(), 1);
        assert_eq!(p.len(), 1);
        assert_eq!(p.oldest().unwrap().id, RequestId(1));
    }

    #[test]
    fn prefers_replica_on_mounted_tape() {
        let c = catalog();
        let t = TimingModel::paper_default();
        let v = JukeboxView {
            catalog: &c,
            timing: &t,
            mounted: Some(TapeId(1)),
            head: SlotIndex(0),
            now: SimTime::ZERO,
            unavailable: &[],
            offline: &[],
            fleet: crate::api::FleetView::SINGLE,
        };
        let mut p: PendingList = vec![req(0, 0)].into_iter().collect();
        let plan = FifoScheduler::new().major_reschedule(&v, &mut p).unwrap();
        assert_eq!(plan.tape, TapeId(1));
        assert_eq!(plan.list.peek().unwrap().0.slot, SlotIndex(90));
    }

    #[test]
    fn falls_back_to_lowest_tape() {
        let c = catalog();
        let t = TimingModel::paper_default();
        let v = JukeboxView {
            catalog: &c,
            timing: &t,
            mounted: None,
            head: SlotIndex(0),
            now: SimTime::ZERO,
            unavailable: &[],
            offline: &[],
            fleet: crate::api::FleetView::SINGLE,
        };
        let mut p: PendingList = vec![req(0, 0)].into_iter().collect();
        let plan = FifoScheduler::new().major_reschedule(&v, &mut p).unwrap();
        assert_eq!(plan.tape, TapeId(0));
    }

    #[test]
    fn empty_pending_returns_none() {
        let c = catalog();
        let t = TimingModel::paper_default();
        let v = JukeboxView {
            catalog: &c,
            timing: &t,
            mounted: None,
            head: SlotIndex(0),
            now: SimTime::ZERO,
            unavailable: &[],
            offline: &[],
            fleet: crate::api::FleetView::SINGLE,
        };
        assert!(FifoScheduler::new()
            .major_reschedule(&v, &mut PendingList::new())
            .is_none());
    }
}
