//! Erasure-read costing: choosing which `k` of a hot block's `k + m`
//! shard cells to read, and pricing the read as the max-completion
//! envelope over the chosen shard tapes.
//!
//! An erasure read (see `tapesim_layout::StripeInfo`) is satisfied by any
//! `k` surviving shards, each on its own tape. The scheduler therefore
//! faces a selection problem replication never has: *which* `k` tapes to
//! mount. This module ranks shards by a pick-cost proxy — mount cost if
//! the tape is not already in a drive, plus the beginning-of-tape locate
//! to the shard's slot — and picks the cheapest `k`, breaking ties by
//! cell id so the choice is deterministic. The read's completion is the
//! *max* over its shard completions (every shard is needed to
//! reconstruct), which is what [`read_envelope`] computes.

use tapesim_layout::{BlockId, Catalog};
use tapesim_model::{Micros, PhysicalAddr, SlotIndex, TapeId, TimingModel};

/// Cost proxy for bringing one shard cell into a drive and reaching it:
/// zero mount cost when the cell's tape is in `mounted` (sorted), else
/// robot exchange + drive load, plus the beginning-of-tape locate to the
/// shard's slot. A deliberate simplification of the full sweep cost
/// model — shard reads join regular sweeps once admitted, so this proxy
/// only has to *rank* shard tapes against each other, not predict
/// absolute completion times.
pub fn shard_pick_cost(
    timing: &TimingModel,
    catalog: &Catalog,
    mounted: &[TapeId],
    addr: PhysicalAddr,
) -> Micros {
    let mount = if mounted.binary_search(&addr.tape).is_ok() {
        Micros::ZERO
    } else {
        timing.robot.exchange() + timing.drive.load()
    };
    let (locate, _) = timing
        .drive
        .locate(SlotIndex::BOT, addr.slot, catalog.block_size());
    mount + locate
}

/// The shard cells an engine should read to satisfy an erasure read of
/// logical block `logical`: exactly `k` cell ids.
///
/// Cold blocks have no parity — their `k` data cells are returned in cell
/// order (they sit contiguously on one tape and stream like a whole-block
/// read). Hot blocks are ranked by `(pick cost, cell id)` over the cells
/// whose tapes are *not* in `lost` (sorted), and the cheapest `k` are
/// returned in cell order. When fewer than `k` shards survive, the
/// result is padded with lost cells (cheapest-ranked first) so it always
/// has length `k`: the engine's dead-copy handling turns the lost
/// entries into failover or a typed unavailability, never this function.
pub fn choose_shards(
    timing: &TimingModel,
    catalog: &Catalog,
    logical: u32,
    mounted: &[TapeId],
    lost: &[TapeId],
) -> Vec<u32> {
    let stripe = catalog
        .stripe()
        // simlint: allow(panic, caller contract; erasure admission only runs on striped catalogs)
        .expect("choose_shards requires an erasure-striped catalog");
    let (first, count) = stripe.cells_of(logical);
    let k = stripe.data_shards() as usize;
    if count == stripe.data_shards() {
        // Cold: no choice to make.
        return (first..first + count).collect();
    }
    // (lost, cost, cell): surviving shards first, each group by (cost,
    // cell) — a total order, so the selection is deterministic.
    let mut ranked: Vec<(bool, Micros, u32)> = (first..first + count)
        .map(|cell| {
            // simlint: allow(panic, striped catalogs store exactly one address per shard cell)
            let addr = catalog.replicas(BlockId(cell))[0];
            let dead = lost.binary_search(&addr.tape).is_ok();
            (dead, shard_pick_cost(timing, catalog, mounted, addr), cell)
        })
        .collect();
    ranked.sort();
    let mut cells: Vec<u32> = ranked.into_iter().take(k).map(|(_, _, c)| c).collect();
    cells.sort_unstable();
    cells
}

/// Max-completion envelope of an erasure read: the read completes when
/// the slowest of its chosen shards completes. `Micros::ZERO` for an
/// empty set.
pub fn read_envelope(costs: impl IntoIterator<Item = Micros>) -> Micros {
    costs.into_iter().max().unwrap_or(Micros::ZERO)
}

#[cfg(test)]
mod tests {
    use super::*;
    use tapesim_layout::StripeInfo;
    use tapesim_model::{BlockSize, JukeboxGeometry};

    /// 4 tapes x 64 shard cells of 8 MB. One hot logical block striped
    /// 2+2 over tapes 0..4 (cells 0..4 at slot 0), one cold block as
    /// cells 4,5 contiguous on tape 0.
    fn striped_catalog() -> Catalog {
        let g = JukeboxGeometry::new(4, 512);
        let mut b = Catalog::builder(g, BlockSize::from_mb(8), 6, 4);
        b.set_stripe(StripeInfo {
            k: 2,
            m: 2,
            logical_blocks: 2,
            logical_hot: 1,
        });
        for j in 0..4u16 {
            b.place(
                BlockId(u32::from(j)),
                PhysicalAddr {
                    tape: TapeId(j),
                    slot: SlotIndex(if j == 0 { 10 } else { 0 }),
                },
            )
            .unwrap();
        }
        for j in 0..2u32 {
            b.place(
                BlockId(4 + j),
                PhysicalAddr {
                    tape: TapeId(0),
                    slot: SlotIndex(20 + j),
                },
            )
            .unwrap();
        }
        b.build().unwrap()
    }

    #[test]
    fn cold_reads_take_their_data_cells() {
        let c = striped_catalog();
        let t = TimingModel::paper_default();
        assert_eq!(choose_shards(&t, &c, 1, &[], &[]), vec![4, 5]);
    }

    #[test]
    fn hot_reads_prefer_mounted_then_cheap_locates() {
        let c = striped_catalog();
        let t = TimingModel::paper_default();
        // Nothing mounted: all mounts cost the same, so the slot-0 shards
        // (cells 1, 2) win over cell 0's slot-10 locate; cell-id tie-break
        // picks 1 and 2 over 3.
        assert_eq!(choose_shards(&t, &c, 0, &[], &[]), vec![1, 2]);
        // Tape 0 mounted: its shard becomes free despite the deeper slot.
        assert_eq!(choose_shards(&t, &c, 0, &[TapeId(0)], &[]), vec![0, 1]);
        // Tape 1 lost: survivors 0, 2, 3 ranked; 2 then 3 beat 0's locate.
        assert_eq!(choose_shards(&t, &c, 0, &[], &[TapeId(1)]), vec![2, 3]);
    }

    #[test]
    fn shortfall_pads_with_lost_cells() {
        let c = striped_catalog();
        let t = TimingModel::paper_default();
        // Three of four shard tapes lost: only cell 3 survives; the
        // result still has k = 2 entries, padded with a lost cell.
        let lost = [TapeId(0), TapeId(1), TapeId(2)];
        let picked = choose_shards(&t, &c, 0, &[], &lost);
        assert_eq!(picked.len(), 2);
        assert!(picked.contains(&3));
    }

    #[test]
    fn envelope_is_the_max() {
        assert_eq!(
            read_envelope([Micros::from_secs(3), Micros::from_secs(7), Micros::ZERO]),
            Micros::from_secs(7)
        );
        assert_eq!(read_envelope(std::iter::empty()), Micros::ZERO);
    }
}
