//! Derived views of a trace: latency percentiles and a per-phase time
//! breakdown.
//!
//! Everything here is computed purely from the event stream, so it works
//! on live [`MemorySink`](super::MemorySink) captures and on traces
//! parsed back from JSONL alike — and can cross-check the engines' own
//! [`MetricsCollector`](crate::MetricsCollector) aggregates.
#![allow(clippy::cast_possible_truncation)] // percentile ranks round within sample-vector bounds
#![allow(clippy::cast_precision_loss)] // sample counts stay far below 2^53

use tapesim_model::Micros;

use super::{TraceEvent, TraceRecord};

/// Where a drive's busy (and idle) time went, summed across all drives.
///
/// Mount time includes rewinds and unmounts — the three segments of a
/// tape switch (§2.1's eject + exchange + load, plus the preceding
/// rewind) — and load-failure retries. Transfer counts both successful
/// reads and delta flushes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct PhaseBreakdown {
    /// Rewind + eject + exchange + load (+ failed-load) time.
    pub mount: Micros,
    /// Locate (head seek) time.
    pub locate: Micros,
    /// Block transfer time, including failed media-error passes.
    pub transfer: Micros,
    /// Rewind time alone (also included in `mount`).
    pub rewind: Micros,
    /// Idle time.
    pub idle: Micros,
    /// Drive-repair downtime.
    pub repair: Micros,
}

impl PhaseBreakdown {
    /// Total accounted time across all phases.
    pub fn total(&self) -> Micros {
        self.mount + self.locate + self.transfer + self.idle + self.repair
    }

    /// A phase's share of the accounted time, in [0, 1].
    pub fn frac(&self, phase: Micros) -> f64 {
        let total = self.total();
        if total.is_zero() {
            0.0
        } else {
            phase.frac_of(total)
        }
    }
}

/// Latency percentiles and phase breakdown for one trace.
#[derive(Debug, Clone, PartialEq)]
pub struct TraceSummary {
    /// Completed requests.
    pub completions: u64,
    /// Permanently failed requests.
    pub failures: u64,
    /// Median response time.
    pub p50: Micros,
    /// 95th-percentile response time.
    pub p95: Micros,
    /// 99th-percentile response time.
    pub p99: Micros,
    /// Worst response time.
    pub max: Micros,
    /// Mean response time.
    pub mean: Micros,
    /// Where drive time went.
    pub phases: PhaseBreakdown,
}

/// Percentile by the same convention as
/// [`MetricsCollector`](crate::MetricsCollector): nearest-rank over a
/// sorted sample, `idx = round((n - 1) * p)`.
fn pct(sorted: &[Micros], p: f64) -> Micros {
    if sorted.is_empty() {
        return Micros::ZERO;
    }
    let idx = ((sorted.len() - 1) as f64 * p).round() as usize;
    sorted[idx]
}

/// Summarizes a trace: response-time percentiles from `complete` events
/// and the per-phase time breakdown from segment durations.
pub fn summarize(trace: &[TraceRecord]) -> TraceSummary {
    let mut delays: Vec<Micros> = Vec::new();
    let mut failures = 0u64;
    let mut phases = PhaseBreakdown::default();
    for rec in trace {
        match rec.event {
            TraceEvent::Complete { delay, .. } => delays.push(delay),
            TraceEvent::RequestFailed { .. } => failures += 1,
            TraceEvent::Mount { dur, .. } | TraceEvent::LoadFailed { dur, .. } => {
                phases.mount += dur
            }
            TraceEvent::Rewind { dur, .. } => {
                phases.rewind += dur;
                phases.mount += dur;
            }
            TraceEvent::Locate { dur, .. } => phases.locate += dur,
            TraceEvent::Read { dur, .. } => phases.transfer += dur,
            TraceEvent::Idle { dur } => phases.idle += dur,
            TraceEvent::DriveRepair { dur } => phases.repair += dur,
            _ => {}
        }
    }
    delays.sort_unstable();
    let mean = if delays.is_empty() {
        Micros::ZERO
    } else {
        Micros::from_micros(delays.iter().map(|d| d.as_micros()).sum::<u64>() / delays.len() as u64)
    };
    TraceSummary {
        completions: delays.len() as u64,
        failures,
        p50: pct(&delays, 0.50),
        p95: pct(&delays, 0.95),
        p99: pct(&delays, 0.99),
        max: delays.last().copied().unwrap_or(Micros::ZERO),
        mean,
        phases,
    }
}

#[cfg(test)]
mod tests {
    use super::super::{TraceEvent, TraceRecord};
    use super::*;
    use tapesim_model::{SimTime, SlotIndex, TapeId};
    use tapesim_sched::SweepPhase;
    use tapesim_workload::RequestId;

    fn rec(seq: u64, event: TraceEvent) -> TraceRecord {
        TraceRecord {
            seq,
            at: SimTime::from_micros(seq),
            drive: 0,
            event,
        }
    }

    #[test]
    fn percentiles_over_completions() {
        let trace: Vec<TraceRecord> = (0..100)
            .map(|i| {
                rec(
                    i,
                    TraceEvent::Complete {
                        req: RequestId(i),
                        tape: TapeId(0),
                        delay: Micros::from_micros((i + 1) * 10),
                    },
                )
            })
            .collect();
        let s = summarize(&trace);
        assert_eq!(s.completions, 100);
        // Nearest-rank on an even count rounds up: idx = round(99 * 0.5) = 50.
        assert_eq!(s.p50, Micros::from_micros(510));
        assert_eq!(s.p99, Micros::from_micros(990));
        assert_eq!(s.max, Micros::from_micros(1000));
        assert_eq!(s.mean, Micros::from_micros(505));
    }

    #[test]
    fn phase_breakdown_accounts_segments() {
        let trace = vec![
            rec(
                0,
                TraceEvent::Mount {
                    tape: TapeId(0),
                    dur: Micros::from_micros(100),
                },
            ),
            rec(
                1,
                TraceEvent::Locate {
                    tape: TapeId(0),
                    from: SlotIndex(0),
                    to: SlotIndex(4),
                    dur: Micros::from_micros(50),
                },
            ),
            rec(
                2,
                TraceEvent::Read {
                    tape: TapeId(0),
                    slot: SlotIndex(4),
                    phase: SweepPhase::Forward,
                    dur: Micros::from_micros(30),
                },
            ),
            rec(
                3,
                TraceEvent::Rewind {
                    tape: TapeId(0),
                    from: SlotIndex(4),
                    dur: Micros::from_micros(20),
                },
            ),
            rec(
                4,
                TraceEvent::Idle {
                    dur: Micros::from_micros(200),
                },
            ),
        ];
        let s = summarize(&trace);
        assert_eq!(s.phases.mount, Micros::from_micros(120)); // mount + rewind
        assert_eq!(s.phases.rewind, Micros::from_micros(20));
        assert_eq!(s.phases.locate, Micros::from_micros(50));
        assert_eq!(s.phases.transfer, Micros::from_micros(30));
        assert_eq!(s.phases.idle, Micros::from_micros(200));
        assert_eq!(s.phases.total(), Micros::from_micros(400));
        assert!((s.phases.frac(s.phases.idle) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn empty_trace_summarizes_to_zeroes() {
        let s = summarize(&[]);
        assert_eq!(s.completions, 0);
        assert_eq!(s.p99, Micros::ZERO);
        assert_eq!(s.phases.total(), Micros::ZERO);
    }
}
