//! Trace sinks: where recorded events go.

use std::collections::VecDeque;
use std::io::{self, Write};

use super::TraceRecord;

/// A consumer of trace records.
///
/// The engines call [`TraceSink::enabled`] once per run; when it returns
/// false no events are constructed at all, making the null sink free.
pub trait TraceSink {
    /// Whether this sink wants events. Defaults to true.
    fn enabled(&self) -> bool {
        true
    }

    /// Consumes one record. Only called when [`TraceSink::enabled`]
    /// returned true at run start.
    fn record(&mut self, rec: TraceRecord);
}

/// Discards everything; the engines skip event construction entirely.
pub struct NullSink;

impl TraceSink for NullSink {
    fn enabled(&self) -> bool {
        false
    }

    fn record(&mut self, _rec: TraceRecord) {}
}

/// Collects every record in memory. The workhorse of the test suites.
#[derive(Debug, Default)]
pub struct MemorySink {
    events: Vec<TraceRecord>,
}

impl MemorySink {
    /// An empty sink.
    pub fn new() -> Self {
        MemorySink::default()
    }

    /// The records collected so far.
    pub fn events(&self) -> &[TraceRecord] {
        &self.events
    }

    /// Consumes the sink, returning the collected records.
    pub fn into_events(self) -> Vec<TraceRecord> {
        self.events
    }
}

impl TraceSink for MemorySink {
    fn record(&mut self, rec: TraceRecord) {
        self.events.push(rec);
    }
}

/// Keeps only the most recent `capacity` records — a flight recorder for
/// long runs where only the tail matters (e.g. diagnosing how a run
/// saturated).
#[derive(Debug)]
pub struct RingSink {
    capacity: usize,
    buf: VecDeque<TraceRecord>,
    /// Records seen in total (including evicted ones).
    seen: u64,
}

impl RingSink {
    /// A ring holding at most `capacity` records (capacity 0 keeps none).
    pub fn new(capacity: usize) -> Self {
        RingSink {
            capacity,
            buf: VecDeque::with_capacity(capacity.min(4096)),
            seen: 0,
        }
    }

    /// The retained tail, oldest first.
    pub fn events(&self) -> impl Iterator<Item = &TraceRecord> {
        self.buf.iter()
    }

    /// Total records offered to the sink, including evicted ones.
    pub fn seen(&self) -> u64 {
        self.seen
    }

    /// Consumes the sink, returning the retained tail oldest-first.
    pub fn into_events(self) -> Vec<TraceRecord> {
        self.buf.into_iter().collect()
    }
}

impl TraceSink for RingSink {
    fn record(&mut self, rec: TraceRecord) {
        self.seen += 1;
        if self.capacity == 0 {
            return;
        }
        if self.buf.len() == self.capacity {
            self.buf.pop_front();
        }
        self.buf.push_back(rec);
    }
}

/// Streams records as JSON Lines to any writer (see [`super::jsonl`] for
/// the schema). IO errors are sticky: the first failure is remembered and
/// subsequent records are dropped, so a full disk cannot panic a
/// simulation mid-run.
pub struct JsonlSink<W: Write> {
    w: W,
    err: Option<io::Error>,
}

impl<W: Write> JsonlSink<W> {
    /// Wraps a writer.
    pub fn new(w: W) -> Self {
        JsonlSink { w, err: None }
    }

    /// Flushes and returns the writer, or the first IO error encountered
    /// while recording.
    pub fn finish(mut self) -> io::Result<W> {
        if let Some(e) = self.err {
            return Err(e);
        }
        self.w.flush()?;
        Ok(self.w)
    }
}

impl<W: Write> TraceSink for JsonlSink<W> {
    fn record(&mut self, rec: TraceRecord) {
        if self.err.is_some() {
            return;
        }
        let line = super::jsonl::to_jsonl(&rec);
        if let Err(e) = self
            .w
            .write_all(line.as_bytes())
            .and_then(|()| self.w.write_all(b"\n"))
        {
            self.err = Some(e);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::super::TraceEvent;
    use super::*;
    use tapesim_model::{Micros, SimTime};

    fn rec(seq: u64) -> TraceRecord {
        TraceRecord {
            seq,
            at: SimTime::from_micros(seq * 10),
            drive: 0,
            event: TraceEvent::Idle {
                dur: Micros::from_micros(10),
            },
        }
    }

    #[test]
    fn ring_keeps_only_the_tail() {
        let mut s = RingSink::new(3);
        for i in 0..10 {
            s.record(rec(i));
        }
        assert_eq!(s.seen(), 10);
        let tail: Vec<u64> = s.into_events().iter().map(|r| r.seq).collect();
        assert_eq!(tail, vec![7, 8, 9]);
    }

    #[test]
    fn zero_capacity_ring_counts_but_keeps_nothing() {
        let mut s = RingSink::new(0);
        s.record(rec(0));
        assert_eq!(s.seen(), 1);
        assert!(s.into_events().is_empty());
    }

    #[test]
    fn jsonl_sink_writes_one_line_per_record() {
        let mut s = JsonlSink::new(Vec::new());
        s.record(rec(0));
        s.record(rec(1));
        let out = String::from_utf8(s.finish().unwrap()).unwrap();
        assert_eq!(out.lines().count(), 2);
        assert!(out.starts_with('{'));
    }

    #[test]
    fn memory_sink_collects_in_order() {
        let mut s = MemorySink::new();
        s.record(rec(0));
        s.record(rec(1));
        assert_eq!(s.events().len(), 2);
        assert_eq!(s.into_events()[1].seq, 1);
    }
}
