//! JSON Lines serialization of trace records, a parser for the same
//! schema, and a structural comparator for golden-trace tests.
//!
//! ## Schema
//!
//! One JSON object per line, flat (no nesting), with integer values
//! except for `ev` and `phase` (strings) and `inserted`/`piggyback`
//! (booleans). Common fields:
//!
//! | field   | meaning                                            |
//! |---------|----------------------------------------------------|
//! | `seq`   | emission counter, strictly increasing              |
//! | `t_us`  | simulation time the event ended, microseconds      |
//! | `drive` | drive id; 65535 = jukebox-level (system) events    |
//! | `ev`    | event kind (snake_case, [`TraceEvent::kind`])      |
//!
//! Event-specific fields: `req`, `block`, `tape`, `slot`, `from`, `to`,
//! `from_tape`, `to_tape`, `dur_us`, `delay_us`, `stops`, `reqs`,
//! `blocks`, `phase` (`"forward"`/`"reverse"`), `inserted`, `piggyback`.
//! Field order within a line is fixed, so byte comparison of two
//! serialized traces is equivalent to structural comparison — but
//! [`compare`] still parses both sides so a mismatch can be reported
//! field-by-field.
#![allow(clippy::cast_possible_truncation)] // trace fields are re-narrowed to the widths they were written with

use std::collections::BTreeMap;
use std::fmt::Write as _;

use tapesim_layout::BlockId;
use tapesim_model::{Micros, SimTime, SlotIndex, TapeId};
use tapesim_sched::SweepPhase;
use tapesim_workload::RequestId;

use super::{TraceEvent, TraceRecord};

/// Serializes one record as a single JSON line (no trailing newline).
pub fn to_jsonl(rec: &TraceRecord) -> String {
    let mut s = String::with_capacity(96);
    let _ = write!(
        s,
        "{{\"seq\":{},\"t_us\":{},\"drive\":{},\"ev\":\"{}\"",
        rec.seq,
        rec.at.as_micros(),
        rec.drive,
        rec.event.kind()
    );
    let mut f = |key: &str, val: String| {
        let _ = write!(s, ",\"{key}\":{val}");
    };
    match rec.event {
        TraceEvent::Arrival { req, block } => {
            f("req", req.0.to_string());
            f("block", block.0.to_string());
        }
        TraceEvent::Incremental {
            req,
            tape,
            inserted,
        } => {
            f("req", req.0.to_string());
            f("tape", tape.0.to_string());
            f("inserted", inserted.to_string());
        }
        TraceEvent::SweepStart {
            tape,
            stops,
            requests,
        } => {
            f("tape", tape.0.to_string());
            f("stops", stops.to_string());
            f("reqs", requests.to_string());
        }
        TraceEvent::PhaseStart { tape, phase } => {
            f("tape", tape.0.to_string());
            f("phase", format!("\"{}\"", phase.name()));
        }
        TraceEvent::Locate {
            tape,
            from,
            to,
            dur,
        } => {
            f("tape", tape.0.to_string());
            f("from", from.0.to_string());
            f("to", to.0.to_string());
            f("dur_us", dur.as_micros().to_string());
        }
        TraceEvent::Read {
            tape,
            slot,
            phase,
            dur,
        } => {
            f("tape", tape.0.to_string());
            f("slot", slot.0.to_string());
            f("phase", format!("\"{}\"", phase.name()));
            f("dur_us", dur.as_micros().to_string());
        }
        TraceEvent::Rewind { tape, from, dur } => {
            f("tape", tape.0.to_string());
            f("from", from.0.to_string());
            f("dur_us", dur.as_micros().to_string());
        }
        TraceEvent::Unmount { tape }
        | TraceEvent::SweepEnd { tape }
        | TraceEvent::TapeOffline { tape } => {
            f("tape", tape.0.to_string());
        }
        TraceEvent::Mount { tape, dur } => {
            f("tape", tape.0.to_string());
            f("dur_us", dur.as_micros().to_string());
        }
        TraceEvent::Complete { req, tape, delay } => {
            f("req", req.0.to_string());
            f("tape", tape.0.to_string());
            f("delay_us", delay.as_micros().to_string());
        }
        TraceEvent::Idle { dur } | TraceEvent::DriveRepair { dur } => {
            f("dur_us", dur.as_micros().to_string());
        }
        TraceEvent::MediaError { tape, slot } | TraceEvent::CopyLost { tape, slot } => {
            f("tape", tape.0.to_string());
            f("slot", slot.0.to_string());
        }
        TraceEvent::LoadFailed { tape, dur } => {
            f("tape", tape.0.to_string());
            f("dur_us", dur.as_micros().to_string());
        }
        TraceEvent::RequestFailed { req } => {
            f("req", req.0.to_string());
        }
        TraceEvent::Failover { req, from, to } => {
            f("req", req.0.to_string());
            f("from_tape", from.0.to_string());
            f("to_tape", to.0.to_string());
        }
        TraceEvent::RobotBusy { robot, dur } => {
            f("robot", robot.to_string());
            f("dur_us", dur.as_micros().to_string());
        }
        TraceEvent::RobotExchange { robot, tape, dur } => {
            f("robot", robot.to_string());
            f("tape", tape.0.to_string());
            f("dur_us", dur.as_micros().to_string());
        }
        TraceEvent::DeltaFlush {
            tape,
            blocks,
            piggyback,
        } => {
            f("tape", tape.0.to_string());
            f("blocks", blocks.to_string());
            f("piggyback", piggyback.to_string());
        }
    }
    s.push('}');
    s
}

/// Serializes a whole trace as JSON Lines (one record per line, trailing
/// newline included).
pub fn to_jsonl_string(events: &[TraceRecord]) -> String {
    let mut s = String::new();
    for rec in events {
        s.push_str(&to_jsonl(rec));
        s.push('\n');
    }
    s
}

/// A parse error with the 1-based line number it occurred on.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// 1-based line number.
    pub line: usize,
    /// What went wrong.
    pub message: String,
}

impl std::fmt::Display for ParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "line {}: {}", self.line, self.message)
    }
}

/// Parses one flat JSON object of the trace schema into its fields, in
/// line order. Values keep their textual form (`"forward"` keeps its
/// quotes stripped; numbers and booleans stay as written).
fn parse_flat_object(line: &str) -> Result<BTreeMap<String, String>, String> {
    let body = line
        .trim()
        .strip_prefix('{')
        .and_then(|s| s.strip_suffix('}'))
        .ok_or("not a JSON object")?;
    let mut map = BTreeMap::new();
    let mut rest = body;
    while !rest.is_empty() {
        rest = rest.trim_start_matches(',');
        let key_start = rest.strip_prefix('"').ok_or("expected quoted key")?;
        let key_end = key_start.find('"').ok_or("unterminated key")?;
        let key = &key_start[..key_end];
        let after = key_start[key_end + 1..]
            .strip_prefix(':')
            .ok_or("expected ':' after key")?;
        let (value, remainder) = if let Some(v) = after.strip_prefix('"') {
            let end = v.find('"').ok_or("unterminated string value")?;
            (v[..end].to_string(), &v[end + 1..])
        } else {
            let end = after.find(',').unwrap_or(after.len());
            (after[..end].to_string(), &after[end..])
        };
        if value.is_empty() {
            return Err(format!("empty value for key '{key}'"));
        }
        if map.insert(key.to_string(), value).is_some() {
            return Err(format!("duplicate key '{key}'"));
        }
        rest = remainder;
    }
    Ok(map)
}

/// Parses a JSONL trace into one field-map per event line. Blank lines
/// are skipped.
pub fn parse(text: &str) -> Result<Vec<BTreeMap<String, String>>, ParseError> {
    let mut out = Vec::new();
    for (i, line) in text.lines().enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        let map = parse_flat_object(line).map_err(|message| ParseError {
            line: i + 1,
            message,
        })?;
        for required in ["seq", "t_us", "drive", "ev"] {
            if !map.contains_key(required) {
                return Err(ParseError {
                    line: i + 1,
                    message: format!("missing required field '{required}'"),
                });
            }
        }
        out.push(map);
    }
    Ok(out)
}

/// Parses a JSONL trace back into [`TraceRecord`]s. Unknown event kinds
/// or missing fields are errors.
pub fn parse_records(text: &str) -> Result<Vec<TraceRecord>, ParseError> {
    let maps = parse(text)?;
    maps.iter()
        .enumerate()
        .map(|(i, m)| {
            record_from_fields(m).map_err(|message| ParseError {
                line: i + 1,
                message,
            })
        })
        .collect()
}

fn record_from_fields(m: &BTreeMap<String, String>) -> Result<TraceRecord, String> {
    let int = |key: &str| -> Result<u64, String> {
        m.get(key)
            .ok_or_else(|| format!("missing field '{key}'"))?
            .parse::<u64>()
            .map_err(|_| format!("field '{key}' is not an integer"))
    };
    let tape = |key: &str| -> Result<TapeId, String> { Ok(TapeId(int(key)? as u16)) };
    let slot = |key: &str| -> Result<SlotIndex, String> { Ok(SlotIndex(int(key)? as u32)) };
    let req = || -> Result<RequestId, String> { Ok(RequestId(int("req")?)) };
    let dur = |key: &str| -> Result<Micros, String> { Ok(Micros::from_micros(int(key)?)) };
    let boolean = |key: &str| -> Result<bool, String> {
        match m.get(key).map(String::as_str) {
            Some("true") => Ok(true),
            Some("false") => Ok(false),
            _ => Err(format!("field '{key}' is not a boolean")),
        }
    };
    let phase = || -> Result<SweepPhase, String> {
        match m.get("phase").map(String::as_str) {
            Some("forward") => Ok(SweepPhase::Forward),
            Some("reverse") => Ok(SweepPhase::Reverse),
            other => Err(format!("bad phase {other:?}")),
        }
    };
    let ev = m.get("ev").ok_or("missing field 'ev'")?.as_str();
    let event = match ev {
        "arrival" => TraceEvent::Arrival {
            req: req()?,
            block: BlockId(int("block")? as u32),
        },
        "incremental" => TraceEvent::Incremental {
            req: req()?,
            tape: tape("tape")?,
            inserted: boolean("inserted")?,
        },
        "sweep_start" => TraceEvent::SweepStart {
            tape: tape("tape")?,
            stops: int("stops")? as u32,
            requests: int("reqs")? as u32,
        },
        "phase_start" => TraceEvent::PhaseStart {
            tape: tape("tape")?,
            phase: phase()?,
        },
        "locate" => TraceEvent::Locate {
            tape: tape("tape")?,
            from: slot("from")?,
            to: slot("to")?,
            dur: dur("dur_us")?,
        },
        "read" => TraceEvent::Read {
            tape: tape("tape")?,
            slot: slot("slot")?,
            phase: phase()?,
            dur: dur("dur_us")?,
        },
        "rewind" => TraceEvent::Rewind {
            tape: tape("tape")?,
            from: slot("from")?,
            dur: dur("dur_us")?,
        },
        "unmount" => TraceEvent::Unmount {
            tape: tape("tape")?,
        },
        "mount" => TraceEvent::Mount {
            tape: tape("tape")?,
            dur: dur("dur_us")?,
        },
        "sweep_end" => TraceEvent::SweepEnd {
            tape: tape("tape")?,
        },
        "complete" => TraceEvent::Complete {
            req: req()?,
            tape: tape("tape")?,
            delay: dur("delay_us")?,
        },
        "idle" => TraceEvent::Idle {
            dur: dur("dur_us")?,
        },
        "media_error" => TraceEvent::MediaError {
            tape: tape("tape")?,
            slot: slot("slot")?,
        },
        "copy_lost" => TraceEvent::CopyLost {
            tape: tape("tape")?,
            slot: slot("slot")?,
        },
        "load_failed" => TraceEvent::LoadFailed {
            tape: tape("tape")?,
            dur: dur("dur_us")?,
        },
        "tape_offline" => TraceEvent::TapeOffline {
            tape: tape("tape")?,
        },
        "drive_repair" => TraceEvent::DriveRepair {
            dur: dur("dur_us")?,
        },
        "request_failed" => TraceEvent::RequestFailed { req: req()? },
        "failover" => TraceEvent::Failover {
            req: req()?,
            from: tape("from_tape")?,
            to: tape("to_tape")?,
        },
        "robot_busy" => TraceEvent::RobotBusy {
            robot: int("robot")? as u16,
            dur: dur("dur_us")?,
        },
        "robot_exchange" => TraceEvent::RobotExchange {
            robot: int("robot")? as u16,
            tape: tape("tape")?,
            dur: dur("dur_us")?,
        },
        "delta_flush" => TraceEvent::DeltaFlush {
            tape: tape("tape")?,
            blocks: int("blocks")? as u32,
            piggyback: boolean("piggyback")?,
        },
        other => return Err(format!("unknown event kind '{other}'")),
    };
    Ok(TraceRecord {
        seq: int("seq")?,
        at: SimTime::from_micros(int("t_us")?),
        drive: int("drive")? as u16,
        event,
    })
}

/// The result of structurally comparing an actual trace against an
/// expected (golden) one.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Comparison {
    /// The traces are structurally identical.
    Match,
    /// The traces differ; the payload is a human-readable report showing
    /// the first divergence with surrounding context.
    Mismatch(String),
}

impl Comparison {
    /// True for [`Comparison::Match`].
    pub fn is_match(&self) -> bool {
        matches!(self, Comparison::Match)
    }
}

/// Structurally compares an actual trace against golden JSONL text:
/// both sides are parsed into per-event field maps, compared event by
/// event and field by field. On mismatch the report names the diverging
/// event index and fields and prints up to `context` events on either
/// side of the divergence.
pub fn compare(expected_jsonl: &str, actual: &[TraceRecord], context: usize) -> Comparison {
    let expected = match parse(expected_jsonl) {
        Ok(e) => e,
        Err(e) => return Comparison::Mismatch(format!("golden file is unparsable: {e}")),
    };
    let actual_lines: Vec<String> = actual.iter().map(to_jsonl).collect();
    let actual_maps = match parse(&actual_lines.join("\n")) {
        Ok(a) => a,
        Err(e) => return Comparison::Mismatch(format!("actual trace is unparsable: {e}")),
    };

    let n = expected.len().min(actual_maps.len());
    let mut diverged: Option<(usize, String)> = None;
    for i in 0..n {
        if expected[i] != actual_maps[i] {
            let mut detail = String::new();
            for key in expected[i].keys().chain(actual_maps[i].keys()) {
                let e = expected[i].get(key);
                let a = actual_maps[i].get(key);
                if e != a && !detail.contains(key.as_str()) {
                    let _ = writeln!(
                        detail,
                        "    field '{key}': expected {}, got {}",
                        e.map_or("<absent>".into(), |v| v.clone()),
                        a.map_or("<absent>".into(), |v| v.clone()),
                    );
                }
            }
            diverged = Some((i, detail));
            break;
        }
    }
    if diverged.is_none() && expected.len() != actual_maps.len() {
        diverged = Some((
            n,
            format!(
                "    trace length differs: expected {} events, got {}\n",
                expected.len(),
                actual_maps.len()
            ),
        ));
    }
    let Some((at, detail)) = diverged else {
        return Comparison::Match;
    };

    let mut report = format!("golden trace mismatch at event {at}:\n{detail}  context:\n");
    let expected_lines: Vec<&str> = expected_jsonl
        .lines()
        .filter(|l| !l.trim().is_empty())
        .collect();
    let lo = at.saturating_sub(context);
    let hi = (at + context + 1).max(lo);
    for i in lo..hi {
        let marker = if i == at { ">" } else { " " };
        if let Some(l) = expected_lines.get(i) {
            let _ = writeln!(report, "  {marker} expected[{i}] {l}");
        }
        if let Some(l) = actual_lines.get(i) {
            let _ = writeln!(report, "  {marker}   actual[{i}] {l}");
        }
    }
    let _ = writeln!(
        report,
        "  (regenerate with UPDATE_GOLDEN=1 if the change is intentional)"
    );
    Comparison::Mismatch(report)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Vec<TraceRecord> {
        vec![
            TraceRecord {
                seq: 0,
                at: SimTime::from_micros(5),
                drive: super::super::SYSTEM_DRIVE,
                event: TraceEvent::Arrival {
                    req: RequestId(0),
                    block: BlockId(7),
                },
            },
            TraceRecord {
                seq: 1,
                at: SimTime::from_micros(12),
                drive: 0,
                event: TraceEvent::Mount {
                    tape: TapeId(3),
                    dur: Micros::from_micros(12),
                },
            },
            TraceRecord {
                seq: 2,
                at: SimTime::from_micros(40),
                drive: 0,
                event: TraceEvent::Read {
                    tape: TapeId(3),
                    slot: SlotIndex(9),
                    phase: SweepPhase::Forward,
                    dur: Micros::from_micros(8),
                },
            },
        ]
    }

    #[test]
    fn serialization_round_trips() {
        let events = sample();
        let text = to_jsonl_string(&events);
        let parsed = parse_records(&text).unwrap();
        assert_eq!(parsed, events);
    }

    #[test]
    fn every_event_kind_round_trips() {
        let all = vec![
            TraceEvent::Arrival {
                req: RequestId(1),
                block: BlockId(2),
            },
            TraceEvent::Incremental {
                req: RequestId(1),
                tape: TapeId(0),
                inserted: true,
            },
            TraceEvent::SweepStart {
                tape: TapeId(1),
                stops: 3,
                requests: 4,
            },
            TraceEvent::PhaseStart {
                tape: TapeId(1),
                phase: SweepPhase::Reverse,
            },
            TraceEvent::Locate {
                tape: TapeId(1),
                from: SlotIndex(0),
                to: SlotIndex(5),
                dur: Micros::from_micros(9),
            },
            TraceEvent::Read {
                tape: TapeId(1),
                slot: SlotIndex(5),
                phase: SweepPhase::Forward,
                dur: Micros::from_micros(2),
            },
            TraceEvent::Rewind {
                tape: TapeId(1),
                from: SlotIndex(6),
                dur: Micros::from_micros(3),
            },
            TraceEvent::Unmount { tape: TapeId(1) },
            TraceEvent::Mount {
                tape: TapeId(2),
                dur: Micros::from_micros(4),
            },
            TraceEvent::SweepEnd { tape: TapeId(2) },
            TraceEvent::Complete {
                req: RequestId(1),
                tape: TapeId(2),
                delay: Micros::from_micros(100),
            },
            TraceEvent::Idle {
                dur: Micros::from_micros(50),
            },
            TraceEvent::MediaError {
                tape: TapeId(2),
                slot: SlotIndex(1),
            },
            TraceEvent::CopyLost {
                tape: TapeId(2),
                slot: SlotIndex(1),
            },
            TraceEvent::LoadFailed {
                tape: TapeId(2),
                dur: Micros::from_micros(7),
            },
            TraceEvent::TapeOffline { tape: TapeId(2) },
            TraceEvent::DriveRepair {
                dur: Micros::from_micros(8),
            },
            TraceEvent::RequestFailed { req: RequestId(9) },
            TraceEvent::Failover {
                req: RequestId(9),
                from: TapeId(2),
                to: TapeId(0),
            },
            TraceEvent::DeltaFlush {
                tape: TapeId(0),
                blocks: 11,
                piggyback: false,
            },
        ];
        let events: Vec<TraceRecord> = all
            .into_iter()
            .enumerate()
            .map(|(i, event)| TraceRecord {
                seq: i as u64,
                at: SimTime::from_micros(i as u64),
                drive: 0,
                event,
            })
            .collect();
        let parsed = parse_records(&to_jsonl_string(&events)).unwrap();
        assert_eq!(parsed, events);
    }

    #[test]
    fn compare_matches_identical_traces() {
        let events = sample();
        let golden = to_jsonl_string(&events);
        assert!(compare(&golden, &events, 3).is_match());
    }

    #[test]
    fn compare_reports_field_level_divergence() {
        let events = sample();
        let golden = to_jsonl_string(&events);
        let mut altered = events.clone();
        altered[2].event = TraceEvent::Read {
            tape: TapeId(3),
            slot: SlotIndex(10),
            phase: SweepPhase::Forward,
            dur: Micros::from_micros(8),
        };
        let Comparison::Mismatch(report) = compare(&golden, &altered, 1) else {
            panic!("expected mismatch");
        };
        assert!(report.contains("event 2"), "{report}");
        assert!(report.contains("field 'slot'"), "{report}");
        assert!(report.contains("expected 9, got 10"), "{report}");
        assert!(report.contains("UPDATE_GOLDEN"), "{report}");
    }

    #[test]
    fn compare_reports_length_divergence() {
        let events = sample();
        let golden = to_jsonl_string(&events);
        let short = &events[..2];
        let Comparison::Mismatch(report) = compare(&golden, short, 2) else {
            panic!("expected mismatch");
        };
        assert!(report.contains("length differs"), "{report}");
        assert!(report.contains("expected 3 events, got 2"), "{report}");
    }

    #[test]
    fn parse_rejects_garbage() {
        assert!(parse("not json").is_err());
        assert!(parse("{\"seq\":1}").is_err()); // missing required fields
        let err = parse("{\"seq\":1,\"t_us\":2,\"drive\":0}").unwrap_err();
        assert!(err.to_string().contains("ev"));
    }
}
