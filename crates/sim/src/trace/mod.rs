//! Structured event tracing for the simulation engines.
//!
//! The paper's results hinge on the simulator faithfully executing the
//! Section 2.2 service model — sweeps, mounts, locates, rewinds — yet the
//! engines' aggregate metrics cannot show *how* a number was produced.
//! This module records the per-event timeline of a run: every request
//! arrival, dispatch, and completion; every tape mount/unmount; every
//! locate/read/rewind segment; sweep phase boundaries (major reschedules
//! and forward/reverse phase starts, plus incremental-scheduler
//! insertions); and every fault/failover event. Each record is stamped
//! with the simulation time at which the event *ended*, the drive that
//! performed it, and — where applicable — tape, slot, and request ids.
//!
//! Tracing is zero-cost when disabled: the engines consult
//! [`TraceSink::enabled`] once per run and skip event construction
//! entirely for the [`NullSink`], so the untraced entry points
//! ([`crate::run_simulation`] and friends) pay only a cached branch.
//!
//! On top of the raw stream sit:
//!
//! * [`check`] — a trace-invariant checker validating physical-model
//!   invariants (monotonic per-drive clocks, no read without a mounted
//!   tape, §2.2 forward/reverse stop ordering, request conservation);
//! * [`analysis`] — latency percentiles and a per-phase time breakdown
//!   (mount/locate/transfer/rewind/idle) derived from the event stream;
//! * [`jsonl`] — a line-per-event JSON serialization, its parser, and a
//!   structural golden-trace comparator with readable diffs.

pub mod analysis;
pub mod check;
pub mod jsonl;
mod sink;

use tapesim_layout::BlockId;
use tapesim_model::{Micros, SimTime, SlotIndex, TapeId};
use tapesim_sched::SweepPhase;
use tapesim_workload::RequestId;

pub use analysis::{summarize, PhaseBreakdown, TraceSummary};
pub use check::{check_trace, TraceStats, Violation};
pub use sink::{JsonlSink, MemorySink, NullSink, RingSink, TraceSink};

/// Pseudo drive id for events that belong to the jukebox as a whole
/// rather than to one drive (request arrivals and permanent failures of
/// still-pending requests). Excluded from per-drive clock checks.
pub const SYSTEM_DRIVE: u16 = u16::MAX;

/// One traced event with its timestamp and originating drive.
///
/// `at` is the simulation time at which the event *completed* (for
/// durational events such as locates and reads, the end of the segment;
/// the duration is carried in the event payload). `seq` is a strictly
/// increasing emission counter that breaks timestamp ties.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceRecord {
    /// Strictly increasing emission counter within one run.
    pub seq: u64,
    /// Simulation time at which the event ended.
    pub at: SimTime,
    /// The drive the event belongs to, or [`SYSTEM_DRIVE`].
    pub drive: u16,
    /// The event itself.
    pub event: TraceEvent,
}

/// The vocabulary of traced events.
///
/// Tape/slot/request ids are carried where the physical model defines
/// them; durations are integer microseconds ([`Micros`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TraceEvent {
    /// A request entered the system. `at` is the arrival instant.
    Arrival {
        /// The arriving request.
        req: RequestId,
        /// The block it asks for.
        block: BlockId,
    },
    /// The incremental scheduler handled an arrival during a sweep:
    /// inserted it into the running service list (`inserted`) or deferred
    /// it to the pending list.
    Incremental {
        /// The request handled.
        req: RequestId,
        /// The tape of the running sweep.
        tape: TapeId,
        /// True if the request was inserted into the sweep.
        inserted: bool,
    },
    /// The major rescheduler selected a tape and formed a service list.
    SweepStart {
        /// The selected tape.
        tape: TapeId,
        /// Stops in the initial service list.
        stops: u32,
        /// Requests across those stops.
        requests: u32,
    },
    /// The first stop of a sweep phase is about to execute (forward
    /// locates only vs. reverse locates only, §2.2).
    PhaseStart {
        /// The sweeping tape.
        tape: TapeId,
        /// Which phase begins.
        phase: SweepPhase,
    },
    /// A locate segment ended: the head moved from `from` to `to`.
    Locate {
        /// The mounted tape.
        tape: TapeId,
        /// Head position before the locate.
        from: SlotIndex,
        /// Head position after the locate (the slot about to be read).
        to: SlotIndex,
        /// Locate duration.
        dur: Micros,
    },
    /// A block transfer ended.
    Read {
        /// The mounted tape.
        tape: TapeId,
        /// The slot read.
        slot: SlotIndex,
        /// The sweep phase the stop belonged to.
        phase: SweepPhase,
        /// Transfer duration.
        dur: Micros,
    },
    /// A rewind to beginning-of-tape ended (always precedes an eject).
    Rewind {
        /// The mounted tape.
        tape: TapeId,
        /// Head position the rewind started from.
        from: SlotIndex,
        /// Rewind duration.
        dur: Micros,
    },
    /// The mounted tape was ejected and returned to its shelf.
    Unmount {
        /// The tape unmounted.
        tape: TapeId,
    },
    /// A tape finished loading into the drive. `dur` is the switch time
    /// excluding any preceding rewind (eject + robot exchange(s) + load,
    /// including failed-load retries).
    Mount {
        /// The tape now mounted.
        tape: TapeId,
        /// Eject + exchange + load duration.
        dur: Micros,
    },
    /// The service list was exhausted; the sweep is complete.
    SweepEnd {
        /// The tape that was swept.
        tape: TapeId,
    },
    /// A request's block was delivered.
    Complete {
        /// The completed request.
        req: RequestId,
        /// The tape it was served from.
        tape: TapeId,
        /// Response time (completion minus arrival).
        delay: Micros,
    },
    /// The drive idled waiting for the next event.
    Idle {
        /// Idle duration.
        dur: Micros,
    },
    /// A read pass failed with a media error (the pass's transfer time
    /// was still spent).
    MediaError {
        /// The mounted tape.
        tape: TapeId,
        /// The slot whose read failed.
        slot: SlotIndex,
    },
    /// Media-error retries were exhausted: this physical copy is
    /// permanently unreadable.
    CopyLost {
        /// The tape holding the lost copy.
        tape: TapeId,
        /// The slot of the lost copy.
        slot: SlotIndex,
    },
    /// Load retries were exhausted while switching to `tape`; the tape
    /// failed. `dur` is the switch time wasted on the attempts.
    LoadFailed {
        /// The tape that failed to load.
        tape: TapeId,
        /// Switch time spent before giving up.
        dur: Micros,
    },
    /// The tape went offline under an active sweep (tape failure); the
    /// sweep was aborted and its requests requeued.
    TapeOffline {
        /// The failed tape.
        tape: TapeId,
    },
    /// The drive was down for repair after a whole-drive failure.
    DriveRepair {
        /// Repair duration.
        dur: Micros,
    },
    /// Every copy of the request's block is lost; the request failed
    /// permanently.
    RequestFailed {
        /// The failed request.
        req: RequestId,
    },
    /// A request disrupted by a fault on `from` completed from a replica
    /// on `to`.
    Failover {
        /// The failed-over request.
        req: RequestId,
        /// The tape the fault disrupted.
        from: TapeId,
        /// The tape that served the request instead.
        to: TapeId,
    },
    /// A mount waited for its library's robot arm to come free (fleet
    /// topologies only; never emitted by the legacy single-robot shape).
    /// `at` is the instant the wait ended.
    RobotBusy {
        /// Global robot index (see `Topology::robot_base`).
        robot: u16,
        /// How long the mount waited behind earlier exchanges.
        dur: Micros,
    },
    /// A robot arm finished an exchange leg for `tape` (fleet topologies
    /// only). `at` is the instant the arm came free again; `dur` covers
    /// the whole leg (export, pass-through + exchange, or a retry
    /// exchange).
    RobotExchange {
        /// Global robot index performing the leg.
        robot: u16,
        /// The tape being moved.
        tape: TapeId,
        /// Arm-busy duration of this leg.
        dur: Micros,
    },
    /// Buffered delta blocks were destaged to `tape` (write-back
    /// extension).
    DeltaFlush {
        /// The destination tape.
        tape: TapeId,
        /// Delta blocks written.
        blocks: u32,
        /// True when piggybacked on a read sweep, false for a dedicated
        /// idle-time flush.
        piggyback: bool,
    },
}

impl TraceEvent {
    /// Stable snake_case name of the event kind (the `ev` field of the
    /// JSONL schema).
    pub fn kind(&self) -> &'static str {
        match self {
            TraceEvent::Arrival { .. } => "arrival",
            TraceEvent::Incremental { .. } => "incremental",
            TraceEvent::SweepStart { .. } => "sweep_start",
            TraceEvent::PhaseStart { .. } => "phase_start",
            TraceEvent::Locate { .. } => "locate",
            TraceEvent::Read { .. } => "read",
            TraceEvent::Rewind { .. } => "rewind",
            TraceEvent::Unmount { .. } => "unmount",
            TraceEvent::Mount { .. } => "mount",
            TraceEvent::SweepEnd { .. } => "sweep_end",
            TraceEvent::Complete { .. } => "complete",
            TraceEvent::Idle { .. } => "idle",
            TraceEvent::MediaError { .. } => "media_error",
            TraceEvent::CopyLost { .. } => "copy_lost",
            TraceEvent::LoadFailed { .. } => "load_failed",
            TraceEvent::TapeOffline { .. } => "tape_offline",
            TraceEvent::DriveRepair { .. } => "drive_repair",
            TraceEvent::RequestFailed { .. } => "request_failed",
            TraceEvent::Failover { .. } => "failover",
            TraceEvent::RobotBusy { .. } => "robot_busy",
            TraceEvent::RobotExchange { .. } => "robot_exchange",
            TraceEvent::DeltaFlush { .. } => "delta_flush",
        }
    }
}

/// The engines' emission handle: caches `sink.enabled()` so the disabled
/// path costs one predictable branch per event site, and stamps records
/// with a strictly increasing sequence number.
pub struct Tracer<'a> {
    sink: &'a mut dyn TraceSink,
    /// Cached `sink.enabled()`; engines must skip event construction when
    /// false (the [`trace_event!`](crate::trace_event) macro does this).
    pub on: bool,
    seq: u64,
}

impl<'a> Tracer<'a> {
    /// Wraps a sink for one simulation run.
    pub fn new(sink: &'a mut dyn TraceSink) -> Self {
        let on = sink.enabled();
        Tracer { sink, on, seq: 0 }
    }

    /// Wraps a sink for a run resumed from a checkpoint: the first record
    /// emitted carries sequence number `seq`, continuing the numbering of
    /// the interrupted run so the resumed trace suffix is byte-identical
    /// to the uninterrupted one.
    pub fn with_seq(sink: &'a mut dyn TraceSink, seq: u64) -> Self {
        let on = sink.enabled();
        Tracer { sink, on, seq }
    }

    /// The sequence number the next emitted record will carry (equal to
    /// the number of records emitted so far in an unresumed run).
    pub fn next_seq(&self) -> u64 {
        self.seq
    }

    /// Records one event. Callers should guard with `self.on` (or use the
    /// `trace_event!` macro) so payload construction is skipped when
    /// tracing is off.
    #[inline]
    pub fn push(&mut self, at: SimTime, drive: u16, event: TraceEvent) {
        if self.on {
            self.sink.record(TraceRecord {
                seq: self.seq,
                at,
                drive,
                event,
            });
            self.seq += 1;
        }
    }
}

/// Emits a trace event without constructing the payload when tracing is
/// disabled.
#[macro_export]
macro_rules! trace_event {
    ($tracer:expr, $at:expr, $drive:expr, $ev:expr) => {
        if $tracer.on {
            $tracer.push($at, $drive, $ev);
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kinds_are_unique_and_snake_case() {
        let kinds = [
            TraceEvent::Arrival {
                req: RequestId(0),
                block: BlockId(0),
            }
            .kind(),
            TraceEvent::Idle { dur: Micros::ZERO }.kind(),
            TraceEvent::SweepStart {
                tape: TapeId(0),
                stops: 0,
                requests: 0,
            }
            .kind(),
        ];
        assert_eq!(kinds, ["arrival", "idle", "sweep_start"]);
        for k in kinds {
            assert!(k.chars().all(|c| c.is_ascii_lowercase() || c == '_'));
        }
    }

    #[test]
    fn tracer_stamps_increasing_seq() {
        let mut sink = MemorySink::new();
        let mut t = Tracer::new(&mut sink);
        assert!(t.on);
        t.push(SimTime::ZERO, 0, TraceEvent::Idle { dur: Micros::ZERO });
        t.push(
            SimTime::from_secs(1),
            0,
            TraceEvent::Idle {
                dur: Micros::SECOND,
            },
        );
        let events = sink.into_events();
        assert_eq!(events.len(), 2);
        assert_eq!(events[0].seq, 0);
        assert_eq!(events[1].seq, 1);
    }

    #[test]
    fn null_sink_disables_tracer() {
        let mut sink = NullSink;
        let t = Tracer::new(&mut sink);
        assert!(!t.on);
    }
}
