//! Trace-invariant checker.
//!
//! Validates that a recorded event stream is consistent with the physical
//! model of §2.2 — independent of which scheduler produced it. The
//! invariants:
//!
//! 1. **Ordering** — `seq` is strictly increasing, and each drive's
//!    timestamps are non-decreasing. [`SYSTEM_DRIVE`] events (arrivals,
//!    pending-request failures) are stamped with the instant the request
//!    arrived/failed, which may precede the acting drive's clock, so the
//!    system stream is exempt from the clock check.
//! 2. **Mount state machine** — a drive reads, locates, or rewinds only
//!    the tape it has mounted; a mount requires an empty drive; an
//!    unmount names the mounted tape.
//! 3. **Sweep structure** — reads happen only inside a sweep
//!    (`sweep_start` … `sweep_end`/`tape_offline`) on the sweep's tape;
//!    forward-phase reads visit strictly ascending slots, reverse-phase
//!    reads strictly descending, and no forward read follows a reverse
//!    read within one sweep (§2.2: the forward phase completes before the
//!    reverse phase begins). Exception: an `incremental` insertion
//!    (`inserted: true`) licenses one subsequent ordering anomaly — a
//!    dynamic or envelope scheduler may legally splice a new stop into
//!    the in-progress sweep behind the ordering frontier, re-entering the
//!    forward phase or restarting it at a lower slot. Each insertion
//!    excuses at most one anomalous read. A sweep still open when the
//!    trace ends is fine (horizon expiry).
//! 4. **Request conservation** — every completion or failure names a
//!    request that arrived and has not already terminated, and a
//!    completion's reported delay equals completion time minus arrival
//!    time. Requests outstanding at end of trace are allowed.

use std::collections::BTreeMap;
use std::fmt;

use tapesim_model::{SimTime, SlotIndex, TapeId};
use tapesim_sched::SweepPhase;
use tapesim_workload::RequestId;

use super::{TraceEvent, TraceRecord, SYSTEM_DRIVE};

/// One invariant violation, anchored to the offending record.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Violation {
    /// `seq` of the record that violated the invariant.
    pub seq: u64,
    /// Timestamp of that record.
    pub at: SimTime,
    /// What went wrong.
    pub message: String,
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[seq {} @ {}] {}", self.seq, self.at, self.message)
    }
}

/// Aggregate counts from a trace that passed all invariants.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct TraceStats {
    /// Total records in the trace.
    pub events: usize,
    /// Request arrivals.
    pub arrivals: u64,
    /// Request completions.
    pub completions: u64,
    /// Permanent request failures.
    pub failures: u64,
    /// Requests still outstanding when the trace ended.
    pub outstanding: u64,
    /// Sweeps started (major reschedules).
    pub sweeps: u64,
    /// Tape mounts.
    pub mounts: u64,
    /// Successful block reads.
    pub reads: u64,
    /// Failed read passes (media errors).
    pub media_errors: u64,
    /// Replica failovers.
    pub failovers: u64,
    /// Distinct drives that emitted events (excluding the system stream).
    pub drives: usize,
    /// Timestamp of the last record.
    pub end: SimTime,
}

struct SweepState {
    tape: TapeId,
    in_reverse: bool,
    last_forward: Option<SlotIndex>,
    last_reverse: Option<SlotIndex>,
    /// Unconsumed incremental insertions: each licenses one read that
    /// breaks the static sweep ordering (see module docs, invariant 3).
    inserts: u32,
}

#[derive(Default)]
struct DriveState {
    clock: SimTime,
    mounted: Option<TapeId>,
    sweep: Option<SweepState>,
}

#[derive(Clone, Copy, PartialEq)]
enum ReqState {
    Open(SimTime),
    Done,
}

/// Checks every invariant over a trace. Returns aggregate stats on
/// success, or the full list of violations (not just the first) on
/// failure.
pub fn check_trace(trace: &[TraceRecord]) -> Result<TraceStats, Vec<Violation>> {
    let mut violations = Vec::new();
    let mut stats = TraceStats::default();
    let mut drives: BTreeMap<u16, DriveState> = BTreeMap::new();
    let mut requests: BTreeMap<RequestId, ReqState> = BTreeMap::new();
    let mut last_seq: Option<u64> = None;

    for rec in trace {
        stats.events += 1;
        stats.end = stats.end.max(rec.at);
        let mut fail = |message: String| {
            violations.push(Violation {
                seq: rec.seq,
                at: rec.at,
                message,
            })
        };

        // Invariant 1: global seq strictly increasing, per-drive clock
        // non-decreasing (system stream exempt).
        if let Some(prev) = last_seq {
            if rec.seq <= prev {
                fail(format!(
                    "seq {} not greater than previous {}",
                    rec.seq, prev
                ));
            }
        }
        last_seq = Some(rec.seq);
        let drive = drives.entry(rec.drive).or_default();
        if rec.drive != SYSTEM_DRIVE {
            if rec.at < drive.clock {
                fail(format!(
                    "drive {} clock moved backwards ({} after {})",
                    rec.drive, rec.at, drive.clock
                ));
            }
            drive.clock = drive.clock.max(rec.at);
        }

        // Invariants 2 and 3: mount state machine and sweep structure.
        match rec.event {
            TraceEvent::Locate { tape, .. } | TraceEvent::Rewind { tape, .. }
                if drive.mounted != Some(tape) =>
            {
                fail(format!(
                    "head motion on tape {} but drive {} has {:?} mounted",
                    tape.0,
                    rec.drive,
                    drive.mounted.map(|t| t.0)
                ));
            }
            TraceEvent::Read {
                tape, slot, phase, ..
            } => {
                stats.reads += 1;
                if drive.mounted != Some(tape) {
                    fail(format!(
                        "read of tape {} but drive {} has {:?} mounted",
                        tape.0,
                        rec.drive,
                        drive.mounted.map(|t| t.0)
                    ));
                }
                match drive.sweep.as_mut() {
                    None => fail(format!("read of tape {} outside any sweep", tape.0)),
                    Some(sweep) => {
                        if sweep.tape != tape {
                            fail(format!(
                                "read of tape {} inside a sweep of tape {}",
                                tape.0, sweep.tape.0
                            ));
                        }
                        match phase {
                            SweepPhase::Forward => {
                                let descended = sweep.last_forward.is_some_and(|prev| slot <= prev);
                                if sweep.in_reverse || descended {
                                    // Only a prior incremental insertion can
                                    // re-open or rewind the forward phase.
                                    if sweep.inserts > 0 {
                                        sweep.inserts -= 1;
                                        sweep.in_reverse = false;
                                    } else if sweep.in_reverse {
                                        fail(format!(
                                            "forward read at slot {} after the reverse phase began",
                                            slot.0
                                        ));
                                    } else {
                                        fail(format!(
                                            "forward reads not strictly ascending: slot {} after {}",
                                            slot.0,
                                            sweep.last_forward.map_or(0, |p| p.0)
                                        ));
                                    }
                                }
                                sweep.last_forward = Some(slot);
                            }
                            SweepPhase::Reverse => {
                                sweep.in_reverse = true;
                                if let Some(prev) = sweep.last_reverse {
                                    if slot >= prev {
                                        if sweep.inserts > 0 {
                                            sweep.inserts -= 1;
                                        } else {
                                            fail(format!(
                                                "reverse reads not strictly descending: slot {} after {}",
                                                slot.0, prev.0
                                            ));
                                        }
                                    }
                                }
                                sweep.last_reverse = Some(slot);
                            }
                        }
                    }
                }
            }
            TraceEvent::MediaError { tape, .. } => {
                stats.media_errors += 1;
                if drive.mounted != Some(tape) {
                    fail(format!(
                        "media error on tape {} but drive {} has {:?} mounted",
                        tape.0,
                        rec.drive,
                        drive.mounted.map(|t| t.0)
                    ));
                }
            }
            TraceEvent::Mount { tape, .. } => {
                stats.mounts += 1;
                if let Some(old) = drive.mounted {
                    fail(format!(
                        "mount of tape {} while tape {} is still mounted on drive {}",
                        tape.0, old.0, rec.drive
                    ));
                }
                drive.mounted = Some(tape);
            }
            TraceEvent::Unmount { tape } => {
                if drive.mounted != Some(tape) {
                    fail(format!(
                        "unmount of tape {} but drive {} has {:?} mounted",
                        tape.0,
                        rec.drive,
                        drive.mounted.map(|t| t.0)
                    ));
                }
                drive.mounted = None;
            }
            TraceEvent::SweepStart { tape, .. } => {
                stats.sweeps += 1;
                if let Some(open) = &drive.sweep {
                    fail(format!(
                        "sweep of tape {} started while a sweep of tape {} is open",
                        tape.0, open.tape.0
                    ));
                }
                drive.sweep = Some(SweepState {
                    tape,
                    in_reverse: false,
                    last_forward: None,
                    last_reverse: None,
                    inserts: 0,
                });
            }
            TraceEvent::Incremental { inserted: true, .. } => {
                if let Some(sweep) = drive.sweep.as_mut() {
                    sweep.inserts += 1;
                }
            }
            TraceEvent::PhaseStart { tape, .. } => match &drive.sweep {
                None => fail(format!("phase start for tape {} outside any sweep", tape.0)),
                Some(sweep) if sweep.tape != tape => fail(format!(
                    "phase start for tape {} inside a sweep of tape {}",
                    tape.0, sweep.tape.0
                )),
                Some(_) => {}
            },
            TraceEvent::SweepEnd { tape } => match drive.sweep.take() {
                None => fail(format!(
                    "sweep end for tape {} without a sweep start",
                    tape.0
                )),
                Some(sweep) if sweep.tape != tape => fail(format!(
                    "sweep end for tape {} closing a sweep of tape {}",
                    tape.0, sweep.tape.0
                )),
                Some(_) => {}
            },
            TraceEvent::TapeOffline { tape } => {
                // A tape failure aborts any sweep on it and removes the
                // cartridge from service wherever it sits.
                if drive.sweep.as_ref().is_some_and(|s| s.tape == tape) {
                    drive.sweep = None;
                }
                if drive.mounted == Some(tape) {
                    drive.mounted = None;
                }
            }
            _ => {}
        }

        // Invariant 4: request conservation.
        match rec.event {
            TraceEvent::Arrival { req, .. } => {
                stats.arrivals += 1;
                if requests.insert(req, ReqState::Open(rec.at)).is_some() {
                    fail(format!("request {} arrived twice", req.0));
                }
            }
            TraceEvent::Complete { req, delay, .. } => {
                stats.completions += 1;
                match requests.insert(req, ReqState::Done) {
                    None => fail(format!("request {} completed without arriving", req.0)),
                    Some(ReqState::Done) => {
                        fail(format!("request {} reached a second terminal event", req.0))
                    }
                    Some(ReqState::Open(arrived)) => {
                        if arrived + delay != rec.at {
                            fail(format!(
                                "request {} delay {} inconsistent with arrival {} and completion {}",
                                req.0, delay, arrived, rec.at
                            ));
                        }
                    }
                }
            }
            TraceEvent::RequestFailed { req } => {
                stats.failures += 1;
                match requests.insert(req, ReqState::Done) {
                    None => fail(format!("request {} failed without arriving", req.0)),
                    Some(ReqState::Done) => {
                        fail(format!("request {} reached a second terminal event", req.0))
                    }
                    Some(ReqState::Open(_)) => {}
                }
            }
            TraceEvent::Failover { req, .. } => {
                stats.failovers += 1;
                match requests.get(&req) {
                    None => fail(format!("request {} failed over without arriving", req.0)),
                    Some(ReqState::Done) => {
                        fail(format!("request {} failed over after terminating", req.0))
                    }
                    Some(ReqState::Open(_)) => {}
                }
            }
            _ => {}
        }
    }

    stats.outstanding = requests
        .values()
        .filter(|s| matches!(s, ReqState::Open(_)))
        .count() as u64;
    stats.drives = drives.keys().filter(|&&d| d != SYSTEM_DRIVE).count();

    if violations.is_empty() {
        Ok(stats)
    } else {
        Err(violations)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tapesim_layout::BlockId;
    use tapesim_model::Micros;

    struct Builder {
        seq: u64,
        out: Vec<TraceRecord>,
    }

    impl Builder {
        fn new() -> Self {
            Builder {
                seq: 0,
                out: Vec::new(),
            }
        }

        fn ev(&mut self, t: u64, drive: u16, event: TraceEvent) -> &mut Self {
            self.out.push(TraceRecord {
                seq: self.seq,
                at: SimTime::from_micros(t),
                drive,
                event,
            });
            self.seq += 1;
            self
        }
    }

    fn read(tape: u16, slot: u32, phase: SweepPhase) -> TraceEvent {
        TraceEvent::Read {
            tape: TapeId(tape),
            slot: SlotIndex(slot),
            phase,
            dur: Micros::from_micros(10),
        }
    }

    fn valid_trace() -> Vec<TraceRecord> {
        let mut b = Builder::new();
        b.ev(
            0,
            SYSTEM_DRIVE,
            TraceEvent::Arrival {
                req: RequestId(1),
                block: BlockId(5),
            },
        )
        .ev(
            10,
            0,
            TraceEvent::SweepStart {
                tape: TapeId(2),
                stops: 1,
                requests: 1,
            },
        )
        .ev(
            20,
            0,
            TraceEvent::Mount {
                tape: TapeId(2),
                dur: Micros::from_micros(10),
            },
        )
        .ev(
            21,
            0,
            TraceEvent::PhaseStart {
                tape: TapeId(2),
                phase: SweepPhase::Forward,
            },
        )
        .ev(
            25,
            0,
            TraceEvent::Locate {
                tape: TapeId(2),
                from: SlotIndex(0),
                to: SlotIndex(3),
                dur: Micros::from_micros(5),
            },
        )
        .ev(35, 0, read(2, 3, SweepPhase::Forward))
        .ev(
            35,
            0,
            TraceEvent::Complete {
                req: RequestId(1),
                tape: TapeId(2),
                delay: Micros::from_micros(35),
            },
        )
        .ev(35, 0, TraceEvent::SweepEnd { tape: TapeId(2) });
        b.out
    }

    #[test]
    fn accepts_a_valid_trace() {
        let stats = check_trace(&valid_trace()).unwrap();
        assert_eq!(stats.arrivals, 1);
        assert_eq!(stats.completions, 1);
        assert_eq!(stats.outstanding, 0);
        assert_eq!(stats.sweeps, 1);
        assert_eq!(stats.mounts, 1);
        assert_eq!(stats.drives, 1);
        assert_eq!(stats.end, SimTime::from_micros(35));
    }

    #[test]
    fn rejects_backwards_drive_clock() {
        let mut t = valid_trace();
        t[4].at = SimTime::from_micros(5); // locate before the mount that preceded it
        let v = check_trace(&t).unwrap_err();
        assert!(v
            .iter()
            .any(|v| v.message.contains("clock moved backwards")));
    }

    #[test]
    fn rejects_read_without_mount() {
        let mut t = valid_trace();
        t.remove(2); // drop the mount
        let v = check_trace(&t).unwrap_err();
        assert!(v.iter().any(|v| v.message.contains("read of tape 2")));
    }

    #[test]
    fn rejects_forward_read_after_reverse() {
        let mut b = Builder::new();
        b.ev(
            0,
            0,
            TraceEvent::SweepStart {
                tape: TapeId(0),
                stops: 2,
                requests: 2,
            },
        )
        .ev(
            1,
            0,
            TraceEvent::Mount {
                tape: TapeId(0),
                dur: Micros::from_micros(1),
            },
        )
        .ev(2, 0, read(0, 5, SweepPhase::Reverse))
        .ev(3, 0, read(0, 7, SweepPhase::Forward));
        let v = check_trace(&b.out).unwrap_err();
        assert!(v
            .iter()
            .any(|v| v.message.contains("after the reverse phase")));
    }

    #[test]
    fn incremental_insertion_licenses_forward_reentry() {
        let mut b = Builder::new();
        b.ev(
            0,
            SYSTEM_DRIVE,
            TraceEvent::Arrival {
                req: RequestId(1),
                block: BlockId(0),
            },
        )
        .ev(
            0,
            0,
            TraceEvent::SweepStart {
                tape: TapeId(0),
                stops: 2,
                requests: 2,
            },
        )
        .ev(
            1,
            0,
            TraceEvent::Mount {
                tape: TapeId(0),
                dur: Micros::from_micros(1),
            },
        )
        .ev(2, 0, read(0, 9, SweepPhase::Forward))
        .ev(3, 0, read(0, 5, SweepPhase::Reverse))
        .ev(
            4,
            0,
            TraceEvent::Incremental {
                req: RequestId(1),
                tape: TapeId(0),
                inserted: true,
            },
        )
        // Licensed by the insertion: the sweep re-enters the forward
        // phase below the old forward frontier.
        .ev(5, 0, read(0, 7, SweepPhase::Forward))
        .ev(6, 0, read(0, 4, SweepPhase::Reverse))
        .ev(6, 0, TraceEvent::SweepEnd { tape: TapeId(0) });
        check_trace(&b.out).unwrap();

        // A second unlicensed re-entry is still a violation.
        let mut b = Builder::new();
        b.ev(
            0,
            0,
            TraceEvent::SweepStart {
                tape: TapeId(0),
                stops: 2,
                requests: 2,
            },
        )
        .ev(
            1,
            0,
            TraceEvent::Mount {
                tape: TapeId(0),
                dur: Micros::from_micros(1),
            },
        )
        .ev(2, 0, read(0, 5, SweepPhase::Reverse))
        .ev(3, 0, read(0, 7, SweepPhase::Forward));
        assert!(check_trace(&b.out).is_err());
    }

    #[test]
    fn rejects_non_monotonic_sweep_slots() {
        let mut b = Builder::new();
        b.ev(
            0,
            0,
            TraceEvent::SweepStart {
                tape: TapeId(0),
                stops: 2,
                requests: 2,
            },
        )
        .ev(
            1,
            0,
            TraceEvent::Mount {
                tape: TapeId(0),
                dur: Micros::from_micros(1),
            },
        )
        .ev(2, 0, read(0, 5, SweepPhase::Forward))
        .ev(3, 0, read(0, 5, SweepPhase::Forward));
        let v = check_trace(&b.out).unwrap_err();
        assert!(v.iter().any(|v| v.message.contains("strictly ascending")));
    }

    #[test]
    fn rejects_double_completion_and_orphans() {
        let mut t = valid_trace();
        let dup = t[6];
        t.push(TraceRecord { seq: 8, ..dup });
        let v = check_trace(&t).unwrap_err();
        assert!(v.iter().any(|v| v.message.contains("second terminal")));

        let orphan = vec![TraceRecord {
            seq: 0,
            at: SimTime::ZERO,
            drive: SYSTEM_DRIVE,
            event: TraceEvent::RequestFailed { req: RequestId(9) },
        }];
        let v = check_trace(&orphan).unwrap_err();
        assert!(v.iter().any(|v| v.message.contains("without arriving")));
    }

    #[test]
    fn rejects_inconsistent_delay() {
        let mut t = valid_trace();
        t[6].event = TraceEvent::Complete {
            req: RequestId(1),
            tape: TapeId(2),
            delay: Micros::from_micros(1), // arrival was at t=0, completion at t=35
        };
        let v = check_trace(&t).unwrap_err();
        assert!(v.iter().any(|v| v.message.contains("delay")));
    }

    #[test]
    fn outstanding_requests_at_eof_are_fine() {
        let t = vec![TraceRecord {
            seq: 0,
            at: SimTime::ZERO,
            drive: SYSTEM_DRIVE,
            event: TraceEvent::Arrival {
                req: RequestId(1),
                block: BlockId(0),
            },
        }];
        let stats = check_trace(&t).unwrap();
        assert_eq!(stats.outstanding, 1);
    }

    #[test]
    fn tape_offline_closes_sweep_and_dismounts() {
        let mut b = Builder::new();
        b.ev(
            0,
            0,
            TraceEvent::SweepStart {
                tape: TapeId(0),
                stops: 1,
                requests: 1,
            },
        )
        .ev(
            1,
            0,
            TraceEvent::Mount {
                tape: TapeId(0),
                dur: Micros::from_micros(1),
            },
        )
        .ev(2, 0, TraceEvent::TapeOffline { tape: TapeId(0) })
        .ev(
            3,
            0,
            TraceEvent::SweepStart {
                tape: TapeId(1),
                stops: 1,
                requests: 1,
            },
        )
        .ev(
            4,
            0,
            TraceEvent::Mount {
                tape: TapeId(1),
                dur: Micros::from_micros(1),
            },
        )
        .ev(5, 0, read(1, 0, SweepPhase::Forward))
        .ev(5, 0, TraceEvent::SweepEnd { tape: TapeId(1) });
        check_trace(&b.out).unwrap();
    }
}
