//! Erasure-read execution: drives the stepped multi-drive core in
//! external-arrival mode, expanding every logical read of a striped
//! catalog into `k` shard sub-requests and joining their completions.
//!
//! ## Execution model
//!
//! A striped catalog (built by `PlacementScheme::Erasure { k, m }`, see
//! `tapesim_layout::StripeInfo`) stores *shard cells*, not logical
//! blocks: a hot logical block is `k + m` cells on distinct tapes, a
//! cold one `k` contiguous cells on a single tape. The engine cores
//! already execute cell reads perfectly well — cells are ordinary
//! catalog blocks — so erasure semantics live entirely in this driver:
//!
//! 1. **Admission.** Each logical request expands into exactly `k`
//!    sub-requests, one per shard cell chosen by
//!    [`tapesim_sched::choose_shards`] (cheapest-`k` ranking against the
//!    currently mounted tapes, known-dead cells deprioritized). The subs
//!    enter the engine through `submit_at`, so scheduling, sweeps,
//!    mounts, traces, and the fault model treat them exactly like any
//!    other read — a hot erasure read visibly mounts up to `k` tapes.
//! 2. **Join.** A logical read completes at the instant its *last* sub
//!    completes (the max-completion envelope); the logical delay and the
//!    logical byte count (`k` shards) are what the report's
//!    request-level metrics measure.
//! 3. **Degraded mode.** When a sub fails permanently (its cell's tape
//!    or copy was lost under the PR 1 fault model), the driver retargets
//!    the read onto the cheapest surviving unused cell of the stripe —
//!    parity shards make this possible for hot blocks. When fewer than
//!    `k` cells survive, the logical read fails with the typed
//!    `ec_unavailable` accounting (cold blocks, having no parity, fail
//!    on the first lost cell).
//!
//! Closed-queue workloads regenerate one logical request per logical
//! completion (or failure), preserving the paper's population invariant
//! at the logical level. Everything is deterministic: the factory's
//! request stream, the engine's event order, and the `BTreeMap` joins.
//!
//! Checkpointing is structurally excluded (external-arrival mode refuses
//! it), and the generated-arrival entry points refuse striped catalogs,
//! so an erasure catalog cannot be run with cell-level request sampling
//! by accident.

use std::collections::{BTreeMap, BTreeSet};

use tapesim_layout::{BlockId, Catalog};
use tapesim_model::{FaultConfig, SimTime, TapeId, TimingModel};
use tapesim_sched::Scheduler;
use tapesim_workload::{ArrivalProcess, BlockSampler, Request, RequestFactory, RequestId};

use crate::engine::SimConfig;
use crate::error::SimError;
use crate::metrics::{MetricsCollector, MetricsReport};
use crate::multidrive::SteppedMultiDrive;
use crate::stepped::EngineEvent;
use crate::trace::NullSink;

/// One in-flight logical erasure read: the join over its `k` subs.
#[derive(Debug)]
struct Join {
    /// The logical request (factory id-space; `block` is a logical id).
    logical: Request,
    /// Sub-requests still outstanding.
    remaining: u32,
    /// Cells assigned so far, including failed ones (never reused).
    used: Vec<u32>,
    /// True once the logical read failed (fewer than `k` cells left);
    /// kept only until the last outstanding sub drains.
    doomed: bool,
}

/// Runs one erasure-scheme simulation over a striped catalog: logical
/// requests are drawn from `sampler`/`process` (logical id-space — use
/// [`BlockSampler::from_catalog`], which samples logical blocks for
/// striped catalogs) and executed as `k`-way shard reads on the stepped
/// multi-drive core. Returns the logical-level report: request metrics
/// (completed, delays, throughput, admitted/served/failed/unserved)
/// count logical reads and logical bytes, device metrics (physical
/// reads, tape switches, time fractions, fault accounting) count actual
/// drive work — so `physical_reads ≈ k × served` and the extra mounts of
/// multi-tape reads are visible in `tape_switches`.
#[allow(clippy::too_many_arguments)]
pub fn run_erasure_simulation(
    catalog: &Catalog,
    timing: &TimingModel,
    scheduler: &mut dyn Scheduler,
    sampler: BlockSampler,
    process: ArrivalProcess,
    cfg: &SimConfig,
    faults: &FaultConfig,
    seed: u64,
    drives: u16,
) -> Result<MetricsReport, SimError> {
    let stripe = *catalog.stripe().ok_or(SimError::InvalidConfig(
        "erasure driver requires a striped catalog",
    ))?;
    if sampler.total() != catalog.logical_num_blocks() {
        return Err(SimError::InvalidConfig(
            "sampler must cover the catalog's logical blocks",
        ));
    }
    let logical_bytes = catalog.logical_block_size().bytes();
    let warmup_end = SimTime::ZERO + cfg.warmup;

    // The logical request stream is ours; the engine only fingerprints
    // its copy (external mode never draws from it).
    let mut factory = RequestFactory::new(sampler.clone(), process, seed);
    let mut engine_factory = RequestFactory::new(sampler, process, seed);
    let mut sink = NullSink;
    let mut engine = SteppedMultiDrive::new_external(
        catalog,
        timing,
        scheduler,
        &mut engine_factory,
        cfg,
        drives,
        faults,
        seed,
        &mut sink,
    )?;

    let closed = matches!(process, ArrivalProcess::Closed { .. });
    let mut joins: BTreeMap<u64, Join> = BTreeMap::new();
    let mut sub_of: BTreeMap<RequestId, u64> = BTreeMap::new();
    let mut dead_cells: BTreeSet<u32> = BTreeSet::new();
    let mut metrics = MetricsCollector::new(warmup_end);
    let mut ec_unavailable = 0u64;
    let mut failovers = 0u64;

    // Seed the workload.
    let mut next_arrival: Option<SimTime> = None;
    match process {
        ArrivalProcess::Closed { queue_length } => {
            for _ in 0..queue_length {
                let req = factory.make(SimTime::ZERO);
                metrics.record_admission();
                admit(
                    &mut engine,
                    catalog,
                    timing,
                    &stripe,
                    &dead_cells,
                    &mut joins,
                    &mut sub_of,
                    req,
                )?;
            }
        }
        ArrivalProcess::OpenPoisson { .. } => {
            let gap = factory
                .next_interarrival()
                .ok_or(SimError::ClosedArrivalStream)?;
            next_arrival = Some(SimTime::ZERO + gap);
        }
    }

    // Drive the engine so joins, retargets, and closed-queue
    // regeneration happen at their natural instants: event-by-event for
    // closed queuing (regeneration must be prompt to hold the population
    // invariant), arrival-to-arrival for open queuing (the engine would
    // otherwise idle past future arrivals it knows nothing about).
    while !engine.is_done() {
        // Deliver open arrivals before the clock passes them.
        while let Some(t) = next_arrival {
            if t > engine.now() {
                break;
            }
            let req = factory.make(t);
            metrics.record_admission();
            admit(
                &mut engine,
                catalog,
                timing,
                &stripe,
                &dead_cells,
                &mut joins,
                &mut sub_of,
                req,
            )?;
            let gap = factory
                .next_interarrival()
                .ok_or(SimError::ClosedArrivalStream)?;
            next_arrival = Some(t + gap);
        }
        match next_arrival {
            // An arrival inside the run: step up to it, then deliver.
            // `step_until` parks rather than dispatching an operation
            // that would end past `t`, so it may return with the clock
            // short of `t`; delivering afterwards is correct either way
            // because `submit_at` stamps the request at `t` (or at the
            // clock, if a dispatched operation overshot it).
            Some(t) if t < engine.horizon() => {
                engine.step_until(t)?;
                if !engine.is_done() {
                    let req = factory.make(t);
                    metrics.record_admission();
                    admit(
                        &mut engine,
                        catalog,
                        timing,
                        &stripe,
                        &dead_cells,
                        &mut joins,
                        &mut sub_of,
                        req,
                    )?;
                    let gap = factory
                        .next_interarrival()
                        .ok_or(SimError::ClosedArrivalStream)?;
                    next_arrival = Some(t + gap);
                }
            }
            // Closed queue, or the remaining open arrivals fall past the
            // horizon: let the engine run down what is still in flight
            // (`step` is not bounded by a park point, so the final
            // operation past the horizon finishes the run — `step_until`
            // alone never would).
            _ => {
                engine.step()?;
            }
        }
        for ev in engine.drain_events() {
            let (sub, at, ok) = match ev {
                EngineEvent::Completed { req, at } => (req, at, true),
                EngineEvent::Failed { req, at } => (req, at, false),
            };
            let Some(lid) = sub_of.remove(&sub) else {
                continue; // sub of an already-doomed logical read
            };
            let Some(join) = joins.get_mut(&lid) else {
                continue;
            };
            if ok {
                join.remaining -= 1;
                if join.remaining > 0 || join.doomed {
                    if join.remaining == 0 {
                        joins.remove(&lid);
                    }
                    continue;
                }
                let logical = joins.remove(&lid).map(|j| j.logical);
                if let Some(logical) = logical {
                    metrics.record_completion(logical.arrival, at, logical_bytes);
                }
                if closed {
                    let req = factory.make(at);
                    metrics.record_admission();
                    admit(
                        &mut engine,
                        catalog,
                        timing,
                        &stripe,
                        &dead_cells,
                        &mut joins,
                        &mut sub_of,
                        req,
                    )?;
                }
                continue;
            }
            // A sub failed: its cell is permanently gone (the engine
            // only fails a request once every copy is lost forever).
            // The event carries the request id, not the cell, so probe
            // the injector for every cell of this stripe — the failed
            // one is found by construction, its dead siblings as a
            // bonus. Then retarget onto the cheapest surviving unused
            // cell, or fail the logical read when fewer than `k` cells
            // of the stripe are left.
            mark_dead_cells(catalog, &stripe, join, &mut dead_cells, &engine);
            if join.doomed {
                join.remaining -= 1;
                if join.remaining == 0 {
                    joins.remove(&lid);
                }
                continue;
            }
            let replacement =
                replacement_cell(catalog, timing, &stripe, join, &dead_cells, &engine);
            match replacement {
                Some(cell) => {
                    join.used.push(cell);
                    failovers += 1;
                    let sub = engine.submit_at(BlockId(cell), at)?;
                    sub_of.insert(sub, lid);
                }
                None => {
                    join.doomed = true;
                    join.remaining -= 1;
                    ec_unavailable += 1;
                    metrics.record_permanent_failure();
                    let done = join.remaining == 0;
                    if done {
                        joins.remove(&lid);
                    }
                    if closed {
                        let req = factory.make(at);
                        metrics.record_admission();
                        admit(
                            &mut engine,
                            catalog,
                            timing,
                            &stripe,
                            &dead_cells,
                            &mut joins,
                            &mut sub_of,
                            req,
                        )?;
                    }
                }
            }
        }
    }

    // Assemble the report: request-level fields from the logical
    // collector, device-level fields from the engine. The window mirrors
    // the engine's own convention (up to where a cut-short run got).
    let saturated = engine.saturated();
    let now = engine.now();
    let end = SimTime::ZERO + cfg.duration;
    let engine_report = engine.finish();
    let window = if saturated || now < end {
        if now > warmup_end {
            now.duration_since(warmup_end)
        } else {
            tapesim_model::Micros::from_micros(1)
        }
    } else {
        cfg.duration - cfg.warmup
    };
    let unserved = joins.values().filter(|j| !j.doomed).count() as u64;
    metrics.set_fault_accounting(0, Vec::new(), tapesim_model::Micros::ZERO, unserved);
    let logical = metrics.report(window, saturated);
    Ok(MetricsReport {
        completed: logical.completed,
        throughput_kb_per_s: logical.throughput_kb_per_s,
        requests_per_min: logical.requests_per_min,
        mean_delay_s: logical.mean_delay_s,
        median_delay_s: logical.median_delay_s,
        p95_delay_s: logical.p95_delay_s,
        p99_delay_s: logical.p99_delay_s,
        max_delay_s: logical.max_delay_s,
        delay_samples_us: logical.delay_samples_us,
        admitted: logical.admitted,
        served: logical.served,
        failed_requests: logical.failed_requests,
        unserved,
        replica_failovers: failovers,
        ec_unavailable,
        ..engine_report
    })
}

/// Expands one logical request into `k` subs and registers the join.
#[allow(clippy::too_many_arguments)]
fn admit(
    engine: &mut SteppedMultiDrive<'_>,
    catalog: &Catalog,
    timing: &TimingModel,
    stripe: &tapesim_layout::StripeInfo,
    dead_cells: &BTreeSet<u32>,
    joins: &mut BTreeMap<u64, Join>,
    sub_of: &mut BTreeMap<RequestId, u64>,
    req: Request,
) -> Result<(), SimError> {
    let mounted = mounted_tapes(engine);
    // Tapes of this stripe's known-dead cells: within one stripe, cells
    // sit on distinct tapes (hot) or one tape (cold), so per-cell and
    // per-tape deadness coincide for ranking purposes.
    let (first, count) = stripe.cells_of(req.block.0);
    let mut lost: Vec<TapeId> = (first..first + count)
        .filter(|c| dead_cells.contains(c))
        // simlint: allow(panic, striped catalogs store exactly one address per shard cell)
        .map(|c| catalog.replicas(BlockId(c))[0].tape)
        .collect();
    lost.sort_unstable();
    lost.dedup();
    let cells = tapesim_sched::choose_shards(timing, catalog, req.block.0, &mounted, &lost);
    let lid = req.id.0;
    let mut join = Join {
        logical: req,
        remaining: 0,
        used: Vec::with_capacity(cells.len()),
        doomed: false,
    };
    for cell in cells {
        let sub = engine.submit_at(BlockId(cell), req.arrival)?;
        sub_of.insert(sub, lid);
        join.used.push(cell);
        join.remaining += 1;
    }
    joins.insert(lid, join);
    Ok(())
}

/// The tapes currently in drives, sorted for binary search.
fn mounted_tapes(engine: &SteppedMultiDrive<'_>) -> Vec<TapeId> {
    let mut v: Vec<TapeId> = (0..engine.drive_count())
        .filter_map(|d| engine.drive_mounted(d))
        .collect();
    v.sort_unstable();
    v
}

/// Records every cell of `join`'s stripe whose single copy the engine's
/// injector has permanently lost. Called on a sub failure, so at least
/// the failed cell is caught; catching siblings early just saves futile
/// resubmissions.
fn mark_dead_cells(
    catalog: &Catalog,
    stripe: &tapesim_layout::StripeInfo,
    join: &Join,
    dead_cells: &mut BTreeSet<u32>,
    engine: &SteppedMultiDrive<'_>,
) {
    let (first, count) = stripe.cells_of(join.logical.block.0);
    for cell in first..first + count {
        // simlint: allow(panic, striped catalogs store exactly one address per shard cell)
        if engine.copy_lost_forever(catalog.replicas(BlockId(cell))[0]) {
            dead_cells.insert(cell);
        }
    }
}

/// The cheapest surviving cell of the stripe not yet assigned to this
/// join, if any (hot stripes only — cold stripes have exactly `k` cells,
/// all assigned at admission).
fn replacement_cell(
    catalog: &Catalog,
    timing: &TimingModel,
    stripe: &tapesim_layout::StripeInfo,
    join: &Join,
    dead_cells: &BTreeSet<u32>,
    engine: &SteppedMultiDrive<'_>,
) -> Option<u32> {
    let (first, count) = stripe.cells_of(join.logical.block.0);
    let mounted = mounted_tapes(engine);
    (first..first + count)
        .filter(|c| !join.used.contains(c) && !dead_cells.contains(c))
        .map(|c| {
            // simlint: allow(panic, striped catalogs store exactly one address per shard cell)
            let addr = catalog.replicas(BlockId(c))[0];
            (
                tapesim_sched::shard_pick_cost(timing, catalog, &mounted, addr),
                c,
            )
        })
        .min()
        .map(|(_, c)| c)
}

#[cfg(test)]
mod tests {
    use super::*;
    use tapesim_layout::{build_placement, LayoutKind, PlacementConfig, PlacementScheme};
    use tapesim_model::{BlockSize, JukeboxGeometry, Micros};
    use tapesim_sched::{make_scheduler, AlgorithmId};

    fn ec_catalog(k: u8, m: u8) -> Catalog {
        build_placement(
            JukeboxGeometry::PAPER_DEFAULT,
            BlockSize::PAPER_DEFAULT,
            PlacementConfig {
                layout: LayoutKind::Horizontal,
                ph_percent: 10.0,
                scheme: PlacementScheme::Erasure { k, m },
                sp: 0.0,
            },
        )
        .unwrap()
        .catalog
    }

    fn quick_cfg() -> SimConfig {
        SimConfig {
            duration: Micros::from_secs(100_000),
            warmup: Micros::from_secs(10_000),
            max_pending: 5_000,
        }
    }

    fn run_ec(
        catalog: &Catalog,
        process: ArrivalProcess,
        faults: &FaultConfig,
        seed: u64,
    ) -> MetricsReport {
        let mut sched = make_scheduler(AlgorithmId::paper_recommended());
        let sampler = BlockSampler::from_catalog(catalog, 40.0);
        run_erasure_simulation(
            catalog,
            &TimingModel::paper_default(),
            sched.as_mut(),
            sampler,
            process,
            &quick_cfg(),
            faults,
            seed,
            1,
        )
        .unwrap()
    }

    #[test]
    fn closed_queue_erasure_run_reads_k_shards_per_logical_read() {
        let catalog = ec_catalog(2, 1);
        let r = run_ec(
            &catalog,
            ArrivalProcess::Closed { queue_length: 20 },
            &FaultConfig::NONE,
            7,
        );
        assert!(r.completed > 50, "completed {}", r.completed);
        // Every logical read is k = 2 physical shard reads. The exact 2x
        // ratio is softened by the warmup boundary (a logical completion
        // counted in-window may have read a shard before the window
        // opened) and by duplicate-request merging (two logical reads of
        // the same block share one physical read per cell), so assert a
        // ratio well above 1 rather than exactly 2.
        assert!(
            r.physical_reads * 2 >= r.completed * 3,
            "physical {} vs completed {}",
            r.physical_reads,
            r.completed
        );
        assert!(
            r.physical_reads <= r.served * 2,
            "physical {} vs served {}",
            r.physical_reads,
            r.served
        );
        assert_eq!(r.ec_unavailable, 0);
        assert_eq!(r.replica_failovers, 0);
        assert_eq!(r.admitted, r.served + r.failed_requests + r.unserved);
        // Logical bytes: throughput reflects 16 MB per completion even
        // though each physical read moves an 8 MB shard.
        assert!(r.throughput_kb_per_s > 0.0);
    }

    #[test]
    fn open_arrivals_drive_the_erasure_engine() {
        let catalog = ec_catalog(2, 2);
        let r = run_ec(
            &catalog,
            ArrivalProcess::OpenPoisson {
                mean_interarrival: Micros::from_secs(400),
            },
            &FaultConfig::NONE,
            11,
        );
        assert!(r.completed > 20, "completed {}", r.completed);
        assert_eq!(r.admitted, r.served + r.failed_requests + r.unserved);
        assert_eq!(r.ec_unavailable, 0);
    }

    #[test]
    fn determinism_same_seed_same_report() {
        let catalog = ec_catalog(2, 1);
        let p = ArrivalProcess::Closed { queue_length: 10 };
        let a = run_ec(&catalog, p, &FaultConfig::NONE, 3);
        let b = run_ec(&catalog, p, &FaultConfig::NONE, 3);
        assert_eq!(a, b);
    }

    #[test]
    fn degraded_mode_fails_over_to_parity_shards() {
        let catalog = ec_catalog(2, 2);
        // Spontaneous permanent tape failures: lost shards force
        // retargets onto parity cells, and heavily damaged stripes
        // become typed unavailabilities rather than hangs.
        let faults = FaultConfig {
            tape_mtbf: Some(Micros::from_secs(40_000)),
            tape_mttr: None,
            ..FaultConfig::NONE
        };
        let r = run_ec(
            &catalog,
            ArrivalProcess::Closed { queue_length: 20 },
            &faults,
            5,
        );
        assert!(r.completed > 10, "completed {}", r.completed);
        assert_eq!(r.admitted, r.served + r.failed_requests + r.unserved);
        assert_eq!(r.ec_unavailable, r.failed_requests);
    }

    #[test]
    fn generated_arrivals_refuse_striped_catalogs() {
        let catalog = ec_catalog(2, 1);
        let mut sched = make_scheduler(AlgorithmId::paper_recommended());
        let sampler = BlockSampler::from_catalog(&catalog, 40.0);
        let mut factory =
            RequestFactory::new(sampler, ArrivalProcess::Closed { queue_length: 10 }, 1);
        let err = crate::engine::run_simulation(
            &catalog,
            &TimingModel::paper_default(),
            sched.as_mut(),
            &mut factory,
            &quick_cfg(),
        )
        .unwrap_err();
        assert!(matches!(err, SimError::InvalidConfig(_)));
    }

    #[test]
    fn erasure_driver_refuses_plain_catalogs() {
        let catalog = build_placement(
            JukeboxGeometry::PAPER_DEFAULT,
            BlockSize::PAPER_DEFAULT,
            PlacementConfig {
                layout: LayoutKind::Horizontal,
                ph_percent: 10.0,
                scheme: PlacementScheme::Replication { nr: 1 },
                sp: 0.0,
            },
        )
        .unwrap()
        .catalog;
        let mut sched = make_scheduler(AlgorithmId::paper_recommended());
        let sampler = BlockSampler::from_catalog(&catalog, 40.0);
        let err = run_erasure_simulation(
            &catalog,
            &TimingModel::paper_default(),
            sched.as_mut(),
            sampler,
            ArrivalProcess::Closed { queue_length: 10 },
            &quick_cfg(),
            &FaultConfig::NONE,
            1,
            1,
        )
        .unwrap_err();
        assert!(matches!(err, SimError::InvalidConfig(_)));
    }
}
