//! The discrete-event simulation engine for the Section 2.2 service model.
//!
//! The engine repeatedly cycles through the paper's four steps:
//!
//! 1. invoke the major rescheduler on the pending list;
//! 2. switch to the selected tape if it is not already loaded (rewinding
//!    the old tape first, since the drive must rewind before ejecting);
//! 3. execute the service list stop by stop; requests arriving during the
//!    sweep are handed to the incremental scheduler at the next operation
//!    boundary;
//! 4. if the pending list is empty, idle until a request arrives.
//!
//! Closed-queuing workloads regenerate a request at the instant each
//! request completes (keeping the queue length constant); open-queuing
//! workloads draw Poisson arrivals independent of the service rate.
//!
//! # Fault injection
//!
//! [`run_simulation_with_faults`] layers the fault model of
//! [`tapesim_model::faults`] over the same loop:
//!
//! * tape failures take tapes offline (visible to schedulers through
//!   [`JukeboxView::offline`]); a failure under the mounted tape aborts
//!   the sweep and requeues its requests, which fail over to replicas on
//!   surviving tapes or wait for the repair;
//! * media errors cost extra read passes and, after the configured
//!   retries, lose the copy — requests fall back to a replica, or fail
//!   permanently when no copy survives anywhere;
//! * load failures cost extra robot exchanges and, after the configured
//!   retries, fail the whole tape;
//! * drive failures halt service for the configured repair time.
//!
//! With [`FaultConfig::NONE`] the fault path is completely inert: no
//! random numbers are drawn and the simulation is identical to
//! [`run_simulation`].
#![allow(clippy::cast_possible_truncation)] // slot counts are bounded by jukebox geometry
#![allow(clippy::cast_precision_loss)] // event counters stay far below 2^53

use std::collections::BTreeMap;

use tapesim_layout::Catalog;
use tapesim_model::{
    FaultConfig, FaultInjector, LocateDirection, Micros, PhysicalAddr, ReadContext, SimTime,
    SlotIndex, TapeId, TimingModel,
};
use tapesim_sched::{ArrivalOutcome, JukeboxView, PendingList, Scheduler, SweepPlan};
use tapesim_workload::{ArrivalProcess, RequestFactory, RequestId};

use crate::checkpoint::{self, Checkpoint, CheckpointOpts, DriveCheckpoint, EngineKind};
use crate::error::SimError;
use crate::metrics::{MetricsCollector, MetricsReport};
use crate::trace::{NullSink, TraceEvent, TraceSink, Tracer, SYSTEM_DRIVE};
use crate::trace_event;

/// The single-drive engine's drive id in trace records.
const DRIVE0: u16 = 0;

/// Configuration of a single simulation run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SimConfig {
    /// Total simulated time. The paper's experiments model 10 million
    /// seconds; the default is a tenth of that, which reproduces the same
    /// rankings in a fraction of the wall-clock time.
    pub duration: Micros,
    /// Initial portion excluded from the metrics window.
    pub warmup: Micros,
    /// Abort threshold on the pending-queue length: an open-queuing run
    /// whose queue grows beyond this is overloaded, and the run is marked
    /// saturated.
    pub max_pending: usize,
}

impl Default for SimConfig {
    fn default() -> Self {
        SimConfig {
            duration: Micros::from_secs(1_000_000),
            warmup: Micros::from_secs(100_000),
            max_pending: 5_000,
        }
    }
}

impl SimConfig {
    /// The paper's full horizon: 10 million simulated seconds.
    pub fn paper_scale() -> Self {
        SimConfig {
            duration: Micros::from_secs(10_000_000),
            warmup: Micros::from_secs(500_000),
            max_pending: 5_000,
        }
    }

    /// A short horizon for tests.
    pub fn quick() -> Self {
        SimConfig {
            duration: Micros::from_secs(100_000),
            warmup: Micros::from_secs(10_000),
            max_pending: 5_000,
        }
    }
}

/// Runs one fault-free simulation to completion and reports its metrics.
pub fn run_simulation(
    catalog: &Catalog,
    timing: &TimingModel,
    scheduler: &mut dyn Scheduler,
    factory: &mut RequestFactory,
    cfg: &SimConfig,
) -> Result<MetricsReport, SimError> {
    run_simulation_with_faults(
        catalog,
        timing,
        scheduler,
        factory,
        cfg,
        &FaultConfig::NONE,
        0,
    )
}

/// Runs one simulation under the given fault model. `fault_seed` drives
/// every fault substream; pass a value derived from the run's workload
/// seed so the whole run reproduces from one number.
pub fn run_simulation_with_faults(
    catalog: &Catalog,
    timing: &TimingModel,
    scheduler: &mut dyn Scheduler,
    factory: &mut RequestFactory,
    cfg: &SimConfig,
    faults: &FaultConfig,
    fault_seed: u64,
) -> Result<MetricsReport, SimError> {
    run_simulation_traced(
        catalog,
        timing,
        scheduler,
        factory,
        cfg,
        faults,
        fault_seed,
        &mut NullSink,
    )
}

/// Runs one simulation while recording every event into `sink` (see
/// [`crate::trace`]). With a [`NullSink`] this is exactly
/// [`run_simulation_with_faults`]: the tracing path constructs nothing.
#[allow(clippy::too_many_arguments)]
pub fn run_simulation_traced(
    catalog: &Catalog,
    timing: &TimingModel,
    scheduler: &mut dyn Scheduler,
    factory: &mut RequestFactory,
    cfg: &SimConfig,
    faults: &FaultConfig,
    fault_seed: u64,
    sink: &mut dyn TraceSink,
) -> Result<MetricsReport, SimError> {
    run_simulation_checkpointed(
        catalog,
        timing,
        scheduler,
        factory,
        cfg,
        faults,
        fault_seed,
        sink,
        &CheckpointOpts::none(),
    )
}

/// [`run_simulation_traced`] with checkpoint/resume support (see
/// [`crate::checkpoint`]). With [`CheckpointOpts::none`] this is exactly
/// [`run_simulation_traced`]: the checkpoint path costs one `Option`
/// check per outer-loop iteration. Checkpoints are taken at sweep
/// boundaries (no service list in flight), the first one at or after
/// each multiple of the configured interval. A resumed run continues the
/// trace sequence and the metrics window exactly where the checkpoint
/// left them, so its trace suffix and final report are identical to the
/// uninterrupted run's.
#[allow(clippy::too_many_arguments)]
pub fn run_simulation_checkpointed(
    catalog: &Catalog,
    timing: &TimingModel,
    scheduler: &mut dyn Scheduler,
    factory: &mut RequestFactory,
    cfg: &SimConfig,
    faults: &FaultConfig,
    fault_seed: u64,
    sink: &mut dyn TraceSink,
    opts: &CheckpointOpts,
) -> Result<MetricsReport, SimError> {
    if cfg.warmup >= cfg.duration {
        return Err(SimError::InvalidConfig("warmup must precede the horizon"));
    }
    faults.validate().map_err(SimError::InvalidConfig)?;
    opts.validate()?;
    let fp = checkpoint::run_fingerprint(
        EngineKind::Single,
        catalog,
        timing,
        scheduler.name(),
        &factory.config_tag(),
        &format!("{cfg:?}"),
        &format!("{faults:?}"),
        fault_seed,
        1,
        "",
    );
    let resumed = match opts.resume() {
        Some(path) => {
            let ckpt = checkpoint::load(path)?;
            if ckpt.fingerprint != fp {
                return Err(SimError::CheckpointConfigMismatch {
                    found: ckpt.fingerprint,
                    expected: fp,
                });
            }
            Some(ckpt)
        }
        None => None,
    };
    let mut tracer = match &resumed {
        Some(ckpt) => Tracer::with_seq(sink, ckpt.trace_seq),
        None => Tracer::new(sink),
    };
    let mut injector = FaultInjector::new(*faults, &catalog.geometry(), 1, fault_seed);
    let block = catalog.block_size();
    let block_bytes = block.bytes();
    let end = SimTime::ZERO + cfg.duration;
    let warmup_end = SimTime::ZERO + cfg.warmup;
    let closed = matches!(factory.process(), ArrivalProcess::Closed { .. });

    let mut now = SimTime::ZERO;
    let mut mounted: Option<TapeId> = None;
    let mut head = SlotIndex::BOT;
    let mut pending = PendingList::new();
    let mut metrics = MetricsCollector::new(warmup_end);
    let mut saturated = false;
    // Requests disrupted by a fault on the given tape; completing one from
    // a different tape counts as a replica failover.
    let mut faulted: BTreeMap<RequestId, TapeId> = BTreeMap::new();
    let mut stranded_in_plan: u64 = 0;
    // Scratch buffer for the offline-tape snapshot handed to scheduler
    // views; refilled at each dispatch point instead of allocating per
    // event.
    let mut offline_buf: Vec<TapeId> = Vec::new();

    // Seed the workload — or, on resume, restore every piece of state
    // from the checkpoint instead.
    let mut next_arrival: Option<SimTime> = None;
    if let Some(ckpt) = &resumed {
        factory
            .replay(ckpt.factory_makes, ckpt.factory_gaps)
            .map_err(|m| SimError::CheckpointCorrupt(m.to_string()))?;
        if factory.stream_fingerprint() != ckpt.factory_fp {
            return Err(SimError::CheckpointConfigMismatch {
                found: ckpt.factory_fp,
                expected: factory.stream_fingerprint(),
            });
        }
        if let Some(snap) = &ckpt.faults {
            injector
                .restore(snap)
                .map_err(|m| SimError::CheckpointCorrupt(m.to_string()))?;
        }
        if let Some(state) = &ckpt.sched_state {
            scheduler
                .restore_state(state)
                .map_err(|m| SimError::CheckpointCorrupt(m.to_string()))?;
        }
        let drive = ckpt.drives.first().ok_or_else(|| {
            SimError::CheckpointCorrupt("single-drive checkpoint has no drive line".into())
        })?;
        now = SimTime::from_micros(ckpt.now_us);
        mounted = drive.mounted;
        head = drive.head;
        for req in ckpt.pending.iter() {
            pending.push(*req);
        }
        metrics = MetricsCollector::from_snapshot(&ckpt.metrics);
        faulted = ckpt
            .faulted
            .iter()
            .map(|&(r, t)| (RequestId(r), TapeId(t)))
            .collect();
        next_arrival = ckpt.next_arrival_us.map(SimTime::from_micros);
    } else {
        match factory.process() {
            ArrivalProcess::Closed { queue_length } => {
                for _ in 0..queue_length {
                    let req = factory.make(now);
                    trace_event!(
                        tracer,
                        now,
                        SYSTEM_DRIVE,
                        TraceEvent::Arrival {
                            req: req.id,
                            block: req.block,
                        }
                    );
                    pending.push(req);
                    metrics.record_admission();
                }
            }
            ArrivalProcess::OpenPoisson { .. } => {
                let gap = factory
                    .next_interarrival()
                    .ok_or(SimError::ClosedArrivalStream)?;
                next_arrival = Some(now + gap);
            }
        }
    }
    // First periodic-checkpoint instant strictly after the current clock.
    let mut next_ckpt_at = opts
        .write_every()
        .map(|(every, _)| checkpoint::next_checkpoint_after(now, every));

    'outer: while now < end {
        if let (Some(at), Some((every, path))) = (next_ckpt_at, opts.write_every()) {
            if now >= at {
                let ckpt = Checkpoint {
                    engine: EngineKind::Single,
                    fingerprint: fp,
                    now_us: now.as_micros(),
                    trace_seq: tracer.next_seq(),
                    next_arrival_us: next_arrival.map(|t| t.as_micros()),
                    factory_makes: factory.minted(),
                    factory_gaps: factory.gaps_drawn(),
                    factory_fp: factory.stream_fingerprint(),
                    pending: pending.iter().cloned().collect(),
                    metrics: metrics.snapshot(),
                    faulted: faulted.iter().map(|(r, t)| (r.0, t.0)).collect(),
                    sched_state: scheduler.checkpoint_state(),
                    faults: (*faults != FaultConfig::NONE).then(|| injector.snapshot()),
                    drives: vec![DriveCheckpoint {
                        mounted,
                        head,
                        plan: None,
                        cur_phase: None,
                        free_at_us: now.as_micros(),
                        idle: false,
                    }],
                    multi: None,
                    writeback: None,
                };
                checkpoint::save(&ckpt, path)?;
                next_ckpt_at = Some(checkpoint::next_checkpoint_after(now, every));
            }
        }
        // Deliver arrivals that came due between sweeps straight onto the
        // pending list (no sweep is running to insert into).
        while let Some(t) = next_arrival {
            if t > now {
                break;
            }
            let req = factory.make(t);
            trace_event!(
                tracer,
                t,
                SYSTEM_DRIVE,
                TraceEvent::Arrival {
                    req: req.id,
                    block: req.block,
                }
            );
            pending.push(req);
            metrics.record_admission();
            let gap = factory
                .next_interarrival()
                .ok_or(SimError::ClosedArrivalStream)?;
            next_arrival = Some(t + gap);
        }
        if pending.len() > cfg.max_pending {
            saturated = true;
            break 'outer;
        }

        if injector.is_active() {
            injector.advance(now);
            // A drive failure halts service for the repair interval, then
            // the loop restarts (delivering arrivals that came due).
            if let Some(repair) = injector.drive_outage(0, now) {
                now += repair;
                metrics.add_repair_time(now, repair);
                trace_event!(tracer, now, DRIVE0, TraceEvent::DriveRepair { dur: repair });
                continue 'outer;
            }
            // Once copies have been permanently lost, fail out the pending
            // requests that no surviving copy can serve.
            if injector.has_permanent_damage() {
                let dead = pending.extract(|r| {
                    catalog
                        .replicas(r.block)
                        .iter()
                        .all(|a| injector.copy_dead(*a))
                });
                for r in dead {
                    faulted.remove(&r.id);
                    metrics.record_permanent_failure();
                    trace_event!(
                        tracer,
                        now,
                        SYSTEM_DRIVE,
                        TraceEvent::RequestFailed { req: r.id }
                    );
                    if closed {
                        let req = factory.make(now);
                        trace_event!(
                            tracer,
                            now,
                            SYSTEM_DRIVE,
                            TraceEvent::Arrival {
                                req: req.id,
                                block: req.block,
                            }
                        );
                        pending.push(req);
                        metrics.record_admission();
                    }
                }
            }
        }
        offline_buf.clear();
        offline_buf.extend_from_slice(injector.offline());

        // Step 1: major reschedule.
        let view = JukeboxView {
            catalog,
            timing,
            mounted,
            head,
            now,
            unavailable: &[],
            offline: &offline_buf,
        };
        let Some(mut plan) = scheduler.major_reschedule(&view, &mut pending) else {
            // Step 4: idle until the next arrival or fault event (a repair
            // can make a stranded request schedulable again).
            let mut wake = end;
            let mut have_event = false;
            if let Some(t) = next_arrival {
                if t < wake {
                    wake = t;
                    have_event = true;
                }
            }
            if let Some(t) = injector.next_event(now) {
                if t < wake {
                    wake = t;
                    have_event = true;
                }
            }
            if have_event {
                let dur = wake.duration_since(now);
                metrics.add_idle_time(wake, dur);
                trace_event!(tracer, wake, DRIVE0, TraceEvent::Idle { dur });
                now = wake;
                continue;
            }
            let dur = end.duration_since(now);
            metrics.add_idle_time(end, dur);
            trace_event!(tracer, end, DRIVE0, TraceEvent::Idle { dur });
            now = end;
            break 'outer;
        };

        trace_event!(
            tracer,
            now,
            DRIVE0,
            TraceEvent::SweepStart {
                tape: plan.tape,
                stops: plan.list.stops() as u32,
                requests: plan.list.requests() as u32,
            }
        );

        // Step 2: switch tapes if needed.
        if mounted != Some(plan.tape) {
            let mut switch = Micros::ZERO;
            let mut rewind = Micros::ZERO;
            if let Some(old) = mounted {
                rewind = timing.drive.rewind(head, block);
                switch += rewind + timing.drive.eject();
                // The rewind ends `rewind` in; the tape is then ejected
                // (its time is part of the mount segment below).
                trace_event!(
                    tracer,
                    now + rewind,
                    DRIVE0,
                    TraceEvent::Rewind {
                        tape: old,
                        from: head,
                        dur: rewind,
                    }
                );
                trace_event!(
                    tracer,
                    now + rewind,
                    DRIVE0,
                    TraceEvent::Unmount { tape: old }
                );
            }
            switch += timing.robot.exchange() + timing.drive.load();
            // Fault: each failed load attempt costs another exchange +
            // load; exhausting the retries fails the tape itself.
            let mut tape_failed_on_load = false;
            if injector.is_active() {
                let mut tries = 0u32;
                while injector.load_fails() {
                    if tries >= faults.load_retries {
                        tape_failed_on_load = true;
                        break;
                    }
                    tries += 1;
                    switch += timing.robot.exchange() + timing.drive.load();
                }
            }
            now += switch;
            metrics.add_switch_time(now, switch);
            metrics.record_tape_switch(now);
            if tape_failed_on_load {
                injector.force_tape_failure(plan.tape, now);
                trace_event!(
                    tracer,
                    now,
                    DRIVE0,
                    TraceEvent::LoadFailed {
                        tape: plan.tape,
                        dur: switch - rewind,
                    }
                );
                trace_event!(
                    tracer,
                    now,
                    DRIVE0,
                    TraceEvent::TapeOffline { tape: plan.tape }
                );
                mounted = None;
                head = SlotIndex::BOT;
                abort_plan(&plan, plan.tape, &mut pending, &mut faulted);
                continue 'outer;
            }
            trace_event!(
                tracer,
                now,
                DRIVE0,
                TraceEvent::Mount {
                    tape: plan.tape,
                    dur: switch - rewind,
                }
            );
            mounted = Some(plan.tape);
            head = SlotIndex::BOT;
        }

        // Step 3: execute the service list.
        let mut cur_phase = None;
        loop {
            offline_buf.clear();
            offline_buf.extend_from_slice(injector.offline());
            // Hand arrivals that came due to the incremental scheduler.
            process_due_arrivals(
                catalog,
                timing,
                scheduler,
                factory,
                &mut next_arrival,
                now,
                mounted,
                head,
                &offline_buf,
                &mut plan,
                &mut pending,
                &mut metrics,
                &mut tracer,
            )?;
            if pending.len() > cfg.max_pending {
                saturated = true;
                stranded_in_plan = plan.list.requests() as u64;
                break 'outer;
            }
            if now >= end {
                stranded_in_plan = plan.list.requests() as u64;
                break 'outer;
            }
            if injector.is_active() {
                injector.advance(now);
                if let Some(repair) = injector.drive_outage(0, now) {
                    // The drive is repaired in place; the sweep resumes.
                    now += repair;
                    metrics.add_repair_time(now, repair);
                    trace_event!(tracer, now, DRIVE0, TraceEvent::DriveRepair { dur: repair });
                    continue;
                }
                if injector.is_offline(plan.tape) {
                    // The mounted tape failed mid-sweep: the remaining
                    // requests fail over to replicas or wait for repair.
                    trace_event!(
                        tracer,
                        now,
                        DRIVE0,
                        TraceEvent::TapeOffline { tape: plan.tape }
                    );
                    mounted = None;
                    head = SlotIndex::BOT;
                    abort_plan(&plan, plan.tape, &mut pending, &mut faulted);
                    continue 'outer;
                }
            }
            let Some((stop, phase)) = plan.list.pop() else {
                trace_event!(
                    tracer,
                    now,
                    DRIVE0,
                    TraceEvent::SweepEnd { tape: plan.tape }
                );
                break; // sweep complete; head stays put
            };
            if tracer.on && cur_phase != Some(phase) {
                cur_phase = Some(phase);
                tracer.push(
                    now,
                    DRIVE0,
                    TraceEvent::PhaseStart {
                        tape: plan.tape,
                        phase,
                    },
                );
            }
            // Locate + read.
            let (lt, dir) = timing.drive.locate(head, stop.slot, block);
            let ctx = match dir {
                None => ReadContext::Streaming,
                Some(LocateDirection::Forward) => ReadContext::AfterForwardLocate,
                Some(LocateDirection::Reverse) => ReadContext::AfterReverseLocate,
            };
            let rt = timing.drive.read_block(block, ctx);
            let locate_from = head;
            now += lt;
            metrics.add_locate_time(now, lt);
            trace_event!(
                tracer,
                now,
                DRIVE0,
                TraceEvent::Locate {
                    tape: plan.tape,
                    from: locate_from,
                    to: stop.slot,
                    dur: lt,
                }
            );
            // Fault: every failed read attempt costs another pass over the
            // block; exhausting the retries loses the copy.
            let mut read_ok = true;
            if injector.is_active() {
                let mut tries = 0u32;
                while injector.media_error() {
                    now += rt;
                    metrics.add_read_time(now, rt);
                    trace_event!(
                        tracer,
                        now,
                        DRIVE0,
                        TraceEvent::MediaError {
                            tape: plan.tape,
                            slot: stop.slot,
                        }
                    );
                    if tries >= faults.media_retries {
                        read_ok = false;
                        break;
                    }
                    tries += 1;
                }
            }
            if !read_ok {
                head = stop.slot.next();
                let addr = PhysicalAddr {
                    tape: plan.tape,
                    slot: stop.slot,
                };
                injector.mark_bad_copy(addr);
                trace_event!(
                    tracer,
                    now,
                    DRIVE0,
                    TraceEvent::CopyLost {
                        tape: plan.tape,
                        slot: stop.slot,
                    }
                );
                for r in &stop.requests {
                    let survives = catalog
                        .replicas(r.block)
                        .iter()
                        .any(|a| !injector.copy_dead(*a));
                    if survives {
                        faulted.insert(r.id, plan.tape);
                        pending.push(*r);
                    } else {
                        faulted.remove(&r.id);
                        metrics.record_permanent_failure();
                        trace_event!(tracer, now, DRIVE0, TraceEvent::RequestFailed { req: r.id });
                        if closed {
                            let req = factory.make(now);
                            trace_event!(
                                tracer,
                                now,
                                SYSTEM_DRIVE,
                                TraceEvent::Arrival {
                                    req: req.id,
                                    block: req.block,
                                }
                            );
                            metrics.record_admission();
                            let view = JukeboxView {
                                catalog,
                                timing,
                                mounted,
                                head,
                                now,
                                unavailable: &[],
                                offline: &offline_buf,
                            };
                            let req_id = req.id;
                            let outcome = scheduler.on_arrival(
                                &view,
                                plan.tape,
                                &mut plan.list,
                                req,
                                &mut pending,
                            );
                            trace_event!(
                                tracer,
                                now,
                                DRIVE0,
                                TraceEvent::Incremental {
                                    req: req_id,
                                    tape: plan.tape,
                                    inserted: outcome == ArrivalOutcome::Inserted,
                                }
                            );
                        }
                    }
                }
                continue;
            }
            now += rt;
            metrics.add_read_time(now, rt);
            head = stop.slot.next();
            metrics.record_physical_read(now);
            trace_event!(
                tracer,
                now,
                DRIVE0,
                TraceEvent::Read {
                    tape: plan.tape,
                    slot: stop.slot,
                    phase,
                    dur: rt,
                }
            );

            // Complete the requests; closed queuing regenerates one new
            // request per completion, at the completion instant, routed
            // through the incremental scheduler.
            let completions = stop.requests.len();
            for r in &stop.requests {
                metrics.record_completion(r.arrival, now, block_bytes);
                if !faulted.is_empty() {
                    if let Some(failed_tape) = faulted.remove(&r.id) {
                        if failed_tape != plan.tape {
                            metrics.record_replica_failover();
                            trace_event!(
                                tracer,
                                now,
                                DRIVE0,
                                TraceEvent::Failover {
                                    req: r.id,
                                    from: failed_tape,
                                    to: plan.tape,
                                }
                            );
                        }
                    }
                }
                trace_event!(
                    tracer,
                    now,
                    DRIVE0,
                    TraceEvent::Complete {
                        req: r.id,
                        tape: plan.tape,
                        delay: now.duration_since(r.arrival),
                    }
                );
            }
            if closed {
                for _ in 0..completions {
                    let req = factory.make(now);
                    trace_event!(
                        tracer,
                        now,
                        SYSTEM_DRIVE,
                        TraceEvent::Arrival {
                            req: req.id,
                            block: req.block,
                        }
                    );
                    metrics.record_admission();
                    let view = JukeboxView {
                        catalog,
                        timing,
                        mounted,
                        head,
                        now,
                        unavailable: &[],
                        offline: &offline_buf,
                    };
                    let req_id = req.id;
                    let outcome =
                        scheduler.on_arrival(&view, plan.tape, &mut plan.list, req, &mut pending);
                    trace_event!(
                        tracer,
                        now,
                        DRIVE0,
                        TraceEvent::Incremental {
                            req: req_id,
                            tape: plan.tape,
                            inserted: outcome == ArrivalOutcome::Inserted,
                        }
                    );
                }
            }
        }
    }

    let window = if saturated || now < end {
        // Run ended early: measure up to where we actually got.
        if now > warmup_end {
            now.duration_since(warmup_end)
        } else {
            Micros::from_micros(1)
        }
    } else {
        cfg.duration - cfg.warmup
    };
    if injector.is_active() {
        injector.advance(now);
        metrics.set_fault_accounting(
            injector.media_errors(),
            injector.tape_downtime(now),
            injector.degraded_time(now),
            pending.len() as u64 + stranded_in_plan,
        );
    } else {
        metrics.set_fault_accounting(
            0,
            Vec::new(),
            Micros::ZERO,
            pending.len() as u64 + stranded_in_plan,
        );
    }
    Ok(metrics.report(window, saturated))
}

/// Requeues every request still scheduled in `plan` after its tape
/// failed, marking each as disrupted by `failed_tape` for failover
/// attribution.
pub(crate) fn abort_plan(
    plan: &SweepPlan,
    failed_tape: TapeId,
    pending: &mut PendingList,
    faulted: &mut BTreeMap<RequestId, TapeId>,
) {
    for stop in plan.list.forward_stops().chain(plan.list.reverse_stops()) {
        for r in &stop.requests {
            faulted.insert(r.id, failed_tape);
            pending.push(*r);
        }
    }
}

/// Feeds every arrival due at or before `now` to the incremental
/// scheduler.
#[allow(clippy::too_many_arguments)]
fn process_due_arrivals(
    catalog: &Catalog,
    timing: &TimingModel,
    scheduler: &mut dyn Scheduler,
    factory: &mut RequestFactory,
    next_arrival: &mut Option<SimTime>,
    now: SimTime,
    mounted: Option<TapeId>,
    head: SlotIndex,
    offline: &[TapeId],
    plan: &mut SweepPlan,
    pending: &mut PendingList,
    metrics: &mut MetricsCollector,
    tracer: &mut Tracer<'_>,
) -> Result<(), SimError> {
    while let Some(t) = *next_arrival {
        if t > now {
            break;
        }
        let req = factory.make(t);
        trace_event!(
            tracer,
            t,
            SYSTEM_DRIVE,
            TraceEvent::Arrival {
                req: req.id,
                block: req.block,
            }
        );
        metrics.record_admission();
        let view = JukeboxView {
            catalog,
            timing,
            mounted,
            head,
            now,
            unavailable: &[],
            offline,
        };
        let req_id = req.id;
        let outcome = scheduler.on_arrival(&view, plan.tape, &mut plan.list, req, pending);
        trace_event!(
            tracer,
            now,
            DRIVE0,
            TraceEvent::Incremental {
                req: req_id,
                tape: plan.tape,
                inserted: outcome == ArrivalOutcome::Inserted,
            }
        );
        let gap = factory
            .next_interarrival()
            .ok_or(SimError::ClosedArrivalStream)?;
        *next_arrival = Some(t + gap);
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use tapesim_layout::{build_placement, LayoutKind, PlacementConfig};
    use tapesim_model::{BlockSize, JukeboxGeometry};
    use tapesim_sched::{make_scheduler, AlgorithmId, EnvelopePolicy, TapeSelectPolicy};
    use tapesim_workload::BlockSampler;

    fn paper_catalog(nr: u32, sp: f64, layout: LayoutKind) -> tapesim_layout::Catalog {
        build_placement(
            JukeboxGeometry::PAPER_DEFAULT,
            BlockSize::PAPER_DEFAULT,
            PlacementConfig {
                layout,
                ph_percent: 10.0,
                replicas: nr,
                sp,
            },
        )
        .unwrap()
        .catalog
    }

    fn run(
        catalog: &tapesim_layout::Catalog,
        algorithm: AlgorithmId,
        process: ArrivalProcess,
        seed: u64,
        cfg: &SimConfig,
    ) -> MetricsReport {
        run_with_faults(catalog, algorithm, process, seed, cfg, &FaultConfig::NONE)
    }

    fn run_with_faults(
        catalog: &tapesim_layout::Catalog,
        algorithm: AlgorithmId,
        process: ArrivalProcess,
        seed: u64,
        cfg: &SimConfig,
        faults: &FaultConfig,
    ) -> MetricsReport {
        let timing = TimingModel::paper_default();
        let sampler = BlockSampler::from_catalog(catalog, 40.0);
        let mut factory = RequestFactory::new(sampler, process, seed);
        let mut sched = make_scheduler(algorithm);
        run_simulation_with_faults(
            catalog,
            &timing,
            sched.as_mut(),
            &mut factory,
            cfg,
            faults,
            seed,
        )
        .expect("simulation failed")
    }

    #[test]
    fn closed_queue_fifo_makes_progress() {
        let catalog = paper_catalog(0, 0.0, LayoutKind::Horizontal);
        let r = run(
            &catalog,
            AlgorithmId::Fifo,
            ArrivalProcess::Closed { queue_length: 20 },
            1,
            &SimConfig::quick(),
        );
        assert!(r.completed > 50, "completed {}", r.completed);
        assert!(r.throughput_kb_per_s > 0.0);
        assert!(r.mean_delay_s > 0.0);
        assert!(!r.saturated);
        // FIFO switches tapes for almost every request.
        assert!(r.tape_switches as f64 > r.completed as f64 * 0.5);
    }

    #[test]
    fn dynamic_max_bandwidth_beats_fifo() {
        let catalog = paper_catalog(0, 0.0, LayoutKind::Horizontal);
        let cfg = SimConfig::quick();
        let proc = ArrivalProcess::Closed { queue_length: 60 };
        let fifo = run(&catalog, AlgorithmId::Fifo, proc, 1, &cfg);
        let dyn_bw = run(
            &catalog,
            AlgorithmId::Dynamic(TapeSelectPolicy::MaxBandwidth),
            proc,
            1,
            &cfg,
        );
        assert!(
            dyn_bw.throughput_kb_per_s > 2.0 * fifo.throughput_kb_per_s,
            "dynamic {} vs fifo {}",
            dyn_bw.throughput_kb_per_s,
            fifo.throughput_kb_per_s
        );
        assert!(dyn_bw.tape_switches < fifo.tape_switches);
    }

    #[test]
    fn same_seed_is_deterministic() {
        let catalog = paper_catalog(0, 0.0, LayoutKind::Horizontal);
        let cfg = SimConfig::quick();
        let proc = ArrivalProcess::Closed { queue_length: 40 };
        let alg = AlgorithmId::Dynamic(TapeSelectPolicy::MaxRequests);
        let a = run(&catalog, alg, proc, 7, &cfg);
        let b = run(&catalog, alg, proc, 7, &cfg);
        assert_eq!(a, b);
        let c = run(&catalog, alg, proc, 8, &cfg);
        assert_ne!(a, c);
    }

    #[test]
    fn envelope_runs_with_full_replication() {
        let catalog = paper_catalog(9, 1.0, LayoutKind::Vertical);
        let r = run(
            &catalog,
            AlgorithmId::Envelope(EnvelopePolicy::MaxBandwidth),
            ArrivalProcess::Closed { queue_length: 60 },
            3,
            &SimConfig::quick(),
        );
        assert!(r.completed > 100, "completed {}", r.completed);
        assert!(!r.saturated);
    }

    #[test]
    fn open_queue_low_load_is_mostly_idle() {
        let catalog = paper_catalog(0, 0.0, LayoutKind::Horizontal);
        let r = run(
            &catalog,
            AlgorithmId::Dynamic(TapeSelectPolicy::MaxBandwidth),
            ArrivalProcess::OpenPoisson {
                mean_interarrival: Micros::from_secs(2_000),
            },
            5,
            &SimConfig::quick(),
        );
        assert!(r.completed > 5);
        assert!(!r.saturated);
        assert!(r.idle_frac > 0.5, "idle {}", r.idle_frac);
    }

    #[test]
    fn open_queue_overload_saturates() {
        let catalog = paper_catalog(0, 0.0, LayoutKind::Horizontal);
        let cfg = SimConfig {
            duration: Micros::from_secs(2_000_000),
            warmup: Micros::from_secs(1_000),
            max_pending: 200,
        };
        // One request per second vastly exceeds the ~1 req/30s capacity.
        let r = run(
            &catalog,
            AlgorithmId::Dynamic(TapeSelectPolicy::MaxBandwidth),
            ArrivalProcess::OpenPoisson {
                mean_interarrival: Micros::from_secs(1),
            },
            5,
            &cfg,
        );
        assert!(r.saturated);
    }

    #[test]
    fn time_accounting_covers_the_window() {
        let catalog = paper_catalog(0, 0.0, LayoutKind::Horizontal);
        let r = run(
            &catalog,
            AlgorithmId::Static(TapeSelectPolicy::MaxRequests),
            ArrivalProcess::Closed { queue_length: 60 },
            2,
            &SimConfig::quick(),
        );
        let total = r.locate_frac + r.read_frac + r.switch_frac + r.idle_frac;
        // Closed queue never idles; boundary effects keep this near 1.
        assert!((total - 1.0).abs() < 0.05, "time fractions sum to {total}");
    }

    #[test]
    fn higher_queue_length_gives_higher_throughput_and_delay() {
        let catalog = paper_catalog(0, 0.0, LayoutKind::Horizontal);
        let cfg = SimConfig::quick();
        let alg = AlgorithmId::Dynamic(TapeSelectPolicy::MaxBandwidth);
        let q20 = run(
            &catalog,
            alg,
            ArrivalProcess::Closed { queue_length: 20 },
            1,
            &cfg,
        );
        let q140 = run(
            &catalog,
            alg,
            ArrivalProcess::Closed { queue_length: 140 },
            1,
            &cfg,
        );
        assert!(q140.throughput_kb_per_s > q20.throughput_kb_per_s);
        assert!(q140.mean_delay_s > q20.mean_delay_s);
    }

    #[test]
    fn invalid_config_is_an_error_not_a_panic() {
        let catalog = paper_catalog(0, 0.0, LayoutKind::Horizontal);
        let timing = TimingModel::paper_default();
        let sampler = BlockSampler::from_catalog(&catalog, 40.0);
        let mut factory =
            RequestFactory::new(sampler, ArrivalProcess::Closed { queue_length: 5 }, 1);
        let mut sched = make_scheduler(AlgorithmId::Fifo);
        let bad = SimConfig {
            duration: Micros::from_secs(10),
            warmup: Micros::from_secs(10),
            max_pending: 100,
        };
        let err = run_simulation(&catalog, &timing, sched.as_mut(), &mut factory, &bad);
        assert!(matches!(err, Err(SimError::InvalidConfig(_))));
        let bad_faults = FaultConfig {
            media_error_per_read: 2.0,
            ..FaultConfig::NONE
        };
        let err = run_simulation_with_faults(
            &catalog,
            &timing,
            sched.as_mut(),
            &mut factory,
            &SimConfig::quick(),
            &bad_faults,
            1,
        );
        assert!(matches!(err, Err(SimError::InvalidConfig(_))));
    }

    #[test]
    fn inert_faults_match_the_plain_entry_point() {
        let catalog = paper_catalog(1, 0.5, LayoutKind::Vertical);
        let cfg = SimConfig::quick();
        let proc = ArrivalProcess::Closed { queue_length: 40 };
        let alg = AlgorithmId::paper_recommended();
        let plain = run(&catalog, alg, proc, 11, &cfg);
        let inert = run_with_faults(&catalog, alg, proc, 11, &cfg, &FaultConfig::NONE);
        assert_eq!(plain, inert);
        assert_eq!(plain.failed_requests, 0);
        assert_eq!(plain.media_errors, 0);
        assert_eq!(plain.degraded_frac, 0.0);
    }

    #[test]
    fn same_seed_same_faults_is_deterministic() {
        let catalog = paper_catalog(1, 0.5, LayoutKind::Vertical);
        let cfg = SimConfig::quick();
        let proc = ArrivalProcess::Closed { queue_length: 40 };
        let faults = FaultConfig {
            media_error_per_read: 0.02,
            media_retries: 1,
            load_failure_p: 0.02,
            load_retries: 2,
            tape_mtbf: Some(Micros::from_secs(400_000)),
            tape_mttr: Some(Micros::from_secs(20_000)),
            drive_mtbf: Some(Micros::from_secs(300_000)),
            drive_mttr: Micros::from_secs(5_000),
        };
        let alg = AlgorithmId::paper_recommended();
        let a = run_with_faults(&catalog, alg, proc, 13, &cfg, &faults);
        let b = run_with_faults(&catalog, alg, proc, 13, &cfg, &faults);
        assert_eq!(a, b);
    }

    #[test]
    fn request_conservation_holds_under_faults() {
        let catalog = paper_catalog(1, 0.5, LayoutKind::Vertical);
        let faults = FaultConfig {
            media_error_per_read: 0.05,
            media_retries: 0,
            tape_mtbf: Some(Micros::from_secs(200_000)),
            tape_mttr: None, // permanent failures
            ..FaultConfig::NONE
        };
        for alg in [
            AlgorithmId::Fifo,
            AlgorithmId::Dynamic(TapeSelectPolicy::MaxBandwidth),
            AlgorithmId::paper_recommended(),
        ] {
            let r = run_with_faults(
                &catalog,
                alg,
                ArrivalProcess::Closed { queue_length: 40 },
                17,
                &SimConfig::quick(),
                &faults,
            );
            assert_eq!(
                r.admitted,
                r.served + r.failed_requests + r.unserved,
                "conservation violated for {}",
                alg.name()
            );
        }
    }

    #[test]
    fn repairable_tape_failures_degrade_but_do_not_lose_requests() {
        let catalog = paper_catalog(0, 0.0, LayoutKind::Horizontal);
        let faults = FaultConfig {
            tape_mtbf: Some(Micros::from_secs(150_000)),
            tape_mttr: Some(Micros::from_secs(10_000)),
            ..FaultConfig::NONE
        };
        let r = run_with_faults(
            &catalog,
            AlgorithmId::Dynamic(TapeSelectPolicy::MaxBandwidth),
            ArrivalProcess::Closed { queue_length: 40 },
            19,
            &SimConfig::quick(),
            &faults,
        );
        assert_eq!(r.failed_requests, 0, "repairable faults lose nothing");
        assert!(r.degraded_frac > 0.0, "expected degraded time");
        assert!(
            r.tape_downtime_s.iter().any(|&d| d > 0.0),
            "expected tape downtime"
        );
        assert!(r.completed > 50, "service continued: {}", r.completed);
    }

    #[test]
    fn replication_reduces_permanent_failures() {
        // Permanent (unrepaired) tape failures: without replication every
        // request stranded on a dead tape is lost; with full replication
        // of the hot data, hot requests fail over to surviving copies.
        // Cold blocks have a single copy under every NR, so losses do not
        // drop to zero — but they must drop strictly.
        let faults = FaultConfig {
            tape_mtbf: Some(Micros::from_secs(300_000)),
            tape_mttr: None,
            ..FaultConfig::NONE
        };
        let cfg = SimConfig::quick();
        let proc = ArrivalProcess::Closed { queue_length: 40 };
        let alg = AlgorithmId::Dynamic(TapeSelectPolicy::MaxBandwidth);
        let bare = paper_catalog(0, 0.0, LayoutKind::Horizontal);
        let replicated = paper_catalog(9, 1.0, LayoutKind::Vertical);
        let r0 = run_with_faults(&bare, alg, proc, 23, &cfg, &faults);
        let r9 = run_with_faults(&replicated, alg, proc, 23, &cfg, &faults);
        assert!(r0.failed_requests > 0, "expected losses without replicas");
        assert!(
            r9.failed_requests < r0.failed_requests,
            "replication must reduce losses: NR=9 lost {} vs NR=0 lost {}",
            r9.failed_requests,
            r0.failed_requests
        );
        assert!(r9.completed > 100);
    }

    #[test]
    fn media_errors_fail_over_to_replicas() {
        let catalog = paper_catalog(1, 1.0, LayoutKind::Vertical);
        let faults = FaultConfig {
            media_error_per_read: 0.2,
            media_retries: 0,
            ..FaultConfig::NONE
        };
        let r = run_with_faults(
            &catalog,
            AlgorithmId::Dynamic(TapeSelectPolicy::MaxBandwidth),
            ArrivalProcess::Closed { queue_length: 40 },
            29,
            &SimConfig::quick(),
            &faults,
        );
        assert!(r.media_errors > 0, "expected media errors");
        assert!(
            r.replica_failovers > 0,
            "expected failovers, got {} (media errors {})",
            r.replica_failovers,
            r.media_errors
        );
    }
}
