//! The discrete-event simulation engine for the Section 2.2 service model.
//!
//! The engine repeatedly cycles through the paper's four steps:
//!
//! 1. invoke the major rescheduler on the pending list;
//! 2. switch to the selected tape if it is not already loaded (rewinding
//!    the old tape first, since the drive must rewind before ejecting);
//! 3. execute the service list stop by stop; requests arriving during the
//!    sweep are handed to the incremental scheduler at the next operation
//!    boundary;
//! 4. if the pending list is empty, idle until a request arrives.
//!
//! Closed-queuing workloads regenerate a request at the instant each
//! request completes (keeping the queue length constant); open-queuing
//! workloads draw Poisson arrivals independent of the service rate.

use tapesim_layout::Catalog;
use tapesim_model::{LocateDirection, Micros, ReadContext, SimTime, SlotIndex, TapeId, TimingModel};
use tapesim_sched::{JukeboxView, PendingList, Scheduler, SweepPlan};
use tapesim_workload::{ArrivalProcess, RequestFactory};

use crate::metrics::{MetricsCollector, MetricsReport};

/// Configuration of a single simulation run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SimConfig {
    /// Total simulated time. The paper's experiments model 10 million
    /// seconds; the default is a tenth of that, which reproduces the same
    /// rankings in a fraction of the wall-clock time.
    pub duration: Micros,
    /// Initial portion excluded from the metrics window.
    pub warmup: Micros,
    /// Abort threshold on the pending-queue length: an open-queuing run
    /// whose queue grows beyond this is overloaded, and the run is marked
    /// saturated.
    pub max_pending: usize,
}

impl Default for SimConfig {
    fn default() -> Self {
        SimConfig {
            duration: Micros::from_secs(1_000_000),
            warmup: Micros::from_secs(100_000),
            max_pending: 5_000,
        }
    }
}

impl SimConfig {
    /// The paper's full horizon: 10 million simulated seconds.
    pub fn paper_scale() -> Self {
        SimConfig {
            duration: Micros::from_secs(10_000_000),
            warmup: Micros::from_secs(500_000),
            max_pending: 5_000,
        }
    }

    /// A short horizon for tests.
    pub fn quick() -> Self {
        SimConfig {
            duration: Micros::from_secs(100_000),
            warmup: Micros::from_secs(10_000),
            max_pending: 5_000,
        }
    }
}

/// Runs one simulation to completion and reports its metrics.
pub fn run_simulation(
    catalog: &Catalog,
    timing: &TimingModel,
    scheduler: &mut dyn Scheduler,
    factory: &mut RequestFactory,
    cfg: &SimConfig,
) -> MetricsReport {
    assert!(cfg.warmup < cfg.duration, "warmup must precede the horizon");
    let block = catalog.block_size();
    let block_bytes = block.bytes();
    let end = SimTime::ZERO + cfg.duration;
    let warmup_end = SimTime::ZERO + cfg.warmup;
    let closed = matches!(factory.process(), ArrivalProcess::Closed { .. });

    let mut now = SimTime::ZERO;
    let mut mounted: Option<TapeId> = None;
    let mut head = SlotIndex::BOT;
    let mut pending = PendingList::new();
    let mut metrics = MetricsCollector::new(warmup_end);
    let mut saturated = false;

    // Seed the workload.
    let mut next_arrival: Option<SimTime> = None;
    match factory.process() {
        ArrivalProcess::Closed { queue_length } => {
            for _ in 0..queue_length {
                pending.push(factory.make(now));
            }
        }
        ArrivalProcess::OpenPoisson { .. } => {
            let gap = factory.next_interarrival().expect("open process");
            next_arrival = Some(now + gap);
        }
    }

    'outer: while now < end {
        // Deliver arrivals that came due between sweeps straight onto the
        // pending list (no sweep is running to insert into).
        while let Some(t) = next_arrival {
            if t > now {
                break;
            }
            pending.push(factory.make(t));
            let gap = factory.next_interarrival().expect("open process");
            next_arrival = Some(t + gap);
        }
        if pending.len() > cfg.max_pending {
            saturated = true;
            break 'outer;
        }

        // Step 1: major reschedule.
        let view = JukeboxView {
            catalog,
            timing,
            mounted,
            head,
            now,
            unavailable: &[],
        };
        let Some(mut plan) = scheduler.major_reschedule(&view, &mut pending) else {
            // Step 4: idle until the next arrival (or the end of time).
            match next_arrival {
                Some(t) if t < end => {
                    metrics.add_idle_time(t, t.duration_since(now));
                    now = t;
                    continue;
                }
                _ => {
                    metrics.add_idle_time(end, end.duration_since(now));
                    now = end;
                    break 'outer;
                }
            }
        };

        // Step 2: switch tapes if needed.
        if mounted != Some(plan.tape) {
            let mut switch = Micros::ZERO;
            if mounted.is_some() {
                switch += timing.drive.rewind(head, block) + timing.drive.eject();
            }
            switch += timing.robot.exchange() + timing.drive.load();
            now += switch;
            metrics.add_switch_time(now, switch);
            metrics.record_tape_switch(now);
            mounted = Some(plan.tape);
            head = SlotIndex::BOT;
        }

        // Step 3: execute the service list.
        loop {
            // Hand arrivals that came due to the incremental scheduler.
            process_due_arrivals(
                catalog,
                timing,
                scheduler,
                factory,
                &mut next_arrival,
                now,
                mounted,
                head,
                &mut plan,
                &mut pending,
            );
            if pending.len() > cfg.max_pending {
                saturated = true;
                break 'outer;
            }
            if now >= end {
                break 'outer;
            }
            let Some((stop, _phase)) = plan.list.pop() else {
                break; // sweep complete; head stays put
            };
            // Locate + read.
            let (lt, dir) = timing.drive.locate(head, stop.slot, block);
            let ctx = match dir {
                None => ReadContext::Streaming,
                Some(LocateDirection::Forward) => ReadContext::AfterForwardLocate,
                Some(LocateDirection::Reverse) => ReadContext::AfterReverseLocate,
            };
            let rt = timing.drive.read_block(block, ctx);
            now += lt;
            metrics.add_locate_time(now, lt);
            now += rt;
            metrics.add_read_time(now, rt);
            head = stop.slot.next();
            metrics.record_physical_read(now);

            // Complete the requests; closed queuing regenerates one new
            // request per completion, at the completion instant, routed
            // through the incremental scheduler.
            let completions = stop.requests.len();
            for r in &stop.requests {
                metrics.record_completion(r.arrival, now, block_bytes);
            }
            if closed {
                for _ in 0..completions {
                    let req = factory.make(now);
                    let view = JukeboxView {
                        catalog,
                        timing,
                        mounted,
                        head,
                        now,
                        unavailable: &[],
                    };
                    scheduler.on_arrival(&view, plan.tape, &mut plan.list, req, &mut pending);
                }
            }
        }
    }

    let window = if saturated || now < end {
        // Run ended early: measure up to where we actually got.
        if now > warmup_end {
            now.duration_since(warmup_end)
        } else {
            Micros::from_micros(1)
        }
    } else {
        cfg.duration - cfg.warmup
    };
    metrics.report(window, saturated)
}

/// Feeds every arrival due at or before `now` to the incremental
/// scheduler.
#[allow(clippy::too_many_arguments)]
fn process_due_arrivals(
    catalog: &Catalog,
    timing: &TimingModel,
    scheduler: &mut dyn Scheduler,
    factory: &mut RequestFactory,
    next_arrival: &mut Option<SimTime>,
    now: SimTime,
    mounted: Option<TapeId>,
    head: SlotIndex,
    plan: &mut SweepPlan,
    pending: &mut PendingList,
) {
    while let Some(t) = *next_arrival {
        if t > now {
            break;
        }
        let req = factory.make(t);
        let view = JukeboxView {
            catalog,
            timing,
            mounted,
            head,
            now,
            unavailable: &[],
        };
        scheduler.on_arrival(&view, plan.tape, &mut plan.list, req, pending);
        let gap = factory.next_interarrival().expect("open process");
        *next_arrival = Some(t + gap);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tapesim_layout::{build_placement, LayoutKind, PlacementConfig};
    use tapesim_model::{BlockSize, JukeboxGeometry};
    use tapesim_sched::{make_scheduler, AlgorithmId, EnvelopePolicy, TapeSelectPolicy};
    use tapesim_workload::BlockSampler;

    fn paper_catalog(nr: u32, sp: f64, layout: LayoutKind) -> tapesim_layout::Catalog {
        build_placement(
            JukeboxGeometry::PAPER_DEFAULT,
            BlockSize::PAPER_DEFAULT,
            PlacementConfig {
                layout,
                ph_percent: 10.0,
                replicas: nr,
                sp,
            },
        )
        .unwrap()
        .catalog
    }

    fn run(
        catalog: &tapesim_layout::Catalog,
        algorithm: AlgorithmId,
        process: ArrivalProcess,
        seed: u64,
        cfg: &SimConfig,
    ) -> MetricsReport {
        let timing = TimingModel::paper_default();
        let sampler = BlockSampler::from_catalog(catalog, 40.0);
        let mut factory = RequestFactory::new(sampler, process, seed);
        let mut sched = make_scheduler(algorithm);
        run_simulation(catalog, &timing, sched.as_mut(), &mut factory, cfg)
    }

    #[test]
    fn closed_queue_fifo_makes_progress() {
        let catalog = paper_catalog(0, 0.0, LayoutKind::Horizontal);
        let r = run(
            &catalog,
            AlgorithmId::Fifo,
            ArrivalProcess::Closed { queue_length: 20 },
            1,
            &SimConfig::quick(),
        );
        assert!(r.completed > 50, "completed {}", r.completed);
        assert!(r.throughput_kb_per_s > 0.0);
        assert!(r.mean_delay_s > 0.0);
        assert!(!r.saturated);
        // FIFO switches tapes for almost every request.
        assert!(r.tape_switches as f64 > r.completed as f64 * 0.5);
    }

    #[test]
    fn dynamic_max_bandwidth_beats_fifo() {
        let catalog = paper_catalog(0, 0.0, LayoutKind::Horizontal);
        let cfg = SimConfig::quick();
        let proc = ArrivalProcess::Closed { queue_length: 60 };
        let fifo = run(&catalog, AlgorithmId::Fifo, proc, 1, &cfg);
        let dyn_bw = run(
            &catalog,
            AlgorithmId::Dynamic(TapeSelectPolicy::MaxBandwidth),
            proc,
            1,
            &cfg,
        );
        assert!(
            dyn_bw.throughput_kb_per_s > 2.0 * fifo.throughput_kb_per_s,
            "dynamic {} vs fifo {}",
            dyn_bw.throughput_kb_per_s,
            fifo.throughput_kb_per_s
        );
        assert!(dyn_bw.tape_switches < fifo.tape_switches);
    }

    #[test]
    fn same_seed_is_deterministic() {
        let catalog = paper_catalog(0, 0.0, LayoutKind::Horizontal);
        let cfg = SimConfig::quick();
        let proc = ArrivalProcess::Closed { queue_length: 40 };
        let alg = AlgorithmId::Dynamic(TapeSelectPolicy::MaxRequests);
        let a = run(&catalog, alg, proc, 7, &cfg);
        let b = run(&catalog, alg, proc, 7, &cfg);
        assert_eq!(a, b);
        let c = run(&catalog, alg, proc, 8, &cfg);
        assert_ne!(a, c);
    }

    #[test]
    fn envelope_runs_with_full_replication() {
        let catalog = paper_catalog(9, 1.0, LayoutKind::Vertical);
        let r = run(
            &catalog,
            AlgorithmId::Envelope(EnvelopePolicy::MaxBandwidth),
            ArrivalProcess::Closed { queue_length: 60 },
            3,
            &SimConfig::quick(),
        );
        assert!(r.completed > 100, "completed {}", r.completed);
        assert!(!r.saturated);
    }

    #[test]
    fn open_queue_low_load_is_mostly_idle() {
        let catalog = paper_catalog(0, 0.0, LayoutKind::Horizontal);
        let r = run(
            &catalog,
            AlgorithmId::Dynamic(TapeSelectPolicy::MaxBandwidth),
            ArrivalProcess::OpenPoisson {
                mean_interarrival: Micros::from_secs(2_000),
            },
            5,
            &SimConfig::quick(),
        );
        assert!(r.completed > 5);
        assert!(!r.saturated);
        assert!(r.idle_frac > 0.5, "idle {}", r.idle_frac);
    }

    #[test]
    fn open_queue_overload_saturates() {
        let catalog = paper_catalog(0, 0.0, LayoutKind::Horizontal);
        let cfg = SimConfig {
            duration: Micros::from_secs(2_000_000),
            warmup: Micros::from_secs(1_000),
            max_pending: 200,
        };
        // One request per second vastly exceeds the ~1 req/30s capacity.
        let r = run(
            &catalog,
            AlgorithmId::Dynamic(TapeSelectPolicy::MaxBandwidth),
            ArrivalProcess::OpenPoisson {
                mean_interarrival: Micros::from_secs(1),
            },
            5,
            &cfg,
        );
        assert!(r.saturated);
    }

    #[test]
    fn time_accounting_covers_the_window() {
        let catalog = paper_catalog(0, 0.0, LayoutKind::Horizontal);
        let r = run(
            &catalog,
            AlgorithmId::Static(TapeSelectPolicy::MaxRequests),
            ArrivalProcess::Closed { queue_length: 60 },
            2,
            &SimConfig::quick(),
        );
        let total = r.locate_frac + r.read_frac + r.switch_frac + r.idle_frac;
        // Closed queue never idles; boundary effects keep this near 1.
        assert!((total - 1.0).abs() < 0.05, "time fractions sum to {total}");
    }

    #[test]
    fn higher_queue_length_gives_higher_throughput_and_delay() {
        let catalog = paper_catalog(0, 0.0, LayoutKind::Horizontal);
        let cfg = SimConfig::quick();
        let alg = AlgorithmId::Dynamic(TapeSelectPolicy::MaxBandwidth);
        let q20 = run(&catalog, alg, ArrivalProcess::Closed { queue_length: 20 }, 1, &cfg);
        let q140 = run(&catalog, alg, ArrivalProcess::Closed { queue_length: 140 }, 1, &cfg);
        assert!(q140.throughput_kb_per_s > q20.throughput_kb_per_s);
        assert!(q140.mean_delay_s > q20.mean_delay_s);
    }
}
