//! The discrete-event simulation engine for the Section 2.2 service model.
//!
//! The engine repeatedly cycles through the paper's four steps:
//!
//! 1. invoke the major rescheduler on the pending list;
//! 2. switch to the selected tape if it is not already loaded (rewinding
//!    the old tape first, since the drive must rewind before ejecting);
//! 3. execute the service list stop by stop; requests arriving during the
//!    sweep are handed to the incremental scheduler at the next operation
//!    boundary;
//! 4. if the pending list is empty, idle until a request arrives.
//!
//! Closed-queuing workloads regenerate a request at the instant each
//! request completes (keeping the queue length constant); open-queuing
//! workloads draw Poisson arrivals independent of the service rate.
//!
//! # Stepped core
//!
//! The loop lives in [`SteppedEngine`], a poll-driven state machine that
//! executes exactly one event per [`SteppedEngine::step`] call — a
//! scheduling boundary (arrival delivery, fault clock, reschedule, tape
//! switch) or one stop of the active sweep — and whose queue/drive/tape
//! state is inspectable between steps. [`run_simulation`] and friends are
//! thin drivers that step the core to completion, so a batch run and a
//! manually stepped run of the same configuration produce byte-identical
//! traces and exactly equal reports.
//!
//! # Fault injection
//!
//! [`run_simulation_with_faults`] layers the fault model of
//! [`tapesim_model::faults`] over the same loop:
//!
//! * tape failures take tapes offline (visible to schedulers through
//!   [`JukeboxView::offline`]); a failure under the mounted tape aborts
//!   the sweep and requeues its requests, which fail over to replicas on
//!   surviving tapes or wait for the repair;
//! * media errors cost extra read passes and, after the configured
//!   retries, lose the copy — requests fall back to a replica, or fail
//!   permanently when no copy survives anywhere (a transiently lost copy,
//!   [`FaultConfig::copy_heal_mttr`], keeps its requests waiting instead);
//! * load failures cost extra robot exchanges and, after the configured
//!   retries, fail the whole tape;
//! * drive failures halt service for the configured repair time.
//!
//! With [`FaultConfig::NONE`] the fault path is completely inert: no
//! random numbers are drawn and the simulation is identical to
//! [`run_simulation`].
#![allow(clippy::cast_possible_truncation)] // slot counts are bounded by jukebox geometry
#![allow(clippy::cast_precision_loss)] // event counters stay far below 2^53

use std::collections::{BTreeMap, VecDeque};

use tapesim_layout::{BlockId, Catalog};
use tapesim_model::{
    BlockSize, FaultConfig, FaultInjector, LocateDirection, Micros, PhysicalAddr, ReadContext,
    SimTime, SlotIndex, TapeId, TimingModel,
};
use tapesim_sched::{ArrivalOutcome, JukeboxView, PendingList, Scheduler, SweepPhase, SweepPlan};
use tapesim_workload::{ArrivalProcess, Request, RequestFactory, RequestId};

use crate::checkpoint::{self, Checkpoint, CheckpointOpts, DriveCheckpoint, EngineKind};
use crate::error::SimError;
use crate::metrics::{MetricsCollector, MetricsReport};
use crate::stepped::{EngineEvent, StepOutcome};
use crate::trace::{NullSink, TraceEvent, TraceSink, Tracer, SYSTEM_DRIVE};
use crate::trace_event;

/// The single-drive engine's drive id in trace records.
const DRIVE0: u16 = 0;

/// Configuration of a single simulation run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SimConfig {
    /// Total simulated time. The paper's experiments model 10 million
    /// seconds; the default is a tenth of that, which reproduces the same
    /// rankings in a fraction of the wall-clock time.
    pub duration: Micros,
    /// Initial portion excluded from the metrics window.
    pub warmup: Micros,
    /// Abort threshold on the pending-queue length: an open-queuing run
    /// whose queue grows beyond this is overloaded, and the run is marked
    /// saturated.
    pub max_pending: usize,
}

impl Default for SimConfig {
    fn default() -> Self {
        SimConfig {
            duration: Micros::from_secs(1_000_000),
            warmup: Micros::from_secs(100_000),
            max_pending: 5_000,
        }
    }
}

impl SimConfig {
    /// The paper's full horizon: 10 million simulated seconds.
    pub fn paper_scale() -> Self {
        SimConfig {
            duration: Micros::from_secs(10_000_000),
            warmup: Micros::from_secs(500_000),
            max_pending: 5_000,
        }
    }

    /// A short horizon for tests.
    pub fn quick() -> Self {
        SimConfig {
            duration: Micros::from_secs(100_000),
            warmup: Micros::from_secs(10_000),
            max_pending: 5_000,
        }
    }
}

/// Runs one fault-free simulation to completion and reports its metrics.
pub fn run_simulation(
    catalog: &Catalog,
    timing: &TimingModel,
    scheduler: &mut dyn Scheduler,
    factory: &mut RequestFactory,
    cfg: &SimConfig,
) -> Result<MetricsReport, SimError> {
    run_simulation_with_faults(
        catalog,
        timing,
        scheduler,
        factory,
        cfg,
        &FaultConfig::NONE,
        0,
    )
}

/// Runs one simulation under the given fault model. `fault_seed` drives
/// every fault substream; pass a value derived from the run's workload
/// seed so the whole run reproduces from one number.
pub fn run_simulation_with_faults(
    catalog: &Catalog,
    timing: &TimingModel,
    scheduler: &mut dyn Scheduler,
    factory: &mut RequestFactory,
    cfg: &SimConfig,
    faults: &FaultConfig,
    fault_seed: u64,
) -> Result<MetricsReport, SimError> {
    run_simulation_traced(
        catalog,
        timing,
        scheduler,
        factory,
        cfg,
        faults,
        fault_seed,
        &mut NullSink,
    )
}

/// Runs one simulation while recording every event into `sink` (see
/// [`crate::trace`]). With a [`NullSink`] this is exactly
/// [`run_simulation_with_faults`]: the tracing path constructs nothing.
#[allow(clippy::too_many_arguments)]
pub fn run_simulation_traced(
    catalog: &Catalog,
    timing: &TimingModel,
    scheduler: &mut dyn Scheduler,
    factory: &mut RequestFactory,
    cfg: &SimConfig,
    faults: &FaultConfig,
    fault_seed: u64,
    sink: &mut dyn TraceSink,
) -> Result<MetricsReport, SimError> {
    run_simulation_checkpointed(
        catalog,
        timing,
        scheduler,
        factory,
        cfg,
        faults,
        fault_seed,
        sink,
        &CheckpointOpts::none(),
    )
}

/// [`run_simulation_traced`] with checkpoint/resume support (see
/// [`crate::checkpoint`]). With [`CheckpointOpts::none`] this is exactly
/// [`run_simulation_traced`]: the checkpoint path costs one `Option`
/// check per outer-loop iteration. Checkpoints are taken at sweep
/// boundaries (no service list in flight), the first one at or after
/// each multiple of the configured interval. A resumed run continues the
/// trace sequence and the metrics window exactly where the checkpoint
/// left them, so its trace suffix and final report are identical to the
/// uninterrupted run's.
///
/// This is a thin driver over [`SteppedEngine`]: construct, step to
/// completion, report.
#[allow(clippy::too_many_arguments)]
pub fn run_simulation_checkpointed(
    catalog: &Catalog,
    timing: &TimingModel,
    scheduler: &mut dyn Scheduler,
    factory: &mut RequestFactory,
    cfg: &SimConfig,
    faults: &FaultConfig,
    fault_seed: u64,
    sink: &mut dyn TraceSink,
    opts: &CheckpointOpts,
) -> Result<MetricsReport, SimError> {
    let mut engine = SteppedEngine::new(
        catalog, timing, scheduler, factory, cfg, faults, fault_seed, sink, opts,
    )?;
    while engine.step()? == StepOutcome::Running {}
    Ok(engine.finish())
}

/// Where a stepped single-drive engine is between steps.
enum SinglePhase {
    /// At a scheduling boundary: the next step writes any due checkpoint,
    /// delivers arrivals, runs the fault clock, and either starts a sweep
    /// (mounting if needed), idles, or finishes.
    Boundary,
    /// Mid-sweep: the next step services one stop of the plan (or ends
    /// the sweep).
    InSweep {
        plan: SweepPlan,
        cur_phase: Option<SweepPhase>,
    },
    /// The horizon was reached (or the run saturated); only
    /// [`SteppedEngine::finish`] remains.
    Done,
}

/// The poll-driven single-drive engine core.
///
/// A batch run is `SteppedEngine::new` + `step()` until
/// [`StepOutcome::Done`] + [`finish`](SteppedEngine::finish) — exactly
/// what [`run_simulation_checkpointed`] does. Between steps the engine's
/// clock, pending queue, and drive/tape state are inspectable, and in
/// external-arrival mode ([`SteppedEngine::new_external`]) requests are
/// injected with [`submit_at`](SteppedEngine::submit_at) and observed
/// with [`drain_events`](SteppedEngine::drain_events).
pub struct SteppedEngine<'a> {
    catalog: &'a Catalog,
    timing: &'a TimingModel,
    scheduler: &'a mut dyn Scheduler,
    factory: &'a mut RequestFactory,
    cfg: SimConfig,
    faults: FaultConfig,
    opts: CheckpointOpts,
    fp: u64,
    tracer: Tracer<'a>,
    injector: FaultInjector,
    block: BlockSize,
    block_bytes: u64,
    end: SimTime,
    warmup_end: SimTime,
    closed: bool,
    external: bool,
    now: SimTime,
    mounted: Option<TapeId>,
    head: SlotIndex,
    pending: PendingList,
    metrics: MetricsCollector,
    saturated: bool,
    // Requests disrupted by a fault on the given tape; completing one from
    // a different tape counts as a replica failover.
    faulted: BTreeMap<RequestId, TapeId>,
    stranded_in_plan: u64,
    // Scratch buffer for the offline-tape snapshot handed to scheduler
    // views; refilled at each dispatch point instead of allocating per
    // event.
    offline_buf: Vec<TapeId>,
    next_arrival: Option<SimTime>,
    next_ckpt_at: Option<SimTime>,
    phase: SinglePhase,
    /// How far an idle engine may advance when nothing is schedulable.
    /// Batch drivers leave this at the horizon (reproducing the monolithic
    /// loop exactly); [`SteppedEngine::step_until`] lowers it so an
    /// externally driven engine parks instead of idling to the end.
    park: SimTime,
    /// Externally submitted requests not yet delivered (external mode).
    submitted: VecDeque<Request>,
    next_ext_id: u64,
    last_submit_at: SimTime,
    events: Vec<EngineEvent>,
}

impl<'a> SteppedEngine<'a> {
    /// Builds a stepped engine whose generated workload, fault schedule,
    /// tracing, and checkpointing exactly match
    /// [`run_simulation_checkpointed`] with the same arguments.
    #[allow(clippy::too_many_arguments)]
    pub fn new(
        catalog: &'a Catalog,
        timing: &'a TimingModel,
        scheduler: &'a mut dyn Scheduler,
        factory: &'a mut RequestFactory,
        cfg: &SimConfig,
        faults: &FaultConfig,
        fault_seed: u64,
        sink: &'a mut dyn TraceSink,
        opts: &CheckpointOpts,
    ) -> Result<Self, SimError> {
        Self::build(
            catalog, timing, scheduler, factory, cfg, faults, fault_seed, sink, opts, false,
        )
    }

    /// Builds a stepped engine in external-arrival mode: no workload is
    /// generated (the factory is only fingerprinted), requests enter via
    /// [`submit_at`](SteppedEngine::submit_at), and completions/failures
    /// surface as [`EngineEvent`]s. Checkpointing is not supported in
    /// this mode.
    #[allow(clippy::too_many_arguments)]
    pub fn new_external(
        catalog: &'a Catalog,
        timing: &'a TimingModel,
        scheduler: &'a mut dyn Scheduler,
        factory: &'a mut RequestFactory,
        cfg: &SimConfig,
        faults: &FaultConfig,
        fault_seed: u64,
        sink: &'a mut dyn TraceSink,
    ) -> Result<Self, SimError> {
        Self::build(
            catalog,
            timing,
            scheduler,
            factory,
            cfg,
            faults,
            fault_seed,
            sink,
            &CheckpointOpts::none(),
            true,
        )
    }

    #[allow(clippy::too_many_arguments)]
    fn build(
        catalog: &'a Catalog,
        timing: &'a TimingModel,
        scheduler: &'a mut dyn Scheduler,
        factory: &'a mut RequestFactory,
        cfg: &SimConfig,
        faults: &FaultConfig,
        fault_seed: u64,
        sink: &'a mut dyn TraceSink,
        opts: &CheckpointOpts,
        external: bool,
    ) -> Result<Self, SimError> {
        if cfg.warmup >= cfg.duration {
            return Err(SimError::InvalidConfig("warmup must precede the horizon"));
        }
        // A striped (erasure) catalog stores shard cells: a generated
        // workload would sample cells as if they were logical blocks.
        // Only the erasure driver (external-arrival mode) may run one.
        if catalog.stripe().is_some() && !external {
            return Err(SimError::InvalidConfig(
                "striped catalogs require the erasure driver",
            ));
        }
        faults.validate().map_err(SimError::InvalidConfig)?;
        opts.validate()?;
        if external && (opts.resume().is_some() || opts.write_every().is_some()) {
            return Err(SimError::InvalidConfig(
                "checkpointing requires generated arrivals",
            ));
        }
        let fp = checkpoint::run_fingerprint(
            EngineKind::Single,
            catalog,
            timing,
            scheduler.name(),
            &factory.config_tag(),
            &format!("{cfg:?}"),
            &format!("{faults:?}"),
            fault_seed,
            1,
            if external { "external" } else { "" },
        );
        let resumed = match opts.resume() {
            Some(path) => {
                let ckpt = checkpoint::load(path)?;
                if ckpt.fingerprint != fp {
                    return Err(SimError::CheckpointConfigMismatch {
                        found: ckpt.fingerprint,
                        expected: fp,
                    });
                }
                Some(ckpt)
            }
            None => None,
        };
        let tracer = match &resumed {
            Some(ckpt) => Tracer::with_seq(sink, ckpt.trace_seq),
            None => Tracer::new(sink),
        };
        let mut injector = FaultInjector::new(*faults, &catalog.geometry(), 1, fault_seed);
        let block = catalog.block_size();
        let block_bytes = block.bytes();
        let end = SimTime::ZERO + cfg.duration;
        let warmup_end = SimTime::ZERO + cfg.warmup;
        let closed = !external && matches!(factory.process(), ArrivalProcess::Closed { .. });

        let mut engine = SteppedEngine {
            catalog,
            timing,
            scheduler,
            factory,
            cfg: *cfg,
            faults: *faults,
            opts: opts.clone(),
            fp,
            tracer,
            injector: FaultInjector::new(*faults, &catalog.geometry(), 1, fault_seed),
            block,
            block_bytes,
            end,
            warmup_end,
            closed,
            external,
            now: SimTime::ZERO,
            mounted: None,
            head: SlotIndex::BOT,
            pending: PendingList::new(),
            metrics: MetricsCollector::new(warmup_end),
            saturated: false,
            faulted: BTreeMap::new(),
            stranded_in_plan: 0,
            offline_buf: Vec::new(),
            next_arrival: None,
            next_ckpt_at: None,
            phase: SinglePhase::Boundary,
            park: end,
            submitted: VecDeque::new(),
            next_ext_id: 0,
            last_submit_at: SimTime::ZERO,
            events: Vec::new(),
        };

        // Seed the workload — or, on resume, restore every piece of state
        // from the checkpoint instead.
        if let Some(ckpt) = &resumed {
            engine
                .factory
                .replay(ckpt.factory_makes, ckpt.factory_gaps)
                .map_err(|m| SimError::CheckpointCorrupt(m.to_string()))?;
            if engine.factory.stream_fingerprint() != ckpt.factory_fp {
                return Err(SimError::CheckpointConfigMismatch {
                    found: ckpt.factory_fp,
                    expected: engine.factory.stream_fingerprint(),
                });
            }
            if let Some(snap) = &ckpt.faults {
                injector
                    .restore(snap)
                    .map_err(|m| SimError::CheckpointCorrupt(m.to_string()))?;
            }
            engine.injector = injector;
            if let Some(state) = &ckpt.sched_state {
                engine
                    .scheduler
                    .restore_state(state)
                    .map_err(|m| SimError::CheckpointCorrupt(m.to_string()))?;
            }
            let drive = ckpt.drives.first().ok_or_else(|| {
                SimError::CheckpointCorrupt("single-drive checkpoint has no drive line".into())
            })?;
            engine.now = SimTime::from_micros(ckpt.now_us);
            engine.mounted = drive.mounted;
            engine.head = drive.head;
            for req in ckpt.pending.iter() {
                engine.pending.push(*req);
            }
            engine.metrics = MetricsCollector::from_snapshot(&ckpt.metrics);
            engine.faulted = ckpt
                .faulted
                .iter()
                .map(|&(r, t)| (RequestId(r), TapeId(t)))
                .collect();
            engine.next_arrival = ckpt.next_arrival_us.map(SimTime::from_micros);
        } else if !external {
            match engine.factory.process() {
                ArrivalProcess::Closed { queue_length } => {
                    for _ in 0..queue_length {
                        let req = engine.factory.make(engine.now);
                        trace_event!(
                            engine.tracer,
                            engine.now,
                            SYSTEM_DRIVE,
                            TraceEvent::Arrival {
                                req: req.id,
                                block: req.block,
                            }
                        );
                        engine.pending.push(req);
                        engine.metrics.record_admission();
                    }
                }
                ArrivalProcess::OpenPoisson { .. } => {
                    let gap = engine
                        .factory
                        .next_interarrival()
                        .ok_or(SimError::ClosedArrivalStream)?;
                    engine.next_arrival = Some(engine.now + gap);
                }
            }
        }
        // First periodic-checkpoint instant strictly after the current
        // clock.
        engine.next_ckpt_at = engine
            .opts
            .write_every()
            .map(|(every, _)| checkpoint::next_checkpoint_after(engine.now, every));
        Ok(engine)
    }

    /// The engine clock: the instant of the last executed event.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// True once the horizon was reached or the run saturated.
    pub fn is_done(&self) -> bool {
        matches!(self.phase, SinglePhase::Done)
    }

    /// Requests waiting on the pending list (not yet in a sweep).
    pub fn pending_len(&self) -> usize {
        self.pending.len()
    }

    /// Externally submitted requests not yet delivered to the scheduler.
    pub fn undelivered_len(&self) -> usize {
        self.submitted.len()
    }

    /// Requests scheduled in the in-flight sweep, if one is active.
    pub fn in_sweep_len(&self) -> usize {
        match &self.phase {
            SinglePhase::InSweep { plan, .. } => plan.list.requests(),
            _ => 0,
        }
    }

    /// The tape currently in the drive.
    pub fn mounted(&self) -> Option<TapeId> {
        self.mounted
    }

    /// The drive's head position.
    pub fn head(&self) -> SlotIndex {
        self.head
    }

    /// True once the pending queue overflowed `max_pending`.
    pub fn saturated(&self) -> bool {
        self.saturated
    }

    /// Takes the request outcomes produced since the last drain
    /// (external-arrival mode; always empty for generated workloads).
    pub fn drain_events(&mut self) -> Vec<EngineEvent> {
        std::mem::take(&mut self.events)
    }

    /// Submits one read request at instant `at` (external-arrival mode
    /// only). `at` is clamped to be monotone and not before the engine
    /// clock; the admission is traced and counted immediately, and the
    /// request becomes schedulable at the first event boundary at or
    /// after `at`. Returns the request's id.
    pub fn submit_at(&mut self, block: BlockId, at: SimTime) -> Result<RequestId, SimError> {
        if !self.external {
            return Err(SimError::InvalidConfig(
                "submit_at requires external-arrival mode",
            ));
        }
        let at = at.max(self.now).max(self.last_submit_at);
        self.last_submit_at = at;
        let req = Request {
            id: RequestId(self.next_ext_id),
            block,
            arrival: at,
        };
        self.next_ext_id += 1;
        trace_event!(
            self.tracer,
            at,
            SYSTEM_DRIVE,
            TraceEvent::Arrival {
                req: req.id,
                block: req.block,
            }
        );
        self.metrics.record_admission();
        self.submitted.push_back(req);
        Ok(req.id)
    }

    /// Executes one event: a scheduling boundary or one stop of the
    /// active sweep. Returns whether more work remains.
    pub fn step(&mut self) -> Result<StepOutcome, SimError> {
        match &self.phase {
            SinglePhase::Done => return Ok(StepOutcome::Done),
            SinglePhase::Boundary => self.step_boundary()?,
            SinglePhase::InSweep { .. } => self.step_sweep()?,
        }
        Ok(if self.is_done() {
            StepOutcome::Done
        } else {
            StepOutcome::Running
        })
    }

    /// Steps until the clock reaches `until` (clamped to the horizon) or
    /// the run finishes. When nothing is schedulable the engine parks at
    /// `until` instead of idling to the horizon, so an external driver
    /// can keep submitting.
    pub fn step_until(&mut self, until: SimTime) -> Result<(), SimError> {
        self.park = until.min(self.end);
        while !self.is_done() && self.now < self.park {
            self.step()?;
        }
        self.park = self.end;
        Ok(())
    }

    /// One scheduling-boundary event (steps 1, 2 and 4 of the paper's
    /// loop, plus checkpoint/arrival/fault bookkeeping).
    fn step_boundary(&mut self) -> Result<(), SimError> {
        if self.now >= self.end {
            self.phase = SinglePhase::Done;
            return Ok(());
        }
        if let (Some(at), Some((every, path))) = (self.next_ckpt_at, self.opts.write_every()) {
            if self.now >= at {
                let ckpt = Checkpoint {
                    engine: EngineKind::Single,
                    fingerprint: self.fp,
                    now_us: self.now.as_micros(),
                    trace_seq: self.tracer.next_seq(),
                    next_arrival_us: self.next_arrival.map(|t| t.as_micros()),
                    factory_makes: self.factory.minted(),
                    factory_gaps: self.factory.gaps_drawn(),
                    factory_fp: self.factory.stream_fingerprint(),
                    pending: self.pending.iter().cloned().collect(),
                    metrics: self.metrics.snapshot(),
                    faulted: self.faulted.iter().map(|(r, t)| (r.0, t.0)).collect(),
                    sched_state: self.scheduler.checkpoint_state(),
                    faults: (self.faults != FaultConfig::NONE).then(|| self.injector.snapshot()),
                    drives: vec![DriveCheckpoint {
                        mounted: self.mounted,
                        head: self.head,
                        plan: None,
                        cur_phase: None,
                        free_at_us: self.now.as_micros(),
                        idle: false,
                    }],
                    multi: None,
                    writeback: None,
                };
                checkpoint::save(&ckpt, path)?;
                self.next_ckpt_at = Some(checkpoint::next_checkpoint_after(self.now, every));
            }
        }
        // Deliver arrivals that came due between sweeps straight onto the
        // pending list (no sweep is running to insert into).
        while self
            .submitted
            .front()
            .is_some_and(|r| r.arrival <= self.now)
        {
            let Some(req) = self.submitted.pop_front() else {
                break;
            };
            self.pending.push(req);
        }
        while let Some(t) = self.next_arrival {
            if t > self.now {
                break;
            }
            let req = self.factory.make(t);
            trace_event!(
                self.tracer,
                t,
                SYSTEM_DRIVE,
                TraceEvent::Arrival {
                    req: req.id,
                    block: req.block,
                }
            );
            self.pending.push(req);
            self.metrics.record_admission();
            let gap = self
                .factory
                .next_interarrival()
                .ok_or(SimError::ClosedArrivalStream)?;
            self.next_arrival = Some(t + gap);
        }
        if self.pending.len() > self.cfg.max_pending {
            self.saturated = true;
            self.phase = SinglePhase::Done;
            return Ok(());
        }

        if self.injector.is_active() {
            self.injector.advance(self.now);
            // A drive failure halts service for the repair interval, then
            // the loop restarts (delivering arrivals that came due).
            if let Some(repair) = self.injector.drive_outage(0, self.now) {
                self.now += repair;
                self.metrics.add_repair_time(self.now, repair);
                trace_event!(
                    self.tracer,
                    self.now,
                    DRIVE0,
                    TraceEvent::DriveRepair { dur: repair }
                );
                return Ok(());
            }
            // Once copies have been permanently lost, fail out the pending
            // requests that no surviving copy can serve (transiently lost
            // copies heal, so their requests keep waiting).
            if self.injector.has_permanent_damage() {
                let dead = {
                    let injector = &self.injector;
                    let catalog = self.catalog;
                    self.pending.extract(|r| {
                        catalog
                            .replicas(r.block)
                            .iter()
                            .all(|a| injector.copy_lost_forever(*a))
                    })
                };
                for r in dead {
                    self.faulted.remove(&r.id);
                    self.metrics.record_permanent_failure();
                    trace_event!(
                        self.tracer,
                        self.now,
                        SYSTEM_DRIVE,
                        TraceEvent::RequestFailed { req: r.id }
                    );
                    if self.external {
                        self.events.push(EngineEvent::Failed {
                            req: r.id,
                            at: self.now,
                        });
                    }
                    if self.closed {
                        let req = self.factory.make(self.now);
                        trace_event!(
                            self.tracer,
                            self.now,
                            SYSTEM_DRIVE,
                            TraceEvent::Arrival {
                                req: req.id,
                                block: req.block,
                            }
                        );
                        self.pending.push(req);
                        self.metrics.record_admission();
                    }
                }
            }
        }
        self.offline_buf.clear();
        self.offline_buf.extend_from_slice(self.injector.offline());

        // Step 1: major reschedule.
        let view = JukeboxView {
            catalog: self.catalog,
            timing: self.timing,
            mounted: self.mounted,
            head: self.head,
            now: self.now,
            unavailable: &[],
            offline: &self.offline_buf,
            fleet: tapesim_sched::FleetView::SINGLE,
        };
        view.debug_assert_sorted();
        let Some(plan) = self.scheduler.major_reschedule(&view, &mut self.pending) else {
            // Step 4: idle until the next arrival or fault event (a repair
            // can make a stranded request schedulable again).
            let park = self.park;
            let mut wake = park;
            let mut have_event = false;
            if let Some(t) = self.next_arrival {
                if t < wake {
                    wake = t;
                    have_event = true;
                }
            }
            if let Some(r) = self.submitted.front() {
                if r.arrival < wake {
                    wake = r.arrival;
                    have_event = true;
                }
            }
            if let Some(t) = self.injector.next_event(self.now) {
                if t < wake {
                    wake = t;
                    have_event = true;
                }
            }
            if have_event {
                let dur = wake.duration_since(self.now);
                self.metrics.add_idle_time(wake, dur);
                trace_event!(self.tracer, wake, DRIVE0, TraceEvent::Idle { dur });
                self.now = wake;
                return Ok(());
            }
            let dur = park.duration_since(self.now);
            if dur > Micros::ZERO {
                self.metrics.add_idle_time(park, dur);
                trace_event!(self.tracer, park, DRIVE0, TraceEvent::Idle { dur });
                self.now = park;
            }
            if park >= self.end {
                self.phase = SinglePhase::Done;
            }
            return Ok(());
        };

        trace_event!(
            self.tracer,
            self.now,
            DRIVE0,
            TraceEvent::SweepStart {
                tape: plan.tape,
                stops: plan.list.stops() as u32,
                requests: plan.list.requests() as u32,
            }
        );

        // Step 2: switch tapes if needed.
        if self.mounted != Some(plan.tape) {
            let mut switch = Micros::ZERO;
            let mut rewind = Micros::ZERO;
            if let Some(old) = self.mounted {
                rewind = self.timing.drive.rewind(self.head, self.block);
                switch += rewind + self.timing.drive.eject();
                // The rewind ends `rewind` in; the tape is then ejected
                // (its time is part of the mount segment below).
                trace_event!(
                    self.tracer,
                    self.now + rewind,
                    DRIVE0,
                    TraceEvent::Rewind {
                        tape: old,
                        from: self.head,
                        dur: rewind,
                    }
                );
                trace_event!(
                    self.tracer,
                    self.now + rewind,
                    DRIVE0,
                    TraceEvent::Unmount { tape: old }
                );
            }
            switch += self.timing.robot.exchange() + self.timing.drive.load();
            // Fault: each failed load attempt costs another exchange +
            // load; exhausting the retries fails the tape itself.
            let mut tape_failed_on_load = false;
            if self.injector.is_active() {
                let mut tries = 0u32;
                while self.injector.load_fails() {
                    if tries >= self.faults.load_retries {
                        tape_failed_on_load = true;
                        break;
                    }
                    tries += 1;
                    switch += self.timing.robot.exchange() + self.timing.drive.load();
                }
            }
            self.now += switch;
            self.metrics.add_switch_time(self.now, switch);
            self.metrics.record_tape_switch(self.now);
            if tape_failed_on_load {
                self.injector.force_tape_failure(plan.tape, self.now);
                trace_event!(
                    self.tracer,
                    self.now,
                    DRIVE0,
                    TraceEvent::LoadFailed {
                        tape: plan.tape,
                        dur: switch - rewind,
                    }
                );
                trace_event!(
                    self.tracer,
                    self.now,
                    DRIVE0,
                    TraceEvent::TapeOffline { tape: plan.tape }
                );
                self.mounted = None;
                self.head = SlotIndex::BOT;
                abort_plan(&plan, plan.tape, &mut self.pending, &mut self.faulted);
                return Ok(());
            }
            trace_event!(
                self.tracer,
                self.now,
                DRIVE0,
                TraceEvent::Mount {
                    tape: plan.tape,
                    dur: switch - rewind,
                }
            );
            self.mounted = Some(plan.tape);
            self.head = SlotIndex::BOT;
        }
        self.phase = SinglePhase::InSweep {
            plan,
            cur_phase: None,
        };
        Ok(())
    }

    /// One sweep-execution event: services the next stop of the active
    /// plan (step 3 of the paper's loop), or ends the sweep.
    fn step_sweep(&mut self) -> Result<(), SimError> {
        let SinglePhase::InSweep {
            mut plan,
            mut cur_phase,
        } = std::mem::replace(&mut self.phase, SinglePhase::Boundary)
        else {
            return Ok(());
        };
        self.offline_buf.clear();
        self.offline_buf.extend_from_slice(self.injector.offline());
        // Hand arrivals that came due to the incremental scheduler.
        self.deliver_submitted_into_sweep(&mut plan);
        process_due_arrivals(
            self.catalog,
            self.timing,
            self.scheduler,
            self.factory,
            &mut self.next_arrival,
            self.now,
            self.mounted,
            self.head,
            &self.offline_buf,
            &mut plan,
            &mut self.pending,
            &mut self.metrics,
            &mut self.tracer,
        )?;
        if self.pending.len() > self.cfg.max_pending {
            self.saturated = true;
            self.stranded_in_plan = plan.list.requests() as u64;
            self.phase = SinglePhase::Done;
            return Ok(());
        }
        if self.now >= self.end {
            self.stranded_in_plan = plan.list.requests() as u64;
            self.phase = SinglePhase::Done;
            return Ok(());
        }
        if self.injector.is_active() {
            self.injector.advance(self.now);
            if let Some(repair) = self.injector.drive_outage(0, self.now) {
                // The drive is repaired in place; the sweep resumes.
                self.now += repair;
                self.metrics.add_repair_time(self.now, repair);
                trace_event!(
                    self.tracer,
                    self.now,
                    DRIVE0,
                    TraceEvent::DriveRepair { dur: repair }
                );
                self.phase = SinglePhase::InSweep { plan, cur_phase };
                return Ok(());
            }
            if self.injector.is_offline(plan.tape) {
                // The mounted tape failed mid-sweep: the remaining
                // requests fail over to replicas or wait for repair.
                trace_event!(
                    self.tracer,
                    self.now,
                    DRIVE0,
                    TraceEvent::TapeOffline { tape: plan.tape }
                );
                self.mounted = None;
                self.head = SlotIndex::BOT;
                abort_plan(&plan, plan.tape, &mut self.pending, &mut self.faulted);
                return Ok(());
            }
        }
        let Some((stop, phase)) = plan.list.pop() else {
            trace_event!(
                self.tracer,
                self.now,
                DRIVE0,
                TraceEvent::SweepEnd { tape: plan.tape }
            );
            return Ok(()); // sweep complete; head stays put
        };
        if self.tracer.on && cur_phase != Some(phase) {
            cur_phase = Some(phase);
            self.tracer.push(
                self.now,
                DRIVE0,
                TraceEvent::PhaseStart {
                    tape: plan.tape,
                    phase,
                },
            );
        }
        // Locate + read.
        let (lt, dir) = self.timing.drive.locate(self.head, stop.slot, self.block);
        let ctx = match dir {
            None => ReadContext::Streaming,
            Some(LocateDirection::Forward) => ReadContext::AfterForwardLocate,
            Some(LocateDirection::Reverse) => ReadContext::AfterReverseLocate,
        };
        let rt = self.timing.drive.read_block(self.block, ctx);
        let locate_from = self.head;
        self.now += lt;
        self.metrics.add_locate_time(self.now, lt);
        trace_event!(
            self.tracer,
            self.now,
            DRIVE0,
            TraceEvent::Locate {
                tape: plan.tape,
                from: locate_from,
                to: stop.slot,
                dur: lt,
            }
        );
        // Fault: every failed read attempt costs another pass over the
        // block; exhausting the retries loses the copy.
        let mut read_ok = true;
        if self.injector.is_active() {
            let mut tries = 0u32;
            while self.injector.media_error() {
                self.now += rt;
                self.metrics.add_read_time(self.now, rt);
                trace_event!(
                    self.tracer,
                    self.now,
                    DRIVE0,
                    TraceEvent::MediaError {
                        tape: plan.tape,
                        slot: stop.slot,
                    }
                );
                if tries >= self.faults.media_retries {
                    read_ok = false;
                    break;
                }
                tries += 1;
            }
        }
        if !read_ok {
            self.head = stop.slot.next();
            let addr = PhysicalAddr {
                tape: plan.tape,
                slot: stop.slot,
            };
            self.injector.mark_bad_copy(addr, self.now);
            trace_event!(
                self.tracer,
                self.now,
                DRIVE0,
                TraceEvent::CopyLost {
                    tape: plan.tape,
                    slot: stop.slot,
                }
            );
            for r in &stop.requests {
                // A request survives while any replica is alive *or* only
                // transiently lost (it waits for the heal); it fails only
                // when every copy is gone forever.
                let recoverable = self
                    .catalog
                    .replicas(r.block)
                    .iter()
                    .any(|a| !self.injector.copy_lost_forever(*a));
                if recoverable {
                    self.faulted.insert(r.id, plan.tape);
                    self.pending.push(*r);
                } else {
                    self.faulted.remove(&r.id);
                    self.metrics.record_permanent_failure();
                    trace_event!(
                        self.tracer,
                        self.now,
                        DRIVE0,
                        TraceEvent::RequestFailed { req: r.id }
                    );
                    if self.external {
                        self.events.push(EngineEvent::Failed {
                            req: r.id,
                            at: self.now,
                        });
                    }
                    if self.closed {
                        let req = self.factory.make(self.now);
                        trace_event!(
                            self.tracer,
                            self.now,
                            SYSTEM_DRIVE,
                            TraceEvent::Arrival {
                                req: req.id,
                                block: req.block,
                            }
                        );
                        self.metrics.record_admission();
                        let view = JukeboxView {
                            catalog: self.catalog,
                            timing: self.timing,
                            mounted: self.mounted,
                            head: self.head,
                            now: self.now,
                            unavailable: &[],
                            offline: &self.offline_buf,
                            fleet: tapesim_sched::FleetView::SINGLE,
                        };
                        view.debug_assert_sorted();
                        let req_id = req.id;
                        let outcome = self.scheduler.on_arrival(
                            &view,
                            plan.tape,
                            &mut plan.list,
                            req,
                            &mut self.pending,
                        );
                        trace_event!(
                            self.tracer,
                            self.now,
                            DRIVE0,
                            TraceEvent::Incremental {
                                req: req_id,
                                tape: plan.tape,
                                inserted: outcome == ArrivalOutcome::Inserted,
                            }
                        );
                    }
                }
            }
            self.phase = SinglePhase::InSweep { plan, cur_phase };
            return Ok(());
        }
        self.now += rt;
        self.metrics.add_read_time(self.now, rt);
        self.head = stop.slot.next();
        self.metrics.record_physical_read(self.now);
        trace_event!(
            self.tracer,
            self.now,
            DRIVE0,
            TraceEvent::Read {
                tape: plan.tape,
                slot: stop.slot,
                phase,
                dur: rt,
            }
        );

        // Complete the requests; closed queuing regenerates one new
        // request per completion, at the completion instant, routed
        // through the incremental scheduler.
        let completions = stop.requests.len();
        for r in &stop.requests {
            self.metrics
                .record_completion(r.arrival, self.now, self.block_bytes);
            if !self.faulted.is_empty() {
                if let Some(failed_tape) = self.faulted.remove(&r.id) {
                    if failed_tape != plan.tape {
                        self.metrics.record_replica_failover();
                        trace_event!(
                            self.tracer,
                            self.now,
                            DRIVE0,
                            TraceEvent::Failover {
                                req: r.id,
                                from: failed_tape,
                                to: plan.tape,
                            }
                        );
                    }
                }
            }
            trace_event!(
                self.tracer,
                self.now,
                DRIVE0,
                TraceEvent::Complete {
                    req: r.id,
                    tape: plan.tape,
                    delay: self.now.duration_since(r.arrival),
                }
            );
            if self.external {
                self.events.push(EngineEvent::Completed {
                    req: r.id,
                    at: self.now,
                });
            }
        }
        if self.closed {
            for _ in 0..completions {
                let req = self.factory.make(self.now);
                trace_event!(
                    self.tracer,
                    self.now,
                    SYSTEM_DRIVE,
                    TraceEvent::Arrival {
                        req: req.id,
                        block: req.block,
                    }
                );
                self.metrics.record_admission();
                let view = JukeboxView {
                    catalog: self.catalog,
                    timing: self.timing,
                    mounted: self.mounted,
                    head: self.head,
                    now: self.now,
                    unavailable: &[],
                    offline: &self.offline_buf,
                    fleet: tapesim_sched::FleetView::SINGLE,
                };
                view.debug_assert_sorted();
                let req_id = req.id;
                let outcome = self.scheduler.on_arrival(
                    &view,
                    plan.tape,
                    &mut plan.list,
                    req,
                    &mut self.pending,
                );
                trace_event!(
                    self.tracer,
                    self.now,
                    DRIVE0,
                    TraceEvent::Incremental {
                        req: req_id,
                        tape: plan.tape,
                        inserted: outcome == ArrivalOutcome::Inserted,
                    }
                );
            }
        }
        self.phase = SinglePhase::InSweep { plan, cur_phase };
        Ok(())
    }

    /// Routes externally submitted arrivals that came due through the
    /// incremental scheduler (external-arrival mode during a sweep).
    fn deliver_submitted_into_sweep(&mut self, plan: &mut SweepPlan) {
        while self
            .submitted
            .front()
            .is_some_and(|r| r.arrival <= self.now)
        {
            let Some(req) = self.submitted.pop_front() else {
                break;
            };
            let view = JukeboxView {
                catalog: self.catalog,
                timing: self.timing,
                mounted: self.mounted,
                head: self.head,
                now: self.now,
                unavailable: &[],
                offline: &self.offline_buf,
                fleet: tapesim_sched::FleetView::SINGLE,
            };
            view.debug_assert_sorted();
            let req_id = req.id;
            let outcome =
                self.scheduler
                    .on_arrival(&view, plan.tape, &mut plan.list, req, &mut self.pending);
            trace_event!(
                self.tracer,
                self.now,
                DRIVE0,
                TraceEvent::Incremental {
                    req: req_id,
                    tape: plan.tape,
                    inserted: outcome == ArrivalOutcome::Inserted,
                }
            );
        }
    }

    /// Closes the run and produces its metrics report. Callable at any
    /// point; requests still queued or mid-sweep count as unserved.
    pub fn finish(mut self) -> MetricsReport {
        if let SinglePhase::InSweep { plan, .. } = &self.phase {
            self.stranded_in_plan += plan.list.requests() as u64;
        }
        let window = if self.saturated || self.now < self.end {
            // Run ended early: measure up to where we actually got.
            if self.now > self.warmup_end {
                self.now.duration_since(self.warmup_end)
            } else {
                Micros::from_micros(1)
            }
        } else {
            self.cfg.duration - self.cfg.warmup
        };
        let unserved =
            self.pending.len() as u64 + self.stranded_in_plan + self.submitted.len() as u64;
        if self.injector.is_active() {
            self.injector.advance(self.now);
            self.metrics.set_fault_accounting(
                self.injector.media_errors(),
                self.injector.tape_downtime(self.now),
                self.injector.degraded_time(self.now),
                unserved,
            );
        } else {
            self.metrics
                .set_fault_accounting(0, Vec::new(), Micros::ZERO, unserved);
        }
        self.metrics.report(window, self.saturated)
    }
}

/// Requeues every request still scheduled in `plan` after its tape
/// failed, marking each as disrupted by `failed_tape` for failover
/// attribution.
pub(crate) fn abort_plan(
    plan: &SweepPlan,
    failed_tape: TapeId,
    pending: &mut PendingList,
    faulted: &mut BTreeMap<RequestId, TapeId>,
) {
    for stop in plan.list.forward_stops().chain(plan.list.reverse_stops()) {
        for r in &stop.requests {
            faulted.insert(r.id, failed_tape);
            pending.push(*r);
        }
    }
}

/// Feeds every arrival due at or before `now` to the incremental
/// scheduler.
#[allow(clippy::too_many_arguments)]
fn process_due_arrivals(
    catalog: &Catalog,
    timing: &TimingModel,
    scheduler: &mut dyn Scheduler,
    factory: &mut RequestFactory,
    next_arrival: &mut Option<SimTime>,
    now: SimTime,
    mounted: Option<TapeId>,
    head: SlotIndex,
    offline: &[TapeId],
    plan: &mut SweepPlan,
    pending: &mut PendingList,
    metrics: &mut MetricsCollector,
    tracer: &mut Tracer<'_>,
) -> Result<(), SimError> {
    while let Some(t) = *next_arrival {
        if t > now {
            break;
        }
        let req = factory.make(t);
        trace_event!(
            tracer,
            t,
            SYSTEM_DRIVE,
            TraceEvent::Arrival {
                req: req.id,
                block: req.block,
            }
        );
        metrics.record_admission();
        let view = JukeboxView {
            catalog,
            timing,
            mounted,
            head,
            now,
            unavailable: &[],
            offline,
            fleet: tapesim_sched::FleetView::SINGLE,
        };
        view.debug_assert_sorted();
        let req_id = req.id;
        let outcome = scheduler.on_arrival(&view, plan.tape, &mut plan.list, req, pending);
        trace_event!(
            tracer,
            now,
            DRIVE0,
            TraceEvent::Incremental {
                req: req_id,
                tape: plan.tape,
                inserted: outcome == ArrivalOutcome::Inserted,
            }
        );
        let gap = factory
            .next_interarrival()
            .ok_or(SimError::ClosedArrivalStream)?;
        *next_arrival = Some(t + gap);
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use tapesim_layout::{build_placement, LayoutKind, PlacementConfig, PlacementScheme};
    use tapesim_model::{BlockSize, JukeboxGeometry};
    use tapesim_sched::{make_scheduler, AlgorithmId, EnvelopePolicy, TapeSelectPolicy};
    use tapesim_workload::BlockSampler;

    fn paper_catalog(nr: u32, sp: f64, layout: LayoutKind) -> tapesim_layout::Catalog {
        build_placement(
            JukeboxGeometry::PAPER_DEFAULT,
            BlockSize::PAPER_DEFAULT,
            PlacementConfig {
                layout,
                ph_percent: 10.0,
                scheme: PlacementScheme::Replication { nr },
                sp,
            },
        )
        .unwrap()
        .catalog
    }

    fn run(
        catalog: &tapesim_layout::Catalog,
        algorithm: AlgorithmId,
        process: ArrivalProcess,
        seed: u64,
        cfg: &SimConfig,
    ) -> MetricsReport {
        run_with_faults(catalog, algorithm, process, seed, cfg, &FaultConfig::NONE)
    }

    fn run_with_faults(
        catalog: &tapesim_layout::Catalog,
        algorithm: AlgorithmId,
        process: ArrivalProcess,
        seed: u64,
        cfg: &SimConfig,
        faults: &FaultConfig,
    ) -> MetricsReport {
        let timing = TimingModel::paper_default();
        let sampler = BlockSampler::from_catalog(catalog, 40.0);
        let mut factory = RequestFactory::new(sampler, process, seed);
        let mut sched = make_scheduler(algorithm);
        run_simulation_with_faults(
            catalog,
            &timing,
            sched.as_mut(),
            &mut factory,
            cfg,
            faults,
            seed,
        )
        .expect("simulation failed")
    }

    #[test]
    #[cfg_attr(miri, ignore = "full-horizon simulation is too slow under Miri")]
    fn closed_queue_fifo_makes_progress() {
        let catalog = paper_catalog(0, 0.0, LayoutKind::Horizontal);
        let r = run(
            &catalog,
            AlgorithmId::Fifo,
            ArrivalProcess::Closed { queue_length: 20 },
            1,
            &SimConfig::quick(),
        );
        assert!(r.completed > 50, "completed {}", r.completed);
        assert!(r.throughput_kb_per_s > 0.0);
        assert!(r.mean_delay_s > 0.0);
        assert!(!r.saturated);
        // FIFO switches tapes for almost every request.
        assert!(r.tape_switches as f64 > r.completed as f64 * 0.5);
    }

    #[test]
    #[cfg_attr(miri, ignore = "full-horizon simulation is too slow under Miri")]
    fn dynamic_max_bandwidth_beats_fifo() {
        let catalog = paper_catalog(0, 0.0, LayoutKind::Horizontal);
        let cfg = SimConfig::quick();
        let proc = ArrivalProcess::Closed { queue_length: 60 };
        let fifo = run(&catalog, AlgorithmId::Fifo, proc, 1, &cfg);
        let dyn_bw = run(
            &catalog,
            AlgorithmId::Dynamic(TapeSelectPolicy::MaxBandwidth),
            proc,
            1,
            &cfg,
        );
        assert!(
            dyn_bw.throughput_kb_per_s > 2.0 * fifo.throughput_kb_per_s,
            "dynamic {} vs fifo {}",
            dyn_bw.throughput_kb_per_s,
            fifo.throughput_kb_per_s
        );
        assert!(dyn_bw.tape_switches < fifo.tape_switches);
    }

    #[test]
    #[cfg_attr(miri, ignore = "full-horizon simulation is too slow under Miri")]
    fn same_seed_is_deterministic() {
        let catalog = paper_catalog(0, 0.0, LayoutKind::Horizontal);
        let cfg = SimConfig::quick();
        let proc = ArrivalProcess::Closed { queue_length: 40 };
        let alg = AlgorithmId::Dynamic(TapeSelectPolicy::MaxRequests);
        let a = run(&catalog, alg, proc, 7, &cfg);
        let b = run(&catalog, alg, proc, 7, &cfg);
        assert_eq!(a, b);
        let c = run(&catalog, alg, proc, 8, &cfg);
        assert_ne!(a, c);
    }

    #[test]
    #[cfg_attr(miri, ignore = "full-horizon simulation is too slow under Miri")]
    fn envelope_runs_with_full_replication() {
        let catalog = paper_catalog(9, 1.0, LayoutKind::Vertical);
        let r = run(
            &catalog,
            AlgorithmId::Envelope(EnvelopePolicy::MaxBandwidth),
            ArrivalProcess::Closed { queue_length: 60 },
            3,
            &SimConfig::quick(),
        );
        assert!(r.completed > 100, "completed {}", r.completed);
        assert!(!r.saturated);
    }

    #[test]
    #[cfg_attr(miri, ignore = "full-horizon simulation is too slow under Miri")]
    fn open_queue_low_load_is_mostly_idle() {
        let catalog = paper_catalog(0, 0.0, LayoutKind::Horizontal);
        let r = run(
            &catalog,
            AlgorithmId::Dynamic(TapeSelectPolicy::MaxBandwidth),
            ArrivalProcess::OpenPoisson {
                mean_interarrival: Micros::from_secs(2_000),
            },
            5,
            &SimConfig::quick(),
        );
        assert!(r.completed > 5);
        assert!(!r.saturated);
        assert!(r.idle_frac > 0.5, "idle {}", r.idle_frac);
    }

    #[test]
    #[cfg_attr(miri, ignore = "full-horizon simulation is too slow under Miri")]
    fn open_queue_overload_saturates() {
        let catalog = paper_catalog(0, 0.0, LayoutKind::Horizontal);
        let cfg = SimConfig {
            duration: Micros::from_secs(2_000_000),
            warmup: Micros::from_secs(1_000),
            max_pending: 200,
        };
        // One request per second vastly exceeds the ~1 req/30s capacity.
        let r = run(
            &catalog,
            AlgorithmId::Dynamic(TapeSelectPolicy::MaxBandwidth),
            ArrivalProcess::OpenPoisson {
                mean_interarrival: Micros::from_secs(1),
            },
            5,
            &cfg,
        );
        assert!(r.saturated);
    }

    #[test]
    #[cfg_attr(miri, ignore = "full-horizon simulation is too slow under Miri")]
    fn time_accounting_covers_the_window() {
        let catalog = paper_catalog(0, 0.0, LayoutKind::Horizontal);
        let r = run(
            &catalog,
            AlgorithmId::Static(TapeSelectPolicy::MaxRequests),
            ArrivalProcess::Closed { queue_length: 60 },
            2,
            &SimConfig::quick(),
        );
        let total = r.locate_frac + r.read_frac + r.switch_frac + r.idle_frac;
        // Closed queue never idles; boundary effects keep this near 1.
        assert!((total - 1.0).abs() < 0.05, "time fractions sum to {total}");
    }

    #[test]
    #[cfg_attr(miri, ignore = "full-horizon simulation is too slow under Miri")]
    fn higher_queue_length_gives_higher_throughput_and_delay() {
        let catalog = paper_catalog(0, 0.0, LayoutKind::Horizontal);
        let cfg = SimConfig::quick();
        let alg = AlgorithmId::Dynamic(TapeSelectPolicy::MaxBandwidth);
        let q20 = run(
            &catalog,
            alg,
            ArrivalProcess::Closed { queue_length: 20 },
            1,
            &cfg,
        );
        let q140 = run(
            &catalog,
            alg,
            ArrivalProcess::Closed { queue_length: 140 },
            1,
            &cfg,
        );
        assert!(q140.throughput_kb_per_s > q20.throughput_kb_per_s);
        assert!(q140.mean_delay_s > q20.mean_delay_s);
    }

    #[test]
    fn invalid_config_is_an_error_not_a_panic() {
        let catalog = paper_catalog(0, 0.0, LayoutKind::Horizontal);
        let timing = TimingModel::paper_default();
        let sampler = BlockSampler::from_catalog(&catalog, 40.0);
        let mut factory =
            RequestFactory::new(sampler, ArrivalProcess::Closed { queue_length: 5 }, 1);
        let mut sched = make_scheduler(AlgorithmId::Fifo);
        let bad = SimConfig {
            duration: Micros::from_secs(10),
            warmup: Micros::from_secs(10),
            max_pending: 100,
        };
        let err = run_simulation(&catalog, &timing, sched.as_mut(), &mut factory, &bad);
        assert!(matches!(err, Err(SimError::InvalidConfig(_))));
        let bad_faults = FaultConfig {
            media_error_per_read: 2.0,
            ..FaultConfig::NONE
        };
        let err = run_simulation_with_faults(
            &catalog,
            &timing,
            sched.as_mut(),
            &mut factory,
            &SimConfig::quick(),
            &bad_faults,
            1,
        );
        assert!(matches!(err, Err(SimError::InvalidConfig(_))));
    }

    #[test]
    #[cfg_attr(miri, ignore = "full-horizon simulation is too slow under Miri")]
    fn inert_faults_match_the_plain_entry_point() {
        let catalog = paper_catalog(1, 0.5, LayoutKind::Vertical);
        let cfg = SimConfig::quick();
        let proc = ArrivalProcess::Closed { queue_length: 40 };
        let alg = AlgorithmId::paper_recommended();
        let plain = run(&catalog, alg, proc, 11, &cfg);
        let inert = run_with_faults(&catalog, alg, proc, 11, &cfg, &FaultConfig::NONE);
        assert_eq!(plain, inert);
        assert_eq!(plain.failed_requests, 0);
        assert_eq!(plain.media_errors, 0);
        assert_eq!(plain.degraded_frac, 0.0);
    }

    #[test]
    #[cfg_attr(miri, ignore = "full-horizon simulation is too slow under Miri")]
    fn same_seed_same_faults_is_deterministic() {
        let catalog = paper_catalog(1, 0.5, LayoutKind::Vertical);
        let cfg = SimConfig::quick();
        let proc = ArrivalProcess::Closed { queue_length: 40 };
        let faults = FaultConfig {
            media_error_per_read: 0.02,
            media_retries: 1,
            load_failure_p: 0.02,
            load_retries: 2,
            tape_mtbf: Some(Micros::from_secs(400_000)),
            tape_mttr: Some(Micros::from_secs(20_000)),
            drive_mtbf: Some(Micros::from_secs(300_000)),
            drive_mttr: Micros::from_secs(5_000),
            ..FaultConfig::NONE
        };
        let alg = AlgorithmId::paper_recommended();
        let a = run_with_faults(&catalog, alg, proc, 13, &cfg, &faults);
        let b = run_with_faults(&catalog, alg, proc, 13, &cfg, &faults);
        assert_eq!(a, b);
    }

    #[test]
    #[cfg_attr(miri, ignore = "full-horizon simulation is too slow under Miri")]
    fn request_conservation_holds_under_faults() {
        let catalog = paper_catalog(1, 0.5, LayoutKind::Vertical);
        let faults = FaultConfig {
            media_error_per_read: 0.05,
            media_retries: 0,
            tape_mtbf: Some(Micros::from_secs(200_000)),
            tape_mttr: None, // permanent failures
            ..FaultConfig::NONE
        };
        for alg in [
            AlgorithmId::Fifo,
            AlgorithmId::Dynamic(TapeSelectPolicy::MaxBandwidth),
            AlgorithmId::paper_recommended(),
        ] {
            let r = run_with_faults(
                &catalog,
                alg,
                ArrivalProcess::Closed { queue_length: 40 },
                17,
                &SimConfig::quick(),
                &faults,
            );
            assert_eq!(
                r.admitted,
                r.served + r.failed_requests + r.unserved,
                "conservation violated for {}",
                alg.name()
            );
        }
    }

    #[test]
    #[cfg_attr(miri, ignore = "full-horizon simulation is too slow under Miri")]
    fn repairable_tape_failures_degrade_but_do_not_lose_requests() {
        let catalog = paper_catalog(0, 0.0, LayoutKind::Horizontal);
        let faults = FaultConfig {
            tape_mtbf: Some(Micros::from_secs(150_000)),
            tape_mttr: Some(Micros::from_secs(10_000)),
            ..FaultConfig::NONE
        };
        let r = run_with_faults(
            &catalog,
            AlgorithmId::Dynamic(TapeSelectPolicy::MaxBandwidth),
            ArrivalProcess::Closed { queue_length: 40 },
            19,
            &SimConfig::quick(),
            &faults,
        );
        assert_eq!(r.failed_requests, 0, "repairable faults lose nothing");
        assert!(r.degraded_frac > 0.0, "expected degraded time");
        assert!(
            r.tape_downtime_s.iter().any(|&d| d > 0.0),
            "expected tape downtime"
        );
        assert!(r.completed > 50, "service continued: {}", r.completed);
    }

    #[test]
    #[cfg_attr(miri, ignore = "full-horizon simulation is too slow under Miri")]
    fn replication_reduces_permanent_failures() {
        // Permanent (unrepaired) tape failures: without replication every
        // request stranded on a dead tape is lost; with full replication
        // of the hot data, hot requests fail over to surviving copies.
        // Cold blocks have a single copy under every NR, so losses do not
        // drop to zero — but they must drop strictly.
        let faults = FaultConfig {
            tape_mtbf: Some(Micros::from_secs(300_000)),
            tape_mttr: None,
            ..FaultConfig::NONE
        };
        let cfg = SimConfig::quick();
        let proc = ArrivalProcess::Closed { queue_length: 40 };
        let alg = AlgorithmId::Dynamic(TapeSelectPolicy::MaxBandwidth);
        let bare = paper_catalog(0, 0.0, LayoutKind::Horizontal);
        let replicated = paper_catalog(9, 1.0, LayoutKind::Vertical);
        let r0 = run_with_faults(&bare, alg, proc, 23, &cfg, &faults);
        let r9 = run_with_faults(&replicated, alg, proc, 23, &cfg, &faults);
        assert!(r0.failed_requests > 0, "expected losses without replicas");
        assert!(
            r9.failed_requests < r0.failed_requests,
            "replication must reduce losses: NR=9 lost {} vs NR=0 lost {}",
            r9.failed_requests,
            r0.failed_requests
        );
        assert!(r9.completed > 100);
    }

    #[test]
    #[cfg_attr(miri, ignore = "full-horizon simulation is too slow under Miri")]
    fn media_errors_fail_over_to_replicas() {
        let catalog = paper_catalog(1, 1.0, LayoutKind::Vertical);
        let faults = FaultConfig {
            media_error_per_read: 0.2,
            media_retries: 0,
            ..FaultConfig::NONE
        };
        let r = run_with_faults(
            &catalog,
            AlgorithmId::Dynamic(TapeSelectPolicy::MaxBandwidth),
            ArrivalProcess::Closed { queue_length: 40 },
            29,
            &SimConfig::quick(),
            &faults,
        );
        assert!(r.media_errors > 0, "expected media errors");
        assert!(
            r.replica_failovers > 0,
            "expected failovers, got {} (media errors {})",
            r.replica_failovers,
            r.media_errors
        );
    }

    #[test]
    #[cfg_attr(miri, ignore = "full-horizon simulation is too slow under Miri")]
    fn transient_copy_loss_heals_instead_of_failing() {
        // No replicas: a permanently lost copy kills its requests, but a
        // healing copy keeps them waiting — with healing enabled the same
        // fault schedule must lose strictly fewer (here: zero) requests.
        let catalog = paper_catalog(0, 0.0, LayoutKind::Horizontal);
        let permanent = FaultConfig {
            media_error_per_read: 0.05,
            media_retries: 0,
            ..FaultConfig::NONE
        };
        let healing = FaultConfig {
            copy_heal_mttr: Some(Micros::from_secs(5_000)),
            ..permanent
        };
        let alg = AlgorithmId::Dynamic(TapeSelectPolicy::MaxBandwidth);
        let proc = ArrivalProcess::Closed { queue_length: 40 };
        let lossy = run_with_faults(&catalog, alg, proc, 41, &SimConfig::quick(), &permanent);
        let healed = run_with_faults(&catalog, alg, proc, 41, &SimConfig::quick(), &healing);
        assert!(lossy.failed_requests > 0, "expected permanent losses");
        assert_eq!(healed.failed_requests, 0, "healing copies lose nothing");
        assert_eq!(
            healed.admitted,
            healed.served + healed.failed_requests + healed.unserved,
            "conservation under transient faults"
        );
        assert!(healed.completed > 50);
    }

    #[test]
    #[cfg_attr(miri, ignore = "full-horizon simulation is too slow under Miri")]
    fn stepped_engine_is_inspectable_and_matches_batch() {
        let catalog = paper_catalog(0, 0.0, LayoutKind::Horizontal);
        let timing = TimingModel::paper_default();
        let cfg = SimConfig::quick();
        let proc = ArrivalProcess::Closed { queue_length: 40 };
        let alg = AlgorithmId::Dynamic(TapeSelectPolicy::MaxBandwidth);
        let batch = run(&catalog, alg, proc, 7, &cfg);

        let sampler = BlockSampler::from_catalog(&catalog, 40.0);
        let mut factory = RequestFactory::new(sampler, proc, 7);
        let mut sched = make_scheduler(alg);
        let mut sink = NullSink;
        let mut engine = SteppedEngine::new(
            &catalog,
            &timing,
            sched.as_mut(),
            &mut factory,
            &cfg,
            &FaultConfig::NONE,
            7,
            &mut sink,
            &CheckpointOpts::none(),
        )
        .unwrap();
        // Inspect at an intermediate boundary, then step to completion.
        engine
            .step_until(SimTime::ZERO + Micros::from_secs(50_000))
            .unwrap();
        assert!(engine.now() >= SimTime::ZERO + Micros::from_secs(50_000));
        assert!(!engine.is_done());
        assert!(engine.pending_len() + engine.in_sweep_len() > 0);
        while engine.step().unwrap() == StepOutcome::Running {}
        assert_eq!(engine.finish(), batch);
    }

    #[test]
    fn external_mode_serves_submissions_and_conserves() {
        let catalog = paper_catalog(0, 0.0, LayoutKind::Horizontal);
        let timing = TimingModel::paper_default();
        let cfg = SimConfig::quick();
        let sampler = BlockSampler::from_catalog(&catalog, 40.0);
        let blocks: Vec<BlockId> = (0..30).map(|i| BlockId(i * 37)).collect();
        let mut factory =
            RequestFactory::new(sampler, ArrivalProcess::Closed { queue_length: 1 }, 1);
        let mut sched = make_scheduler(AlgorithmId::Dynamic(TapeSelectPolicy::MaxBandwidth));
        let mut sink = NullSink;
        let mut engine = SteppedEngine::new_external(
            &catalog,
            &timing,
            sched.as_mut(),
            &mut factory,
            &cfg,
            &FaultConfig::NONE,
            1,
            &mut sink,
        )
        .unwrap();
        for (i, b) in blocks.iter().enumerate() {
            let at = SimTime::ZERO + Micros::from_secs(i as u64 * 100);
            engine.submit_at(*b, at).unwrap();
        }
        engine.step_until(SimTime::ZERO + cfg.duration).unwrap();
        let mut completed = 0u64;
        for ev in engine.drain_events() {
            match ev {
                EngineEvent::Completed { .. } => completed += 1,
                EngineEvent::Failed { .. } => {}
            }
        }
        assert_eq!(completed, blocks.len() as u64, "all submissions served");
        let report = engine.finish();
        assert_eq!(report.admitted, blocks.len() as u64);
        assert_eq!(report.served, completed);
        assert_eq!(report.unserved, 0);
    }
}
