//! Multi-drive jukebox simulation — the paper's stated future work
//! ("future work could extend this to multiple drives", Section 2).
//!
//! The extension keeps the Section 2.2 service model per drive: whenever a
//! drive finishes its sweep, the major rescheduler picks it a new tape —
//! excluding tapes currently mounted in (or being switched into) the
//! other drives, which reach the scheduler through
//! [`tapesim_sched::JukeboxView::unavailable`]. One robotic arm is shared:
//! tape exchanges serialize on it, so adding drives also adds robot
//! contention, exactly the effect a real library exhibits.
//!
//! Arrivals during a sweep are handed to the incremental scheduler of the
//! drive at whose operation boundary they surface; the scheduler instance
//! (and, for the envelope algorithm, its envelope state) is shared across
//! drives, mirroring a per-jukebox scheduling daemon.
//!
//! [`run_multi_drive_with_faults`] additionally injects the fault model of
//! [`tapesim_model::faults`], per drive and per tape, exactly as
//! [`crate::engine::run_simulation_with_faults`] does for one drive.
#![allow(clippy::cast_possible_truncation)] // drive and tape indices fit u16 by geometry construction

use std::cmp::Reverse;
use std::collections::{BTreeMap, BinaryHeap};

use tapesim_layout::Catalog;
use tapesim_model::{
    FaultConfig, FaultInjector, LocateDirection, Micros, PhysicalAddr, ReadContext, SimTime,
    SlotIndex, TapeId, TimingModel,
};
use tapesim_sched::{JukeboxView, PendingList, Scheduler};
use tapesim_workload::{ArrivalProcess, RequestFactory, RequestId};

use crate::checkpoint::{
    self, Checkpoint, CheckpointOpts, DriveCheckpoint, EngineKind, MultiCheckpoint,
};
use crate::engine::{abort_plan, SimConfig};
use crate::error::SimError;
use crate::metrics::{MetricsCollector, MetricsReport};
use crate::trace::{NullSink, TraceEvent, TraceSink, Tracer, SYSTEM_DRIVE};
use crate::trace_event;

/// A request waiting to become visible at its arrival instant (closed-
/// queue regenerations are minted at a *future* completion time relative
/// to the other drives' clocks, so they must not be schedulable early).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct QueuedArrival {
    at: SimTime,
    seq: u64,
    req: tapesim_workload::Request,
}

impl Ord for QueuedArrival {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.at, self.seq).cmp(&(other.at, other.seq))
    }
}

impl PartialOrd for QueuedArrival {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

#[derive(Debug)]
struct DriveState {
    mounted: Option<TapeId>,
    head: SlotIndex,
    plan: Option<tapesim_sched::SweepPlan>,
    /// Phase of the last traced read in the current sweep (tracing only).
    cur_phase: Option<tapesim_sched::SweepPhase>,
    free_at: SimTime,
    /// True when `free_at` was set by the idle branch (nothing was
    /// schedulable). An idle drive's wake changes no jukebox state, so
    /// *other* idle drives must not treat it as an event to wait for —
    /// two idle drives leapfrogging each other's wake times would
    /// otherwise crawl forward a microsecond at a time.
    idle: bool,
}

/// Runs a fault-free jukebox with `drives` tape drives sharing one robot
/// arm. With `drives == 1` this behaves like
/// [`crate::engine::run_simulation`] (modulo immaterial bookkeeping
/// differences in event ordering).
pub fn run_multi_drive(
    catalog: &Catalog,
    timing: &TimingModel,
    scheduler: &mut dyn Scheduler,
    factory: &mut RequestFactory,
    cfg: &SimConfig,
    drives: u16,
) -> Result<MetricsReport, SimError> {
    run_multi_drive_with_faults(
        catalog,
        timing,
        scheduler,
        factory,
        cfg,
        drives,
        &FaultConfig::NONE,
        0,
    )
}

/// Runs a multi-drive jukebox under the given fault model. `fault_seed`
/// drives every fault substream, independently of the workload stream.
#[allow(clippy::too_many_arguments)]
pub fn run_multi_drive_with_faults(
    catalog: &Catalog,
    timing: &TimingModel,
    scheduler: &mut dyn Scheduler,
    factory: &mut RequestFactory,
    cfg: &SimConfig,
    drives: u16,
    faults: &FaultConfig,
    fault_seed: u64,
) -> Result<MetricsReport, SimError> {
    run_multi_drive_traced(
        catalog,
        timing,
        scheduler,
        factory,
        cfg,
        drives,
        faults,
        fault_seed,
        &mut NullSink,
    )
}

/// Runs a multi-drive jukebox while recording every event into `sink`
/// (see [`crate::trace`]). With a [`NullSink`] this is exactly
/// [`run_multi_drive_with_faults`].
#[allow(clippy::too_many_arguments)]
pub fn run_multi_drive_traced(
    catalog: &Catalog,
    timing: &TimingModel,
    scheduler: &mut dyn Scheduler,
    factory: &mut RequestFactory,
    cfg: &SimConfig,
    drives: u16,
    faults: &FaultConfig,
    fault_seed: u64,
    sink: &mut dyn TraceSink,
) -> Result<MetricsReport, SimError> {
    run_multi_drive_checkpointed(
        catalog,
        timing,
        scheduler,
        factory,
        cfg,
        drives,
        faults,
        fault_seed,
        sink,
        &CheckpointOpts::none(),
    )
}

/// [`run_multi_drive_traced`] with checkpoint/resume support (see
/// [`crate::checkpoint`]). With [`CheckpointOpts::none`] this is exactly
/// [`run_multi_drive_traced`]. Checkpoints are taken at drive-dispatch
/// boundaries; in-flight sweep plans are part of the checkpoint, so a
/// resumed run replays the interrupted sweeps stop for stop.
#[allow(clippy::too_many_arguments)]
pub fn run_multi_drive_checkpointed(
    catalog: &Catalog,
    timing: &TimingModel,
    scheduler: &mut dyn Scheduler,
    factory: &mut RequestFactory,
    cfg: &SimConfig,
    drives: u16,
    faults: &FaultConfig,
    fault_seed: u64,
    sink: &mut dyn TraceSink,
    opts: &CheckpointOpts,
) -> Result<MetricsReport, SimError> {
    if drives < 1 {
        return Err(SimError::InvalidConfig("need at least one drive"));
    }
    if drives > catalog.geometry().tapes {
        return Err(SimError::InvalidConfig(
            "more drives than tapes is pointless",
        ));
    }
    if cfg.warmup >= cfg.duration {
        return Err(SimError::InvalidConfig("warmup must precede the horizon"));
    }
    faults.validate().map_err(SimError::InvalidConfig)?;
    opts.validate()?;
    let fp = checkpoint::run_fingerprint(
        EngineKind::Multi,
        catalog,
        timing,
        scheduler.name(),
        &factory.config_tag(),
        &format!("{cfg:?}"),
        &format!("{faults:?}"),
        fault_seed,
        drives,
        "",
    );
    let resumed = match opts.resume() {
        Some(path) => {
            let ckpt = checkpoint::load(path)?;
            if ckpt.fingerprint != fp {
                return Err(SimError::CheckpointConfigMismatch {
                    found: ckpt.fingerprint,
                    expected: fp,
                });
            }
            Some(ckpt)
        }
        None => None,
    };
    let mut tracer = match &resumed {
        Some(ckpt) => Tracer::with_seq(sink, ckpt.trace_seq),
        None => Tracer::new(sink),
    };
    let mut injector =
        FaultInjector::new(*faults, &catalog.geometry(), drives as usize, fault_seed);
    let block = catalog.block_size();
    let block_bytes = block.bytes();
    let end = SimTime::ZERO + cfg.duration;
    let warmup_end = SimTime::ZERO + cfg.warmup;
    let closed = matches!(factory.process(), ArrivalProcess::Closed { .. });

    let mut pending = PendingList::new();
    let mut queued: BinaryHeap<Reverse<QueuedArrival>> = BinaryHeap::new();
    let mut seq: u64 = 0;
    let mut metrics = MetricsCollector::new(warmup_end);
    let mut saturated = false;
    let mut robot_free = SimTime::ZERO;
    let mut faulted: BTreeMap<RequestId, TapeId> = BTreeMap::new();
    let mut states: Vec<DriveState> = (0..drives)
        .map(|_| DriveState {
            mounted: None,
            head: SlotIndex::BOT,
            plan: None,
            cur_phase: None,
            free_at: SimTime::ZERO,
            idle: false,
        })
        .collect();

    // Seed the workload (skipped on resume: the factory is replayed to
    // its checkpointed stream position below instead).
    let mut next_arrival: Option<SimTime> = None;
    if resumed.is_none() {
        match factory.process() {
            ArrivalProcess::Closed { queue_length } => {
                for _ in 0..queue_length {
                    let req = factory.make(SimTime::ZERO);
                    trace_event!(
                        tracer,
                        SimTime::ZERO,
                        SYSTEM_DRIVE,
                        TraceEvent::Arrival {
                            req: req.id,
                            block: req.block,
                        }
                    );
                    pending.push(req);
                    metrics.record_admission();
                }
            }
            ArrivalProcess::OpenPoisson { .. } => {
                let gap = factory
                    .next_interarrival()
                    .ok_or(SimError::ClosedArrivalStream)?;
                next_arrival = Some(SimTime::ZERO + gap);
            }
        }
    }

    let mut now = SimTime::ZERO;
    if let Some(ckpt) = &resumed {
        factory
            .replay(ckpt.factory_makes, ckpt.factory_gaps)
            .map_err(|m| SimError::CheckpointCorrupt(m.to_string()))?;
        if factory.stream_fingerprint() != ckpt.factory_fp {
            return Err(SimError::CheckpointConfigMismatch {
                found: ckpt.factory_fp,
                expected: factory.stream_fingerprint(),
            });
        }
        if let Some(snap) = &ckpt.faults {
            injector
                .restore(snap)
                .map_err(|m| SimError::CheckpointCorrupt(m.to_string()))?;
        }
        if let Some(state) = &ckpt.sched_state {
            scheduler
                .restore_state(state)
                .map_err(|m| SimError::CheckpointCorrupt(m.to_string()))?;
        }
        if ckpt.drives.len() != drives as usize {
            return Err(SimError::CheckpointCorrupt(
                "checkpoint drive count does not match the configuration".into(),
            ));
        }
        let mc = ckpt.multi.as_ref().ok_or_else(|| {
            SimError::CheckpointCorrupt("multi-drive checkpoint has no multi line".into())
        })?;
        now = SimTime::from_micros(ckpt.now_us);
        next_arrival = ckpt.next_arrival_us.map(SimTime::from_micros);
        for req in ckpt.pending.iter() {
            pending.push(*req);
        }
        metrics = MetricsCollector::from_snapshot(&ckpt.metrics);
        faulted = ckpt
            .faulted
            .iter()
            .map(|&(r, t)| (RequestId(r), TapeId(t)))
            .collect();
        states = ckpt
            .drives
            .iter()
            .map(|dc| DriveState {
                mounted: dc.mounted,
                head: dc.head,
                plan: dc.plan.clone(),
                cur_phase: dc.cur_phase,
                free_at: SimTime::from_micros(dc.free_at_us),
                idle: dc.idle,
            })
            .collect();
        seq = mc.seq;
        robot_free = SimTime::from_micros(mc.robot_free_us);
        for &(at, qseq, req) in mc.queued.iter() {
            queued.push(Reverse(QueuedArrival {
                at: SimTime::from_micros(at),
                seq: qseq,
                req,
            }));
        }
    }
    // First periodic-checkpoint instant strictly after the current clock.
    let mut next_ckpt_at = opts
        .write_every()
        .map(|(every, _)| checkpoint::next_checkpoint_after(now, every));
    // Scratch buffers for the offline/held-tape snapshots handed to
    // scheduler views; refilled per event instead of allocating each
    // time.
    let mut offline_buf: Vec<TapeId> = Vec::new();
    let mut unavailable_buf: Vec<TapeId> = Vec::new();
    // Next drive to act: earliest free_at, lowest index on ties.
    'outer: while let Some(d) = (0..states.len()).min_by_key(|&i| (states[i].free_at, i)) {
        // Checkpoint before this iteration mutates anything (the clock
        // update below is re-derived identically on resume).
        if let (Some(at), Some((every, path))) = (next_ckpt_at, opts.write_every()) {
            if now >= at {
                let mut arrivals: Vec<QueuedArrival> = queued.iter().map(|Reverse(q)| *q).collect();
                arrivals.sort_unstable();
                let ckpt = Checkpoint {
                    engine: EngineKind::Multi,
                    fingerprint: fp,
                    now_us: now.as_micros(),
                    trace_seq: tracer.next_seq(),
                    next_arrival_us: next_arrival.map(|t| t.as_micros()),
                    factory_makes: factory.minted(),
                    factory_gaps: factory.gaps_drawn(),
                    factory_fp: factory.stream_fingerprint(),
                    pending: pending.iter().cloned().collect(),
                    metrics: metrics.snapshot(),
                    faulted: faulted.iter().map(|(r, t)| (r.0, t.0)).collect(),
                    sched_state: scheduler.checkpoint_state(),
                    faults: (*faults != FaultConfig::NONE).then(|| injector.snapshot()),
                    drives: states
                        .iter()
                        .map(|s| DriveCheckpoint {
                            mounted: s.mounted,
                            head: s.head,
                            plan: s.plan.clone(),
                            cur_phase: s.cur_phase,
                            free_at_us: s.free_at.as_micros(),
                            idle: s.idle,
                        })
                        .collect(),
                    multi: Some(MultiCheckpoint {
                        seq,
                        robot_free_us: robot_free.as_micros(),
                        queued: arrivals
                            .iter()
                            .map(|q| (q.at.as_micros(), q.seq, q.req))
                            .collect(),
                    }),
                    writeback: None,
                };
                checkpoint::save(&ckpt, path)?;
                next_ckpt_at = Some(checkpoint::next_checkpoint_after(now, every));
            }
        }
        now = states[d].free_at.max(now);
        states[d].idle = false;
        if now >= end {
            break;
        }

        if injector.is_active() {
            injector.advance(now);
            // A failed drive sits out its repair; the other drives keep
            // serving.
            if let Some(repair) = injector.drive_outage(d, now) {
                states[d].free_at = now + repair;
                metrics.add_repair_time(now + repair, repair);
                trace_event!(
                    tracer,
                    now + repair,
                    d as u16,
                    TraceEvent::DriveRepair { dur: repair }
                );
                continue 'outer;
            }
            // Fail out requests no surviving copy can serve any more.
            if injector.has_permanent_damage() {
                let dead = pending.extract(|r| {
                    catalog
                        .replicas(r.block)
                        .iter()
                        .all(|a| injector.copy_dead(*a))
                });
                for r in dead {
                    faulted.remove(&r.id);
                    metrics.record_permanent_failure();
                    trace_event!(
                        tracer,
                        now,
                        SYSTEM_DRIVE,
                        TraceEvent::RequestFailed { req: r.id }
                    );
                    if closed {
                        let req = factory.make(now);
                        trace_event!(
                            tracer,
                            now,
                            SYSTEM_DRIVE,
                            TraceEvent::Arrival {
                                req: req.id,
                                block: req.block,
                            }
                        );
                        queued.push(Reverse(QueuedArrival { at: now, seq, req }));
                        seq += 1;
                        metrics.record_admission();
                    }
                }
            }
            // The tape under this drive failed: abort the sweep and let
            // the requests fail over or wait for the repair.
            let tape_dead = states[d]
                .plan
                .as_ref()
                .is_some_and(|p| injector.is_offline(p.tape));
            if tape_dead {
                if let Some(plan) = states[d].plan.take() {
                    trace_event!(
                        tracer,
                        now,
                        d as u16,
                        TraceEvent::TapeOffline { tape: plan.tape }
                    );
                    abort_plan(&plan, plan.tape, &mut pending, &mut faulted);
                }
                states[d].mounted = None;
                states[d].head = SlotIndex::BOT;
                continue 'outer;
            }
        }
        offline_buf.clear();
        offline_buf.extend_from_slice(injector.offline());

        // Deliver due arrivals (Poisson stream and queued closed-queue
        // regenerations, in time order). If drive `d` has an active sweep
        // they go through the incremental scheduler; otherwise straight to
        // the pending list.
        loop {
            // Materialize the Poisson arrival if it is the earliest event.
            if let Some(t) = next_arrival {
                let heap_first = queued.peek().map(|Reverse(q)| q.at);
                if t <= now && heap_first.is_none_or(|h| t <= h) {
                    let req = factory.make(t);
                    trace_event!(
                        tracer,
                        t,
                        SYSTEM_DRIVE,
                        TraceEvent::Arrival {
                            req: req.id,
                            block: req.block,
                        }
                    );
                    queued.push(Reverse(QueuedArrival { at: t, seq, req }));
                    seq += 1;
                    metrics.record_admission();
                    let gap = factory
                        .next_interarrival()
                        .ok_or(SimError::ClosedArrivalStream)?;
                    next_arrival = Some(t + gap);
                    continue;
                }
            }
            let due = queued.peek().is_some_and(|Reverse(q)| q.at <= now);
            if !due {
                break;
            }
            let Some(Reverse(q)) = queued.pop() else {
                break;
            };
            tapes_held_except_into(&states, d, &mut unavailable_buf);
            let (mounted, head) = (states[d].mounted, states[d].head);
            if let Some(plan) = states[d].plan.as_mut() {
                let view = JukeboxView {
                    catalog,
                    timing,
                    mounted,
                    head,
                    now,
                    unavailable: &unavailable_buf,
                    offline: &offline_buf,
                };
                let req_id = q.req.id;
                let outcome =
                    scheduler.on_arrival(&view, plan.tape, &mut plan.list, q.req, &mut pending);
                trace_event!(
                    tracer,
                    now,
                    d as u16,
                    TraceEvent::Incremental {
                        req: req_id,
                        tape: plan.tape,
                        inserted: outcome == tapesim_sched::ArrivalOutcome::Inserted,
                    }
                );
            } else {
                pending.push(q.req);
            }
        }
        if pending.len() > cfg.max_pending {
            saturated = true;
            break 'outer;
        }

        let has_stops = states[d].plan.as_ref().is_some_and(|p| !p.list.is_empty());
        if has_stops {
            // Execute the next stop of this drive's sweep.
            let (stop, phase, tape) = {
                let Some(plan) = states[d].plan.as_mut() else {
                    continue;
                };
                match plan.list.pop() {
                    Some((stop, phase)) => (stop, phase, plan.tape),
                    None => continue,
                }
            };
            if tracer.on && states[d].cur_phase != Some(phase) {
                states[d].cur_phase = Some(phase);
                tracer.push(now, d as u16, TraceEvent::PhaseStart { tape, phase });
            }
            let (lt, dir) = timing.drive.locate(states[d].head, stop.slot, block);
            let ctx = match dir {
                None => ReadContext::Streaming,
                Some(LocateDirection::Forward) => ReadContext::AfterForwardLocate,
                Some(LocateDirection::Reverse) => ReadContext::AfterReverseLocate,
            };
            let rt = timing.drive.read_block(block, ctx);
            // Drive time is attributed at the end of each segment (not
            // lumped at the stop's end) so a stop straddling the warmup
            // boundary is split exactly as the single-drive engine splits
            // it — keeping the 1-drive differential exact.
            let mut t = now + lt;
            metrics.add_locate_time(t, lt);
            trace_event!(
                tracer,
                t,
                d as u16,
                TraceEvent::Locate {
                    tape,
                    from: states[d].head,
                    to: stop.slot,
                    dur: lt,
                }
            );
            // Fault: every failed read attempt costs another pass over the
            // block; exhausting the retries loses the copy.
            let mut read_ok = true;
            if injector.is_active() {
                let mut tries = 0u32;
                while injector.media_error() {
                    t += rt;
                    metrics.add_read_time(t, rt);
                    trace_event!(
                        tracer,
                        t,
                        d as u16,
                        TraceEvent::MediaError {
                            tape,
                            slot: stop.slot,
                        }
                    );
                    if tries >= faults.media_retries {
                        read_ok = false;
                        break;
                    }
                    tries += 1;
                }
            }
            if !read_ok {
                let done = t;
                states[d].head = stop.slot.next();
                states[d].free_at = done;
                injector.mark_bad_copy(PhysicalAddr {
                    tape,
                    slot: stop.slot,
                });
                trace_event!(
                    tracer,
                    done,
                    d as u16,
                    TraceEvent::CopyLost {
                        tape,
                        slot: stop.slot,
                    }
                );
                for r in &stop.requests {
                    let survives = catalog
                        .replicas(r.block)
                        .iter()
                        .any(|a| !injector.copy_dead(*a));
                    if survives {
                        faulted.insert(r.id, tape);
                        pending.push(*r);
                    } else {
                        faulted.remove(&r.id);
                        metrics.record_permanent_failure();
                        trace_event!(
                            tracer,
                            done,
                            d as u16,
                            TraceEvent::RequestFailed { req: r.id }
                        );
                        if closed {
                            let req = factory.make(done);
                            trace_event!(
                                tracer,
                                done,
                                SYSTEM_DRIVE,
                                TraceEvent::Arrival {
                                    req: req.id,
                                    block: req.block,
                                }
                            );
                            queued.push(Reverse(QueuedArrival { at: done, seq, req }));
                            seq += 1;
                            metrics.record_admission();
                        }
                    }
                }
                continue;
            }
            t += rt;
            let done = t;
            metrics.add_read_time(done, rt);
            metrics.record_physical_read(done);
            states[d].head = stop.slot.next();
            states[d].free_at = done;
            trace_event!(
                tracer,
                done,
                d as u16,
                TraceEvent::Read {
                    tape,
                    slot: stop.slot,
                    phase,
                    dur: rt,
                }
            );
            let completions = stop.requests.len();
            for r in &stop.requests {
                metrics.record_completion(r.arrival, done, block_bytes);
                if !faulted.is_empty() {
                    if let Some(failed_tape) = faulted.remove(&r.id) {
                        if failed_tape != tape {
                            metrics.record_replica_failover();
                            trace_event!(
                                tracer,
                                done,
                                d as u16,
                                TraceEvent::Failover {
                                    req: r.id,
                                    from: failed_tape,
                                    to: tape,
                                }
                            );
                        }
                    }
                }
                trace_event!(
                    tracer,
                    done,
                    d as u16,
                    TraceEvent::Complete {
                        req: r.id,
                        tape,
                        delay: done.duration_since(r.arrival),
                    }
                );
            }
            if closed {
                for _ in 0..completions {
                    let req = factory.make(done);
                    trace_event!(
                        tracer,
                        done,
                        SYSTEM_DRIVE,
                        TraceEvent::Arrival {
                            req: req.id,
                            block: req.block,
                        }
                    );
                    queued.push(Reverse(QueuedArrival { at: done, seq, req }));
                    seq += 1;
                    metrics.record_admission();
                }
            }
            continue;
        }

        // Sweep finished (or never started): clear it and reschedule.
        if let Some(p) = states[d].plan.take() {
            trace_event!(tracer, now, d as u16, TraceEvent::SweepEnd { tape: p.tape });
        }
        states[d].cur_phase = None;
        tapes_held_except_into(&states, d, &mut unavailable_buf);
        let view = JukeboxView {
            catalog,
            timing,
            mounted: states[d].mounted,
            head: states[d].head,
            now,
            unavailable: &unavailable_buf,
            offline: &offline_buf,
        };
        match scheduler.major_reschedule(&view, &mut pending) {
            Some(plan) => {
                trace_event!(
                    tracer,
                    now,
                    d as u16,
                    TraceEvent::SweepStart {
                        tape: plan.tape,
                        stops: plan.list.stops() as u32,
                        requests: plan.list.requests() as u32,
                    }
                );
                if states[d].mounted != Some(plan.tape) {
                    // Rewind + eject locally, then the (shared) robot
                    // exchange, then load. Each failed load attempt costs
                    // another robot exchange + load; exhausting the
                    // retries fails the tape itself.
                    let mut t = now;
                    let mut rewind = Micros::ZERO;
                    if let Some(old) = states[d].mounted {
                        rewind = timing.drive.rewind(states[d].head, block);
                        trace_event!(
                            tracer,
                            now + rewind,
                            d as u16,
                            TraceEvent::Rewind {
                                tape: old,
                                from: states[d].head,
                                dur: rewind,
                            }
                        );
                        trace_event!(
                            tracer,
                            now + rewind,
                            d as u16,
                            TraceEvent::Unmount { tape: old }
                        );
                        t = t + rewind + timing.drive.eject();
                    }
                    robot_free = t.max(robot_free) + timing.robot.exchange();
                    let mut ready = robot_free + timing.drive.load();
                    let mut tape_failed_on_load = false;
                    if injector.is_active() {
                        let mut tries = 0u32;
                        while injector.load_fails() {
                            if tries >= faults.load_retries {
                                tape_failed_on_load = true;
                                break;
                            }
                            tries += 1;
                            robot_free = ready.max(robot_free) + timing.robot.exchange();
                            ready = robot_free + timing.drive.load();
                        }
                    }
                    metrics.add_switch_time(ready, ready.duration_since(now));
                    metrics.record_tape_switch(ready);
                    if tape_failed_on_load {
                        injector.force_tape_failure(plan.tape, ready);
                        trace_event!(
                            tracer,
                            ready,
                            d as u16,
                            TraceEvent::LoadFailed {
                                tape: plan.tape,
                                dur: ready.duration_since(now) - rewind,
                            }
                        );
                        trace_event!(
                            tracer,
                            ready,
                            d as u16,
                            TraceEvent::TapeOffline { tape: plan.tape }
                        );
                        abort_plan(&plan, plan.tape, &mut pending, &mut faulted);
                        states[d].mounted = None;
                        states[d].head = SlotIndex::BOT;
                        states[d].free_at = ready;
                        continue 'outer;
                    }
                    trace_event!(
                        tracer,
                        ready,
                        d as u16,
                        TraceEvent::Mount {
                            tape: plan.tape,
                            dur: ready.duration_since(now) - rewind,
                        }
                    );
                    states[d].mounted = Some(plan.tape);
                    states[d].head = SlotIndex::BOT;
                    states[d].free_at = ready;
                } // else: already mounted, can start immediately
                states[d].plan = Some(plan);
            }
            None => {
                // Nothing this drive can do: wait for the next system
                // event (another drive's action, an arrival, or a fault
                // repair that brings a tape back).
                let mut next = end;
                for (i, s) in states.iter().enumerate() {
                    if i != d && !s.idle && s.free_at > now && s.free_at < next {
                        next = s.free_at;
                    }
                }
                if let Some(t) = next_arrival {
                    if t > now && t < next {
                        next = t;
                    }
                }
                if let Some(Reverse(q)) = queued.peek() {
                    if q.at > now && q.at < next {
                        next = q.at;
                    }
                }
                if let Some(t) = injector.next_event(now) {
                    if t < next {
                        next = t;
                    }
                }
                if next >= end {
                    // Check whether *any* drive still has queued work.
                    let someone_busy = states
                        .iter()
                        .any(|s| s.plan.as_ref().is_some_and(|p| !p.list.is_empty()))
                        || !queued.is_empty();
                    if !someone_busy {
                        let dur = end.duration_since(now);
                        metrics.add_idle_time(end, dur);
                        trace_event!(tracer, end, d as u16, TraceEvent::Idle { dur });
                        now = end;
                        break 'outer;
                    }
                    next = end;
                }
                let dur = next.duration_since(now);
                metrics.add_idle_time(next, dur);
                trace_event!(tracer, next, d as u16, TraceEvent::Idle { dur });
                states[d].free_at = next + Micros::from_micros(1);
                states[d].idle = true;
            }
        }
    }

    let window = if saturated || now < end {
        if now > warmup_end {
            now.duration_since(warmup_end)
        } else {
            Micros::from_micros(1)
        }
    } else {
        cfg.duration - cfg.warmup
    };
    let stranded: u64 = states
        .iter()
        .map(|s| s.plan.as_ref().map_or(0, |p| p.list.requests() as u64))
        .sum::<u64>()
        + queued.len() as u64
        + pending.len() as u64;
    if injector.is_active() {
        injector.advance(now);
        metrics.set_fault_accounting(
            injector.media_errors(),
            injector.tape_downtime(now),
            injector.degraded_time(now),
            stranded,
        );
    } else {
        metrics.set_fault_accounting(0, Vec::new(), Micros::ZERO, stranded);
    }
    Ok(metrics.report(window, saturated))
}

/// Tapes mounted in (or reserved by) every drive other than `except`,
/// collected into a reusable scratch buffer.
fn tapes_held_except_into(states: &[DriveState], except: usize, out: &mut Vec<TapeId>) {
    out.clear();
    out.extend(
        states
            .iter()
            .enumerate()
            .filter(|&(i, _)| i != except)
            .filter_map(|(_, s)| s.mounted),
    );
}

#[cfg(test)]
mod tests {
    use super::*;
    use tapesim_layout::{build_placement, LayoutKind, PlacementConfig};
    use tapesim_model::{BlockSize, JukeboxGeometry};
    use tapesim_sched::{make_scheduler, AlgorithmId, TapeSelectPolicy};
    use tapesim_workload::BlockSampler;

    fn paper_catalog(nr: u32, sp: f64, layout: LayoutKind) -> Catalog {
        build_placement(
            JukeboxGeometry::PAPER_DEFAULT,
            BlockSize::PAPER_DEFAULT,
            PlacementConfig {
                layout,
                ph_percent: 10.0,
                replicas: nr,
                sp,
            },
        )
        .unwrap()
        .catalog
    }

    fn run(drives: u16, alg: AlgorithmId, queue: u32, seed: u64) -> MetricsReport {
        run_faulty(drives, alg, queue, seed, &FaultConfig::NONE)
    }

    fn run_faulty(
        drives: u16,
        alg: AlgorithmId,
        queue: u32,
        seed: u64,
        faults: &FaultConfig,
    ) -> MetricsReport {
        let catalog = if faults.is_inert() {
            paper_catalog(0, 0.0, LayoutKind::Horizontal)
        } else {
            paper_catalog(1, 0.5, LayoutKind::Vertical)
        };
        let timing = TimingModel::paper_default();
        let sampler = BlockSampler::from_catalog(&catalog, 40.0);
        let mut factory = RequestFactory::new(
            sampler,
            ArrivalProcess::Closed {
                queue_length: queue,
            },
            seed,
        );
        let mut sched = make_scheduler(alg);
        run_multi_drive_with_faults(
            &catalog,
            &timing,
            sched.as_mut(),
            &mut factory,
            &SimConfig::quick(),
            drives,
            faults,
            seed,
        )
        .expect("simulation failed")
    }

    #[test]
    fn single_drive_matches_scale_of_engine() {
        let r = run(
            1,
            AlgorithmId::Dynamic(TapeSelectPolicy::MaxBandwidth),
            60,
            1,
        );
        assert!(r.completed > 200, "completed {}", r.completed);
        assert!(r.throughput_kb_per_s > 100.0);
    }

    #[test]
    fn more_drives_give_more_throughput() {
        let alg = AlgorithmId::Dynamic(TapeSelectPolicy::MaxBandwidth);
        let one = run(1, alg, 120, 2);
        let two = run(2, alg, 120, 2);
        let four = run(4, alg, 120, 2);
        assert!(
            two.throughput_kb_per_s > one.throughput_kb_per_s * 1.4,
            "2 drives {:.1} vs 1 drive {:.1}",
            two.throughput_kb_per_s,
            one.throughput_kb_per_s
        );
        assert!(
            four.throughput_kb_per_s > two.throughput_kb_per_s * 1.2,
            "4 drives {:.1} vs 2 drives {:.1}",
            four.throughput_kb_per_s,
            two.throughput_kb_per_s
        );
        // Delay improves with parallel service.
        assert!(two.mean_delay_s < one.mean_delay_s);
    }

    #[test]
    fn drives_never_share_a_tape() {
        // Indirectly validated by the envelope/selection availability
        // filters; here we run every algorithm family briefly to shake
        // out conflicts (a shared tape would corrupt head positions and
        // show up as nonsense metrics or panics).
        for alg in [
            AlgorithmId::Fifo,
            AlgorithmId::Static(TapeSelectPolicy::RoundRobin),
            AlgorithmId::Dynamic(TapeSelectPolicy::MaxBandwidth),
            AlgorithmId::paper_recommended(),
        ] {
            let r = run(3, alg, 60, 3);
            assert!(r.completed > 50, "{} completed {}", alg.name(), r.completed);
        }
    }

    #[test]
    fn multi_drive_is_deterministic() {
        let alg = AlgorithmId::paper_recommended();
        let a = run(3, alg, 60, 9);
        let b = run(3, alg, 60, 9);
        assert_eq!(a, b);
    }

    #[test]
    fn too_many_drives_rejected() {
        let placed = build_placement(
            JukeboxGeometry::new(2, 1024),
            BlockSize::PAPER_DEFAULT,
            PlacementConfig {
                layout: LayoutKind::Horizontal,
                ph_percent: 0.0,
                replicas: 0,
                sp: 0.0,
            },
        )
        .unwrap();
        let timing = TimingModel::paper_default();
        let sampler = BlockSampler::from_catalog(&placed.catalog, 0.0);
        let mut factory =
            RequestFactory::new(sampler, ArrivalProcess::Closed { queue_length: 5 }, 1);
        let mut sched = make_scheduler(AlgorithmId::Fifo);
        let err = run_multi_drive(
            &placed.catalog,
            &timing,
            sched.as_mut(),
            &mut factory,
            &SimConfig::quick(),
            3,
        );
        assert!(matches!(err, Err(SimError::InvalidConfig(_))));
        let err = run_multi_drive(
            &placed.catalog,
            &timing,
            sched.as_mut(),
            &mut factory,
            &SimConfig::quick(),
            0,
        );
        assert!(matches!(err, Err(SimError::InvalidConfig(_))));
    }

    #[test]
    fn multi_drive_conserves_requests_under_faults() {
        let faults = FaultConfig {
            media_error_per_read: 0.05,
            media_retries: 0,
            load_failure_p: 0.02,
            load_retries: 1,
            tape_mtbf: Some(Micros::from_secs(200_000)),
            tape_mttr: Some(Micros::from_secs(15_000)),
            drive_mtbf: Some(Micros::from_secs(250_000)),
            drive_mttr: Micros::from_secs(4_000),
        };
        for drives in [1, 3] {
            let r = run_faulty(drives, AlgorithmId::paper_recommended(), 60, 31, &faults);
            assert_eq!(
                r.admitted,
                r.served + r.failed_requests + r.unserved,
                "conservation violated with {drives} drives"
            );
            assert!(r.completed > 50, "progress with {drives} drives");
        }
    }

    #[test]
    fn multi_drive_faults_are_deterministic() {
        let faults = FaultConfig {
            media_error_per_read: 0.02,
            media_retries: 1,
            tape_mtbf: Some(Micros::from_secs(300_000)),
            tape_mttr: Some(Micros::from_secs(10_000)),
            ..FaultConfig::NONE
        };
        let a = run_faulty(2, AlgorithmId::paper_recommended(), 60, 37, &faults);
        let b = run_faulty(2, AlgorithmId::paper_recommended(), 60, 37, &faults);
        assert_eq!(a, b);
    }
}
