//! Multi-drive jukebox simulation — the paper's stated future work
//! ("future work could extend this to multiple drives", Section 2).
//!
//! The extension keeps the Section 2.2 service model per drive: whenever a
//! drive finishes its sweep, the major rescheduler picks it a new tape —
//! excluding tapes currently mounted in (or being switched into) the
//! other drives, which reach the scheduler through
//! [`tapesim_sched::JukeboxView::unavailable`]. One robotic arm is shared:
//! tape exchanges serialize on it, so adding drives also adds robot
//! contention, exactly the effect a real library exhibits.
//!
//! Arrivals during a sweep are handed to the incremental scheduler of the
//! drive at whose operation boundary they surface; the scheduler instance
//! (and, for the envelope algorithm, its envelope state) is shared across
//! drives, mirroring a per-jukebox scheduling daemon.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use tapesim_layout::Catalog;
use tapesim_model::{
    LocateDirection, Micros, ReadContext, SimTime, SlotIndex, TapeId, TimingModel,
};
use tapesim_sched::{JukeboxView, PendingList, Scheduler, SweepPlan};
use tapesim_workload::{ArrivalProcess, RequestFactory};

use crate::engine::SimConfig;
use crate::metrics::{MetricsCollector, MetricsReport};

/// A request waiting to become visible at its arrival instant (closed-
/// queue regenerations are minted at a *future* completion time relative
/// to the other drives' clocks, so they must not be schedulable early).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct QueuedArrival {
    at: SimTime,
    seq: u64,
    req: tapesim_workload::Request,
}

impl Ord for QueuedArrival {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.at, self.seq).cmp(&(other.at, other.seq))
    }
}

impl PartialOrd for QueuedArrival {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

#[derive(Debug)]
struct DriveState {
    mounted: Option<TapeId>,
    head: SlotIndex,
    plan: Option<SweepPlan>,
    free_at: SimTime,
}

/// Runs a jukebox with `drives` tape drives sharing one robot arm.
/// With `drives == 1` this behaves like [`crate::engine::run_simulation`]
/// (modulo immaterial bookkeeping differences in event ordering).
pub fn run_multi_drive(
    catalog: &Catalog,
    timing: &TimingModel,
    scheduler: &mut dyn Scheduler,
    factory: &mut RequestFactory,
    cfg: &SimConfig,
    drives: u16,
) -> MetricsReport {
    assert!(drives >= 1, "need at least one drive");
    assert!(
        drives <= catalog.geometry().tapes,
        "more drives than tapes is pointless"
    );
    assert!(cfg.warmup < cfg.duration, "warmup must precede the horizon");
    let block = catalog.block_size();
    let block_bytes = block.bytes();
    let end = SimTime::ZERO + cfg.duration;
    let warmup_end = SimTime::ZERO + cfg.warmup;
    let closed = matches!(factory.process(), ArrivalProcess::Closed { .. });

    let mut pending = PendingList::new();
    let mut queued: BinaryHeap<Reverse<QueuedArrival>> = BinaryHeap::new();
    let mut seq: u64 = 0;
    let mut metrics = MetricsCollector::new(warmup_end);
    let mut saturated = false;
    let mut robot_free = SimTime::ZERO;
    let mut states: Vec<DriveState> = (0..drives)
        .map(|_| DriveState {
            mounted: None,
            head: SlotIndex::BOT,
            plan: None,
            free_at: SimTime::ZERO,
        })
        .collect();

    // Seed the workload.
    let mut next_arrival: Option<SimTime> = None;
    match factory.process() {
        ArrivalProcess::Closed { queue_length } => {
            for _ in 0..queue_length {
                pending.push(factory.make(SimTime::ZERO));
            }
        }
        ArrivalProcess::OpenPoisson { .. } => {
            let gap = factory.next_interarrival().expect("open process");
            next_arrival = Some(SimTime::ZERO + gap);
        }
    }

    let mut now = SimTime::ZERO;
    'outer: loop {
        // Next drive to act: earliest free_at, lowest index on ties.
        let d = (0..states.len())
            .min_by_key(|&i| (states[i].free_at, i))
            .expect("at least one drive");
        now = states[d].free_at.max(now);
        if now >= end {
            break;
        }

        // Deliver due arrivals (Poisson stream and queued closed-queue
        // regenerations, in time order). If drive `d` has an active sweep
        // they go through the incremental scheduler; otherwise straight to
        // the pending list.
        loop {
            // Materialize the Poisson arrival if it is the earliest event.
            if let Some(t) = next_arrival {
                let heap_first = queued.peek().map(|Reverse(q)| q.at);
                if t <= now && heap_first.is_none_or(|h| t <= h) {
                    queued.push(Reverse(QueuedArrival {
                        at: t,
                        seq,
                        req: factory.make(t),
                    }));
                    seq += 1;
                    let gap = factory.next_interarrival().expect("open process");
                    next_arrival = Some(t + gap);
                    continue;
                }
            }
            let due = queued.peek().is_some_and(|Reverse(q)| q.at <= now);
            if !due {
                break;
            }
            let Reverse(q) = queued.pop().expect("peeked");
            let (mounted, head) = (states[d].mounted, states[d].head);
            if states[d].plan.is_some() {
                let unavailable = tapes_held_except(&states, d);
                let plan = states[d].plan.as_mut().expect("checked above");
                let view = JukeboxView {
                    catalog,
                    timing,
                    mounted,
                    head,
                    now,
                    unavailable: &unavailable,
                };
                scheduler.on_arrival(&view, plan.tape, &mut plan.list, q.req, &mut pending);
            } else {
                pending.push(q.req);
            }
        }
        if pending.len() > cfg.max_pending {
            saturated = true;
            break 'outer;
        }

        let has_stops = states[d]
            .plan
            .as_ref()
            .is_some_and(|p| !p.list.is_empty());
        if has_stops {
            // Execute the next stop of this drive's sweep.
            let plan = states[d].plan.as_mut().expect("checked above");
            let (stop, _phase) = plan.list.pop().expect("non-empty");
            let tape = plan.tape;
            let (lt, dir) = timing.drive.locate(states[d].head, stop.slot, block);
            let ctx = match dir {
                None => ReadContext::Streaming,
                Some(LocateDirection::Forward) => ReadContext::AfterForwardLocate,
                Some(LocateDirection::Reverse) => ReadContext::AfterReverseLocate,
            };
            let rt = timing.drive.read_block(block, ctx);
            let done = now + lt + rt;
            metrics.add_locate_time(done, lt);
            metrics.add_read_time(done, rt);
            metrics.record_physical_read(done);
            states[d].head = stop.slot.next();
            states[d].free_at = done;
            let completions = stop.requests.len();
            for r in &stop.requests {
                metrics.record_completion(r.arrival, done, block_bytes);
            }
            if closed {
                for _ in 0..completions {
                    queued.push(Reverse(QueuedArrival {
                        at: done,
                        seq,
                        req: factory.make(done),
                    }));
                    seq += 1;
                }
            }
            let _ = tape;
            continue;
        }

        // Sweep finished (or never started): clear it and reschedule.
        states[d].plan = None;
        let unavailable = tapes_held_except(&states, d);
        let view = JukeboxView {
            catalog,
            timing,
            mounted: states[d].mounted,
            head: states[d].head,
            now,
            unavailable: &unavailable,
        };
        match scheduler.major_reschedule(&view, &mut pending) {
            Some(plan) => {
                if states[d].mounted != Some(plan.tape) {
                    // Rewind + eject locally, then the (shared) robot
                    // exchange, then load.
                    let mut t = now;
                    if states[d].mounted.is_some() {
                        t = t + timing.drive.rewind(states[d].head, block) + timing.drive.eject();
                    }
                    let robot_start = t.max(robot_free);
                    robot_free = robot_start + timing.robot.exchange();
                    let ready = robot_free + timing.drive.load();
                    metrics.add_switch_time(ready, ready.duration_since(now));
                    metrics.record_tape_switch(ready);
                    states[d].mounted = Some(plan.tape);
                    states[d].head = SlotIndex::BOT;
                    states[d].free_at = ready;
                } // else: already mounted, can start immediately
                states[d].plan = Some(plan);
            }
            None => {
                // Nothing this drive can do: wait for the next system
                // event (another drive's action or an arrival).
                let mut next = end;
                for (i, s) in states.iter().enumerate() {
                    if i != d && s.free_at > now && s.free_at < next {
                        next = s.free_at;
                    }
                }
                if let Some(t) = next_arrival {
                    if t > now && t < next {
                        next = t;
                    }
                }
                if let Some(Reverse(q)) = queued.peek() {
                    if q.at > now && q.at < next {
                        next = q.at;
                    }
                }
                if next >= end {
                    // Check whether *any* drive still has queued work.
                    let someone_busy = states
                        .iter()
                        .any(|s| s.plan.as_ref().is_some_and(|p| !p.list.is_empty()))
                        || !queued.is_empty();
                    if !someone_busy {
                        metrics.add_idle_time(end, end.duration_since(now));
                        now = end;
                        break 'outer;
                    }
                    next = end;
                }
                metrics.add_idle_time(next, next.duration_since(now));
                states[d].free_at = next + Micros::from_micros(1);
            }
        }
    }

    let window = if saturated || now < end {
        if now > warmup_end {
            now.duration_since(warmup_end)
        } else {
            Micros::from_micros(1)
        }
    } else {
        cfg.duration - cfg.warmup
    };
    metrics.report(window, saturated)
}

/// Tapes mounted in (or reserved by) every drive other than `except`.
fn tapes_held_except(states: &[DriveState], except: usize) -> Vec<TapeId> {
    states
        .iter()
        .enumerate()
        .filter(|&(i, _)| i != except)
        .filter_map(|(_, s)| s.mounted)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use tapesim_layout::{build_placement, LayoutKind, PlacementConfig};
    use tapesim_model::{BlockSize, JukeboxGeometry};
    use tapesim_sched::{make_scheduler, AlgorithmId, TapeSelectPolicy};
    use tapesim_workload::BlockSampler;

    fn run(drives: u16, alg: AlgorithmId, queue: u32, seed: u64) -> MetricsReport {
        let placed = build_placement(
            JukeboxGeometry::PAPER_DEFAULT,
            BlockSize::PAPER_DEFAULT,
            PlacementConfig {
                layout: LayoutKind::Horizontal,
                ph_percent: 10.0,
                replicas: 0,
                sp: 0.0,
            },
        )
        .unwrap();
        let timing = TimingModel::paper_default();
        let sampler = BlockSampler::from_catalog(&placed.catalog, 40.0);
        let mut factory = RequestFactory::new(
            sampler,
            ArrivalProcess::Closed {
                queue_length: queue,
            },
            seed,
        );
        let mut sched = make_scheduler(alg);
        run_multi_drive(
            &placed.catalog,
            &timing,
            sched.as_mut(),
            &mut factory,
            &SimConfig::quick(),
            drives,
        )
    }

    #[test]
    fn single_drive_matches_scale_of_engine() {
        let r = run(1, AlgorithmId::Dynamic(TapeSelectPolicy::MaxBandwidth), 60, 1);
        assert!(r.completed > 200, "completed {}", r.completed);
        assert!(r.throughput_kb_per_s > 100.0);
    }

    #[test]
    fn more_drives_give_more_throughput() {
        let alg = AlgorithmId::Dynamic(TapeSelectPolicy::MaxBandwidth);
        let one = run(1, alg, 120, 2);
        let two = run(2, alg, 120, 2);
        let four = run(4, alg, 120, 2);
        assert!(
            two.throughput_kb_per_s > one.throughput_kb_per_s * 1.4,
            "2 drives {:.1} vs 1 drive {:.1}",
            two.throughput_kb_per_s,
            one.throughput_kb_per_s
        );
        assert!(
            four.throughput_kb_per_s > two.throughput_kb_per_s * 1.2,
            "4 drives {:.1} vs 2 drives {:.1}",
            four.throughput_kb_per_s,
            two.throughput_kb_per_s
        );
        // Delay improves with parallel service.
        assert!(two.mean_delay_s < one.mean_delay_s);
    }

    #[test]
    fn drives_never_share_a_tape() {
        // Indirectly validated by the envelope/selection availability
        // filters; here we run every algorithm family briefly to shake
        // out conflicts (a shared tape would corrupt head positions and
        // show up as nonsense metrics or panics).
        for alg in [
            AlgorithmId::Fifo,
            AlgorithmId::Static(TapeSelectPolicy::RoundRobin),
            AlgorithmId::Dynamic(TapeSelectPolicy::MaxBandwidth),
            AlgorithmId::paper_recommended(),
        ] {
            let r = run(3, alg, 60, 3);
            assert!(r.completed > 50, "{} completed {}", alg.name(), r.completed);
        }
    }

    #[test]
    fn multi_drive_is_deterministic() {
        let alg = AlgorithmId::paper_recommended();
        let a = run(3, alg, 60, 9);
        let b = run(3, alg, 60, 9);
        assert_eq!(a, b);
    }

    #[test]
    #[should_panic(expected = "more drives than tapes")]
    fn too_many_drives_rejected() {
        let placed = build_placement(
            JukeboxGeometry::new(2, 1024),
            BlockSize::PAPER_DEFAULT,
            PlacementConfig {
                layout: LayoutKind::Horizontal,
                ph_percent: 0.0,
                replicas: 0,
                sp: 0.0,
            },
        )
        .unwrap();
        let timing = TimingModel::paper_default();
        let sampler = BlockSampler::from_catalog(&placed.catalog, 0.0);
        let mut factory = RequestFactory::new(
            sampler,
            ArrivalProcess::Closed { queue_length: 5 },
            1,
        );
        let mut sched = make_scheduler(AlgorithmId::Fifo);
        let _ = run_multi_drive(
            &placed.catalog,
            &timing,
            sched.as_mut(),
            &mut factory,
            &SimConfig::quick(),
            3,
        );
    }
}
