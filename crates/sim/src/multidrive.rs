//! Multi-drive jukebox simulation — the paper's stated future work
//! ("future work could extend this to multiple drives", Section 2).
//!
//! The extension keeps the Section 2.2 service model per drive: whenever a
//! drive finishes its sweep, the major rescheduler picks it a new tape —
//! excluding tapes currently mounted in (or being switched into) the
//! other drives, which reach the scheduler through
//! [`tapesim_sched::JukeboxView::unavailable`]. One robotic arm is shared:
//! tape exchanges serialize on it, so adding drives also adds robot
//! contention, exactly the effect a real library exhibits.
//!
//! Arrivals during a sweep are handed to the incremental scheduler of the
//! drive at whose operation boundary they surface; the scheduler instance
//! (and, for the envelope algorithm, its envelope state) is shared across
//! drives, mirroring a per-jukebox scheduling daemon.
//!
//! [`run_multi_drive_with_faults`] additionally injects the fault model of
//! [`tapesim_model::faults`], per drive and per tape, exactly as
//! [`crate::engine::run_simulation_with_faults`] does for one drive.
//!
//! The event loop itself lives in [`SteppedMultiDrive`], a poll-driven
//! stepped core: each [`SteppedMultiDrive::step`] dispatches the drive
//! with the earliest `free_at` and executes exactly one of its events.
//! The batch entry points drive it to completion; the
//! [`crate::service::JukeboxService`] layer drives it in external-arrival
//! mode with [`SteppedMultiDrive::submit_at`], per-request cancellation,
//! and administrative drive on/offlining.
#![allow(clippy::cast_possible_truncation)] // drive and tape indices fit u16 by geometry construction

use std::collections::BTreeMap;

use tapesim_layout::{BlockId, Catalog};
use tapesim_model::{
    BlockSize, FaultConfig, FaultInjector, LocateDirection, Micros, PhysicalAddr, ReadContext,
    SimTime, SlotIndex, TapeId, TimingModel, Topology,
};
use tapesim_sched::{FleetView, JukeboxView, PendingList, Scheduler};
use tapesim_workload::{ArrivalProcess, Request, RequestFactory, RequestId};

use crate::checkpoint::{
    self, Checkpoint, CheckpointOpts, DriveCheckpoint, EngineKind, MultiCheckpoint,
};
use crate::engine::{abort_plan, SimConfig};
use crate::error::SimError;
use crate::metrics::{MetricsCollector, MetricsReport};
use crate::par::{StopBatch, WinOp, WindowTask, WorkerPool};
use crate::queue::{CalendarQueue, EventQueue, TimeKeyed};
use crate::stepped::{EngineEvent, StepOutcome};
use crate::trace::{NullSink, TraceEvent, TraceSink, Tracer, SYSTEM_DRIVE};
use crate::trace_event;

/// A request waiting to become visible at its arrival instant (closed-
/// queue regenerations are minted at a *future* completion time relative
/// to the other drives' clocks, so they must not be schedulable early).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct QueuedArrival {
    at: SimTime,
    seq: u64,
    req: tapesim_workload::Request,
}

impl Ord for QueuedArrival {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.at, self.seq).cmp(&(other.at, other.seq))
    }
}

impl PartialOrd for QueuedArrival {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl TimeKeyed for QueuedArrival {
    fn at_micros(&self) -> u64 {
        self.at.as_micros()
    }
}

#[derive(Debug)]
struct DriveState {
    mounted: Option<TapeId>,
    head: SlotIndex,
    plan: Option<tapesim_sched::SweepPlan>,
    /// Phase of the last traced read in the current sweep (tracing only).
    cur_phase: Option<tapesim_sched::SweepPhase>,
    free_at: SimTime,
    /// True when `free_at` was set by the idle branch (nothing was
    /// schedulable). An idle drive's wake changes no jukebox state, so
    /// *other* idle drives must not treat it as an event to wait for —
    /// two idle drives leapfrogging each other's wake times would
    /// otherwise crawl forward a microsecond at a time.
    idle: bool,
}

/// Runs a fault-free jukebox with `drives` tape drives sharing one robot
/// arm. With `drives == 1` this behaves like
/// [`crate::engine::run_simulation`] (modulo immaterial bookkeeping
/// differences in event ordering).
pub fn run_multi_drive(
    catalog: &Catalog,
    timing: &TimingModel,
    scheduler: &mut dyn Scheduler,
    factory: &mut RequestFactory,
    cfg: &SimConfig,
    drives: u16,
) -> Result<MetricsReport, SimError> {
    run_multi_drive_with_faults(
        catalog,
        timing,
        scheduler,
        factory,
        cfg,
        drives,
        &FaultConfig::NONE,
        0,
    )
}

/// Runs a multi-drive jukebox under the given fault model. `fault_seed`
/// drives every fault substream, independently of the workload stream.
#[allow(clippy::too_many_arguments)]
pub fn run_multi_drive_with_faults(
    catalog: &Catalog,
    timing: &TimingModel,
    scheduler: &mut dyn Scheduler,
    factory: &mut RequestFactory,
    cfg: &SimConfig,
    drives: u16,
    faults: &FaultConfig,
    fault_seed: u64,
) -> Result<MetricsReport, SimError> {
    run_multi_drive_traced(
        catalog,
        timing,
        scheduler,
        factory,
        cfg,
        drives,
        faults,
        fault_seed,
        &mut NullSink,
    )
}

/// Runs a multi-drive jukebox while recording every event into `sink`
/// (see [`crate::trace`]). With a [`NullSink`] this is exactly
/// [`run_multi_drive_with_faults`].
#[allow(clippy::too_many_arguments)]
pub fn run_multi_drive_traced(
    catalog: &Catalog,
    timing: &TimingModel,
    scheduler: &mut dyn Scheduler,
    factory: &mut RequestFactory,
    cfg: &SimConfig,
    drives: u16,
    faults: &FaultConfig,
    fault_seed: u64,
    sink: &mut dyn TraceSink,
) -> Result<MetricsReport, SimError> {
    run_multi_drive_checkpointed(
        catalog,
        timing,
        scheduler,
        factory,
        cfg,
        drives,
        faults,
        fault_seed,
        sink,
        &CheckpointOpts::none(),
    )
}

/// [`run_multi_drive_traced`] with checkpoint/resume support (see
/// [`crate::checkpoint`]). With [`CheckpointOpts::none`] this is exactly
/// [`run_multi_drive_traced`]. Checkpoints are taken at drive-dispatch
/// boundaries; in-flight sweep plans are part of the checkpoint, so a
/// resumed run replays the interrupted sweeps stop for stop.
///
/// This is a thin driver over [`SteppedMultiDrive`]: construct, step to
/// completion, report.
#[allow(clippy::too_many_arguments)]
pub fn run_multi_drive_checkpointed(
    catalog: &Catalog,
    timing: &TimingModel,
    scheduler: &mut dyn Scheduler,
    factory: &mut RequestFactory,
    cfg: &SimConfig,
    drives: u16,
    faults: &FaultConfig,
    fault_seed: u64,
    sink: &mut dyn TraceSink,
    opts: &CheckpointOpts,
) -> Result<MetricsReport, SimError> {
    let mut engine = SteppedMultiDrive::new(
        catalog, timing, scheduler, factory, cfg, drives, faults, fault_seed, sink, opts,
    )?;
    while engine.step()? == StepOutcome::Running {}
    Ok(engine.finish())
}

/// Runs a fleet [`Topology`] to completion:
/// [`SteppedMultiDrive::new_with_topology`] stepped to the horizon. With
/// a legacy topology (one library, one robot arm) this produces exactly
/// the report of [`run_multi_drive_with_faults`] at the topology's drive
/// count — and a byte-identical trace.
#[allow(clippy::too_many_arguments)]
pub fn run_fleet(
    catalog: &Catalog,
    timing: &TimingModel,
    topology: Topology,
    scheduler: &mut dyn Scheduler,
    factory: &mut RequestFactory,
    cfg: &SimConfig,
    faults: &FaultConfig,
    fault_seed: u64,
) -> Result<MetricsReport, SimError> {
    run_fleet_traced(
        catalog,
        timing,
        topology,
        scheduler,
        factory,
        cfg,
        faults,
        fault_seed,
        &mut NullSink,
    )
}

/// [`run_fleet`] recording every event into `sink`.
#[allow(clippy::too_many_arguments)]
pub fn run_fleet_traced(
    catalog: &Catalog,
    timing: &TimingModel,
    topology: Topology,
    scheduler: &mut dyn Scheduler,
    factory: &mut RequestFactory,
    cfg: &SimConfig,
    faults: &FaultConfig,
    fault_seed: u64,
    sink: &mut dyn TraceSink,
) -> Result<MetricsReport, SimError> {
    let mut engine = SteppedMultiDrive::new_with_topology(
        catalog,
        timing,
        topology,
        scheduler,
        factory,
        cfg,
        faults,
        fault_seed,
        sink,
        &CheckpointOpts::none(),
    )?;
    while engine.step()? == StepOutcome::Running {}
    Ok(engine.finish())
}

/// [`run_multi_drive_with_faults`] with partitioned-horizon parallel
/// stepping on `workers` threads (see
/// [`SteppedMultiDrive::set_parallel`]). The worker count changes
/// wall-clock speed only: the report is exactly equal — and the trace a
/// parallel run would record byte-identical — to the serial core's.
#[allow(clippy::too_many_arguments)]
pub fn run_multi_drive_parallel(
    catalog: &Catalog,
    timing: &TimingModel,
    scheduler: &mut dyn Scheduler,
    factory: &mut RequestFactory,
    cfg: &SimConfig,
    drives: u16,
    faults: &FaultConfig,
    fault_seed: u64,
    workers: usize,
) -> Result<MetricsReport, SimError> {
    run_multi_drive_parallel_traced(
        catalog,
        timing,
        scheduler,
        factory,
        cfg,
        drives,
        faults,
        fault_seed,
        workers,
        &mut NullSink,
    )
}

/// [`run_multi_drive_parallel`] recording every event into `sink`.
#[allow(clippy::too_many_arguments)]
pub fn run_multi_drive_parallel_traced(
    catalog: &Catalog,
    timing: &TimingModel,
    scheduler: &mut dyn Scheduler,
    factory: &mut RequestFactory,
    cfg: &SimConfig,
    drives: u16,
    faults: &FaultConfig,
    fault_seed: u64,
    workers: usize,
    sink: &mut dyn TraceSink,
) -> Result<MetricsReport, SimError> {
    let mut engine = SteppedMultiDrive::new(
        catalog,
        timing,
        scheduler,
        factory,
        cfg,
        drives,
        faults,
        fault_seed,
        sink,
        &CheckpointOpts::none(),
    )?;
    engine.set_parallel(workers);
    while engine.step_parallel()? == StepOutcome::Running {}
    Ok(engine.finish())
}

/// The poll-driven multi-drive engine core. See the module docs; batch
/// runs use [`run_multi_drive`] and friends, service runs construct this
/// directly in external-arrival mode
/// ([`SteppedMultiDrive::new_external`]).
pub struct SteppedMultiDrive<'a> {
    catalog: &'a Catalog,
    timing: &'a TimingModel,
    scheduler: &'a mut dyn Scheduler,
    factory: &'a mut RequestFactory,
    cfg: SimConfig,
    faults: FaultConfig,
    opts: CheckpointOpts,
    fp: u64,
    tracer: Tracer<'a>,
    injector: FaultInjector,
    block: BlockSize,
    block_bytes: u64,
    end: SimTime,
    warmup_end: SimTime,
    closed: bool,
    external: bool,
    pending: PendingList,
    queued: CalendarQueue<QueuedArrival>,
    seq: u64,
    metrics: MetricsCollector,
    saturated: bool,
    /// The fleet shape; `Topology::single` (one library, one arm) unless
    /// built through a `*_with_topology` entry point.
    topology: Topology,
    /// Cached `!topology.is_legacy()`: gates every fleet-only behavior
    /// (robot queue visibility, pass-through penalties, fleet trace
    /// events) so legacy runs stay byte-identical to the pre-fleet core.
    fleet: bool,
    /// Per-robot next-free instants, indexed by global robot index.
    /// Legacy topologies have exactly one entry — the historical
    /// `robot_free` clock.
    robots_free: Vec<SimTime>,
    /// Per-library, per-tape cross-library mount penalty table handed to
    /// scheduler views; empty for legacy topologies.
    penalties: Vec<Vec<Micros>>,
    /// Owning library of each drive, precomputed.
    drive_lib: Vec<u16>,
    faulted: BTreeMap<RequestId, TapeId>,
    states: Vec<DriveState>,
    now: SimTime,
    next_arrival: Option<SimTime>,
    next_ckpt_at: Option<SimTime>,
    // Scratch buffers for the offline/held-tape snapshots handed to
    // scheduler views; refilled per event instead of allocating each
    // time.
    offline_buf: Vec<TapeId>,
    unavailable_buf: Vec<TapeId>,
    /// How far an idle drive may advance when nothing is schedulable;
    /// the horizon for batch runs, lowered by
    /// [`SteppedMultiDrive::step_until`] for external drivers.
    park: SimTime,
    done: bool,
    /// Drives taken out of service administratively (not by the fault
    /// model); they are skipped by dispatch until brought back.
    admin_offline: Vec<bool>,
    next_ext_id: u64,
    last_submit_at: SimTime,
    events: Vec<EngineEvent>,
    /// Worker threads for partitioned-horizon stepping (see
    /// [`crate::par`]); absent until
    /// [`SteppedMultiDrive::set_parallel`] enables them.
    pool: Option<WorkerPool>,
    /// Windows committed by [`SteppedMultiDrive::step_parallel`].
    windows: u64,
}

impl<'a> SteppedMultiDrive<'a> {
    /// Builds a stepped multi-drive engine whose generated workload,
    /// fault schedule, tracing, and checkpointing exactly match
    /// [`run_multi_drive_checkpointed`] with the same arguments.
    #[allow(clippy::too_many_arguments)]
    pub fn new(
        catalog: &'a Catalog,
        timing: &'a TimingModel,
        scheduler: &'a mut dyn Scheduler,
        factory: &'a mut RequestFactory,
        cfg: &SimConfig,
        drives: u16,
        faults: &FaultConfig,
        fault_seed: u64,
        sink: &'a mut dyn TraceSink,
        opts: &CheckpointOpts,
    ) -> Result<Self, SimError> {
        Self::build(
            catalog, timing, scheduler, factory, cfg, drives, faults, fault_seed, sink, opts,
            false, None,
        )
    }

    /// Builds a stepped multi-drive engine over an explicit fleet
    /// [`Topology`]: drives spread across one or more libraries, each
    /// library's mounts serializing on its own robot-arm pool, and
    /// cross-library mounts paying the pass-through transfer. The drive
    /// count is the topology's total; the topology's shelf total must
    /// match the catalog geometry. A legacy topology (one library, one
    /// arm) behaves byte-identically to [`SteppedMultiDrive::new`].
    #[allow(clippy::too_many_arguments)]
    pub fn new_with_topology(
        catalog: &'a Catalog,
        timing: &'a TimingModel,
        topology: Topology,
        scheduler: &'a mut dyn Scheduler,
        factory: &'a mut RequestFactory,
        cfg: &SimConfig,
        faults: &FaultConfig,
        fault_seed: u64,
        sink: &'a mut dyn TraceSink,
        opts: &CheckpointOpts,
    ) -> Result<Self, SimError> {
        let drives = topology.total_drives();
        Self::build(
            catalog,
            timing,
            scheduler,
            factory,
            cfg,
            drives,
            faults,
            fault_seed,
            sink,
            opts,
            false,
            Some(topology),
        )
    }

    /// [`SteppedMultiDrive::new_with_topology`] in external-arrival mode
    /// (see [`SteppedMultiDrive::new_external`]).
    #[allow(clippy::too_many_arguments)]
    pub fn new_external_with_topology(
        catalog: &'a Catalog,
        timing: &'a TimingModel,
        topology: Topology,
        scheduler: &'a mut dyn Scheduler,
        factory: &'a mut RequestFactory,
        cfg: &SimConfig,
        faults: &FaultConfig,
        fault_seed: u64,
        sink: &'a mut dyn TraceSink,
    ) -> Result<Self, SimError> {
        let drives = topology.total_drives();
        Self::build(
            catalog,
            timing,
            scheduler,
            factory,
            cfg,
            drives,
            faults,
            fault_seed,
            sink,
            &CheckpointOpts::none(),
            true,
            Some(topology),
        )
    }

    /// Builds a stepped multi-drive engine in external-arrival mode: no
    /// workload is generated (the factory is only fingerprinted),
    /// requests enter via [`submit_at`](SteppedMultiDrive::submit_at),
    /// and completions/failures surface as [`EngineEvent`]s.
    /// Checkpointing is not supported in this mode.
    #[allow(clippy::too_many_arguments)]
    pub fn new_external(
        catalog: &'a Catalog,
        timing: &'a TimingModel,
        scheduler: &'a mut dyn Scheduler,
        factory: &'a mut RequestFactory,
        cfg: &SimConfig,
        drives: u16,
        faults: &FaultConfig,
        fault_seed: u64,
        sink: &'a mut dyn TraceSink,
    ) -> Result<Self, SimError> {
        Self::build(
            catalog,
            timing,
            scheduler,
            factory,
            cfg,
            drives,
            faults,
            fault_seed,
            sink,
            &CheckpointOpts::none(),
            true,
            None,
        )
    }

    #[allow(clippy::too_many_arguments)]
    fn build(
        catalog: &'a Catalog,
        timing: &'a TimingModel,
        scheduler: &'a mut dyn Scheduler,
        factory: &'a mut RequestFactory,
        cfg: &SimConfig,
        drives: u16,
        faults: &FaultConfig,
        fault_seed: u64,
        sink: &'a mut dyn TraceSink,
        opts: &CheckpointOpts,
        external: bool,
        topology: Option<Topology>,
    ) -> Result<Self, SimError> {
        if drives < 1 {
            return Err(SimError::InvalidConfig("need at least one drive"));
        }
        if drives > catalog.geometry().tapes {
            return Err(SimError::InvalidConfig(
                "more drives than tapes is pointless",
            ));
        }
        if cfg.warmup >= cfg.duration {
            return Err(SimError::InvalidConfig("warmup must precede the horizon"));
        }
        // A striped (erasure) catalog stores shard cells: a generated
        // workload would sample cells as if they were logical blocks.
        // Only the erasure driver (external-arrival mode) may run one.
        if catalog.stripe().is_some() && !external {
            return Err(SimError::InvalidConfig(
                "striped catalogs require the erasure driver",
            ));
        }
        faults.validate().map_err(SimError::InvalidConfig)?;
        opts.validate()?;
        if external && (opts.resume().is_some() || opts.write_every().is_some()) {
            return Err(SimError::InvalidConfig(
                "checkpointing requires generated arrivals",
            ));
        }
        let topology = match topology {
            Some(t) => {
                t.check_geometry(&catalog.geometry()).map_err(|_| {
                    SimError::InvalidConfig("topology shelf total must match the geometry")
                })?;
                if t.total_drives() != drives {
                    return Err(SimError::InvalidConfig(
                        "topology drive total must match the drive count",
                    ));
                }
                t
            }
            None => Topology::single(drives, catalog.geometry().tapes, timing.robot),
        };
        // The fleet tag is empty for legacy topologies, so historical
        // fingerprints (and the golden checkpoint) are unchanged.
        let topo_tag = topology.fingerprint_tag();
        let extra = if external {
            format!("external{topo_tag}")
        } else {
            topo_tag
        };
        let fp = checkpoint::run_fingerprint(
            EngineKind::Multi,
            catalog,
            timing,
            scheduler.name(),
            &factory.config_tag(),
            &format!("{cfg:?}"),
            &format!("{faults:?}"),
            fault_seed,
            drives,
            &extra,
        );
        let resumed = match opts.resume() {
            Some(path) => {
                let ckpt = checkpoint::load(path)?;
                if ckpt.fingerprint != fp {
                    return Err(SimError::CheckpointConfigMismatch {
                        found: ckpt.fingerprint,
                        expected: fp,
                    });
                }
                Some(ckpt)
            }
            None => None,
        };
        let tracer = match &resumed {
            Some(ckpt) => Tracer::with_seq(sink, ckpt.trace_seq),
            None => Tracer::new(sink),
        };
        let mut injector =
            FaultInjector::new(*faults, &catalog.geometry(), drives as usize, fault_seed);
        let block = catalog.block_size();
        let block_bytes = block.bytes();
        let end = SimTime::ZERO + cfg.duration;
        let warmup_end = SimTime::ZERO + cfg.warmup;
        let closed = !external && matches!(factory.process(), ArrivalProcess::Closed { .. });

        let states: Vec<DriveState> = (0..drives)
            .map(|_| DriveState {
                mounted: None,
                head: SlotIndex::BOT,
                plan: None,
                cur_phase: None,
                free_at: SimTime::ZERO,
                idle: false,
            })
            .collect();

        let fleet = !topology.is_legacy();
        let robots_free = vec![SimTime::ZERO; usize::from(topology.total_robots())];
        let penalties: Vec<Vec<Micros>> = if fleet {
            (0..topology.library_count())
                .map(|lib| {
                    (0..catalog.geometry().tapes)
                        .map(|t| {
                            topology.transfer_penalty(lib, topology.library_of_tape(TapeId(t)))
                        })
                        .collect()
                })
                .collect()
        } else {
            Vec::new()
        };
        let drive_lib: Vec<u16> = (0..drives).map(|d| topology.library_of_drive(d)).collect();

        let mut engine = SteppedMultiDrive {
            catalog,
            timing,
            scheduler,
            factory,
            cfg: *cfg,
            faults: *faults,
            opts: opts.clone(),
            fp,
            tracer,
            injector: FaultInjector::new(*faults, &catalog.geometry(), drives as usize, fault_seed),
            block,
            block_bytes,
            end,
            warmup_end,
            closed,
            external,
            pending: PendingList::new(),
            queued: CalendarQueue::new(),
            seq: 0,
            metrics: MetricsCollector::new(warmup_end),
            saturated: false,
            topology,
            fleet,
            robots_free,
            penalties,
            drive_lib,
            faulted: BTreeMap::new(),
            states,
            now: SimTime::ZERO,
            next_arrival: None,
            next_ckpt_at: None,
            offline_buf: Vec::new(),
            unavailable_buf: Vec::new(),
            park: end,
            done: false,
            admin_offline: vec![false; drives as usize],
            next_ext_id: 0,
            last_submit_at: SimTime::ZERO,
            events: Vec::new(),
            pool: None,
            windows: 0,
        };

        // Seed the workload (skipped on resume: the factory is replayed
        // to its checkpointed stream position below instead).
        if resumed.is_none() && !external {
            match engine.factory.process() {
                ArrivalProcess::Closed { queue_length } => {
                    for _ in 0..queue_length {
                        let req = engine.factory.make(SimTime::ZERO);
                        trace_event!(
                            engine.tracer,
                            SimTime::ZERO,
                            SYSTEM_DRIVE,
                            TraceEvent::Arrival {
                                req: req.id,
                                block: req.block,
                            }
                        );
                        engine.pending.push(req);
                        engine.metrics.record_admission();
                    }
                }
                ArrivalProcess::OpenPoisson { .. } => {
                    let gap = engine
                        .factory
                        .next_interarrival()
                        .ok_or(SimError::ClosedArrivalStream)?;
                    engine.next_arrival = Some(SimTime::ZERO + gap);
                }
            }
        }

        if let Some(ckpt) = &resumed {
            engine
                .factory
                .replay(ckpt.factory_makes, ckpt.factory_gaps)
                .map_err(|m| SimError::CheckpointCorrupt(m.to_string()))?;
            if engine.factory.stream_fingerprint() != ckpt.factory_fp {
                return Err(SimError::CheckpointConfigMismatch {
                    found: ckpt.factory_fp,
                    expected: engine.factory.stream_fingerprint(),
                });
            }
            if let Some(snap) = &ckpt.faults {
                injector
                    .restore(snap)
                    .map_err(|m| SimError::CheckpointCorrupt(m.to_string()))?;
            }
            engine.injector = injector;
            if let Some(state) = &ckpt.sched_state {
                engine
                    .scheduler
                    .restore_state(state)
                    .map_err(|m| SimError::CheckpointCorrupt(m.to_string()))?;
            }
            if ckpt.drives.len() != drives as usize {
                return Err(SimError::CheckpointCorrupt(
                    "checkpoint drive count does not match the configuration".into(),
                ));
            }
            let mc = ckpt.multi.as_ref().ok_or_else(|| {
                SimError::CheckpointCorrupt("multi-drive checkpoint has no multi line".into())
            })?;
            engine.now = SimTime::from_micros(ckpt.now_us);
            engine.next_arrival = ckpt.next_arrival_us.map(SimTime::from_micros);
            for req in ckpt.pending.iter() {
                engine.pending.push(*req);
            }
            engine.metrics = MetricsCollector::from_snapshot(&ckpt.metrics);
            engine.faulted = ckpt
                .faulted
                .iter()
                .map(|&(r, t)| (RequestId(r), TapeId(t)))
                .collect();
            engine.states = ckpt
                .drives
                .iter()
                .map(|dc| DriveState {
                    mounted: dc.mounted,
                    head: dc.head,
                    plan: dc.plan.clone(),
                    cur_phase: dc.cur_phase,
                    free_at: SimTime::from_micros(dc.free_at_us),
                    idle: dc.idle,
                })
                .collect();
            engine.seq = mc.seq;
            if engine.fleet {
                if mc.robots_free_us.len() != engine.robots_free.len() {
                    return Err(SimError::CheckpointCorrupt(
                        "checkpoint robot count does not match the topology".into(),
                    ));
                }
                for (slot, &us) in engine.robots_free.iter_mut().zip(mc.robots_free_us.iter()) {
                    *slot = SimTime::from_micros(us);
                }
            } else if let Some(slot) = engine.robots_free.first_mut() {
                *slot = SimTime::from_micros(mc.robot_free_us);
            }
            for &(at, qseq, req) in mc.queued.iter() {
                engine.queued.push(QueuedArrival {
                    at: SimTime::from_micros(at),
                    seq: qseq,
                    req,
                });
            }
        }
        // First periodic-checkpoint instant strictly after the current
        // clock.
        engine.next_ckpt_at = engine
            .opts
            .write_every()
            .map(|(every, _)| checkpoint::next_checkpoint_after(engine.now, every));
        Ok(engine)
    }

    /// The engine clock: the instant of the last executed event.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// True once the horizon was reached or the run saturated.
    pub fn is_done(&self) -> bool {
        self.done
    }

    /// True when the engine was built in external-arrival mode
    /// ([`SteppedMultiDrive::new_external`]).
    pub fn is_external(&self) -> bool {
        self.external
    }

    /// The simulation horizon.
    pub fn horizon(&self) -> SimTime {
        self.end
    }

    /// The number of drives (including administratively offline ones).
    pub fn drive_count(&self) -> usize {
        self.states.len()
    }

    /// The tape currently mounted in drive `d`, if any.
    pub fn drive_mounted(&self, d: usize) -> Option<TapeId> {
        self.states.get(d).and_then(|s| s.mounted)
    }

    /// True when the copy at `addr` has been permanently lost to a fault
    /// (its tape failed without repair, or the copy itself went bad and
    /// cannot heal). Lets an external driver — the erasure layer — make
    /// the same liveness judgement the engine makes when it fails
    /// requests.
    pub fn copy_lost_forever(&self, addr: PhysicalAddr) -> bool {
        self.injector.copy_lost_forever(addr)
    }

    /// True if drive `d` is administratively offline.
    pub fn drive_offline(&self, d: usize) -> bool {
        self.admin_offline.get(d).copied().unwrap_or(false)
    }

    /// The number of drives currently available for dispatch.
    pub fn drives_online(&self) -> usize {
        self.admin_offline.iter().filter(|&&off| !off).count()
    }

    /// Requests on the pending list (schedulable, not in any sweep).
    pub fn pending_len(&self) -> usize {
        self.pending.len()
    }

    /// Requests admitted but not yet visible to the schedulers (their
    /// arrival instant is still in the future, or they await delivery at
    /// the next operation boundary).
    pub fn queued_len(&self) -> usize {
        self.queued.len()
    }

    /// Requests waiting anywhere outside an active sweep: the admission
    /// backlog a service layer meters against its queue capacity.
    pub fn waiting(&self) -> usize {
        self.pending.len() + self.queued.len()
    }

    /// True once the pending queue overflowed `max_pending`.
    pub fn saturated(&self) -> bool {
        self.saturated
    }

    /// Takes the request outcomes produced since the last drain
    /// (external-arrival mode; always empty for generated workloads).
    pub fn drain_events(&mut self) -> Vec<EngineEvent> {
        std::mem::take(&mut self.events)
    }

    /// Submits one read request at instant `at` (external-arrival mode
    /// only). `at` is clamped to be monotone and not before the engine
    /// clock; the admission is traced and counted immediately, and the
    /// request becomes schedulable at the first operation boundary at or
    /// after `at`. Returns the request's id.
    pub fn submit_at(&mut self, block: BlockId, at: SimTime) -> Result<RequestId, SimError> {
        if !self.external {
            return Err(SimError::InvalidConfig(
                "submit_at requires external-arrival mode",
            ));
        }
        let at = at.max(self.now).max(self.last_submit_at);
        self.last_submit_at = at;
        let req = Request {
            id: RequestId(self.next_ext_id),
            block,
            arrival: at,
        };
        self.next_ext_id += 1;
        trace_event!(
            self.tracer,
            at,
            SYSTEM_DRIVE,
            TraceEvent::Arrival {
                req: req.id,
                block: req.block,
            }
        );
        self.metrics.record_admission();
        self.queued.push(QueuedArrival {
            at,
            seq: self.seq,
            req,
        });
        self.seq += 1;
        Ok(req.id)
    }

    /// Cancels a waiting request (external-arrival mode): removes it from
    /// the pending list or the arrival queue. Returns `false` when the
    /// request is not waiting — already completed or failed, or currently
    /// scheduled in an active sweep (in-flight work is never preempted;
    /// the deterministic tie-break is that service, once scheduled, runs
    /// to completion).
    pub fn cancel(&mut self, req: RequestId) -> bool {
        let removed = self.pending.extract(|r| r.id == req);
        if !removed.is_empty() {
            self.faulted.remove(&req);
            self.metrics.record_cancellation();
            return true;
        }
        let mut queued = false;
        self.queued.for_each(&mut |q| queued |= q.req.id == req);
        if queued {
            self.queued.retain(&mut |q| q.req.id != req);
            self.faulted.remove(&req);
            self.metrics.record_cancellation();
            return true;
        }
        false
    }

    /// Takes drive `d` out of service (administratively, not via the
    /// fault model) or brings it back. Going offline aborts the drive's
    /// sweep — its requests return to the pending list for the surviving
    /// drives — and releases its mounted tape. Coming back online makes
    /// the drive dispatchable from the current clock onward. Returns an
    /// error for an out-of-range drive index.
    pub fn set_drive_offline(&mut self, d: usize, offline: bool) -> Result<(), SimError> {
        if d >= self.states.len() {
            return Err(SimError::InvalidConfig("no such drive"));
        }
        if offline == self.admin_offline[d] {
            return Ok(());
        }
        self.admin_offline[d] = offline;
        if offline {
            // The drive's in-flight operation finishes before the
            // offline takes effect, so the abort records are stamped at
            // the drive's own frontier (which may be ahead of the
            // dispatch clock), keeping its trace timeline monotone.
            let at = self.states[d].free_at.max(self.now);
            if let Some(plan) = self.states[d].plan.take() {
                for stop in plan.list.forward_stops().chain(plan.list.reverse_stops()) {
                    for r in &stop.requests {
                        self.pending.push(*r);
                    }
                }
                // The abort closes the open sweep in the trace; without
                // this the drive's next sweep would violate the §2.2
                // one-open-sweep-per-drive invariant.
                trace_event!(
                    self.tracer,
                    at,
                    d as u16,
                    TraceEvent::SweepEnd { tape: plan.tape }
                );
            }
            if let Some(tape) = self.states[d].mounted.take() {
                trace_event!(self.tracer, at, d as u16, TraceEvent::Unmount { tape });
            }
            self.states[d].head = SlotIndex::BOT;
            self.states[d].cur_phase = None;
        } else {
            self.states[d].free_at = self.states[d].free_at.max(self.now);
            self.states[d].idle = false;
        }
        Ok(())
    }

    /// The drive the next step will dispatch: earliest `free_at`, lowest
    /// index on ties, skipping administratively offline drives.
    fn next_drive(&self) -> Option<usize> {
        (0..self.states.len())
            .filter(|&i| !self.admin_offline[i])
            .min_by_key(|&i| (self.states[i].free_at, i))
    }

    /// Executes one drive event: the dispatched drive services one stop,
    /// reschedules, mounts, or idles. Returns whether more work remains.
    /// With every drive administratively offline the clock parks (nothing
    /// can move) until a drive returns or the horizon is reached.
    pub fn step(&mut self) -> Result<StepOutcome, SimError> {
        if self.done {
            return Ok(StepOutcome::Done);
        }
        let Some(d) = self.next_drive() else {
            self.now = self.park.max(self.now);
            if self.park >= self.end {
                self.now = self.end;
                self.done = true;
                return Ok(StepOutcome::Done);
            }
            return Ok(StepOutcome::Running);
        };
        self.step_drive(d)?;
        Ok(if self.done {
            StepOutcome::Done
        } else {
            StepOutcome::Running
        })
    }

    /// Steps until the clock reaches `until` (clamped to the horizon) or
    /// the run finishes. When nothing is schedulable the engine parks at
    /// `until` instead of idling to the horizon, so an external driver
    /// can keep submitting.
    pub fn step_until(&mut self, until: SimTime) -> Result<(), SimError> {
        self.park = until.min(self.end);
        while !self.done && self.now < self.park {
            if let Some(d) = self.next_drive() {
                if self.states[d].free_at.max(self.now) > self.park {
                    break;
                }
            }
            self.step_parallel()?;
        }
        self.park = self.end;
        Ok(())
    }

    /// Enables (`workers >= 2`) or disables (`workers <= 1`) partitioned-
    /// horizon parallel stepping. The worker count changes wall-clock
    /// speed only: traces and reports stay byte-identical to the serial
    /// core (see [`crate::par`] for the argument). Callable at any point
    /// in a run.
    pub fn set_parallel(&mut self, workers: usize) {
        self.pool = (workers >= 2).then(|| WorkerPool::new(workers));
    }

    /// The configured worker count (1 = serial stepping).
    pub fn parallel_workers(&self) -> usize {
        self.pool.as_ref().map_or(1, |p| p.workers)
    }

    /// How many parallel windows have committed so far (0 under serial
    /// stepping); lets tests assert the parallel path actually ran.
    pub fn windows_stepped(&self) -> u64 {
        self.windows
    }

    /// Like [`SteppedMultiDrive::step`], but when a conservative window
    /// of independent per-drive work exists it executes the whole window
    /// on the worker pool (many stops per call). Identical observable
    /// behavior to a sequence of `step` calls; without a pool it *is*
    /// `step`.
    pub fn step_parallel(&mut self) -> Result<StepOutcome, SimError> {
        if self.pool.is_some() && self.try_step_window()? {
            return Ok(if self.done {
                StepOutcome::Done
            } else {
                StepOutcome::Running
            });
        }
        self.step()
    }

    /// Attempts one partitioned-horizon window (see [`crate::par`]).
    /// Returns `Ok(false)` — having changed nothing — whenever the next
    /// event is not plain independent sweep execution; the caller then
    /// falls back to the serial [`SteppedMultiDrive::step`].
    fn try_step_window(&mut self) -> Result<bool, SimError> {
        // Global activity the window model cannot buffer: closed-queue
        // regeneration mints factory requests in completion order, and an
        // active fault injector can interleave with any stop.
        if self.pool.is_none()
            || self.done
            || self.closed
            || self.injector.is_active()
            || self.pending.len() > self.cfg.max_pending
        {
            return Ok(false);
        }
        // The window ends at the earliest upcoming global event; only
        // stops dispatched strictly before it may run, so none of these
        // events can fire mid-window.
        let mut window_end = self.park.min(self.end);
        if let Some(t) = self.next_arrival {
            window_end = window_end.min(t);
        }
        if let Some(q) = self.queued.peek() {
            window_end = window_end.min(q.at);
        }
        if let Some(t) = self.next_ckpt_at {
            window_end = window_end.min(t);
        }
        // Participants: online drives with stops to execute. Any other
        // online drive must be un-dispatchable for the whole window — a
        // dispatch without stops runs a (global) reschedule.
        let mut participants: Vec<usize> = Vec::new();
        let mut first: Option<(SimTime, usize)> = None;
        for (d, s) in self.states.iter().enumerate() {
            if self.admin_offline[d] {
                continue;
            }
            if s.plan.as_ref().is_some_and(|p| !p.list.is_empty()) {
                let key = (s.free_at, d);
                if first.is_none_or(|f| key < f) {
                    first = Some(key);
                }
                participants.push(d);
            } else if s.free_at < window_end {
                return Ok(false);
            }
        }
        if participants.len() < 2 {
            return Ok(false);
        }
        let Some((first_at, _)) = first else {
            return Ok(false);
        };
        if first_at >= window_end {
            return Ok(false);
        }
        debug_assert!(first_at >= self.now, "dispatch frontier behind the clock");
        debug_assert!(
            self.faulted.is_empty(),
            "failed-over requests with an inactive injector"
        );

        let trace_on = self.tracer.on;
        // Budget each worker just past the shortest participant plan: the
        // first exhaustion cuts the commit off, so anything speculated
        // much beyond it is discarded work.
        let min_stops = participants
            .iter()
            .filter_map(|&d| self.states[d].plan.as_ref().map(|p| p.list.stops()))
            .min()
            .unwrap_or(0);
        let stop_budget = min_stops.saturating_add(crate::par::STOP_BUDGET_MARGIN);
        let mut tasks = Vec::with_capacity(participants.len());
        for &d in &participants {
            let Some(plan) = self.states[d].plan.take() else {
                return Ok(false); // unreachable: participants have plans
            };
            tasks.push(WindowTask {
                d,
                plan,
                head: self.states[d].head,
                free_at: self.states[d].free_at,
                cur_phase: self.states[d].cur_phase,
                window_end,
                stop_budget,
                trace_on,
                external: self.external,
                block: self.block,
                timing: self.timing.clone(),
            });
        }
        let results = if let Some(pool) = self.pool.as_ref() {
            pool.run(tasks)?
        } else {
            return Err(SimError::WorkerPanicked(
                "worker pool vanished mid-window".into(),
            ));
        };

        // Earliest frontier where a worker stopped short of the window
        // (sweep exhausted or stop cap): the serial core takes over
        // there, so only batches strictly before it — in the serial
        // (dispatch instant, drive) order — commit.
        let mut cutoff: Option<(SimTime, usize)> = None;
        for r in &results {
            if let Some(at) = r.cutoff_at {
                let key = (at, r.d);
                if cutoff.is_none_or(|c| key < c) {
                    cutoff = Some(key);
                }
            }
        }
        let mut merged: Vec<(usize, StopBatch)> = Vec::new();
        for mut r in results {
            let keep = match cutoff {
                Some(c) => r
                    .batches
                    .iter()
                    .take_while(|b| (b.dispatch_at, r.d) < c)
                    .count(),
                None => r.batches.len(),
            };
            r.batches.truncate(keep);
            let mut plan = r.plan;
            for _ in 0..keep {
                let _ = plan.list.pop();
            }
            if let Some(last) = r.batches.last() {
                self.states[r.d].head = last.head_after;
                self.states[r.d].free_at = last.free_at_after;
                self.states[r.d].cur_phase = last.phase_after;
                self.states[r.d].idle = false;
            }
            self.states[r.d].plan = Some(plan);
            merged.extend(r.batches.into_iter().map(|b| (r.d, b)));
        }
        if merged.is_empty() {
            // Nothing committed (only possible under a degenerate cutoff);
            // the plans are already back in place, fall back to serial.
            return Ok(false);
        }
        // The deterministic merge: exactly the serial dispatch order.
        merged.sort_by_key(|&(d, ref batch)| (batch.dispatch_at, d));

        // Replay the buffered side effects in serial statement order: the
        // tracer hands out the same sequence numbers, the metrics
        // collector records in the same insertion order, the external
        // event list drains identically.
        let mut last_at = self.now;
        for (d, batch) in &merged {
            last_at = batch.dispatch_at;
            for op in &batch.ops {
                match *op {
                    WinOp::Trace(at, ev) => self.tracer.push(at, *d as u16, ev),
                    WinOp::Locate(at, dur) => self.metrics.add_locate_time(at, dur),
                    WinOp::Read(at, dur) => {
                        self.metrics.add_read_time(at, dur);
                        self.metrics.record_physical_read(at);
                    }
                    WinOp::Complete { arrival, done } => {
                        self.metrics
                            .record_completion(arrival, done, self.block_bytes);
                    }
                    WinOp::Event(ev) => self.events.push(ev),
                }
            }
        }
        self.now = last_at.max(self.now);
        self.windows += 1;
        Ok(true)
    }

    /// The arm of library `lib` that frees earliest; ties break on the
    /// lower global robot index. Arbitration therefore depends only on
    /// the arm clocks — never on event-discovery order — which keeps the
    /// parallel differential byte-identical. For legacy topologies this
    /// is always robot 0.
    fn pick_robot(&self, lib: u16) -> usize {
        let base = usize::from(self.topology.robot_base(lib));
        let count = self
            .topology
            .libraries()
            .get(usize::from(lib))
            .map_or(1, |l| usize::from(l.robots));
        (base..base + count)
            .min_by_key(|&r| (self.robots_free.get(r).copied().unwrap_or(SimTime::ZERO), r))
            .unwrap_or(base)
    }

    /// One robot-exchange duration for library `lib`'s arms. Equals
    /// `timing.robot.exchange()` for the default single topology.
    fn lib_exchange(&self, lib: u16) -> Micros {
        self.topology
            .libraries()
            .get(usize::from(lib))
            .map_or(self.timing.robot, |l| l.robot)
            .exchange()
    }

    /// One full drive-dispatch event, translated statement for statement
    /// from the monolithic `'outer` loop this engine used to be.
    #[allow(clippy::too_many_lines)]
    fn step_drive(&mut self, d: usize) -> Result<(), SimError> {
        // Checkpoint before this iteration mutates anything (the clock
        // update below is re-derived identically on resume).
        if let (Some(at), Some((every, path))) = (self.next_ckpt_at, self.opts.write_every()) {
            if self.now >= at {
                let mut arrivals: Vec<QueuedArrival> = Vec::with_capacity(self.queued.len());
                self.queued.for_each(&mut |q| arrivals.push(*q));
                arrivals.sort_unstable();
                let ckpt = Checkpoint {
                    engine: EngineKind::Multi,
                    fingerprint: self.fp,
                    now_us: self.now.as_micros(),
                    trace_seq: self.tracer.next_seq(),
                    next_arrival_us: self.next_arrival.map(|t| t.as_micros()),
                    factory_makes: self.factory.minted(),
                    factory_gaps: self.factory.gaps_drawn(),
                    factory_fp: self.factory.stream_fingerprint(),
                    pending: self.pending.iter().cloned().collect(),
                    metrics: self.metrics.snapshot(),
                    faulted: self.faulted.iter().map(|(r, t)| (r.0, t.0)).collect(),
                    sched_state: self.scheduler.checkpoint_state(),
                    faults: (self.faults != FaultConfig::NONE).then(|| self.injector.snapshot()),
                    drives: self
                        .states
                        .iter()
                        .map(|s| DriveCheckpoint {
                            mounted: s.mounted,
                            head: s.head,
                            plan: s.plan.clone(),
                            cur_phase: s.cur_phase,
                            free_at_us: s.free_at.as_micros(),
                            idle: s.idle,
                        })
                        .collect(),
                    multi: Some(MultiCheckpoint {
                        seq: self.seq,
                        robot_free_us: self.robots_free.first().map_or(0, |t| t.as_micros()),
                        robots_free_us: if self.fleet {
                            self.robots_free.iter().map(|t| t.as_micros()).collect()
                        } else {
                            Vec::new()
                        },
                        queued: arrivals
                            .iter()
                            .map(|q| (q.at.as_micros(), q.seq, q.req))
                            .collect(),
                    }),
                    writeback: None,
                };
                checkpoint::save(&ckpt, path)?;
                self.next_ckpt_at = Some(checkpoint::next_checkpoint_after(self.now, every));
            }
        }
        self.now = self.states[d].free_at.max(self.now);
        self.states[d].idle = false;
        if self.now >= self.end {
            self.done = true;
            return Ok(());
        }

        if self.injector.is_active() {
            self.injector.advance(self.now);
            // A failed drive sits out its repair; the other drives keep
            // serving.
            if let Some(repair) = self.injector.drive_outage(d, self.now) {
                self.states[d].free_at = self.now + repair;
                self.metrics.add_repair_time(self.now + repair, repair);
                trace_event!(
                    self.tracer,
                    self.now + repair,
                    d as u16,
                    TraceEvent::DriveRepair { dur: repair }
                );
                return Ok(());
            }
            // Fail out requests no surviving copy can serve any more
            // (transiently lost copies heal, so their requests keep
            // waiting).
            if self.injector.has_permanent_damage() {
                let dead = {
                    let injector = &self.injector;
                    let catalog = self.catalog;
                    self.pending.extract(|r| {
                        catalog
                            .replicas(r.block)
                            .iter()
                            .all(|a| injector.copy_lost_forever(*a))
                    })
                };
                for r in dead {
                    self.faulted.remove(&r.id);
                    self.metrics.record_permanent_failure();
                    trace_event!(
                        self.tracer,
                        self.now,
                        SYSTEM_DRIVE,
                        TraceEvent::RequestFailed { req: r.id }
                    );
                    if self.external {
                        self.events.push(EngineEvent::Failed {
                            req: r.id,
                            at: self.now,
                        });
                    }
                    if self.closed {
                        let req = self.factory.make(self.now);
                        trace_event!(
                            self.tracer,
                            self.now,
                            SYSTEM_DRIVE,
                            TraceEvent::Arrival {
                                req: req.id,
                                block: req.block,
                            }
                        );
                        self.queued.push(QueuedArrival {
                            at: self.now,
                            seq: self.seq,
                            req,
                        });
                        self.seq += 1;
                        self.metrics.record_admission();
                    }
                }
            }
            // The tape under this drive failed: abort the sweep and let
            // the requests fail over or wait for the repair.
            let tape_dead = self.states[d]
                .plan
                .as_ref()
                .is_some_and(|p| self.injector.is_offline(p.tape));
            if tape_dead {
                if let Some(plan) = self.states[d].plan.take() {
                    trace_event!(
                        self.tracer,
                        self.now,
                        d as u16,
                        TraceEvent::TapeOffline { tape: plan.tape }
                    );
                    abort_plan(&plan, plan.tape, &mut self.pending, &mut self.faulted);
                }
                self.states[d].mounted = None;
                self.states[d].head = SlotIndex::BOT;
                return Ok(());
            }
        }
        self.offline_buf.clear();
        self.offline_buf.extend_from_slice(self.injector.offline());

        // Deliver due arrivals (Poisson stream and queued closed-queue
        // regenerations, in time order). If drive `d` has an active sweep
        // they go through the incremental scheduler; otherwise straight to
        // the pending list.
        loop {
            // Materialize the Poisson arrival if it is the earliest event.
            if let Some(t) = self.next_arrival {
                let heap_first = self.queued.peek().map(|q| q.at);
                if t <= self.now && heap_first.is_none_or(|h| t <= h) {
                    let req = self.factory.make(t);
                    trace_event!(
                        self.tracer,
                        t,
                        SYSTEM_DRIVE,
                        TraceEvent::Arrival {
                            req: req.id,
                            block: req.block,
                        }
                    );
                    self.queued.push(QueuedArrival {
                        at: t,
                        seq: self.seq,
                        req,
                    });
                    self.seq += 1;
                    self.metrics.record_admission();
                    let gap = self
                        .factory
                        .next_interarrival()
                        .ok_or(SimError::ClosedArrivalStream)?;
                    self.next_arrival = Some(t + gap);
                    continue;
                }
            }
            let due = self.queued.peek().is_some_and(|q| q.at <= self.now);
            if !due {
                break;
            }
            let Some(q) = self.queued.pop() else {
                break;
            };
            tapes_held_except_into(&self.states, d, &mut self.unavailable_buf);
            let (mounted, head) = (self.states[d].mounted, self.states[d].head);
            let fleet_view = fleet_view_for(
                self.fleet,
                &self.topology,
                &self.robots_free,
                &self.penalties,
                self.drive_lib[d],
            );
            if let Some(plan) = self.states[d].plan.as_mut() {
                let view = JukeboxView {
                    catalog: self.catalog,
                    timing: self.timing,
                    mounted,
                    head,
                    now: self.now,
                    unavailable: &self.unavailable_buf,
                    offline: &self.offline_buf,
                    fleet: fleet_view,
                };
                view.debug_assert_sorted();
                let req_id = q.req.id;
                let outcome = self.scheduler.on_arrival(
                    &view,
                    plan.tape,
                    &mut plan.list,
                    q.req,
                    &mut self.pending,
                );
                trace_event!(
                    self.tracer,
                    self.now,
                    d as u16,
                    TraceEvent::Incremental {
                        req: req_id,
                        tape: plan.tape,
                        inserted: outcome == tapesim_sched::ArrivalOutcome::Inserted,
                    }
                );
            } else {
                self.pending.push(q.req);
            }
        }
        if self.pending.len() > self.cfg.max_pending {
            self.saturated = true;
            self.done = true;
            return Ok(());
        }

        let has_stops = self.states[d]
            .plan
            .as_ref()
            .is_some_and(|p| !p.list.is_empty());
        if has_stops {
            // Execute the next stop of this drive's sweep.
            let (stop, phase, tape) = {
                let Some(plan) = self.states[d].plan.as_mut() else {
                    return Ok(());
                };
                match plan.list.pop() {
                    Some((stop, phase)) => (stop, phase, plan.tape),
                    None => return Ok(()),
                }
            };
            if self.tracer.on && self.states[d].cur_phase != Some(phase) {
                self.states[d].cur_phase = Some(phase);
                self.tracer
                    .push(self.now, d as u16, TraceEvent::PhaseStart { tape, phase });
            }
            let (lt, dir) = self
                .timing
                .drive
                .locate(self.states[d].head, stop.slot, self.block);
            let ctx = match dir {
                None => ReadContext::Streaming,
                Some(LocateDirection::Forward) => ReadContext::AfterForwardLocate,
                Some(LocateDirection::Reverse) => ReadContext::AfterReverseLocate,
            };
            let rt = self.timing.drive.read_block(self.block, ctx);
            // Drive time is attributed at the end of each segment (not
            // lumped at the stop's end) so a stop straddling the warmup
            // boundary is split exactly as the single-drive engine splits
            // it — keeping the 1-drive differential exact.
            let mut t = self.now + lt;
            self.metrics.add_locate_time(t, lt);
            trace_event!(
                self.tracer,
                t,
                d as u16,
                TraceEvent::Locate {
                    tape,
                    from: self.states[d].head,
                    to: stop.slot,
                    dur: lt,
                }
            );
            // Fault: every failed read attempt costs another pass over the
            // block; exhausting the retries loses the copy.
            let mut read_ok = true;
            if self.injector.is_active() {
                let mut tries = 0u32;
                while self.injector.media_error() {
                    t += rt;
                    self.metrics.add_read_time(t, rt);
                    trace_event!(
                        self.tracer,
                        t,
                        d as u16,
                        TraceEvent::MediaError {
                            tape,
                            slot: stop.slot,
                        }
                    );
                    if tries >= self.faults.media_retries {
                        read_ok = false;
                        break;
                    }
                    tries += 1;
                }
            }
            if !read_ok {
                let done = t;
                self.states[d].head = stop.slot.next();
                self.states[d].free_at = done;
                self.injector.mark_bad_copy(
                    PhysicalAddr {
                        tape,
                        slot: stop.slot,
                    },
                    done,
                );
                trace_event!(
                    self.tracer,
                    done,
                    d as u16,
                    TraceEvent::CopyLost {
                        tape,
                        slot: stop.slot,
                    }
                );
                for r in &stop.requests {
                    // A request survives while any replica is alive *or*
                    // only transiently lost (it waits for the heal); it
                    // fails only when every copy is gone forever.
                    let survives = self
                        .catalog
                        .replicas(r.block)
                        .iter()
                        .any(|a| !self.injector.copy_lost_forever(*a));
                    if survives {
                        self.faulted.insert(r.id, tape);
                        self.pending.push(*r);
                    } else {
                        self.faulted.remove(&r.id);
                        self.metrics.record_permanent_failure();
                        trace_event!(
                            self.tracer,
                            done,
                            d as u16,
                            TraceEvent::RequestFailed { req: r.id }
                        );
                        if self.external {
                            self.events.push(EngineEvent::Failed {
                                req: r.id,
                                at: done,
                            });
                        }
                        if self.closed {
                            let req = self.factory.make(done);
                            trace_event!(
                                self.tracer,
                                done,
                                SYSTEM_DRIVE,
                                TraceEvent::Arrival {
                                    req: req.id,
                                    block: req.block,
                                }
                            );
                            self.queued.push(QueuedArrival {
                                at: done,
                                seq: self.seq,
                                req,
                            });
                            self.seq += 1;
                            self.metrics.record_admission();
                        }
                    }
                }
                return Ok(());
            }
            t += rt;
            let done = t;
            self.metrics.add_read_time(done, rt);
            self.metrics.record_physical_read(done);
            self.states[d].head = stop.slot.next();
            self.states[d].free_at = done;
            trace_event!(
                self.tracer,
                done,
                d as u16,
                TraceEvent::Read {
                    tape,
                    slot: stop.slot,
                    phase,
                    dur: rt,
                }
            );
            let completions = stop.requests.len();
            for r in &stop.requests {
                self.metrics
                    .record_completion(r.arrival, done, self.block_bytes);
                if !self.faulted.is_empty() {
                    if let Some(failed_tape) = self.faulted.remove(&r.id) {
                        if failed_tape != tape {
                            self.metrics.record_replica_failover();
                            trace_event!(
                                self.tracer,
                                done,
                                d as u16,
                                TraceEvent::Failover {
                                    req: r.id,
                                    from: failed_tape,
                                    to: tape,
                                }
                            );
                        }
                    }
                }
                trace_event!(
                    self.tracer,
                    done,
                    d as u16,
                    TraceEvent::Complete {
                        req: r.id,
                        tape,
                        delay: done.duration_since(r.arrival),
                    }
                );
                if self.external {
                    self.events.push(EngineEvent::Completed {
                        req: r.id,
                        at: done,
                    });
                }
            }
            if self.closed {
                for _ in 0..completions {
                    let req = self.factory.make(done);
                    trace_event!(
                        self.tracer,
                        done,
                        SYSTEM_DRIVE,
                        TraceEvent::Arrival {
                            req: req.id,
                            block: req.block,
                        }
                    );
                    self.queued.push(QueuedArrival {
                        at: done,
                        seq: self.seq,
                        req,
                    });
                    self.seq += 1;
                    self.metrics.record_admission();
                }
            }
            return Ok(());
        }

        // Sweep finished (or never started): clear it and reschedule.
        if let Some(p) = self.states[d].plan.take() {
            trace_event!(
                self.tracer,
                self.now,
                d as u16,
                TraceEvent::SweepEnd { tape: p.tape }
            );
        }
        self.states[d].cur_phase = None;
        tapes_held_except_into(&self.states, d, &mut self.unavailable_buf);
        let view = JukeboxView {
            catalog: self.catalog,
            timing: self.timing,
            mounted: self.states[d].mounted,
            head: self.states[d].head,
            now: self.now,
            unavailable: &self.unavailable_buf,
            offline: &self.offline_buf,
            fleet: fleet_view_for(
                self.fleet,
                &self.topology,
                &self.robots_free,
                &self.penalties,
                self.drive_lib[d],
            ),
        };
        view.debug_assert_sorted();
        match self.scheduler.major_reschedule(&view, &mut self.pending) {
            Some(plan) => {
                trace_event!(
                    self.tracer,
                    self.now,
                    d as u16,
                    TraceEvent::SweepStart {
                        tape: plan.tape,
                        stops: plan.list.stops() as u32,
                        requests: plan.list.requests() as u32,
                    }
                );
                if self.states[d].mounted != Some(plan.tape) {
                    // Rewind + eject locally, then the (shared) robot
                    // exchange, then load. Each failed load attempt costs
                    // another robot exchange + load; exhausting the
                    // retries fails the tape itself.
                    let mut t = self.now;
                    let mut rewind = Micros::ZERO;
                    if let Some(old) = self.states[d].mounted {
                        rewind = self.timing.drive.rewind(self.states[d].head, self.block);
                        trace_event!(
                            self.tracer,
                            self.now + rewind,
                            d as u16,
                            TraceEvent::Rewind {
                                tape: old,
                                from: self.states[d].head,
                                dur: rewind,
                            }
                        );
                        trace_event!(
                            self.tracer,
                            self.now + rewind,
                            d as u16,
                            TraceEvent::Unmount { tape: old }
                        );
                        t = t + rewind + self.timing.drive.eject();
                    }
                    // Destination arm: the earliest-free arm in this
                    // drive's library (robot 0 for legacy topologies,
                    // where the arithmetic below reduces statement for
                    // statement to the historical single-clock form).
                    let lib = self.drive_lib[d];
                    let r_dst = self.pick_robot(lib);
                    let exchange = self.lib_exchange(lib);
                    let mut start = t.max(self.robots_free[r_dst]);
                    let mut transfer = Micros::ZERO;
                    let mut r_src = None;
                    if self.fleet {
                        let tape_lib = self.topology.library_of_tape(plan.tape);
                        if tape_lib != lib {
                            // Cross-library mount: the home library's arm
                            // must export the tape into the pass-through
                            // port before the destination arm can import
                            // and exchange it.
                            let src = self.pick_robot(tape_lib);
                            start = start.max(self.robots_free[src]);
                            transfer = self.topology.transfer_penalty(lib, tape_lib);
                            r_src = Some(src);
                        }
                        let wait = start.duration_since(t);
                        if wait > Micros::ZERO {
                            trace_event!(
                                self.tracer,
                                start,
                                d as u16,
                                TraceEvent::RobotBusy {
                                    robot: r_dst as u16,
                                    dur: wait,
                                }
                            );
                        }
                    }
                    if let Some(src) = r_src {
                        // The source arm is busy for the export leg only;
                        // the pass-through walk and import charge the
                        // destination arm below.
                        let export = Micros::from_secs_f64(self.topology.interlib.export_s);
                        self.robots_free[src] = start + export;
                        trace_event!(
                            self.tracer,
                            start + export,
                            d as u16,
                            TraceEvent::RobotExchange {
                                robot: src as u16,
                                tape: plan.tape,
                                dur: export,
                            }
                        );
                    }
                    self.robots_free[r_dst] = start + transfer + exchange;
                    if self.fleet {
                        trace_event!(
                            self.tracer,
                            self.robots_free[r_dst],
                            d as u16,
                            TraceEvent::RobotExchange {
                                robot: r_dst as u16,
                                tape: plan.tape,
                                dur: transfer + exchange,
                            }
                        );
                    }
                    let mut ready = self.robots_free[r_dst] + self.timing.drive.load();
                    let mut tape_failed_on_load = false;
                    if self.injector.is_active() {
                        let mut tries = 0u32;
                        while self.injector.load_fails() {
                            if tries >= self.faults.load_retries {
                                tape_failed_on_load = true;
                                break;
                            }
                            tries += 1;
                            // Retries stay on the same arm: the tape is
                            // already at the destination library.
                            self.robots_free[r_dst] = ready.max(self.robots_free[r_dst]) + exchange;
                            if self.fleet {
                                trace_event!(
                                    self.tracer,
                                    self.robots_free[r_dst],
                                    d as u16,
                                    TraceEvent::RobotExchange {
                                        robot: r_dst as u16,
                                        tape: plan.tape,
                                        dur: exchange,
                                    }
                                );
                            }
                            ready = self.robots_free[r_dst] + self.timing.drive.load();
                        }
                    }
                    self.metrics
                        .add_switch_time(ready, ready.duration_since(self.now));
                    self.metrics.record_tape_switch(ready);
                    if tape_failed_on_load {
                        self.injector.force_tape_failure(plan.tape, ready);
                        trace_event!(
                            self.tracer,
                            ready,
                            d as u16,
                            TraceEvent::LoadFailed {
                                tape: plan.tape,
                                dur: ready.duration_since(self.now) - rewind,
                            }
                        );
                        trace_event!(
                            self.tracer,
                            ready,
                            d as u16,
                            TraceEvent::TapeOffline { tape: plan.tape }
                        );
                        abort_plan(&plan, plan.tape, &mut self.pending, &mut self.faulted);
                        self.states[d].mounted = None;
                        self.states[d].head = SlotIndex::BOT;
                        self.states[d].free_at = ready;
                        return Ok(());
                    }
                    trace_event!(
                        self.tracer,
                        ready,
                        d as u16,
                        TraceEvent::Mount {
                            tape: plan.tape,
                            dur: ready.duration_since(self.now) - rewind,
                        }
                    );
                    self.states[d].mounted = Some(plan.tape);
                    self.states[d].head = SlotIndex::BOT;
                    self.states[d].free_at = ready;
                } // else: already mounted, can start immediately
                self.states[d].plan = Some(plan);
            }
            None => {
                // Nothing this drive can do: wait for the next system
                // event (another drive's action, an arrival, or a fault
                // repair that brings a tape back). External drivers lower
                // `park` below the horizon so an idle engine waits for
                // them instead of idling the run away.
                let park = self.park;
                let mut next = park;
                for (i, s) in self.states.iter().enumerate() {
                    if i != d
                        && !s.idle
                        && !self.admin_offline[i]
                        && s.free_at > self.now
                        && s.free_at < next
                    {
                        next = s.free_at;
                    }
                }
                if let Some(t) = self.next_arrival {
                    if t > self.now && t < next {
                        next = t;
                    }
                }
                if let Some(q) = self.queued.peek() {
                    if q.at > self.now && q.at < next {
                        next = q.at;
                    }
                }
                if let Some(t) = self.injector.next_event(self.now) {
                    if t < next {
                        next = t;
                    }
                }
                if next >= park {
                    if park >= self.end {
                        // Check whether *any* drive still has queued work.
                        let someone_busy = self
                            .states
                            .iter()
                            .any(|s| s.plan.as_ref().is_some_and(|p| !p.list.is_empty()))
                            || !self.queued.is_empty();
                        if !someone_busy {
                            let dur = self.end.duration_since(self.now);
                            self.metrics.add_idle_time(self.end, dur);
                            trace_event!(self.tracer, self.end, d as u16, TraceEvent::Idle { dur });
                            self.now = self.end;
                            self.done = true;
                            return Ok(());
                        }
                    }
                    next = park;
                }
                let dur = next.duration_since(self.now);
                if dur > Micros::ZERO || !self.external {
                    self.metrics.add_idle_time(next, dur);
                    trace_event!(self.tracer, next, d as u16, TraceEvent::Idle { dur });
                }
                self.states[d].free_at = next + Micros::from_micros(1);
                self.states[d].idle = true;
            }
        }
        Ok(())
    }

    /// Closes the run and produces its metrics report. Callable at any
    /// point; requests still queued, pending, or mid-sweep count as
    /// unserved.
    pub fn finish(mut self) -> MetricsReport {
        let window = if self.saturated || self.now < self.end {
            if self.now > self.warmup_end {
                self.now.duration_since(self.warmup_end)
            } else {
                Micros::from_micros(1)
            }
        } else {
            self.cfg.duration - self.cfg.warmup
        };
        let stranded: u64 = self
            .states
            .iter()
            .map(|s| s.plan.as_ref().map_or(0, |p| p.list.requests() as u64))
            .sum::<u64>()
            + self.queued.len() as u64
            + self.pending.len() as u64;
        if self.injector.is_active() {
            self.injector.advance(self.now);
            self.metrics.set_fault_accounting(
                self.injector.media_errors(),
                self.injector.tape_downtime(self.now),
                self.injector.degraded_time(self.now),
                stranded,
            );
        } else {
            self.metrics
                .set_fault_accounting(0, Vec::new(), Micros::ZERO, stranded);
        }
        self.metrics.report(window, self.saturated)
    }
}

/// The scheduler's view of robot contention for drives in library `lib`:
/// the earliest-free arm's clock plus the library's cross-library mount
/// penalty row. Legacy topologies see [`FleetView::SINGLE`] — zero added
/// cost everywhere, keeping scheduler decisions byte-identical to the
/// pre-fleet core. Takes fields (not `&self`) so callers can hold
/// disjoint mutable borrows of the engine.
fn fleet_view_for<'v>(
    fleet: bool,
    topology: &Topology,
    robots_free: &[SimTime],
    penalties: &'v [Vec<Micros>],
    lib: u16,
) -> FleetView<'v> {
    if !fleet {
        return FleetView::SINGLE;
    }
    let base = usize::from(topology.robot_base(lib));
    let count = topology
        .libraries()
        .get(usize::from(lib))
        .map_or(1, |l| usize::from(l.robots));
    let robot_free = robots_free
        .iter()
        .skip(base)
        .take(count)
        .copied()
        .min()
        .unwrap_or(SimTime::ZERO);
    FleetView {
        robot_free,
        mount_penalty: penalties.get(usize::from(lib)).map_or(&[], Vec::as_slice),
    }
}

/// Tapes mounted in (or reserved by) every drive other than `except`,
/// collected into a reusable scratch buffer — sorted, because
/// `JukeboxView` binary-searches its `unavailable` slice.
fn tapes_held_except_into(states: &[DriveState], except: usize, out: &mut Vec<TapeId>) {
    out.clear();
    out.extend(
        states
            .iter()
            .enumerate()
            .filter(|&(i, _)| i != except)
            .filter_map(|(_, s)| s.mounted),
    );
    out.sort_unstable();
}

#[cfg(test)]
mod tests {
    use super::*;
    use tapesim_layout::{build_placement, LayoutKind, PlacementConfig, PlacementScheme};
    use tapesim_model::{BlockSize, JukeboxGeometry};
    use tapesim_sched::{make_scheduler, AlgorithmId, TapeSelectPolicy};
    use tapesim_workload::BlockSampler;

    fn paper_catalog(nr: u32, sp: f64, layout: LayoutKind) -> Catalog {
        build_placement(
            JukeboxGeometry::PAPER_DEFAULT,
            BlockSize::PAPER_DEFAULT,
            PlacementConfig {
                layout,
                ph_percent: 10.0,
                scheme: PlacementScheme::Replication { nr },
                sp,
            },
        )
        .unwrap()
        .catalog
    }

    fn run(drives: u16, alg: AlgorithmId, queue: u32, seed: u64) -> MetricsReport {
        run_faulty(drives, alg, queue, seed, &FaultConfig::NONE)
    }

    fn run_faulty(
        drives: u16,
        alg: AlgorithmId,
        queue: u32,
        seed: u64,
        faults: &FaultConfig,
    ) -> MetricsReport {
        let catalog = if faults.is_inert() {
            paper_catalog(0, 0.0, LayoutKind::Horizontal)
        } else {
            paper_catalog(1, 0.5, LayoutKind::Vertical)
        };
        let timing = TimingModel::paper_default();
        let sampler = BlockSampler::from_catalog(&catalog, 40.0);
        let mut factory = RequestFactory::new(
            sampler,
            ArrivalProcess::Closed {
                queue_length: queue,
            },
            seed,
        );
        let mut sched = make_scheduler(alg);
        run_multi_drive_with_faults(
            &catalog,
            &timing,
            sched.as_mut(),
            &mut factory,
            &SimConfig::quick(),
            drives,
            faults,
            seed,
        )
        .expect("simulation failed")
    }

    #[test]
    #[cfg_attr(miri, ignore = "full-horizon simulation is too slow under Miri")]
    fn single_drive_matches_scale_of_engine() {
        let r = run(
            1,
            AlgorithmId::Dynamic(TapeSelectPolicy::MaxBandwidth),
            60,
            1,
        );
        assert!(r.completed > 200, "completed {}", r.completed);
        assert!(r.throughput_kb_per_s > 100.0);
    }

    #[test]
    #[cfg_attr(miri, ignore = "full-horizon simulation is too slow under Miri")]
    fn more_drives_give_more_throughput() {
        let alg = AlgorithmId::Dynamic(TapeSelectPolicy::MaxBandwidth);
        let one = run(1, alg, 120, 2);
        let two = run(2, alg, 120, 2);
        let four = run(4, alg, 120, 2);
        assert!(
            two.throughput_kb_per_s > one.throughput_kb_per_s * 1.4,
            "2 drives {:.1} vs 1 drive {:.1}",
            two.throughput_kb_per_s,
            one.throughput_kb_per_s
        );
        assert!(
            four.throughput_kb_per_s > two.throughput_kb_per_s * 1.2,
            "4 drives {:.1} vs 2 drives {:.1}",
            four.throughput_kb_per_s,
            two.throughput_kb_per_s
        );
        // Delay improves with parallel service.
        assert!(two.mean_delay_s < one.mean_delay_s);
    }

    #[test]
    #[cfg_attr(miri, ignore = "full-horizon simulation is too slow under Miri")]
    fn drives_never_share_a_tape() {
        // Indirectly validated by the envelope/selection availability
        // filters; here we run every algorithm family briefly to shake
        // out conflicts (a shared tape would corrupt head positions and
        // show up as nonsense metrics or panics).
        for alg in [
            AlgorithmId::Fifo,
            AlgorithmId::Static(TapeSelectPolicy::RoundRobin),
            AlgorithmId::Dynamic(TapeSelectPolicy::MaxBandwidth),
            AlgorithmId::paper_recommended(),
        ] {
            let r = run(3, alg, 60, 3);
            assert!(r.completed > 50, "{} completed {}", alg.name(), r.completed);
        }
    }

    #[test]
    #[cfg_attr(miri, ignore = "full-horizon simulation is too slow under Miri")]
    fn multi_drive_is_deterministic() {
        let alg = AlgorithmId::paper_recommended();
        let a = run(3, alg, 60, 9);
        let b = run(3, alg, 60, 9);
        assert_eq!(a, b);
    }

    #[test]
    fn too_many_drives_rejected() {
        let placed = build_placement(
            JukeboxGeometry::new(2, 1024),
            BlockSize::PAPER_DEFAULT,
            PlacementConfig {
                layout: LayoutKind::Horizontal,
                ph_percent: 0.0,
                scheme: PlacementScheme::Replication { nr: 0 },
                sp: 0.0,
            },
        )
        .unwrap();
        let timing = TimingModel::paper_default();
        let sampler = BlockSampler::from_catalog(&placed.catalog, 0.0);
        let mut factory =
            RequestFactory::new(sampler, ArrivalProcess::Closed { queue_length: 5 }, 1);
        let mut sched = make_scheduler(AlgorithmId::Fifo);
        let err = run_multi_drive(
            &placed.catalog,
            &timing,
            sched.as_mut(),
            &mut factory,
            &SimConfig::quick(),
            3,
        );
        assert!(matches!(err, Err(SimError::InvalidConfig(_))));
        let err = run_multi_drive(
            &placed.catalog,
            &timing,
            sched.as_mut(),
            &mut factory,
            &SimConfig::quick(),
            0,
        );
        assert!(matches!(err, Err(SimError::InvalidConfig(_))));
    }

    #[test]
    #[cfg_attr(miri, ignore = "full-horizon simulation is too slow under Miri")]
    fn multi_drive_conserves_requests_under_faults() {
        let faults = FaultConfig {
            media_error_per_read: 0.05,
            media_retries: 0,
            load_failure_p: 0.02,
            load_retries: 1,
            tape_mtbf: Some(Micros::from_secs(200_000)),
            tape_mttr: Some(Micros::from_secs(15_000)),
            drive_mtbf: Some(Micros::from_secs(250_000)),
            drive_mttr: Micros::from_secs(4_000),
            ..FaultConfig::NONE
        };
        for drives in [1, 3] {
            let r = run_faulty(drives, AlgorithmId::paper_recommended(), 60, 31, &faults);
            assert_eq!(
                r.admitted,
                r.served + r.failed_requests + r.unserved,
                "conservation violated with {drives} drives"
            );
            assert!(r.completed > 50, "progress with {drives} drives");
        }
    }

    #[test]
    #[cfg_attr(miri, ignore = "full-horizon simulation is too slow under Miri")]
    fn multi_drive_faults_are_deterministic() {
        let faults = FaultConfig {
            media_error_per_read: 0.02,
            media_retries: 1,
            tape_mtbf: Some(Micros::from_secs(300_000)),
            tape_mttr: Some(Micros::from_secs(10_000)),
            ..FaultConfig::NONE
        };
        let a = run_faulty(2, AlgorithmId::paper_recommended(), 60, 37, &faults);
        let b = run_faulty(2, AlgorithmId::paper_recommended(), 60, 37, &faults);
        assert_eq!(a, b);
    }

    #[test]
    #[cfg_attr(miri, ignore = "full-horizon simulation is too slow under Miri")]
    fn stepped_multi_drive_matches_batch() {
        let catalog = paper_catalog(0, 0.0, LayoutKind::Horizontal);
        let timing = TimingModel::paper_default();
        let cfg = SimConfig::quick();
        let alg = AlgorithmId::paper_recommended();
        let batch = run(3, alg, 60, 9);

        let sampler = BlockSampler::from_catalog(&catalog, 40.0);
        let mut factory =
            RequestFactory::new(sampler, ArrivalProcess::Closed { queue_length: 60 }, 9);
        let mut sched = make_scheduler(alg);
        let mut sink = NullSink;
        let mut engine = SteppedMultiDrive::new(
            &catalog,
            &timing,
            sched.as_mut(),
            &mut factory,
            &cfg,
            3,
            &FaultConfig::NONE,
            9,
            &mut sink,
            &CheckpointOpts::none(),
        )
        .unwrap();
        engine
            .step_until(SimTime::ZERO + Micros::from_secs(40_000))
            .unwrap();
        assert!(!engine.is_done());
        assert_eq!(engine.drive_count(), 3);
        while engine.step().unwrap() == StepOutcome::Running {}
        assert_eq!(engine.finish(), batch);
    }

    #[test]
    fn external_multi_serves_submissions_and_survives_drive_loss() {
        let catalog = paper_catalog(0, 0.0, LayoutKind::Horizontal);
        let timing = TimingModel::paper_default();
        let cfg = SimConfig::quick();
        let sampler = BlockSampler::from_catalog(&catalog, 40.0);
        let mut factory =
            RequestFactory::new(sampler, ArrivalProcess::Closed { queue_length: 1 }, 1);
        let mut sched = make_scheduler(AlgorithmId::Dynamic(TapeSelectPolicy::MaxBandwidth));
        let mut sink = NullSink;
        let mut engine = SteppedMultiDrive::new_external(
            &catalog,
            &timing,
            sched.as_mut(),
            &mut factory,
            &cfg,
            2,
            &FaultConfig::NONE,
            1,
            &mut sink,
        )
        .unwrap();
        let blocks: Vec<BlockId> = (0..20).map(|i| BlockId(i * 53)).collect();
        for (i, b) in blocks.iter().enumerate() {
            engine
                .submit_at(*b, SimTime::ZERO + Micros::from_secs(i as u64 * 50))
                .unwrap();
        }
        // Take a drive away mid-run: the survivor keeps serving.
        engine
            .step_until(SimTime::ZERO + Micros::from_secs(500))
            .unwrap();
        engine.set_drive_offline(1, true).unwrap();
        assert_eq!(engine.drives_online(), 1);
        engine.step_until(SimTime::ZERO + cfg.duration).unwrap();
        let completed = engine
            .drain_events()
            .iter()
            .filter(|e| matches!(e, EngineEvent::Completed { .. }))
            .count() as u64;
        assert_eq!(completed, blocks.len() as u64, "all submissions served");
        let report = engine.finish();
        assert_eq!(report.served, completed);
        assert_eq!(report.unserved, 0);
    }

    #[test]
    fn cancel_removes_waiting_requests_only() {
        let catalog = paper_catalog(0, 0.0, LayoutKind::Horizontal);
        let timing = TimingModel::paper_default();
        let cfg = SimConfig::quick();
        let sampler = BlockSampler::from_catalog(&catalog, 40.0);
        let mut factory =
            RequestFactory::new(sampler, ArrivalProcess::Closed { queue_length: 1 }, 1);
        let mut sched = make_scheduler(AlgorithmId::Fifo);
        let mut sink = NullSink;
        let mut engine = SteppedMultiDrive::new_external(
            &catalog,
            &timing,
            sched.as_mut(),
            &mut factory,
            &cfg,
            1,
            &FaultConfig::NONE,
            1,
            &mut sink,
        )
        .unwrap();
        let a = engine.submit_at(BlockId(0), SimTime::ZERO).unwrap();
        let b = engine
            .submit_at(BlockId(999), SimTime::ZERO + Micros::from_secs(90_000))
            .unwrap();
        assert_eq!(engine.waiting(), 2);
        // `b` is still queued (future arrival): cancellable.
        assert!(engine.cancel(b));
        assert!(!engine.cancel(b), "double cancel is a no-op");
        assert_eq!(engine.waiting(), 1);
        engine.step_until(SimTime::ZERO + cfg.duration).unwrap();
        // `a` completed long ago: no longer cancellable.
        assert!(!engine.cancel(a));
        let completed = engine
            .drain_events()
            .iter()
            .filter(|e| matches!(e, EngineEvent::Completed { .. }))
            .count();
        assert_eq!(completed, 1);
        let report = engine.finish();
        assert_eq!(report.admitted, 2);
        assert_eq!(report.served, 1);
        assert_eq!(report.cancelled, 1);
        assert_eq!(report.unserved, 0);
        assert_eq!(
            report.admitted,
            report.served + report.failed_requests + report.unserved + report.cancelled
        );
    }

    /// External-mode run over a deliberately short horizon, sized so the
    /// whole thing stays tractable under Miri. Submissions route through
    /// the calendar queue, and with `workers >= 2` the run must also take
    /// the partitioned-window path.
    fn reduced_horizon_external(workers: usize) -> (MetricsReport, u64) {
        let catalog = paper_catalog(0, 0.0, LayoutKind::Horizontal);
        let timing = TimingModel::paper_default();
        let cfg = SimConfig {
            duration: Micros::from_secs(8_000),
            warmup: Micros::from_secs(500),
            max_pending: 5_000,
        };
        let sampler = BlockSampler::from_catalog(&catalog, 40.0);
        let mut factory =
            RequestFactory::new(sampler, ArrivalProcess::Closed { queue_length: 1 }, 1);
        let mut sched = make_scheduler(AlgorithmId::Static(TapeSelectPolicy::MaxRequests));
        let mut sink = NullSink;
        let mut engine = SteppedMultiDrive::new_external(
            &catalog,
            &timing,
            sched.as_mut(),
            &mut factory,
            &cfg,
            2,
            &FaultConfig::NONE,
            1,
            &mut sink,
        )
        .unwrap();
        engine.set_parallel(workers);
        let blocks = catalog.num_blocks().max(1);
        for i in 0..48u32 {
            engine
                .submit_at(
                    BlockId((i * 97) % blocks),
                    SimTime::ZERO + Micros::from_secs(u64::from(i % 6) * 5),
                )
                .unwrap();
        }
        while engine.step_parallel().unwrap() == StepOutcome::Running {}
        let windows = engine.windows_stepped();
        (engine.finish(), windows)
    }

    /// Reduced-horizon variant of the full differential suite that is
    /// *not* Miri-gated: it pins the calendar-queue arrival path and the
    /// deterministic window merge under the interpreter, where the
    /// full-horizon tests above are ignored.
    #[test]
    fn reduced_horizon_parallel_matches_serial() {
        let (serial, serial_windows) = reduced_horizon_external(1);
        let (parallel, parallel_windows) = reduced_horizon_external(2);
        assert_eq!(serial_windows, 0, "serial run must not window");
        assert!(
            parallel_windows > 0,
            "parallel run never took the window path"
        );
        assert_eq!(serial, parallel, "worker count changed the report");
    }
}
