//! Pending-event queues for the stepped engine cores.
//!
//! The multi-drive core keeps not-yet-visible arrivals (future Poisson
//! materializations, closed-queue regenerations minted at a completion
//! instant, external submissions) in a priority queue ordered by
//! `(arrival instant, admission sequence)`. The admission sequence makes
//! the order total, so ties at the same microsecond pop in FIFO
//! admission order — the tie-break every golden trace depends on.
//!
//! Two implementations live behind the [`EventQueue`] trait:
//!
//! * [`BinaryHeapQueue`] — the original `BinaryHeap<Reverse<T>>`, kept as
//!   the differential reference;
//! * [`CalendarQueue`] — a µs-bucketed calendar queue (R. Brown, CACM
//!   1988): events hash into `buckets[(at_µs / width) % n]`, popping
//!   scans forward from the last popped instant one bucket-day at a
//!   time, and the bucket count/width resize themselves to the live
//!   population. Push and pop are O(1) amortized for the
//!   time-clustered arrival streams the simulator produces, versus the
//!   heap's O(log n).
//!
//! Both pop in exactly the same total order (`Ord` on the item), which
//! the differential property test at the bottom of this module fuzzes
//! with tie-heavy random interleavings.
#![allow(clippy::cast_possible_truncation)] // bucket indices are reduced modulo the bucket count before casting

/// An item with a microsecond timestamp the calendar can bucket by.
///
/// The queue's pop order is the item's `Ord`, which must order primarily
/// by `at_micros()`; the timestamp only places the item in a bucket.
pub trait TimeKeyed {
    /// The event instant in microseconds.
    fn at_micros(&self) -> u64;
}

/// A priority queue popping the minimum item (by `Ord`) first.
///
/// `peek` takes `&mut self` so implementations may cache the minimum's
/// location between calls.
pub trait EventQueue<T: Ord + TimeKeyed> {
    /// Inserts an item.
    fn push(&mut self, item: T);
    /// Removes and returns the minimum item.
    fn pop(&mut self) -> Option<T>;
    /// The minimum item, without removing it.
    fn peek(&mut self) -> Option<&T>;
    /// Number of queued items.
    fn len(&self) -> usize;
    /// True when nothing is queued.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }
    /// Keeps only the items for which `keep` returns true (used by
    /// request cancellation; order of calls is unspecified).
    fn retain(&mut self, keep: &mut dyn FnMut(&T) -> bool);
    /// Visits every queued item in unspecified order (used for
    /// membership checks and checkpoint snapshots, which sort).
    fn for_each(&self, f: &mut dyn FnMut(&T));
}

/// The reference implementation: `BinaryHeap<Reverse<T>>`, exactly the
/// structure the engine used before the calendar queue landed.
#[derive(Debug, Clone, Default)]
pub struct BinaryHeapQueue<T: Ord> {
    heap: std::collections::BinaryHeap<std::cmp::Reverse<T>>,
}

impl<T: Ord> BinaryHeapQueue<T> {
    /// An empty queue.
    pub fn new() -> Self {
        BinaryHeapQueue {
            heap: std::collections::BinaryHeap::new(),
        }
    }
}

impl<T: Ord + TimeKeyed> EventQueue<T> for BinaryHeapQueue<T> {
    fn push(&mut self, item: T) {
        self.heap.push(std::cmp::Reverse(item));
    }

    fn pop(&mut self) -> Option<T> {
        self.heap.pop().map(|std::cmp::Reverse(x)| x)
    }

    fn peek(&mut self) -> Option<&T> {
        self.heap.peek().map(|std::cmp::Reverse(x)| x)
    }

    fn len(&self) -> usize {
        self.heap.len()
    }

    fn retain(&mut self, keep: &mut dyn FnMut(&T) -> bool) {
        let kept: Vec<std::cmp::Reverse<T>> = std::mem::take(&mut self.heap)
            .into_iter()
            .filter(|std::cmp::Reverse(x)| keep(x))
            .collect();
        self.heap = kept.into();
    }

    fn for_each(&self, f: &mut dyn FnMut(&T)) {
        for std::cmp::Reverse(x) in &self.heap {
            f(x);
        }
    }
}

/// Fewest buckets the calendar ever holds.
const MIN_BUCKETS: usize = 8;
/// Most buckets the calendar ever holds (2^20 bounds rebuild cost).
const MAX_BUCKETS: usize = 1 << 20;

/// A µs-bucketed calendar queue. See the module docs for the contract;
/// see [`EventQueue`] for the operations.
///
/// Degenerate distributions (very many items at one microsecond, or a
/// lone far-future outlier stretching the bucket width) degrade pop to a
/// linear scan of one bucket — correctness never depends on the
/// distribution, only speed does.
#[derive(Debug, Clone)]
pub struct CalendarQueue<T> {
    buckets: Vec<Vec<T>>,
    /// Bucket width in microseconds (>= 1).
    width: u64,
    len: usize,
    /// Lower bound on every queued timestamp; scanning starts at its
    /// bucket-day. Advanced on pop, lowered on an out-of-order push.
    floor: u64,
    /// Cached location of the current minimum (`None` = recompute).
    min_pos: Option<(usize, usize)>,
}

impl<T: Ord + TimeKeyed> Default for CalendarQueue<T> {
    fn default() -> Self {
        CalendarQueue::new()
    }
}

fn empty_buckets<T>(n: usize) -> Vec<Vec<T>> {
    std::iter::repeat_with(Vec::new).take(n).collect()
}

impl<T: Ord + TimeKeyed> CalendarQueue<T> {
    /// An empty calendar with the minimum bucket count and 1 µs width.
    pub fn new() -> Self {
        CalendarQueue {
            buckets: empty_buckets(MIN_BUCKETS),
            width: 1,
            len: 0,
            floor: 0,
            min_pos: None,
        }
    }

    fn bucket_index(&self, at: u64) -> usize {
        ((at / self.width) % self.buckets.len() as u64) as usize
    }

    /// Finds the minimum item: scan one full rotation of bucket-days
    /// starting at the floor's day (each day admits only items inside
    /// its year slice), then fall back to a direct scan when the
    /// population is sparser than one rotation.
    fn scan_min(&self) -> Option<(usize, usize)> {
        if self.len == 0 {
            return None;
        }
        let n = self.buckets.len() as u64;
        let first_day = self.floor / self.width;
        for day in first_day..first_day + n {
            let b = (day % n) as usize;
            let end = (day + 1).saturating_mul(self.width);
            let mut found: Option<usize> = None;
            for (i, item) in self.buckets[b].iter().enumerate() {
                if item.at_micros() < end && found.is_none_or(|j| *item < self.buckets[b][j]) {
                    found = Some(i);
                }
            }
            if let Some(i) = found {
                return Some((b, i));
            }
        }
        let mut best: Option<(usize, usize)> = None;
        for (b, bucket) in self.buckets.iter().enumerate() {
            for (i, item) in bucket.iter().enumerate() {
                let better = match best {
                    None => true,
                    Some((bb, bi)) => *item < self.buckets[bb][bi],
                };
                if better {
                    best = Some((b, i));
                }
            }
        }
        best
    }

    /// Re-buckets the live population: bucket count tracks the
    /// population size, bucket width tracks the mean timestamp spacing.
    fn resize(&mut self) {
        let items: Vec<T> = self.buckets.iter_mut().flat_map(std::mem::take).collect();
        let target = items
            .len()
            .next_power_of_two()
            .clamp(MIN_BUCKETS, MAX_BUCKETS);
        let (mut lo, mut hi) = (u64::MAX, 0u64);
        for item in &items {
            let at = item.at_micros();
            lo = lo.min(at);
            hi = hi.max(at);
        }
        let n = items.len().max(1) as u64;
        self.width = ((hi.saturating_sub(lo)) / n).max(1);
        self.buckets = empty_buckets(target);
        self.min_pos = None;
        for item in items {
            let b = self.bucket_index(item.at_micros());
            self.buckets[b].push(item);
        }
    }
}

impl<T: Ord + TimeKeyed> EventQueue<T> for CalendarQueue<T> {
    fn push(&mut self, item: T) {
        let at = item.at_micros();
        if self.len == 0 || at < self.floor {
            self.floor = at;
        }
        let b = self.bucket_index(at);
        let new_is_min = match self.min_pos {
            None => self.len == 0,
            Some((mb, mi)) => item < self.buckets[mb][mi],
        };
        let pos = (b, self.buckets[b].len());
        self.buckets[b].push(item);
        self.len += 1;
        if new_is_min {
            self.min_pos = Some(pos);
        }
        if self.len > self.buckets.len().saturating_mul(2) && self.buckets.len() < MAX_BUCKETS {
            self.resize();
        }
    }

    fn pop(&mut self) -> Option<T> {
        let (b, i) = match self.min_pos.take() {
            Some(pos) => pos,
            None => self.scan_min()?,
        };
        let item = self.buckets[b].swap_remove(i);
        self.len -= 1;
        self.floor = item.at_micros();
        if self.buckets.len() > MIN_BUCKETS && self.len.saturating_mul(8) < self.buckets.len() {
            self.resize();
        }
        Some(item)
    }

    fn peek(&mut self) -> Option<&T> {
        if self.min_pos.is_none() {
            self.min_pos = self.scan_min();
        }
        self.min_pos.map(|(b, i)| &self.buckets[b][i])
    }

    fn len(&self) -> usize {
        self.len
    }

    fn retain(&mut self, keep: &mut dyn FnMut(&T) -> bool) {
        for bucket in &mut self.buckets {
            bucket.retain(|item| keep(item));
        }
        self.len = self.buckets.iter().map(Vec::len).sum();
        self.min_pos = None;
    }

    fn for_each(&self, f: &mut dyn FnMut(&T)) {
        for bucket in &self.buckets {
            for item in bucket {
                f(item);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    /// A tie-heavy test item: many items share an `at`, the `seq` makes
    /// the order total — the same shape as the engine's queued arrivals.
    #[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
    struct Item {
        at: u64,
        seq: u64,
    }

    impl TimeKeyed for Item {
        fn at_micros(&self) -> u64 {
            self.at
        }
    }

    fn drain<Q: EventQueue<Item>>(q: &mut Q) -> Vec<Item> {
        let mut out = Vec::new();
        while let Some(x) = q.pop() {
            out.push(x);
        }
        out
    }

    #[test]
    fn pops_in_at_then_seq_order() {
        let mut q = CalendarQueue::new();
        for (i, at) in [50u64, 10, 10, 99, 10, 50].iter().enumerate() {
            q.push(Item {
                at: *at,
                seq: i as u64,
            });
        }
        let order: Vec<(u64, u64)> = drain(&mut q).iter().map(|x| (x.at, x.seq)).collect();
        assert_eq!(
            order,
            [(10, 1), (10, 2), (10, 4), (50, 0), (50, 5), (99, 3)]
        );
    }

    #[test]
    fn push_below_floor_after_pop_is_found() {
        // A later push may land *before* the last popped instant (an
        // open-Poisson arrival materialized late); the floor must move
        // back down or the scan would start past the new minimum.
        let mut q = CalendarQueue::new();
        q.push(Item { at: 100, seq: 0 });
        assert_eq!(q.pop(), Some(Item { at: 100, seq: 0 }));
        q.push(Item { at: 90, seq: 1 });
        q.push(Item { at: 95, seq: 2 });
        assert_eq!(q.peek(), Some(&Item { at: 90, seq: 1 }));
        assert_eq!(q.pop(), Some(Item { at: 90, seq: 1 }));
        assert_eq!(q.pop(), Some(Item { at: 95, seq: 2 }));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn survives_resize_cycles_and_sparse_tails() {
        let mut q = CalendarQueue::new();
        // Grow: dense cluster, then a lone far-future outlier (forces
        // the direct-scan fallback once the cluster drains).
        for seq in 0..200u64 {
            q.push(Item {
                at: 1_000 + seq / 4,
                seq,
            });
        }
        q.push(Item {
            at: 1_000_000_000,
            seq: 200,
        });
        let mut popped = drain(&mut q);
        assert_eq!(popped.len(), 201);
        let mut expect = popped.clone();
        expect.sort_unstable();
        assert_eq!(popped, expect, "pop order must be the sorted order");
        assert_eq!(popped.pop().map(|x| x.at), Some(1_000_000_000));
    }

    #[test]
    fn retain_drops_and_rescans() {
        let mut q = CalendarQueue::new();
        for seq in 0..20u64 {
            q.push(Item { at: seq % 3, seq });
        }
        q.retain(&mut |item: &Item| item.seq.is_multiple_of(2));
        assert_eq!(q.len(), 10);
        let mut seen = 0;
        q.for_each(&mut |item| {
            assert_eq!(item.seq % 2, 0);
            seen += 1;
        });
        assert_eq!(seen, 10);
        let popped = drain(&mut q);
        let mut expect = popped.clone();
        expect.sort_unstable();
        assert_eq!(popped, expect);
    }

    /// One random op applied to both queues.
    #[derive(Debug, Clone, Copy)]
    enum Op {
        /// Push at `floor-ish + offset` (tie-heavy: offsets collide).
        Push(u64),
        Pop,
        Peek,
        /// Cancel every item whose seq is congruent to `k` mod 5.
        Retain(u64),
    }

    proptest! {
        /// Differential fuzz: any interleaving of pushes (tie-heavy
        /// timestamps), pops, peeks, and retains produces exactly the
        /// heap reference's pop order, then drains identically.
        #[test]
        fn calendar_matches_heap_reference(
            ops in proptest::collection::vec(
                prop_oneof![
                    (0u64..40).prop_map(Op::Push),
                    Just(Op::Pop),
                    Just(Op::Peek),
                    (0u64..5).prop_map(Op::Retain),
                ],
                1..120,
            )
        ) {
            let mut cal = CalendarQueue::new();
            let mut heap = BinaryHeapQueue::new();
            let mut seq = 0u64;
            // A drifting base makes pushes land before and after the
            // current floor, exercising the floor-reset path.
            let mut base = 0u64;
            for op in ops {
                match op {
                    Op::Push(offset) => {
                        let item = Item { at: base + offset, seq };
                        seq += 1;
                        base += offset / 8;
                        cal.push(item);
                        heap.push(item);
                    }
                    Op::Pop => {
                        prop_assert_eq!(cal.pop(), heap.pop());
                    }
                    Op::Peek => {
                        prop_assert_eq!(cal.peek().copied(), heap.peek().copied());
                    }
                    Op::Retain(k) => {
                        cal.retain(&mut |item: &Item| item.seq % 5 != k);
                        heap.retain(&mut |item: &Item| item.seq % 5 != k);
                    }
                }
                prop_assert_eq!(cal.len(), heap.len());
            }
            prop_assert_eq!(drain(&mut cal), drain(&mut heap));
        }
    }
}
